"""The exception hierarchy."""

import pytest

from repro.errors import (
    AssemblerError,
    ConfigError,
    DeadlockError,
    MemoryFault,
    ReproError,
    SimulationError,
    TagCheckFault,
)


class TestHierarchy:
    @pytest.mark.parametrize("cls", [
        ConfigError, AssemblerError, SimulationError, MemoryFault,
        TagCheckFault, DeadlockError])
    def test_everything_derives_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_simulation_subtypes(self):
        assert issubclass(MemoryFault, SimulationError)
        assert issubclass(TagCheckFault, SimulationError)
        assert issubclass(DeadlockError, SimulationError)


class TestMessages:
    def test_assembler_error_line_number(self):
        error = AssemblerError("bad thing", line_no=7)
        assert error.line_no == 7
        assert "line 7" in str(error)

    def test_assembler_error_without_line(self):
        assert AssemblerError("oops").line_no is None

    def test_memory_fault_address(self):
        error = MemoryFault(0xDEAD)
        assert error.address == 0xDEAD
        assert "0xdead" in str(error)

    def test_tag_check_fault_fields(self):
        error = TagCheckFault(0x4000, key=3, lock=5, pc=0x1040)
        assert (error.address, error.key, error.lock) == (0x4000, 3, 5)
        assert "0x3" in str(error) and "0x5" in str(error)
        assert "pc=0x1040" in str(error)

    def test_deadlock_error(self):
        error = DeadlockError(50_000, detail="rob stuck")
        assert error.cycles == 50_000
        assert "rob stuck" in str(error)
