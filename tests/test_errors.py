"""The exception hierarchy."""

import pytest

from repro.errors import (
    SERVICE_ERROR_KINDS,
    AssemblerError,
    ConfigError,
    DeadlockError,
    InvariantViolation,
    LivelockError,
    MemoryFault,
    ReproError,
    ServiceError,
    SimulationError,
    TagCheckFault,
)

#: Every concrete error with kwargs that construct it — the full hierarchy.
ALL_ERRORS = [
    (ConfigError, ("bad config",), {}),
    (AssemblerError, ("bad line",), {"line_no": 3}),
    (SimulationError, ("stuck",), {}),
    (MemoryFault, (0x1000,), {}),
    (TagCheckFault, (0x4000,), {"key": 1, "lock": 2, "pc": 0x40}),
    (DeadlockError, (50_000,), {"detail": "rob stuck"}),
    (LivelockError, (30_000,), {"distinct_pcs": (0x40, 0x44)}),
    (InvariantViolation, ("rob-commit-order", "out of order"),
     {"structure": "rob"}),
    (ServiceError, ("queue full",), {"kind": "overloaded"}),
]


class TestHierarchy:
    @pytest.mark.parametrize("cls", [
        ConfigError, AssemblerError, SimulationError, MemoryFault,
        TagCheckFault, DeadlockError, LivelockError, InvariantViolation,
        ServiceError])
    def test_everything_derives_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_simulation_subtypes(self):
        assert issubclass(MemoryFault, SimulationError)
        assert issubclass(TagCheckFault, SimulationError)
        assert issubclass(DeadlockError, SimulationError)
        assert issubclass(LivelockError, SimulationError)

    @pytest.mark.parametrize("cls,args,kwargs", ALL_ERRORS,
                             ids=lambda v: getattr(v, "__name__", None))
    def test_constructible_and_caught_by_repro_error(self, cls, args, kwargs):
        with pytest.raises(ReproError) as excinfo:
            raise cls(*args, **kwargs)
        assert isinstance(excinfo.value, cls)
        assert str(excinfo.value)  # every error renders a message

    @pytest.mark.parametrize("cls,args,kwargs", ALL_ERRORS,
                             ids=lambda v: getattr(v, "__name__", None))
    def test_caught_by_bare_exception_hierarchy(self, cls, args, kwargs):
        # ReproError is a plain Exception subclass: library users who catch
        # Exception still see typed errors, never system-exiting ones.
        assert issubclass(cls, Exception)
        assert not issubclass(cls, (SystemExit, KeyboardInterrupt))


class TestMessages:
    def test_assembler_error_line_number(self):
        error = AssemblerError("bad thing", line_no=7)
        assert error.line_no == 7
        assert "line 7" in str(error)

    def test_assembler_error_without_line(self):
        assert AssemblerError("oops").line_no is None

    def test_memory_fault_address(self):
        error = MemoryFault(0xDEAD)
        assert error.address == 0xDEAD
        assert "0xdead" in str(error)

    def test_tag_check_fault_fields(self):
        error = TagCheckFault(0x4000, key=3, lock=5, pc=0x1040)
        assert (error.address, error.key, error.lock) == (0x4000, 3, 5)
        assert "0x3" in str(error) and "0x5" in str(error)
        assert "pc=0x1040" in str(error)

    def test_deadlock_error(self):
        error = DeadlockError(50_000, detail="rob stuck")
        assert error.cycles == 50_000
        assert "rob stuck" in str(error)

    def test_deadlock_error_snapshot(self):
        snapshot = {"cycle": 12, "rob": {"occupancy": 3}}
        error = DeadlockError(50_000, snapshot=snapshot)
        assert error.snapshot == snapshot
        assert DeadlockError(1).snapshot == {}

    def test_livelock_error_fields(self):
        error = LivelockError(30_000, distinct_pcs=[0x44, 0x40],
                              snapshot={"cycle": 9})
        assert error.commits == 30_000
        assert error.distinct_pcs == (0x44, 0x40)
        assert error.snapshot == {"cycle": 9}
        assert "0x44" in str(error) and "30000" in str(error)

    def test_invariant_violation_fields(self):
        error = InvariantViolation("tag-coherence", "locks drifted",
                                   structure="tag-storage",
                                   snapshot={"cycle": 5})
        assert error.invariant == "tag-coherence"
        assert error.structure == "tag-storage"
        assert error.snapshot == {"cycle": 5}
        assert "tag-coherence" in str(error)
        assert "locks drifted" in str(error)
        assert "tag-storage" in str(error)

    def test_invariant_violation_derives_structure(self):
        # With no explicit structure, the prefix of the invariant name is
        # used ("rob-commit-order" → "rob").
        error = InvariantViolation("rob-commit-order", "out of order")
        assert error.structure == "rob"


class TestServiceError:
    @pytest.mark.parametrize("kind", sorted(SERVICE_ERROR_KINDS))
    def test_every_kind_constructs_and_renders(self, kind):
        error = ServiceError("detail", kind=kind)
        assert error.kind == kind
        assert f"[{kind}]" in str(error) and "detail" in str(error)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError):
            ServiceError("nope", kind="made-up")

    def test_retryable_split_covers_every_kind(self):
        # Every kind is deliberately classified: retryable load/lifecycle
        # rejections vs. permanent request defects.
        assert ServiceError.RETRYABLE <= SERVICE_ERROR_KINDS
        permanent = SERVICE_ERROR_KINDS - ServiceError.RETRYABLE
        assert permanent == {"malformed", "oversize", "unsupported",
                             "invalid-program", "quarantined"}

    @pytest.mark.parametrize("kind,expected", [
        ("overloaded", True), ("draining", True), ("deadline", True),
        ("worker-lost", True), ("malformed", False),
        ("quarantined", False), ("invalid-program", False),
    ])
    def test_retryable_hint(self, kind, expected):
        assert ServiceError("x", kind=kind).retryable is expected
