"""``--report FILE.s`` refuses degenerate programs with diagnostics.

A gadget report over a program whose victim code never runs reads
exactly like a clean bill of health, so the CLI gates every file report
through CFG well-formedness: empty programs, unreachable blocks, and
fall-off-the-end flow all exit 2 with the offending block addresses
named, never 0 with an empty report.
"""

import pytest

from repro.analysis.__main__ import main
from repro.analysis.cfg import require_well_formed
from repro.errors import AnalysisError
from repro.fuzz.generator import build, CandidateSpec, SectionSpec
from repro.isa.assembler import assemble

EMPTY = ".base 0x1000\n"

# The conditional backedge can fall past the end of the text.
FALLS_OFF = """\
.base 0x1000
    MOV X0, #3
loop:
    CMP X0, #1
    B.HS loop
"""


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_empty_program_exits_2(tmp_path, capsys):
    code = main(["--report", _write(tmp_path, "empty.s", EMPTY)])
    assert code == 2
    assert "degenerate program" in capsys.readouterr().err


def test_fall_off_end_exits_2_with_the_block_address(tmp_path, capsys):
    code = main(["--report", _write(tmp_path, "falls.s", FALLS_OFF)])
    assert code == 2
    err = capsys.readouterr().err
    assert "fall-off-end" in err
    assert "0x" in err  # names the offending address


def test_missing_file_exits_2(tmp_path, capsys):
    code = main(["--report", str(tmp_path / "nope.s")])
    assert code == 2
    assert "error" in capsys.readouterr().err.lower()


def test_well_formed_file_reports_and_exits_0(tmp_path, capsys):
    candidate = build(CandidateSpec(
        sections=(SectionSpec(template="pht", residual=True),)))
    path = _write(tmp_path, "pht.s", candidate.source_text)
    lo, hi = candidate.secret_ranges[0]
    code = main(["--report", path, "--secret", f"{lo:#x}:{hi:#x}"])
    assert code == 0
    out = capsys.readouterr().out
    assert "pht" in out


def test_require_well_formed_names_every_problem():
    with pytest.raises(AnalysisError, match="fall-off-end"):
        require_well_formed(assemble(FALLS_OFF))
    with pytest.raises(AnalysisError, match="empty"):
        require_well_formed(assemble(EMPTY))
