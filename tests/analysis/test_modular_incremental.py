"""Incremental re-linting: cache durability, dirtying, one-function edits."""

import json
import os

from repro.analysis.gadgets import find_gadgets
from repro.analysis.modular import (
    SUMMARY_SCHEMA,
    SummaryCache,
    build_callgraph,
    dirty_functions,
    function_digests,
    modular_analysis,
)
from repro.analysis.modular.fixtures import bench_program
from repro.analysis.options import AnalysisOptions
from repro.analysis.taint import analyze


def _lint(program, secret_ranges, cache):
    options = AnalysisOptions.summary_backed(cache=cache)
    run = modular_analysis(program, secret_ranges, options=options)
    gadgets = find_gadgets(program, secret_ranges, taint=run.result,
                           options=options)
    return run, [g.render() for g in gadgets]


# ----------------------------------------------------------------------
# SummaryCache durability
# ----------------------------------------------------------------------

def test_cache_round_trips_through_disk(tmp_path):
    path = os.path.join(tmp_path, "summaries.jsonl")
    cache = SummaryCache(path)
    cache.put("k1", {"payload": 1})
    cache.put("k2", {"payload": 2})
    cache.flush()
    reloaded = SummaryCache(path)
    assert len(reloaded) == 2
    assert reloaded.get("k1") == {"payload": 1}
    assert reloaded.hits == 1 and reloaded.misses == 0
    assert reloaded.get("nope") is None
    assert reloaded.misses == 1


def test_cache_skips_corrupt_lines_without_failing(tmp_path):
    path = os.path.join(tmp_path, "summaries.jsonl")
    cache = SummaryCache(path)
    cache.put("good", {"payload": "ok"})
    cache.flush()
    with open(path, encoding="utf-8") as handle:
        good_line = handle.read()
    tampered = json.loads(good_line)
    tampered["key"] = "evil"            # checksum no longer matches
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("this is not json\n")
        handle.write(json.dumps({"schema": "wrong/9", "key": "x",
                                 "payload": {}, "sha256": "0"}) + "\n")
        handle.write(json.dumps(tampered) + "\n")
        handle.write(good_line)
    survivor = SummaryCache(path)
    assert len(survivor) == 1
    assert survivor.get("good") == {"payload": "ok"}
    assert survivor.rejected == 3       # bad json + bad schema + checksum


def test_cache_missing_file_is_empty_not_an_error(tmp_path):
    cache = SummaryCache(os.path.join(tmp_path, "absent.jsonl"))
    assert len(cache) == 0


def test_schema_is_versioned():
    assert SUMMARY_SCHEMA == "repro-summary/1"


# ----------------------------------------------------------------------
# digests + reverse-call-graph dirtying
# ----------------------------------------------------------------------

def test_unchanged_program_has_no_dirty_functions():
    program, _ = bench_program()
    baseline = function_digests(build_callgraph(program))
    assert dirty_functions(build_callgraph(program), baseline) == frozenset()


def test_one_function_edit_dirties_it_and_its_callers():
    program, _ = bench_program()
    baseline = function_digests(build_callgraph(program))
    edited, _ = bench_program(edits={3: 7})
    dirty = dirty_functions(build_callgraph(edited), baseline)
    assert dirty == {"fn3", "main"}


def test_new_function_name_counts_as_dirty():
    program, _ = bench_program(functions=4)
    baseline = function_digests(build_callgraph(program))
    bigger, _ = bench_program(functions=5)
    dirty = dirty_functions(build_callgraph(bigger), baseline)
    assert "fn4" in dirty


# ----------------------------------------------------------------------
# warm incremental re-lint on the bench fixture
# ----------------------------------------------------------------------

def test_one_function_edit_reanalyzes_only_that_function(tmp_path):
    path = os.path.join(tmp_path, "summaries.jsonl")
    program, secret_ranges = bench_program()
    cold_cache = SummaryCache(path)
    _lint(program, secret_ranges, cold_cache)
    cold_cache.flush()

    edited, edited_ranges = bench_program(edits={3: 7})
    warm_cache = SummaryCache(path)
    run, warm_report = _lint(edited, edited_ranges, warm_cache)
    assert sorted(run.reanalyzed) == ["fn3"]
    assert warm_cache.misses == 1
    assert warm_cache.hits > 0

    # The warm verdicts are byte-identical to linting the edit cold.
    whole = [g.render() for g in
             find_gadgets(edited, edited_ranges,
                          taint=analyze(edited, edited_ranges))]
    assert warm_report == whole


def test_edit_is_address_stable():
    program, _ = bench_program()
    edited, _ = bench_program(edits={3: 7})
    assert len(program.instructions) == len(edited.instructions)
    assert [i.address for i in program.instructions] == \
        [i.address for i in edited.instructions]
    differing = [a.address for a, b in zip(program.instructions,
                                           edited.instructions) if a != b]
    assert len(differing) == 1
