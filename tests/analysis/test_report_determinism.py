"""Byte-identical gadget reports: the regression the CI diff relies on."""

from repro.analysis.differential import render_report
from repro.analysis.gadgets import find_gadgets
from repro.isa import assemble
from repro.workloads import SPEC_BY_NAME
from repro.workloads.generator import HEAP_BASE, generate

from tests.analysis.test_gadgets import SECRET, V1_SHAPE, SAME_KEY_BASE


def test_find_gadgets_is_sorted_deterministically():
    gadgets = find_gadgets(assemble(V1_SHAPE.format(base=SAME_KEY_BASE)),
                           SECRET)
    keys = [(g.source, g.kind.value, g.entry, g.transmitters)
            for g in gadgets]
    assert keys == sorted(keys)


def test_reports_are_byte_identical_across_runs():
    def report(source, secrets):
        return "\n".join(g.render()
                         for g in find_gadgets(assemble(source), secrets))

    source = V1_SHAPE.format(base=SAME_KEY_BASE)
    assert report(source, SECRET) == report(source, SECRET)


def test_workload_reports_are_byte_identical_across_runs():
    secrets = [(HEAP_BASE, HEAP_BASE + 64)]

    def report():
        program = generate(SPEC_BY_NAME["505.mcf_r"], seed=3,
                           target_instructions=400).program
        return "\n".join(g.render()
                         for g in find_gadgets(program, secrets))

    first = report()
    assert first and first == report()


def test_render_report_is_byte_identical_across_runs():
    assert render_report(["spectre-v1"]) == render_report(["spectre-v1"])
