"""Automatic repair: counterexample-guided fix selection and verification."""

from dataclasses import replace

import pytest

from repro.analysis import repair
from repro.analysis.gadgets import leaks_under
from repro.analysis.repair import (
    FIX_ORDER,
    FixKind,
    GadgetId,
    measure_overhead,
    overhead_registry,
    plan,
)
from repro.analysis.windows import EntryKind
from repro.analysis.witness import (
    WITNESS_KINDS,
    secret_ranges_of,
    synthesize,
    variant_name,
)
from repro.attacks.common import run_attack_program
from repro.config import DefenseKind
from repro.errors import AnalysisError
from repro.isa import assemble

SECRET = [(0x4100, 0x4110)]

# The same-key (TikTag residual) Spectre-v1 shape from test_gadgets: the
# pointer's key matches the secret's lock, so SpecASan misses it statically.
V1_SAME_KEY = """
    .data arr 0x4000 tag=5 bytes 1 1 1 1
    .data sec 0x4100 tag=5 bytes 11
    .data idx 0x6000 words 0x100
    .data probe 0x100000 zero 4096
    .data cell 0x200000 words 4
    MOV X2, #{base:#x}
    MOV X3, #0x100000
    MOV X6, #0x6000
    LDR X0, [X6]
    MOV X15, #0x200000
    LDR X1, [X15]
    CMP X0, X1
    B.HS skip
    LDRB X5, [X2, X0]
    LSL X6, X5, #12
    ADD X7, X3, X6
    LDRB X8, [X7]
skip:
    HALT
""".format(base=(0x5 << 56) | 0x4000)


@pytest.fixture(scope="module")
def residuals():
    return {kind: synthesize(kind, residual=True) for kind in WITNESS_KINDS}


@pytest.fixture(scope="module")
def repairs(residuals):
    return {kind: plan(witness.attack.builder_program,
                       secret_ranges_of(witness.attack))
            for kind, witness in residuals.items()}


@pytest.mark.parametrize("kind", WITNESS_KINDS, ids=lambda k: k.value)
def test_every_residual_witness_repairs_under_specasan(repairs, kind):
    result = repairs[kind]
    assert result.leaking_before            # there was something to fix
    assert result.fixes                     # a fix was applied
    assert result.verified                  # and the static verdict flipped
    assert result.leaking_after == []


@pytest.mark.parametrize("kind", WITNESS_KINDS, ids=lambda k: k.value)
def test_fixes_only_target_leaking_gadgets(repairs, kind):
    # "Never repair already-sanitized": every fixed gadget leaked.
    result = repairs[kind]
    assert all(leaks_under(fix.gadget, result.defense)
               for fix in result.fixes)


@pytest.mark.parametrize("kind", (EntryKind.SBB, EntryKind.LFB),
                         ids=lambda k: k.value)
def test_mds_gadgets_repair_by_retag_only(repairs, kind):
    # Bound-to-commit leaks have no window to cut and no index to mask.
    assert [fix.kind for fix in repairs[kind].fixes] == [FixKind.RETAG]


def test_pht_residual_takes_the_cheapest_fix(repairs):
    # RETAG costs zero instructions and suffices for the same-key shape.
    assert repairs[EntryKind.PHT].fixes[0].kind is FixKind.RETAG
    assert repairs[EntryKind.PHT].fixes[0].inserted == ()


def test_barrier_fix_inserts_an_instruction(repairs):
    result = repairs[EntryKind.BTB]
    barrier_fixes = [f for f in result.fixes if f.kind is FixKind.BARRIER]
    assert barrier_fixes and all(f.inserted for f in barrier_fixes)
    assert (len(result.repaired.instructions)
            > len(result.original.instructions))


def test_repaired_pht_witness_no_longer_leaks_dynamically(residuals, repairs):
    witness = residuals[EntryKind.PHT]
    before = run_attack_program(witness.attack, DefenseKind.SPECASAN)
    assert before.leaked                    # the counterexample is real
    repaired = replace(witness.attack,
                       builder_program=repairs[EntryKind.PHT].repaired)
    after = run_attack_program(repaired, DefenseKind.SPECASAN)
    assert not after.leaked                 # and the repair kills it


def test_sanitized_witness_needs_no_fix():
    witness = synthesize(EntryKind.PHT, residual=False)
    assert variant_name(EntryKind.PHT, False) == witness.variant
    result = plan(witness.attack.builder_program,
                  secret_ranges_of(witness.attack))
    assert result.fixes == [] and result.verified
    assert result.repaired is witness.attack.builder_program


def test_mds_without_tag_checks_has_no_sufficient_fix(residuals):
    witness = residuals[EntryKind.SBB]
    with pytest.raises(AnalysisError, match="no sufficient fix"):
        plan(witness.attack.builder_program,
             secret_ranges_of(witness.attack), defense=DefenseKind.FENCE)


def test_handwritten_same_key_v1_repairs_by_retag():
    result = plan(assemble(V1_SAME_KEY), SECRET)
    assert result.verified
    assert [fix.kind for fix in result.fixes] == [FixKind.RETAG]
    assert "retag sec" in result.fixes[0].detail
    # The secret granule moved to a fresh lock, so the same-key OOB access
    # became a cross-allocation mismatch; the array stays where it was.
    arr = next(s for s in result.repaired.data_segments if s.name == "arr")
    sec = next(s for s in result.repaired.data_segments if s.name == "sec")
    assert sec.tag != 5 and arr.tag == 5


def test_render_names_fix_and_verdict(repairs):
    text = repairs[EntryKind.PHT].render()
    assert "[retag]" in text and "all gadgets sanitized" in text


def test_fix_order_is_cheapest_first():
    assert FIX_ORDER == (FixKind.RETAG, FixKind.MASK, FixKind.BARRIER)


def test_gadget_id_roundtrips_through_identity():
    gid = GadgetId("pht", 0x1000, 0x1010)
    assert gid == GadgetId("pht", 0x1000, 0x1010)
    assert gid != GadgetId("btb", 0x1000, 0x1010)


class TestOverhead:
    def test_registry_shape_and_values(self):
        registry = overhead_registry(
            "pht-same-key", 1000,
            [("retag @ 0x1000", 1000), ("barrier @ 0x1010", 1250)])
        get = lambda name: registry.get(name).value  # noqa: E731
        assert get("repair.pht-same-key.baseline_cycles") == 1000
        assert get("repair.pht-same-key.fix1.delta_cycles") == 0
        assert get("repair.pht-same-key.fix2.delta_cycles") == 250
        assert get("repair.pht-same-key.fix2.overhead") == pytest.approx(0.25)
        assert get("repair.pht-same-key.repaired_cycles") == 1250
        assert get("repair.pht-same-key.overhead") == pytest.approx(0.25)

    def test_no_fixes_means_no_repaired_cycles(self):
        registry = overhead_registry("clean", 500, [])
        assert "repair.clean.baseline_cycles" in registry
        assert "repair.clean.repaired_cycles" not in registry

    def test_measure_overhead_runs_every_stage(self, repairs):
        result = repairs[EntryKind.PHT]
        registry = measure_overhead(result, subject="pht/same-key")
        assert registry.get("repair.pht-same-key.baseline_cycles").value > 0
        for index in range(1, len(result.fixes) + 1):
            assert f"repair.pht-same-key.fix{index}.cycles" in registry
        table = registry.render("repair overhead")
        assert "baseline_cycles" in table

    def test_run_cycles_counts_under_defense(self, residuals):
        cycles = repair._run_cycles(
            residuals[EntryKind.PHT].attack.builder_program,
            DefenseKind.SPECASAN)
        assert cycles > 0
