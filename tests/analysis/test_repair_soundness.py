"""Repair soundness, property-style over generated SPEC/PARSEC workloads.

For any generated program and a synthetic secret placed on its heap, the
repair pass must (a) converge to a statically verified program, (b) touch
only gadgets that actually leaked — never an already-sanitized one — and
(c) preserve well-formedness: the repaired CFG has exactly the problems
the original had (usually none), and no new gadget class appears.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.cfg import build_cfg
from repro.analysis.gadgets import find_gadgets, leaks_under
from repro.analysis.repair import plan
from repro.config import DefenseKind
from repro.workloads import PARSEC_BY_NAME, SPEC_BY_NAME
from repro.workloads.generator import HEAP_BASE, generate

#: A cross-section of profiles (memory-bound, compute-bound, parsec).
PROFILES = ("505.mcf_r", "541.leela_r", "502.gcc_r",
            "blackscholes", "canneal")

#: The synthetic secret: the first heap granule, which the pointer-chase
#: and streaming bodies both reach — realistic "secret on the heap" layout.
SECRET = [(HEAP_BASE, HEAP_BASE + 64)]


def _workload(name, seed, instrumented):
    profile = (SPEC_BY_NAME[name] if name in SPEC_BY_NAME
               else PARSEC_BY_NAME[name].profile)
    return generate(profile, seed=seed, target_instructions=400,
                    mte_instrumented=instrumented).program


@settings(max_examples=8, deadline=None)
@given(st.sampled_from(PROFILES), st.integers(0, 5), st.booleans())
def test_repair_is_sound_on_generated_workloads(name, seed, instrumented):
    program = _workload(name, seed, instrumented)
    problems_before = [p.kind for p in build_cfg(program).check_well_formed()]
    before = find_gadgets(program, SECRET)

    result = plan(program, SECRET)

    # Converged and statically verified under the target defense.
    assert result.verified and result.leaking_after == []
    # Never repairs already-sanitized: every fix targeted a leaking gadget,
    # and there is at most one fix per gadget that leaked.
    assert all(leaks_under(fix.gadget, DefenseKind.SPECASAN)
               for fix in result.fixes)
    assert len(result.fixes) <= len([g for g in before
                                     if leaks_under(g, DefenseKind.SPECASAN)])
    # No new gadgets (per-trial invariant, re-checked end to end).
    assert len(result.gadgets_after) <= len(before)
    # Well-formedness is preserved exactly.
    problems_after = [p.kind
                      for p in build_cfg(result.repaired).check_well_formed()]
    assert problems_after == problems_before


@settings(max_examples=4, deadline=None)
@given(st.integers(0, 7))
def test_clean_program_is_left_alone(seed):
    # Without a secret range nothing can leak; repair must be the identity.
    program = _workload("505.mcf_r", seed, False)
    result = plan(program, ())
    assert result.fixes == [] and result.repaired is program


def test_repair_is_deterministic():
    a = plan(_workload("505.mcf_r", 0, False), SECRET)
    b = plan(_workload("505.mcf_r", 0, False), SECRET)
    assert [f.render() for f in a.fixes] == [f.render() for f in b.fixes]
    assert a.render() == b.render()
