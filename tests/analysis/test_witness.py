"""Witness synthesis: every gadget class gets a self-witnessing program.

Static properties are checked for all twelve (kind, variant) witnesses;
dynamic confirmation runs are bounded to a couple of representative cells
(the full sweep is the CLI's ``--witness`` mode and the extended selftest).
"""

import pytest

from repro.analysis.windows import EntryKind
from repro.analysis.witness import (
    WITNESS_KINDS,
    WitnessCheck,
    confirm,
    render_confirmation,
    secret_ranges_of,
    synthesize,
    synthesize_all,
    variant_name,
    witness_kind,
)
from repro.config import DefenseKind
from repro.errors import AnalysisError
from repro.isa import assemble
from repro.isa.disasm import signature


@pytest.fixture(scope="module")
def witnesses():
    return {(w.kind, w.variant): w for w in synthesize_all()}


def test_all_kinds_and_both_variants_synthesize(witnesses):
    assert len(witnesses) == 2 * len(WITNESS_KINDS)
    for kind in WITNESS_KINDS:
        for residual in (False, True):
            assert (kind, variant_name(kind, residual)) in witnesses


@pytest.mark.parametrize("kind", WITNESS_KINDS, ids=lambda k: k.value)
def test_witness_exhibits_its_own_class(witnesses, kind):
    for residual in (False, True):
        witness = witnesses[(kind, variant_name(kind, residual))]
        assert kind in {g.kind for g in witness.gadgets}
        assert witness.subject == f"{kind.value}/{witness.variant}"


@pytest.mark.parametrize("kind", WITNESS_KINDS, ids=lambda k: k.value)
def test_source_text_is_the_witness(witnesses, kind):
    # The dumped .s file re-assembles to exactly the analyzed program.
    witness = witnesses[(kind, variant_name(kind, True))]
    assert (signature(assemble(witness.source_text))
            == signature(witness.attack.builder_program))


@pytest.mark.parametrize("kind", WITNESS_KINDS, ids=lambda k: k.value)
def test_static_verdicts_split_on_the_variant(witnesses, kind):
    sanitized = witnesses[(kind, variant_name(kind, False))]
    residual = witnesses[(kind, variant_name(kind, True))]
    # Everything leaks on the unsafe baseline ...
    assert sanitized.static_leaks(DefenseKind.NONE)
    assert residual.static_leaks(DefenseKind.NONE)
    # ... SpecASan stops the cross-key variant but misses the residual.
    assert not sanitized.static_leaks(DefenseKind.SPECASAN)
    assert residual.static_leaks(DefenseKind.SPECASAN)


def test_secret_ranges_cover_the_secret(witnesses):
    witness = witnesses[(EntryKind.PHT, "same-key")]
    (lo, hi), = secret_ranges_of(witness.attack)
    assert lo <= witness.attack.secret_address < hi


def test_confirm_residual_pht_leaks_and_agrees(witnesses):
    witness = witnesses[(EntryKind.PHT, "same-key")]
    checks, disagreements = confirm(
        witness, [DefenseKind.NONE, DefenseKind.SPECASAN])
    assert disagreements == []
    assert all(isinstance(c, WitnessCheck) and c.agree for c in checks)
    assert all(c.dynamic_leaked for c in checks)  # residual beats SpecASan


def test_confirm_sanitized_pht_is_blocked(witnesses):
    witness = witnesses[(EntryKind.PHT, "cross-key")]
    checks, disagreements = confirm(witness, [DefenseKind.SPECASAN])
    assert disagreements == []
    assert not checks[0].dynamic_leaked and not checks[0].static_leaks


def test_render_confirmation_mentions_verdicts(witnesses):
    witness = witnesses[(EntryKind.PHT, "same-key")]
    checks, disagreements = confirm(witness, [DefenseKind.NONE])
    text = render_confirmation(witness, checks, disagreements)
    assert "pht/same-key" in text and "[ok]" in text and "[pht]" in text


def test_variant_names_follow_the_kind():
    assert variant_name(EntryKind.PHT, residual=True) == "same-key"
    assert variant_name(EntryKind.PHT, residual=False) == "cross-key"
    assert variant_name(EntryKind.STL, residual=True) == "untagged"
    assert variant_name(EntryKind.STL, residual=False) == "tagged"


def test_witness_kind_parses_and_rejects():
    assert witness_kind("PHT") is EntryKind.PHT
    with pytest.raises(AnalysisError):
        witness_kind("meltdown")


def test_synthesize_is_deterministic():
    a = synthesize(EntryKind.SBB, residual=True)
    b = synthesize(EntryKind.SBB, residual=True)
    assert a.source_text == b.source_text
    assert [g.render() for g in a.gadgets] == [g.render() for g in b.gadgets]
