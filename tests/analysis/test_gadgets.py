"""Gadget classification and per-defense verdicts on hand-built programs."""

from repro.analysis.gadgets import (
    Channel,
    EntryKind,
    Gadget,
    find_gadgets,
    leaks_under,
    program_leaks,
)
from repro.config import DefenseKind
from repro.isa import assemble

SECRET = [(0x4100, 0x4110)]

# A minimal Spectre-v1 shape: cross-allocation (key 2 pointer, lock 5
# secret) bounds-check-bypass feeding a probe-array touch.
V1_SHAPE = """
    .data arr 0x4000 tag=2 bytes 1 1 1 1
    .data sec 0x4100 tag=5 bytes 11
    .data idx 0x6000 words 0x100
    .data probe 0x100000 zero 4096
    .data cell 0x200000 words 4
    MOV X2, #{base:#x}
    MOV X3, #0x100000
    MOV X6, #0x6000
    LDR X0, [X6]
    MOV X15, #0x200000
    LDR X1, [X15]
    CMP X0, X1
    B.HS skip
    LDRB X5, [X2, X0]
    LSL X6, X5, #12
    ADD X7, X3, X6
    LDRB X8, [X7]
skip:
    HALT
"""

CROSS_KEY_BASE = (0x2 << 56) | 0x4000   # pointer key 2, secret lock 5
SAME_KEY_BASE = (0x5 << 56) | 0x4000    # pointer key matches the lock


def _gadgets(source):
    return find_gadgets(assemble(source), SECRET)


def test_v1_shape_yields_sanitized_pht_gadget():
    gadgets = _gadgets(V1_SHAPE.format(base=CROSS_KEY_BASE))
    pht = [g for g in gadgets if g.kind is EntryKind.PHT]
    assert len(pht) == 1
    gadget = pht[0]
    assert gadget.sanitized
    assert Channel.CACHE in gadget.channels
    assert any(key == 2 and lock == 5
               for _, key, lock in gadget.secret_accesses)


def test_same_key_access_is_tiktag_residual():
    gadgets = _gadgets(V1_SHAPE.format(base=SAME_KEY_BASE))
    gadget = next(g for g in gadgets if g.kind is EntryKind.PHT)
    assert not gadget.sanitized
    assert leaks_under(gadget, DefenseKind.SPECASAN)


def test_verdict_table_for_cross_key_pht():
    gadget = next(g for g in _gadgets(V1_SHAPE.format(base=CROSS_KEY_BASE))
                  if g.kind is EntryKind.PHT)
    assert leaks_under(gadget, DefenseKind.NONE)
    assert not leaks_under(gadget, DefenseKind.FENCE)
    assert not leaks_under(gadget, DefenseKind.STT)
    assert not leaks_under(gadget, DefenseKind.GHOSTMINION)
    assert leaks_under(gadget, DefenseKind.SPECCFI)     # PHT: CFI can't help
    assert not leaks_under(gadget, DefenseKind.SPECASAN)
    assert not leaks_under(gadget, DefenseKind.SPECASAN_CFI)


def test_contention_transmitter_survives_stt():
    source = """
        .data sec 0x4100 tag=5 bytes 11
        .data cell 0x200000 words 4
        MOV X15, #0x200000
        LDR X1, [X15]
        MOV X9, #{base:#x}
        CBNZ X1, skip
        LDRB X5, [X9]
        MUL X6, X5, X5
    skip:
        HALT
    """.format(base=(0x5 << 56) | 0x4100)
    gadgets = find_gadgets(assemble(source), SECRET)
    gadget = next(g for g in gadgets if Channel.CONTENTION in g.channels)
    assert leaks_under(gadget, DefenseKind.STT)
    assert leaks_under(gadget, DefenseKind.GHOSTMINION)
    # Same-key access: the residual also survives SpecASan.
    assert leaks_under(gadget, DefenseKind.SPECASAN)


def test_sbb_pattern_fallout_shape():
    # Secret store at page offset 0x40, aliased load at a different granule
    # with the same page offset, then a transmit of the sampled value.
    source = """
        .data sec 0x4100 tag=5 bytes 11
        .data win 0x8000 zero 4096
        .data probe 0x100000 zero 65536
        MOV X1, #{sec:#x}
        LDRB X0, [X1]
        MOV X2, #{store:#x}
        STRB X0, [X2]
        MOV X3, #0x9040
        LDRB X4, [X3]
        LSL X5, X4, #12
        MOV X6, #0x100000
        ADD X7, X6, X5
        LDRB X8, [X7]
        HALT
    """.format(sec=(0x5 << 56) | 0x4100, store=(0x5 << 56) | 0x8040)
    gadgets = find_gadgets(assemble(source), SECRET)
    sbb = [g for g in gadgets if g.kind is EntryKind.SBB]
    assert len(sbb) == 1
    gadget = sbb[0]
    assert gadget.sanitized       # load key 0 != store key 5
    assert leaks_under(gadget, DefenseKind.STT)          # bound to commit
    assert leaks_under(gadget, DefenseKind.FENCE)
    assert not leaks_under(gadget, DefenseKind.SPECASAN)


def test_lfb_pattern_needs_line_crossing():
    # The sampler load straddles a 64-byte line (0x903c + 8 > 0x9040).
    source = """
        .data sec 0x4100 tag=5 bytes 11
        .data win 0x9000 zero 4096
        .data probe 0x100000 zero 65536
        MOV X1, #{sec:#x}
        LDRB X0, [X1]
        MOV X3, #0x903c
        LDR X4, [X3]
        LSL X5, X4, #12
        MOV X6, #0x100000
        ADD X7, X6, X5
        LDRB X8, [X7]
        HALT
    """.format(sec=(0x5 << 56) | 0x4100)
    gadgets = find_gadgets(assemble(source), SECRET)
    lfb = [g for g in gadgets if g.kind is EntryKind.LFB]
    assert len(lfb) == 1 and lfb[0].sanitized
    # Aligned sampler: no assist, no LFB gadget.
    aligned = source.replace("#0x903c", "#0x9040")
    assert [g for g in find_gadgets(assemble(aligned), SECRET)
            if g.kind is EntryKind.LFB] == []


def test_program_leaks_folds_any_gadget():
    cross = next(g for g in _gadgets(V1_SHAPE.format(base=CROSS_KEY_BASE))
                 if g.kind is EntryKind.PHT)
    same = next(g for g in _gadgets(V1_SHAPE.format(base=SAME_KEY_BASE))
                if g.kind is EntryKind.PHT)
    assert not program_leaks([cross], DefenseKind.SPECASAN)
    assert program_leaks([cross, same], DefenseKind.SPECASAN)


def test_render_mentions_kind_and_verdict():
    gadget = next(g for g in _gadgets(V1_SHAPE.format(base=CROSS_KEY_BASE))
                  if g.kind is EntryKind.PHT)
    text = gadget.render()
    assert "[pht]" in text and "sanitized" in text


def test_benign_program_has_no_gadgets():
    source = """
        MOV X0, #1
        ADD X1, X0, #2
        CMP X1, #4
        B.LO done
        MOV X2, #1
    done:
        HALT
    """
    assert find_gadgets(assemble(source), SECRET) == []
