"""Speculation windows: kinds, entries, ROB bounding, barrier cuts."""

from repro.analysis.taint import analyze
from repro.analysis.windows import EntryKind, compute_windows
from repro.config import CoreConfig
from repro.isa import assemble


def _windows(source, **kwargs):
    return compute_windows(analyze(assemble(source)), **kwargs)


DELAYED_BRANCH = """
    .data cell 0x4000 words 1
    MOV X1, #0x4000
    LDR X0, [X1]
    CMP X0, #4
    B.LO taken
    MOV X2, #1
    HALT
taken:
    MOV X3, #1
    HALT
"""


def test_delayed_conditional_opens_pht_windows_both_ways():
    windows = _windows(DELAYED_BRANCH)
    pht = [w for w in windows if w.kind is EntryKind.PHT]
    assert {w.entry for w in pht} == {0x1010, 0x1018}
    assert all(w.source == 0x100C for w in pht)


def test_non_delayed_conditional_opens_no_window():
    windows = _windows("""
        CMP X0, #4
        B.LO done
        MOV X1, #1
    done:
        HALT
    """)
    assert windows == []


def test_window_bounded_by_rob_size():
    body = "\n".join("ADD X2, X2, #1" for _ in range(100))
    windows = _windows(f"""
        .data cell 0x4000 words 1
        MOV X1, #0x4000
        LDR X0, [X1]
        CBNZ X0, skip
        {body}
    skip:
        HALT
    """, core=CoreConfig(rob_entries=24))
    fall = next(w for w in windows if w.entry == 0x100C)
    assert len(fall.body) == 24


def test_sb_barrier_cuts_window():
    windows = _windows("""
        .data cell 0x4000 words 1
        MOV X1, #0x4000
        LDR X0, [X1]
        CBNZ X0, skip
        MOV X2, #1
        SB
        MOV X3, #1
    skip:
        HALT
    """)
    fall = next(w for w in windows if w.entry == 0x100C)
    assert fall.barrier_cut
    assert 0x1014 not in fall.body  # past the barrier


def test_indirect_branch_uses_resolved_target():
    windows = _windows("""
        MOV X9, #0x100c
        BR X9
        HALT
    target:
        BTI
        HALT
    """)
    btb = [w for w in windows if w.kind is EntryKind.BTB]
    assert len(btb) == 1 and btb[0].entry == 0x100C
    assert btb[0].entry_is_bti


def test_unresolved_indirect_falls_back_to_address_taken():
    windows = _windows("""
        .data fns 0x4000 words 0x1010 0x1014
        .data cell 0x5000 words 0
        MOV X1, #0x5000
        LDR X9, [X1]
        BR X9
        HALT
    a:
        HALT
    b:
        HALT
    """)
    btb = {w.entry for w in windows if w.kind is EntryKind.BTB}
    assert btb == {0x1010, 0x1014}


def test_ret_opens_rsb_window_per_return_site():
    windows = _windows("""
        BL fn
        MOV X1, #1
        BL fn
        MOV X2, #2
        HALT
    fn:
        RET
    """)
    rsb = [w for w in windows if w.kind is EntryKind.RSB]
    assert {w.entry for w in rsb} == {0x1004, 0x100C}


def test_delayed_store_address_opens_stl_window():
    windows = _windows("""
        .data ptr 0x4000 words 0x5000
        MOV X1, #0x4000
        LDR X2, [X1]
        STR X0, [X2]
        LDR X3, [X1]
        HALT
    """)
    stl = [w for w in windows if w.kind is EntryKind.STL]
    assert len(stl) == 1
    assert stl[0].source == 0x1008 and stl[0].entry == 0x100C


def test_const_address_store_opens_no_stl_window():
    windows = _windows("""
        MOV X1, #0x4000
        STR X0, [X1]
        HALT
    """)
    assert [w for w in windows if w.kind is EntryKind.STL] == []


def test_window_walk_stops_at_nested_indirect():
    windows = _windows(DELAYED_BRANCH + "\n")
    for w in windows:
        assert all(a not in w.body for a in ())  # smoke: bodies valid
        for addr in w.body:
            assert addr >= 0x1000
