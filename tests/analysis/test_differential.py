"""Differential harness: static matrix vs EXPECTED and vs the simulator."""

import pytest

from repro.analysis.differential import (
    ALLOWLIST,
    Mismatch,
    StaticCell,
    compare_matrices,
    compare_to_expected,
    confirm_mismatches,
    render_differential,
    render_report,
    render_static,
    static_matrix,
    unexpected,
)
from repro.attacks import TABLE1_ROWS
from repro.attacks.matrix import Mitigation, evaluate_matrix
from repro.config import DefenseKind


@pytest.fixture(scope="module")
def full_static():
    return static_matrix()


def test_static_matrix_reproduces_expected_table(full_static):
    assert compare_to_expected(full_static) == []


def test_none_baseline_all_leak(full_static):
    for attack in TABLE1_ROWS:
        cell = full_static[attack][DefenseKind.NONE]
        assert cell.mitigation is Mitigation.NONE, attack


def test_allowlist_is_empty():
    # Every cell currently agrees; if a future change needs an exception it
    # must come with a documented reason here.
    assert ALLOWLIST == {}


def test_compare_matrices_flags_disagreement(full_static):
    dynamic = evaluate_matrix(["spectre-v1"])
    mismatches = compare_matrices(
        {"spectre-v1": full_static["spectre-v1"]}, dynamic)
    assert unexpected(mismatches) == []


def test_compare_matrices_detects_injected_mismatch(full_static):
    dynamic = evaluate_matrix(["spectre-v1"])
    forged = {"spectre-v1": dict(full_static["spectre-v1"])}
    forged["spectre-v1"][DefenseKind.SPECASAN] = StaticCell(
        "spectre-v1", DefenseKind.SPECASAN, Mitigation.NONE, [True])
    mismatches = compare_matrices(forged, dynamic)
    assert len(unexpected(mismatches)) == 1
    assert mismatches[0].attack == "spectre-v1"


def test_allowlisted_mismatch_is_not_unexpected():
    mismatch = Mismatch("a", DefenseKind.STT, Mitigation.FULL,
                        Mitigation.NONE, allowlisted="known precision loss")
    assert unexpected([mismatch]) == []
    assert "allowlisted" in str(mismatch)


def test_confirm_mismatches_decomposes_per_variant():
    # A table-level disagreement is re-executed variant by variant; since
    # every spectre-v1 variant's own static verdict matches the simulator,
    # the (forged) classification mismatch dissolves — no silent pass, no
    # false alarm.
    forged = Mismatch("spectre-v1", DefenseKind.SPECASAN,
                      Mitigation.NONE, Mitigation.FULL)
    assert confirm_mismatches([forged]) == []


def test_confirm_mismatches_records_are_structured():
    from repro.analysis.witness import WitnessDisagreement
    records = confirm_mismatches(
        [Mismatch("fallout", DefenseKind.NONE,
                  Mitigation.FULL, Mitigation.NONE)])
    assert all(isinstance(r, WitnessDisagreement) for r in records)
    # The NONE-baseline cells genuinely agree per variant, so re-execution
    # confirms agreement here too.
    assert records == []


def test_render_report_names_addresses():
    text = render_report(["spectre-v1"])
    assert "spectre-v1/classic" in text
    assert "0x" in text and "[pht]" in text


def test_render_static_has_table_shape(full_static):
    text = render_static(full_static)
    assert "specasan" in text
    for attack in TABLE1_ROWS:
        assert attack in text


def test_render_differential_reports_agreement(full_static):
    dynamic = evaluate_matrix(["spectre-v1"])
    static = {"spectre-v1": full_static["spectre-v1"]}
    mismatches = compare_matrices(static, dynamic)
    text = render_differential(static, dynamic, mismatches)
    assert "agree" in text


def test_cli_selftest_components(full_static):
    # The __main__ plumbing, without the slow live matrix.
    from repro.analysis.__main__ import main
    assert main(["--report", "--attack", "spectre-v1"]) == 0


def test_cli_differential_single_attack():
    from repro.analysis.__main__ import main
    assert main(["--differential", "--attack", "fallout"]) == 0


def test_cli_differential_confirm_mode():
    from repro.analysis.__main__ import main
    assert main(["--differential", "--attack", "spectre-v1",
                 "--confirm"]) == 0


def test_cli_witness_single_kind(capsys):
    from repro.analysis.__main__ import main
    assert main(["--witness", "--kind", "pht"]) == 0
    out = capsys.readouterr().out
    assert "pht/cross-key" in out and "pht/same-key" in out


def test_cli_repair_emits_table_and_repaired_source(tmp_path, capsys):
    from repro.analysis.__main__ import main
    assert main(["--repair", "pht", "--emit", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "baseline_cycles" in out and "repair: PASS" in out
    emitted = list(tmp_path.glob("*.s"))
    assert emitted  # the repaired witness landed on disk as assemblable .s
    from repro.isa import assemble
    assemble(emitted[0].read_text())
