"""Property tests: call-graph well-formedness and modular/whole-program parity.

Generative coverage over the same program spaces the repo already owns:
SPEC/PARSEC workload generation (realistic call-heavy programs) and the
fuzzer's candidate spec space (adversarial gadget compositions).  Three
invariants:

- every direct ``BL`` in the text owns a call edge in the call graph;
- the SCC condensation is acyclic in bottom-up order;
- summary-backed ``find_gadgets`` is byte-identical to whole-program.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.analysis.gadgets import find_gadgets  # noqa: E402
from repro.analysis.modular import (  # noqa: E402
    SummaryCache,
    build_callgraph,
    modular_analysis,
)
from repro.analysis.options import AnalysisOptions  # noqa: E402
from repro.fuzz.generator import (  # noqa: E402
    build,
    CandidateSpec,
    normalize,
    SectionSpec,
    SINGLETONS,
    SPLICEABLE,
)
from repro.isa.instructions import Opcode  # noqa: E402
from repro.workloads import PARSEC_BY_NAME, SPEC_BY_NAME  # noqa: E402
from repro.workloads.generator import generate  # noqa: E402

WORKLOADS = st.tuples(
    st.sampled_from(sorted(SPEC_BY_NAME) + sorted(PARSEC_BY_NAME)),
    st.integers(min_value=0, max_value=3))

FUZZ_SPECS = st.sampled_from(SPLICEABLE + SINGLETONS).flatmap(
    lambda template: st.builds(
        lambda **kw: CandidateSpec(sections=(
            normalize(SectionSpec(template=template, **kw)),)),
        residual=st.booleans(),
        barrier=st.booleans()))


def _check_callgraph(program):
    callgraph = build_callgraph(program)
    # 1. Every BL has a call edge from its containing function.
    for instr in program.instructions:
        if instr.op is Opcode.BL:
            function = callgraph.function_at(instr.address)
            assert function is not None
            assert instr.address in {site for site, _ in
                                     function.call_sites}
            callee = callgraph.function_at(instr.target_addr)
            assert callee is not None
            assert callee.entry in callgraph.edges[function.entry]
    # 2. The condensation is acyclic: callee components strictly precede
    #    caller components in the bottom-up order.
    position = {}
    for index, component in enumerate(callgraph.sccs):
        for entry in component:
            position[callgraph.component_of[entry]] = index
    for entry, callees in callgraph.edges.items():
        for callee in callees:
            a = callgraph.component_of[entry]
            b = callgraph.component_of[callee]
            if a != b:
                assert position[b] < position[a]


def _check_parity(program, secret_ranges):
    options = AnalysisOptions.summary_backed(cache=SummaryCache())
    run = modular_analysis(program, secret_ranges, options=options)
    modular = [g.render() for g in
               find_gadgets(program, secret_ranges, taint=run.result,
                            options=options)]
    whole = [g.render() for g in find_gadgets(program, secret_ranges)]
    assert modular == whole


@settings(max_examples=10, deadline=None, derandomize=True)
@given(workload=WORKLOADS)
def test_workload_callgraph_well_formed_and_parity(workload):
    name, seed = workload
    profile = (SPEC_BY_NAME[name] if name in SPEC_BY_NAME
               else PARSEC_BY_NAME[name].profile)
    generated = generate(profile, seed=seed, target_instructions=200)
    _check_callgraph(generated.program)
    # Workload programs carry no planted secret; parity must hold anyway.
    _check_parity(generated.program, [])


@settings(max_examples=20, deadline=None, derandomize=True)
@given(spec=FUZZ_SPECS)
def test_fuzz_candidate_callgraph_well_formed_and_parity(spec):
    candidate = build(spec)
    program = candidate.attack.builder_program
    _check_callgraph(program)
    _check_parity(program, list(candidate.secret_ranges))
