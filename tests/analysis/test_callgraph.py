"""Call-graph construction: partition, edges, SCC condensation."""

from repro.analysis.cfg import build_cfg
from repro.analysis.modular import build_callgraph, entry_addresses
from repro.analysis.modular.callgraph import _tarjan
from repro.isa import assemble


def _graph(source):
    program = assemble(source)
    return program, build_callgraph(program)


def test_bl_targets_partition_into_functions():
    program, cg = _graph("""
        BL helper
        HALT
    helper:
        MOV X0, #1
        RET
    """)
    names = {fn.name for fn in cg.functions.values()}
    assert names == {"helper", f"fn_{program.entry_address:#x}"}
    helper = cg.function_named("helper")
    assert helper.entry == program.address_of("helper")
    assert helper.has_ret


def test_every_bl_has_a_call_edge():
    program, cg = _graph("""
        BL one
        BL two
        HALT
    one:
        RET
    two:
        BL one
        RET
    """)
    main = cg.function_at(program.entry_address)
    one = program.address_of("one")
    two = program.address_of("two")
    assert set(cg.edges[main.entry]) == {one, two}
    assert set(cg.edges[two]) == {one}
    # The reverse graph mirrors it exactly.
    reverse = cg.reverse_edges()
    assert main.entry in reverse[one] and two in reverse[one]


def test_transitive_callers_walks_up_the_reverse_graph():
    program, cg = _graph("""
        BL mid
        HALT
    mid:
        BL leaf
        RET
    leaf:
        RET
    """)
    leaf = program.address_of("leaf")
    callers = cg.transitive_callers([leaf])
    assert callers == {leaf, program.address_of("mid"), program.entry_address}


def test_mutual_recursion_is_one_scc():
    program, cg = _graph("""
        BL f
        HALT
    f:
        BL g
        RET
    g:
        BL f
        RET
    """)
    f = program.address_of("f")
    g = program.address_of("g")
    assert cg.component_of[f] == cg.component_of[g]
    recursive = cg.recursive_components()
    assert any(set(c) == {f, g} for c in recursive)
    # main sits in its own trivial component.
    assert cg.component_of[program.entry_address] != cg.component_of[f]


def test_scc_condensation_is_acyclic():
    program, cg = _graph("""
        BL f
        HALT
    f:
        BL g
        RET
    g:
        BL f
        BL leaf
        RET
    leaf:
        RET
    """)
    seen = set()
    for component in cg.sccs:
        for entry in component:
            for callee in cg.edges.get(entry, ()):
                target = cg.component_of[callee]
                if target != cg.component_of[entry]:
                    # Callee components come earlier (bottom-up order).
                    assert target in seen
        seen.add(cg.component_of[component[0]])


def test_entry_addresses_cover_entry_bl_and_address_taken():
    program = assemble("""
        .data fns 0x4000 words 0x100c
        BL callee
        HALT
    callee:
        RET
    fnptr:
        HALT
    """)
    entries = entry_addresses(program, build_cfg(program))
    assert program.entry_address in entries
    assert program.address_of("callee") in entries
    assert program.address_of("fnptr") in entries   # address-taken


def test_shared_tail_merges_entries_conservatively():
    # Both entries fall into the same tail region: one function, two
    # declared entries, so the partition stays a partition.
    program, cg = _graph("""
        BL a
        BL b
        HALT
    a:
        MOV X0, #1
        B tail
    b:
        MOV X0, #2
    tail:
        RET
    """)
    a = program.address_of("a")
    b = program.address_of("b")
    assert cg.function_at(a) is cg.function_at(b)
    assert set(cg.function_at(a).entries) == {a, b}


def test_tarjan_handles_self_loop_and_chain():
    sccs = _tarjan([1, 2, 3], {1: [2], 2: [2, 3], 3: []})
    assert [list(c) for c in sccs] == [[3], [2], [1]]
