"""CFG construction: blocks, edges, address-taken targets, well-formedness."""

import pytest

from repro.analysis.cfg import address_taken, build_cfg, successors
from repro.isa import assemble


def test_straight_line_is_one_block():
    program = assemble("MOV X0, #1\nADD X0, X0, #1\nHALT")
    cfg = build_cfg(program)
    assert len(cfg.blocks) == 1
    assert [i.op.value for i in cfg.blocks[0].instructions] == [
        "MOV", "ADD", "HALT"]


def test_conditional_branch_splits_blocks_and_edges():
    program = assemble("""
        CMP X0, #4
        B.LO low
        MOV X1, #1
    low:
        HALT
    """)
    cfg = build_cfg(program)
    assert len(cfg.blocks) == 3
    entry = cfg.entry_block
    kinds = sorted(kind for _, kind in entry.successors)
    assert kinds == ["fall", "taken"]
    low = cfg.block_at(program.address_of("low"))
    assert len(low.predecessors) == 2


def test_loop_back_edge():
    program = assemble("""
    loop:
        SUB X0, X0, #1
        CBNZ X0, loop
        HALT
    """)
    cfg = build_cfg(program)
    head = cfg.block_at(program.address_of("loop"))
    assert (head.index, "taken") in head.successors


def test_call_edge_and_fall_through_return_site():
    program = assemble("""
        BL fn
        HALT
    fn:
        RET
    """)
    cfg = build_cfg(program)
    entry = cfg.entry_block
    kinds = {kind for _, kind in entry.successors}
    assert kinds == {"call", "fall"}
    ret_block = cfg.block_at(program.address_of("fn"))
    assert ret_block.successors == []  # RET: no static successors


def test_address_taken_from_immediate_and_data_words():
    program = assemble("""
        .data tbl 0x4000 words 0x1008
        MOV X9, #0x100c
        BR X9
        NOP
        HALT
    """)
    taken = address_taken(program)
    assert 0x1008 in taken          # via the data word
    assert 0x100C in taken          # via the MOV immediate
    assert 0x4000 not in taken      # data addresses are not text


def test_address_taken_strips_mte_key():
    tagged = (0x3 << 56) | 0x1004
    program = assemble(f"""
        .data tbl 0x4000 words {tagged:#x}
        NOP
        NOP
        HALT
    """)
    assert 0x1004 in address_taken(program)


def test_indirect_edges_follow_address_taken():
    program = assemble("""
        MOV X9, #0x100c
        BR X9
        HALT
    target:
        HALT
    """)
    cfg = build_cfg(program)
    br_block = cfg.block_at(0x1004)
    assert (cfg.block_of_addr[0x100C], "indirect") in br_block.successors


def test_unreachable_block_reported():
    program = assemble("""
        B out
        MOV X1, #1
        HALT
    out:
        HALT
    """)
    problems = build_cfg(program).check_well_formed()
    assert any(p.kind == "unreachable-block" for p in problems)


def test_address_taken_block_counts_as_reachable():
    # fn is never called, but its address escapes into a table.
    program = assemble("""
        .data fns 0x4000 words 0x1008
        HALT
        NOP
    fn:
        RET
    """)
    problems = build_cfg(program).check_well_formed()
    reported = {p.address for p in problems
                if p.kind == "unreachable-block"}
    assert program.address_of("fn") not in reported


def test_fall_off_end_reported():
    program = assemble("MOV X0, #1\nADD X0, X0, #1")
    problems = build_cfg(program).check_well_formed()
    assert any(p.kind == "fall-off-end" for p in problems)


def test_well_formed_program_has_no_problems():
    program = assemble("""
        CMP X0, #1
        B.LO done
        MOV X1, #2
    done:
        HALT
    """)
    assert build_cfg(program).check_well_formed() == []


def test_successors_of_halt_and_ret_are_empty():
    program = assemble("HALT")
    assert successors(program, program.instructions[0]) == []


def test_empty_program_rejected():
    from repro.isa.program import Program
    with pytest.raises(ValueError):
        build_cfg(Program())


# ----------------------------------------------------------------------
# per-branch indirect-edge pruning (refined CFGs)
# ----------------------------------------------------------------------

TWO_TABLES = """
    .data table_a 0x4000 words 0x100c
    .data table_b 0x4008 words 0x1018
    MOV X1, #0x4000
    LDR X9, [X1]
    BR X9
fn_a:
    MOV X2, #0x4008
    LDR X10, [X2]
    BR X10
fn_b:
    HALT
"""


def test_unrefined_two_table_branches_cross_link():
    # Baseline over-approximation: both BRs reach both tables' targets.
    program = assemble(TWO_TABLES)
    cfg = build_cfg(program)
    fn_a = cfg.block_of_addr[program.address_of("fn_a")]
    fn_b = cfg.block_of_addr[program.address_of("fn_b")]
    for br_addr in (0x1008, 0x1014):
        succs = cfg.block_at(br_addr).successors
        assert (fn_a, "indirect") in succs
        assert (fn_b, "indirect") in succs


def test_refined_two_table_branches_do_not_cross_link():
    from repro.analysis.modular import refine_cfg

    program = assemble(TWO_TABLES)
    cfg = refine_cfg(program)
    fn_a = cfg.block_of_addr[program.address_of("fn_a")]
    fn_b = cfg.block_of_addr[program.address_of("fn_b")]
    first = cfg.block_at(0x1008).successors
    second = cfg.block_at(0x1014).successors
    assert (fn_a, "indirect") in first
    assert (fn_b, "indirect") not in first
    assert (fn_b, "indirect") in second
    assert (fn_a, "indirect") not in second


def test_unresolvable_branch_falls_back_to_over_approximation():
    from repro.analysis.modular import refine_cfg

    # X9 is never defined: its constant set is unbounded, so the refined
    # CFG must keep the full address-taken set for this branch.
    program = assemble("""
        .data fns 0x4000 words 0x1008 0x100c
        BR X9
        HALT
    fn_a:
        HALT
    fn_b:
        HALT
    """)
    cfg = refine_cfg(program)
    succs = cfg.block_at(0x1000).successors
    fn_a = cfg.block_of_addr[program.address_of("fn_a")]
    fn_b = cfg.block_of_addr[program.address_of("fn_b")]
    assert (fn_a, "indirect") in succs
    assert (fn_b, "indirect") in succs
