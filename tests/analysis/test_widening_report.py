"""Widening events: the bounded-iteration cutoff must be visible, not silent."""

from repro.analysis.__main__ import main
from repro.analysis.taint import analyze
from repro.isa import assemble

#: Mutually-recursive accumulation: X1's constant set grows without bound,
#: so the fixpoint only converges by collapsing it past CONST_CAP.
RECURSIVE = """
    MOV X1, #0
    BL f
    HALT
f:
    ADD X1, X1, #1
    BL g
    RET
g:
    ADD X1, X1, #3
    BL f
    RET
"""


def test_recursive_witness_records_widening_events():
    result = analyze(assemble(RECURSIVE))
    assert result.widenings, "the collapse to unknown must be recorded"
    total = sum(result.widenings.values())
    assert total >= 1
    regs = {reg for (_start, reg) in result.widenings}
    assert 1 in regs                    # X1 is the register that widened
    # Every event names a real block start.
    cfg_starts = {b.start for b in result.cfg.blocks}
    assert all(start in cfg_starts for (start, _reg) in result.widenings)


def test_bounded_join_does_not_widen():
    # Two constants meeting at a join stay well under CONST_CAP.
    source = """
        CMP X0, #1
        B.LO low
        MOV X1, #2
        B done
    low:
        MOV X1, #5
    done:
        HALT
    """
    assert analyze(assemble(source)).widenings == {}


def test_report_cli_surfaces_widenings_with_function_names(
        tmp_path, capsys):
    path = tmp_path / "recursive.s"
    path.write_text(RECURSIVE, encoding="utf-8")
    assert main(["--report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "widening:" in out
    assert "constant-set collapse" in out
    assert "affected function(s):" in out
    # The collapse points land inside the recursion, named by label.
    affected = [line for line in out.splitlines()
                           if "affected function(s):" in line][0]
    names = {n.strip() for n in affected.split(":")[1].split(",")}
    assert names and names <= {"f", "g"}


def test_report_cli_is_silent_without_widenings(tmp_path, capsys):
    path = tmp_path / "straight.s"
    path.write_text("MOV X0, #1\nHALT\n", encoding="utf-8")
    assert main(["--report", str(path)]) == 0
    assert "widening" not in capsys.readouterr().out
