"""Taint/constant dataflow: values, loads, secrets, delayed branches."""

from repro.analysis.taint import Value, analyze, const_value
from repro.isa import assemble

SECRET = [(0x4100, 0x4110)]


def test_value_join_bounds_constants():
    a = const_value(*range(10))
    b = const_value(*range(8, 20))
    assert a.join(b).consts is None  # 20 members > CONST_CAP
    assert a.join(const_value(3)).consts == a.consts


def test_constants_fold_through_alu():
    program = assemble("""
        MOV X0, #6
        ADD X1, X0, #4
        LSL X2, X1, #2
        HALT
    """)
    result = analyze(program)
    # No loads/branches, but the state is observable via a store fact.
    program2 = assemble("""
        MOV X0, #6
        ADD X1, X0, #4
        LSL X2, X1, #2
        STR X2, [X1]
        HALT
    """)
    result = analyze(program2)
    store = result.stores[0x100C]
    assert store.data.consts == (40,)
    assert store.pointers == (10,)


def test_load_resolves_initial_data_exactly():
    program = assemble("""
        .data tbl 0x4000 words 7 9
        MOV X1, #0x4000
        LDR X0, [X1, #8]
        STR X0, [X1]
        HALT
    """)
    result = analyze(program)
    load = result.loads[0x1004]
    assert load.resolved and load.result.consts == (9,)
    assert load.result.attacker and load.result.loaded


def test_unknown_offset_load_summarizes_segment():
    program = assemble("""
        .data tbl 0x4000 words 1 2 3
        MOV X1, #0x4000
        LDR X9, [X2]
        LDR X0, [X1, X9]
        HALT
    """)
    result = analyze(program)
    load = result.loads[0x1008]
    assert not load.resolved
    assert load.result.consts == (1, 2, 3)


def test_transient_out_of_segment_offset_still_summarizes():
    # A loop counter sweeps past the table end mid-fixpoint; the final
    # result must still be the segment summary, not bottomed-out unknown.
    program = assemble("""
        .data tbl 0x4000 words 5 6 7 8
        MOV X1, #0x4000
        MOV X2, #0
    loop:
        LSL X3, X2, #3
        LDR X0, [X1, X3]
        ADD X2, X2, #1
        CMP X2, #4
        B.LO loop
        STR X0, [X1]
        HALT
    """)
    result = analyze(program)
    store = result.stores[0x101C]
    assert store.data.consts == (5, 6, 7, 8)


def test_secret_range_load_sets_secret_and_access():
    tagged = (0x2 << 56) | 0x4100
    program = assemble(f"""
        .data arr 0x4100 tag=5 bytes 11 0 0 0 0 0 0 0
        MOV X1, #{tagged:#x}
        LDRB X0, [X1]
        HALT
    """)
    result = analyze(program, SECRET)
    load = result.loads[0x1004]
    assert load.result.secret
    assert load.secret_accesses == ((tagged, 0x2, 5),)


def test_secret_taint_propagates_to_dependent_address():
    program = assemble("""
        .data sec 0x4100 tag=5 bytes 11
        MOV X1, #0x4100
        LDRB X0, [X1]
        LSL X6, X0, #12
        ADD X7, X1, X6
        LDRB X8, [X7]
        HALT
    """)
    result = analyze(program, SECRET)
    assert result.loads[0x1010].address.secret


def test_absorbing_zero_drops_taint():
    program = assemble("""
        .data sec 0x4100 tag=5 bytes 11
        MOV X1, #0x4100
        LDRB X0, [X1]
        AND X2, X0, XZR
        STR X2, [X1]
        HALT
    """)
    result = analyze(program, SECRET)
    store = result.stores[0x100C]
    assert store.data.consts == (0,)
    assert not store.data.secret and not store.data.loaded


def test_delayed_branch_detection():
    program = assemble("""
        .data cell 0x4000 words 1
        MOV X1, #0x4000
        LDR X0, [X1]
        CMP X0, #4
        B.LO somewhere
    somewhere:
        CMP X1, #4
        B.LO done
    done:
        HALT
    """)
    result = analyze(program)
    assert result.branches[0x100C].delayed       # compares a loaded value
    assert not result.branches[0x1014].delayed   # compares a constant


def test_cbnz_on_loaded_register_is_delayed():
    program = assemble("""
        .data cell 0x4000 words 1
        MOV X1, #0x4000
        LDR X0, [X1]
        CBNZ X0, done
    done:
        HALT
    """)
    assert analyze(program).branches[0x1008].delayed


def test_contention_facts_record_mul_operands():
    program = assemble("""
        .data sec 0x4100 tag=5 bytes 11
        MOV X1, #0x4100
        LDRB X0, [X1]
        MUL X2, X0, X0
        HALT
    """)
    result = analyze(program, SECRET)
    assert result.contention[0x1008].secret


def test_store_with_loaded_address_flagged():
    program = assemble("""
        .data ptr 0x4000 words 0x5000
        MOV X1, #0x4000
        LDR X2, [X1]
        STR X0, [X2]
        HALT
    """)
    result = analyze(program)
    assert result.stores[0x1008].address.loaded


def test_interprocedural_flow_through_call_and_return():
    program = assemble("""
        MOV X0, #3
        BL fn
        STR X1, [X0]
        HALT
    fn:
        ADD X1, X0, #2
        RET
    """)
    result = analyze(program)
    assert result.stores[0x1008].data.consts == (5,)


def test_stale_loads_mark_results():
    program = assemble("""
        .data t 0x4000 words 1
        MOV X1, #0x4000
        LDR X0, [X1]
        LSL X2, X0, #2
        STR X2, [X1]
        HALT
    """)
    result = analyze(program, stale_loads={0x1004})
    assert result.loads[0x1004].result.stale
    assert result.stores[0x100C].data.stale


def test_repr_is_compact():
    assert repr(Value()) == "Value(?)"
    assert "0x4" in repr(const_value(4))
