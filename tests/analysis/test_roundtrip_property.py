"""Property: gadget reports survive the assemble/disassemble round trip.

``find_gadgets`` must be a function of program *semantics*, not of which
in-memory ``Program`` object it received: re-assembling a program's own
``.s`` dump may only relabel it, never move a verdict.  The fuzzer's
corpus design (store specs and text, rebuild programs on demand) and the
service's text-based lint protocol both lean on exactly this invariant,
so it gets a generative test over the fuzz generator's whole spec space.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.analysis.gadgets import find_gadgets  # noqa: E402
from repro.fuzz.generator import (  # noqa: E402
    build,
    CandidateSpec,
    ITER_CHOICES,
    normalize,
    PAD_CHOICES,
    SectionSpec,
    SINGLETONS,
    SPLICEABLE,
)
from repro.isa.assembler import assemble  # noqa: E402
from repro.isa.disasm import disassemble, signature  # noqa: E402


def _section(template):
    return st.builds(
        lambda **kw: normalize(SectionSpec(template=template, **kw)),
        residual=st.booleans(),
        pad=st.sampled_from(PAD_CHOICES),
        barrier=st.booleans(),
        flip=st.booleans(),
        train_iters=st.sampled_from(ITER_CHOICES))


_spliceable = st.sampled_from(SPLICEABLE).flatmap(_section)
_any_single = st.sampled_from(SPLICEABLE + SINGLETONS).flatmap(_section)

#: One singleton-or-spliceable section, or two spliceable ones.
SPECS = st.one_of(
    _any_single.map(lambda s: CandidateSpec(sections=(s,))),
    st.tuples(_spliceable, _spliceable).map(
        lambda pair: CandidateSpec(sections=pair)))


def _report(program, secret_ranges):
    return [gadget.render() for gadget in
            find_gadgets(program, secret_ranges)]


@settings(max_examples=25, deadline=None, derandomize=True)
@given(spec=SPECS)
def test_gadgets_invariant_under_text_round_trip(spec):
    candidate = build(spec)
    program = candidate.attack.builder_program
    round_tripped = assemble(disassemble(program))
    assert signature(round_tripped) == signature(program)
    assert _report(round_tripped, candidate.secret_ranges) == \
        _report(program, candidate.secret_ranges)
