"""Summary-based modular analysis: byte-identity with the whole-program engine."""

import os

import pytest

from repro.analysis.gadgets import find_gadgets, leaks_under
from repro.analysis.modular import (
    SummaryCache,
    analyze_modular,
    modular_analysis,
)
from repro.analysis.options import AnalysisOptions
from repro.analysis.taint import analyze
from repro.analysis.witness import secret_ranges_of, synthesize_all
from repro.config import DefenseKind


def _whole(program, secret_ranges):
    return [g.render() for g in find_gadgets(program, secret_ranges)]


def _modular(program, secret_ranges, options):
    run = modular_analysis(program, secret_ranges, options=options)
    return [g.render() for g in
            find_gadgets(program, secret_ranges, taint=run.result,
                         options=options)]


@pytest.mark.parametrize("witness", synthesize_all(),
                         ids=lambda w: w.subject)
def test_witness_reports_byte_identical(witness):
    program = witness.attack.builder_program
    secret_ranges = list(secret_ranges_of(witness.attack))
    options = AnalysisOptions.summary_backed(cache=SummaryCache())
    assert _modular(program, secret_ranges, options) == \
        _whole(program, secret_ranges)


def test_verdicts_byte_identical_on_a_residual_witness():
    witness = synthesize_all()[1]
    program = witness.attack.builder_program
    secret_ranges = list(secret_ranges_of(witness.attack))
    options = AnalysisOptions.summary_backed(cache=SummaryCache())
    run = modular_analysis(program, secret_ranges, options=options)
    modular = find_gadgets(program, secret_ranges, taint=run.result,
                           options=options)
    whole = find_gadgets(program, secret_ranges)
    for defense in DefenseKind:
        assert [leaks_under(g, defense) for g in modular] == \
            [leaks_under(g, defense) for g in whole]


def test_analyze_modular_matches_analyze_fields():
    witness = synthesize_all()[0]
    program = witness.attack.builder_program
    secret_ranges = list(secret_ranges_of(witness.attack))
    whole = analyze(program, secret_ranges)
    modular = analyze_modular(program, secret_ranges)
    assert modular.loads.keys() == whole.loads.keys()
    assert modular.branches.keys() == whole.branches.keys()
    for addr, load in whole.loads.items():
        assert modular.loads[addr].secret_accesses == load.secret_accesses
        assert modular.loads[addr].resolved == load.resolved


def test_warm_cache_replay_is_all_hits_and_identical(tmp_path):
    witness = synthesize_all()[0]
    program = witness.attack.builder_program
    secret_ranges = list(secret_ranges_of(witness.attack))
    path = os.path.join(tmp_path, "summaries.jsonl")

    cold_cache = SummaryCache(path)
    cold = _modular(program, secret_ranges,
                    AnalysisOptions.summary_backed(cache=cold_cache))
    assert cold_cache.misses > 0
    cold_cache.flush()

    warm_cache = SummaryCache(path)
    warm = _modular(program, secret_ranges,
                    AnalysisOptions.summary_backed(cache=warm_cache))
    assert warm == cold
    assert warm_cache.misses == 0
    assert warm_cache.hits == cold_cache.misses + cold_cache.hits
