"""Cross-cutting defense properties on a shared scenario suite.

One scenario, every defense: these tests pin the *relative* behaviour the
paper's narrative depends on (who delays what), complementing the absolute
checks elsewhere.
"""

import pytest

from repro import build_system, CORTEX_A76, DefenseKind
from repro.isa import assemble

SPEC_WINDOW = """
    .data guard 0x6040 words 1
    .data hot 0x5000 words 1 2 3 4 5 6 7 8
    MOV X1, #0x6040
    MOV X2, #0x5000
    MOV X9, #6
outer:
    LDR X0, [X1]        // slow condition: a long speculation window
    CBZ X0, never       // never taken; unresolved for the load's latency
    LDR X3, [X2]        // speculative but safe work underneath it
    LDR X4, [X2, #8]
    ADD X5, X3, X4
never:
    SUB X9, X9, #1
    CBNZ X9, outer
    HALT
"""


@pytest.fixture(scope="module")
def cycles_by_defense():
    results = {}
    for defense in DefenseKind:
        system = build_system(CORTEX_A76.with_defense(defense))
        first = system.run(assemble(SPEC_WINDOW))
        results[defense] = first.cycles
    return results


class TestRelativeCosts:
    def test_fence_is_the_most_expensive(self, cycles_by_defense):
        fence = cycles_by_defense[DefenseKind.FENCE]
        for defense, cycles in cycles_by_defense.items():
            if defense is not DefenseKind.FENCE:
                assert fence >= cycles, defense

    def test_specasan_is_near_baseline(self, cycles_by_defense):
        baseline = cycles_by_defense[DefenseKind.NONE]
        specasan = cycles_by_defense[DefenseKind.SPECASAN]
        assert specasan <= baseline * 1.05

    def test_all_defenses_terminate(self, cycles_by_defense):
        assert len(cycles_by_defense) == len(DefenseKind)
        assert all(cycles > 0 for cycles in cycles_by_defense.values())


class TestSafeSpeculationFlows:
    def test_specasan_does_not_restrict_safe_window_work(self):
        """§3.2: safe speculative accesses proceed without delay."""
        system = build_system(CORTEX_A76.with_defense(DefenseKind.SPECASAN))
        core = system.prepare(assemble(SPEC_WINDOW))
        core.run()
        assert core.stats.unsafe_delays == 0
        assert core.policy.tsh.unsafe_outcomes == 0
        assert core.policy.tsh.safe_outcomes > 0

    def test_fence_restricts_the_window_work(self):
        system = build_system(CORTEX_A76.with_defense(DefenseKind.FENCE))
        core = system.prepare(assemble(SPEC_WINDOW))
        core.run()
        assert len(core.policy.restricted_seqs) > 5
