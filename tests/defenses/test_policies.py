"""Per-defense behaviour on targeted micro-scenarios."""

import pytest

from repro import build_system, CORTEX_A76, DefenseKind
from repro.defenses import (
    CompositePolicy,
    FencePolicy,
    GhostMinionPolicy,
    make_policy,
    NoDefense,
    SpecASanPolicy,
    SpecCFIPolicy,
    STTPolicy,
)
from repro.isa import assemble, ProgramBuilder


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        (DefenseKind.NONE, NoDefense),
        (DefenseKind.FENCE, FencePolicy),
        (DefenseKind.STT, STTPolicy),
        (DefenseKind.GHOSTMINION, GhostMinionPolicy),
        (DefenseKind.SPECCFI, SpecCFIPolicy),
        (DefenseKind.SPECASAN, SpecASanPolicy),
        (DefenseKind.SPECASAN_CFI, CompositePolicy),
    ])
    def test_kinds_map_to_policies(self, kind, cls):
        assert isinstance(make_policy(kind), cls)

    def test_composite_properties(self):
        policy = make_policy(DefenseKind.SPECASAN_CFI)
        assert policy.mte_enabled
        assert policy.cfi_validation_bubble >= 1
        assert policy.name == "specasan+cfi"

    def test_mte_only_on_specasan(self):
        for kind in DefenseKind:
            assert make_policy(kind).mte_enabled == kind.uses_specasan


WRONG_PATH_LOAD = """
    .data guard 0x6040 words 1
    .data probe 0x8000 zero 64
    MOV X1, #0x6040
    MOV X2, #0x8000
    LDR X0, [X1]        // slow guard, actually taken
    CBNZ X0, skip
    LDR X3, [X2]        // wrong-path load
skip:
    HALT
"""


def wrong_path_probe_cached(defense):
    system = build_system(CORTEX_A76.with_defense(defense))
    system.run(assemble(WRONG_PATH_LOAD))
    system.hierarchy.drain(10 ** 9)
    return system.hierarchy.is_cached(0x8000)


class TestFence:
    def test_blocks_wrong_path_loads(self):
        assert wrong_path_probe_cached(DefenseKind.NONE)
        assert not wrong_path_probe_cached(DefenseKind.FENCE)

    def test_architectural_results_unchanged(self):
        source = """
            MOV X0, #0
            MOV X1, #12
        loop:
            ADD X0, X0, X1
            SUB X1, X1, #1
            CBNZ X1, loop
            HALT
        """
        base = build_system(CORTEX_A76).run(assemble(source))
        fenced = build_system(
            CORTEX_A76.with_defense(DefenseKind.FENCE)).run(assemble(source))
        assert base.register("X0") == fenced.register("X0") == 78
        assert fenced.cycles >= base.cycles

    def test_restriction_accounting(self):
        system = build_system(CORTEX_A76.with_defense(DefenseKind.FENCE))
        core = system.prepare(assemble(WRONG_PATH_LOAD))
        core.run()
        assert len(core.policy.restricted_seqs) >= 1


class TestGhostMinion:
    def test_wrong_path_fills_stay_shadowed(self):
        assert not wrong_path_probe_cached(DefenseKind.GHOSTMINION)

    def test_committed_loads_promote(self):
        system = build_system(CORTEX_A76.with_defense(DefenseKind.GHOSTMINION))
        system.run(assemble("""
            .data data 0x5000 words 42
            MOV X1, #0x5000
            LDR X2, [X1]
            HALT
        """))
        system.hierarchy.drain(10 ** 9)
        assert system.hierarchy.is_cached(0x5000)


class TestSTT:
    def test_tainted_transmit_blocked_on_wrong_path(self):
        source = """
            .data guard 0x6040 words 1
            .data secretish 0x5000 words 3
            .data probe 0x8000 zero 4096
            MOV X1, #0x6040
            MOV X2, #0x5000
            MOV X3, #0x8000
            LDR X0, [X1]
            CBNZ X0, skip
            LDR X4, [X2]        // speculative access
            LSL X5, X4, #6
            ADD X6, X3, X5
            LDR X7, [X6]        // tainted-address transmit
        skip:
            HALT
        """
        base = build_system(CORTEX_A76)
        base.run(assemble(source))
        base.hierarchy.drain(10 ** 9)
        assert base.hierarchy.is_cached(0x8000 + 3 * 64)

        stt = build_system(CORTEX_A76.with_defense(DefenseKind.STT))
        stt.run(assemble(source))
        stt.hierarchy.drain(10 ** 9)
        assert not stt.hierarchy.is_cached(0x8000 + 3 * 64)


class TestSpecCFI:
    def test_refuses_non_landing_pad_prediction(self):
        """An indirect branch trained to a non-BTI target must stall fetch
        instead of speculating into it."""
        builder = ProgramBuilder()
        builder.zero_segment("probe", 0x8000, 64)
        builder.words_segment("slow", 0x200000, [0])
        builder.li("X9", 0)
        li = builder.build().instructions[-1]
        builder.li("X25", 0)
        builder.label("loop")
        builder.blr("X9")
        builder.add("X25", "X25", imm=1)
        builder.cmp("X25", imm=12)
        builder.b_cond("LO", "loop")
        builder.halt()
        builder.label("gadget")  # no BTI
        builder.li("X8", 0x8000)
        builder.ldr("X7", "X8")
        builder.ret()
        program = builder.build()
        li.imm = program.address_of("gadget")
        system = build_system(CORTEX_A76.with_defense(DefenseKind.SPECCFI))
        core = system.prepare(program)
        core.run()
        # The program still works architecturally...
        assert core.halted and core.fault is None
        # ...but the policy restricted the speculative target at least once.
        assert core.stats.cfi_fetch_stalls >= 1

    def test_shadow_stack_squash_repair(self):
        """Speculative calls/returns must not desync the shadow stack."""
        system = build_system(CORTEX_A76.with_defense(DefenseKind.SPECCFI))
        result = system.run(assemble("""
            MOV X0, #0
            MOV X1, #6
        loop:
            BL bump
            SUB X1, X1, #1
            CBNZ X1, loop
            HALT
        bump:
            ADD X0, X0, #1
            RET
        """))
        assert result.register("X0") == 6


class TestComposite:
    def test_members_share_restriction_set(self):
        policy = make_policy(DefenseKind.SPECASAN_CFI)
        for member in policy.members:
            assert member.restricted_seqs is policy.restricted_seqs

    def test_request_flags_are_strictest(self):
        policy = make_policy(DefenseKind.SPECASAN_CFI)

        class _Dyn:  # minimal stand-in
            pass

        flags = policy.request_flags(_Dyn())
        assert flags.check_tag and flags.block_fill_on_mismatch
        # Stale LFB forwards stay enabled but are lock-gated by the
        # hierarchy (block_fill_on_mismatch withholds them on key mismatch).
        assert flags.allow_stale_forward
