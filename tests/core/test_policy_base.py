"""The DefensePolicy base contract (the unsafe baseline)."""

from repro.core.policy import DefensePolicy, NoDefense, RequestFlags
from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.dyninstr import DynInstr


def _dyn():
    return DynInstr(seq=0, static=Instruction(Opcode.LDR, rd=0, rn=1), pc=0)


class TestBasePolicy:
    def test_defaults_permit_everything(self):
        policy = DefensePolicy()
        dyn = _dyn()
        assert policy.may_issue(dyn)
        assert policy.may_issue_load(dyn)
        assert policy.may_forward_store(dyn, dyn)
        assert policy.fetch_may_follow_indirect(dyn, 0x1000)
        assert not policy.must_hold_bypass_data(dyn)
        assert policy.predict_return(dyn, 0x2000) == 0x2000

    def test_default_request_flags_are_unchecked(self):
        flags = DefensePolicy().request_flags(_dyn())
        assert not flags.check_tag
        assert not flags.block_fill_on_mismatch
        assert not flags.fill_to_minion
        assert flags.allow_stale_forward

    def test_no_mte_no_bubble(self):
        policy = NoDefense()
        assert not policy.mte_enabled
        assert policy.cfi_validation_bubble == 0

    def test_restrict_tracks_unique_seqs(self):
        policy = DefensePolicy()
        dyn = _dyn()
        policy.restrict(dyn)
        policy.restrict(dyn)
        assert len(policy.restricted_seqs) == 1

    def test_request_flags_is_frozen(self):
        flags = RequestFlags()
        try:
            flags.check_tag = True
        except Exception:
            pass
        else:  # pragma: no cover
            raise AssertionError("RequestFlags must be immutable")
