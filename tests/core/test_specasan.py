"""SpecASan's mechanism: tcs transitions, withholding, faults, forwarding."""

import pytest

from repro import build_system, CORTEX_A76, DefenseKind
from repro.isa import assemble, ProgramBuilder
from repro.mte.tags import with_key
from repro.pipeline.dyninstr import TagCheckStatus

SPECASAN = CORTEX_A76.with_defense(DefenseKind.SPECASAN)


def run(source, **kwargs):
    return build_system(SPECASAN).run(assemble(source), **kwargs)


class TestCommittedPath:
    def test_matching_access_is_clean(self):
        result = run("""
            .data buf 0x4000 tag=5 words 42
            MOV X1, #0x4000
            ADDG X1, X1, #0, #5
            LDR X2, [X1]
            HALT
        """)
        assert result.register("X2") == 42
        assert not result.faulted

    def test_untagged_access_is_clean(self):
        result = run("""
            MOV X1, #0x4000
            MOV X2, #9
            STR X2, [X1]
            LDR X3, [X1]
            HALT
        """)
        assert result.register("X3") == 9

    def test_committed_mismatch_faults(self):
        """A load on the committed path with the wrong key is the
        architectural MTE fault (§3.4)."""
        result = run("""
            .data buf 0x4000 tag=5 words 42
            MOV X1, #0x4000
            ADDG X1, X1, #0, #3
            LDR X2, [X1]
            HALT
        """)
        assert result.faulted
        assert result.fault.lock == 5
        assert result.fault.key == 3

    def test_committed_store_mismatch_faults(self):
        result = run("""
            .data buf 0x4000 tag=5 words 0
            MOV X1, #0x4000
            ADDG X1, X1, #0, #2
            MOV X2, #1
            STR X2, [X1]
            HALT
        """)
        assert result.faulted

    def test_use_after_free_pattern_faults(self):
        """Retag (free) then access through the stale pointer."""
        result = run("""
            .data buf 0x4000 tag=5 words 7
            MOV X1, #0x4000
            ADDG X1, X1, #0, #5
            LDR X2, [X1]        // fine
            ADDG X3, X1, #0, #9 // allocator retags on free
            STG X3, [X3]
            LDR X4, [X1]        // stale pointer -> fault
            HALT
        """)
        assert result.faulted


class TestSpeculativeWithholding:
    def _mismatch_program(self):
        """A mistrained branch guarding an access with the wrong key."""
        builder = ProgramBuilder()
        builder.bytes_segment("victim", 0x4100, bytes([9] * 16), tag=0x5)
        builder.words_segment("slow", 0x200000, [1])
        builder.li("X20", with_key(0x4100, 0x5))
        builder.ldrb("X21", "X20", note="warm with the right key")
        builder.sb()
        builder.li("X2", with_key(0x4100, 0x2), note="wrong key")
        builder.li("X15", 0x200000)
        builder.ldr("X0", "X15", note="slow guard value")
        builder.cbnz("X0", "skip")       # actually taken; cold predicts not
        builder.ldrb("X5", "X2", note="speculative mismatched ACCESS")
        builder.add("X6", "X5", imm=1, note="dependent")
        builder.label("skip")
        builder.halt()
        return builder.build()

    def test_wrong_path_mismatch_is_squashed_not_faulted(self):
        system = build_system(SPECASAN)
        result = system.run(self._mismatch_program())
        assert not result.faulted          # squashed silently (§3.4)
        assert result.halted

    def test_unsafe_access_recorded_by_tsh(self):
        system = build_system(SPECASAN)
        core = system.prepare(self._mismatch_program())
        core.run()
        assert core.policy.tsh.unsafe_outcomes >= 1
        events = [event for _, _, event in core.policy.tsh.trace]
        assert any("unsafe" in event for event in events)

    def test_unsafe_delay_counted_as_restricted(self):
        system = build_system(SPECASAN)
        core = system.prepare(self._mismatch_program())
        core.run()
        assert core.stats.unsafe_delays >= 1
        assert len(core.policy.restricted_seqs) >= 1

    def test_dependent_marking_broadcast(self):
        """§3.4: the ROB marks dependent memory instructions unsafe."""
        builder = ProgramBuilder()
        builder.bytes_segment("victim", 0x4100, bytes([9] * 16), tag=0x5)
        builder.zero_segment("probe", 0x8000, 0x1000)
        builder.words_segment("slow", 0x200000, [1])
        builder.li("X20", with_key(0x4100, 0x5))
        builder.ldrb("X21", "X20")
        builder.sb()
        builder.li("X2", with_key(0x4100, 0x2))
        builder.li("X3", 0x8000)
        builder.li("X15", 0x200000)
        builder.ldr("X0", "X15")
        builder.cbnz("X0", "skip")
        builder.ldrb("X5", "X2", note="unsafe ACCESS")
        builder.lsl("X6", "X5", imm=6)
        builder.add("X7", "X3", "X6")
        builder.ldrb("X8", "X7", note="dependent TRANSMIT")
        builder.label("skip")
        builder.halt()
        system = build_system(SPECASAN)
        core = system.prepare(builder.build())
        saw_dependent_unsafe = []
        while not core.halted:
            core.tick()
            for load in core.lsq.lq:
                if load.unsafe_dependent:
                    saw_dependent_unsafe.append(load.seq)
        assert saw_dependent_unsafe  # the TRANSMIT was marked by the ROB


class TestForwardingRule:
    def test_key_mismatch_blocks_forwarding(self):
        """§3.4: store-to-load forwarding requires matching address keys."""
        result = run("""
            .data slot 0x4040 tag=5 words 0
            .data slow 0x200000 words 7
            MOV X15, #0x200000
            MOV X1, #0x4040
            ADDG X1, X1, #0, #5
            MOV X2, #33
            LDR X0, [X15]        // commit blocker keeps the store in the SQ
            STR X2, [X1]
            LDR X3, [X1]         // same key: forwarding allowed
            HALT
        """)
        assert result.register("X3") == 33
        assert not result.faulted

    def test_cross_key_load_waits_and_then_faults_at_commit(self):
        result = run("""
            .data slot 0x4040 tag=5 words 0
            .data slow 0x200000 words 7
            MOV X15, #0x200000
            MOV X1, #0x4040
            ADDG X1, X1, #0, #5
            ADDG X9, X1, #0, #2  // same address, wrong key
            MOV X2, #33
            LDR X0, [X15]
            STR X2, [X1]
            LDR X3, [X9]         // forward blocked; memory check also fails
            HALT
        """)
        assert result.faulted


class TestSpectreSTLHold:
    def test_tagged_bypass_data_held_until_disambiguation(self):
        """§4.1: a tagged load's data waits for the SQ to disambiguate."""
        import struct
        builder = ProgramBuilder()
        pointer = with_key(0x4040, 0x5)
        builder.bytes_segment("slot", 0x4040, struct.pack("<Q", 99) + bytes(8),
                              tag=0x5)
        builder.bytes_segment("slow", 0x200000,
                              struct.pack("<Q", pointer) + bytes(4088))
        builder.li("X20", pointer)
        builder.ldrb("X21", "X20", note="warm")
        builder.sb()
        builder.li("X2", pointer)
        builder.li("X12", 55)
        builder.li("X15", 0x200000)
        builder.ldr("X11", "X15", note="store address arrives late")
        builder.str_("X12", "X11")
        builder.ldr("X5", "X2", note="bypassing tagged load")
        builder.halt()
        system = build_system(SPECASAN)
        result = system.run(builder.build())
        # After the ordering violation replays, the load must see the
        # store's value, and the stale (99) must never architecturally land.
        assert result.register("X5") == 55
        assert not result.faulted
