"""SpecASan ablation variants and the prefetcher extension."""

import pytest

from repro.attacks import run_attack_program, spectre_v1
from repro.attacks.mds import build_ridl
from repro.config import CORTEX_A76, DefenseKind
from repro.core.ablations import (
    FullDelaySpecASanPolicy,
    lfb_untagged_config,
    memory_controller_only_config,
    NoLFBTagSpecASanPolicy,
    prefetcher_config,
)
from repro.isa import assemble
from repro.system import build_system


class TestFullDelay:
    def test_still_blocks_spectre_v1(self):
        outcome = run_attack_program(spectre_v1.build(), DefenseKind.SPECASAN,
                                     policy_factory=FullDelaySpecASanPolicy)
        assert not outcome.leaked

    def test_costs_more_than_selective_on_tagged_code(self):
        source = """
            .data slow 0x6040 words 1
            .data arr 0x4000 tag=3 zero 256
            MOV X1, #0x6040
            MOV X2, #0x4000
            ADDG X2, X2, #0, #3
            MOV X9, #12
        loop:
            LDR X0, [X1]        // slow branch condition
            CBNZ X0, body
            HALT
        body:
            LDR X3, [X2]        // tagged speculative load
            LDR X4, [X2, #8]
            SUB X9, X9, #1
            CBNZ X9, loop
            HALT
        """
        selective = build_system(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN)).run(
                assemble(source))
        full = build_system(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN),
            policy_factory=FullDelaySpecASanPolicy).run(assemble(source))
        assert full.cycles > selective.cycles
        assert full.restricted > selective.restricted


class TestCheckPointAblation:
    def test_controller_only_misses_cache_resident_secrets(self):
        outcome = run_attack_program(
            spectre_v1.build(), DefenseKind.SPECASAN,
            config=memory_controller_only_config(CORTEX_A76))
        assert outcome.leaked

    def test_controller_only_still_blocks_cold_accesses(self):
        """A mismatched access that must go to DRAM is still checked."""
        result = build_system(
            memory_controller_only_config(CORTEX_A76).with_defense(
                DefenseKind.SPECASAN)).run(assemble("""
            .data buf 0x4000 tag=5 words 42
            MOV X1, #0x4000
            ADDG X1, X1, #0, #3
            LDR X2, [X1]
            HALT
        """))
        assert result.faulted


class TestLFBTagAblation:
    def test_untagged_lfb_reopens_ridl(self):
        blocked = run_attack_program(build_ridl(), DefenseKind.SPECASAN)
        reopened = run_attack_program(
            build_ridl(), DefenseKind.SPECASAN,
            config=lfb_untagged_config(CORTEX_A76),
            policy_factory=NoLFBTagSpecASanPolicy)
        assert not blocked.leaked
        assert reopened.leaked


class TestPrefetcher:
    STREAM = """
        .data arr 0x40000 zero 8192
        MOV X1, #0x40000
        MOV X2, #0
        MOV X3, #64
    loop:
        LDR X4, [X1, X2]
        ADD X2, X2, #64
        SUB X3, X3, #1
        CBNZ X3, loop
        HALT
    """

    def test_next_line_prefetcher_speeds_up_streams(self):
        base = build_system(CORTEX_A76).run(assemble(self.STREAM))
        system = build_system(prefetcher_config(CORTEX_A76, check_tags=False))
        prefetched = system.run(assemble(self.STREAM))
        assert system.hierarchy.stats.prefetches > 0
        assert prefetched.cycles < base.cycles

    def test_unchecked_prefetcher_crosses_tag_boundaries(self):
        source = """
            .data a 0x40000 tag=2 zero 64
            .data b 0x40040 tag=5 zero 64
            MOV X1, #0x40000
            ADDG X1, X1, #0, #2
            LDR X2, [X1]
            HALT
        """
        system = build_system(prefetcher_config(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN), check_tags=False))
        system.run(assemble(source))
        system.hierarchy.drain(10 ** 9)
        assert system.hierarchy.stats.cross_tag_prefetches >= 1
        assert system.hierarchy.is_cached(0x40040)

    def test_checked_prefetcher_suppresses_boundary_crossings(self):
        source = """
            .data a 0x40000 tag=2 zero 64
            .data b 0x40040 tag=5 zero 64
            MOV X1, #0x40000
            ADDG X1, X1, #0, #2
            LDR X2, [X1]
            HALT
        """
        system = build_system(prefetcher_config(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN), check_tags=True))
        system.run(assemble(source))
        system.hierarchy.drain(10 ** 9)
        assert system.hierarchy.stats.prefetches_suppressed >= 1
        assert not system.hierarchy.is_cached(0x40040)
