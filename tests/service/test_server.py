"""End-to-end service tests over real TCP and real worker subprocesses."""

import asyncio
import json
import os
import sys

from repro.service.__main__ import CLEAN_SOURCE, _Client
from repro.service.server import ServiceConfig, SpecLintService


def config_for(tmp_path, **overrides) -> ServiceConfig:
    base = dict(
        state_dir=str(tmp_path / "state"), max_queue=8, max_per_client=4,
        static_workers=1, dynamic_workers=1, default_deadline_s=30.0,
        max_deadline_s=60.0, drain_timeout_s=5.0, max_restarts=1,
        stall_timeout_s=5.0, breaker_threshold=5, breaker_reset_s=0.5,
        quarantine_deaths=5, max_confirm_cycles=20_000)
    base.update(overrides)
    return ServiceConfig(**base)


#: Worker argv that dies instantly without importing anything heavy —
#: stands in for a dead/sick pool in the degradation tests.
def crashing_argv(paths, allow_chaos):
    return [sys.executable, "-c", "raise SystemExit(70)"]


async def start_service(config, **kwargs) -> SpecLintService:
    service = SpecLintService(config, **kwargs)
    await service.start()
    assert service.port is not None
    return service


async def stop_service(service: SpecLintService) -> dict:
    service.request_drain()
    await asyncio.wait_for(service.wait_drained(), 30.0)
    return service.shutdown_report or {}


class TestLintEndToEnd:
    def test_static_verdict_cache_and_warm_restart(self, tmp_path):
        async def scenario():
            config = config_for(tmp_path)
            service = await start_service(config)
            client = await _Client.connect(service.port)
            first = await client.request(
                {"id": "r1", "op": "lint", "witness": "pht"})
            repeat = await client.request(
                {"id": "r2", "op": "lint", "witness": "pht"})
            source = await client.request(
                {"id": "r3", "op": "lint", "source": CLEAN_SOURCE,
                 "secret_ranges": [[0x4100, 0x4110]]})
            client.close()
            report = await stop_service(service)

            # Warm restart over the same state dir: the verdict survives.
            service2 = await start_service(config)
            client2 = await _Client.connect(service2.port)
            warm = await client2.request(
                {"id": "r4", "op": "lint", "witness": "pht"})
            client2.close()
            await stop_service(service2)
            return first, repeat, source, warm, report

        first, repeat, source, warm, report = asyncio.run(scenario())
        assert first["ok"] is True
        assert first["tier"] == "static"
        assert first["cached"] is False
        assert first["verdicts"]["none"] is True
        assert first["gadgets"], "witness must expose a gadget"
        assert repeat["cached"] is True
        assert source["ok"] is True and source["gadgets"] == []
        assert warm["cached"] is True, "restart must serve from cache"
        assert report["status"] == "drained"
        assert report["stats"]["service"]["cache"]["hits"] >= 1

    def test_ping_and_stats_are_inline(self, tmp_path):
        async def scenario():
            service = await start_service(config_for(tmp_path))
            client = await _Client.connect(service.port)
            pong = await client.request({"id": "p", "op": "ping"})
            stats = await client.request({"id": "s", "op": "stats"})
            client.close()
            await stop_service(service)
            return pong, stats

        pong, stats = asyncio.run(scenario())
        assert pong["pong"] is True
        assert pong["health"]["draining"] is False
        assert {"admission", "pools", "cache"} <= set(pong["health"])
        assert "service" in stats["stats"]


class TestDegradationLadder:
    def test_dynamic_pool_death_degrades_to_static_tier(self, tmp_path):
        """Kill the dynamic pool mid-request: the confirm=True request is
        still served, at the static tier, with the downgrade recorded."""
        async def scenario():
            service = await start_service(config_for(tmp_path))
            service.dynamic_pool.worker_argv = crashing_argv
            client = await _Client.connect(service.port)
            response = await client.request(
                {"id": "d1", "op": "lint", "witness": "pht",
                 "confirm": True, "defense": "none"}, timeout=60.0)
            client.close()
            report = await stop_service(service)
            return response, report

        response, report = asyncio.run(scenario())
        assert response["ok"] is True
        assert response["tier"] == "static"
        assert response["degraded"] is True
        assert "lost" in response["degraded_reason"]
        assert "dynamic" not in response
        assert response["verdicts"]["none"] is True
        stats = report["stats"]["service"]
        assert stats["workers"]["deaths"] >= 2
        assert stats["tier"]["degraded"] == 1

    def test_both_pools_down_serves_cache_tier(self, tmp_path):
        """With every pool dead, previously computed content is still
        served — at the cache tier, marked degraded."""
        async def scenario():
            config = config_for(tmp_path)
            service = await start_service(config)
            client = await _Client.connect(service.port)
            seeded = await client.request(
                {"id": "s1", "op": "lint", "witness": "pht"})
            client.close()
            await stop_service(service)

            service2 = await start_service(config)
            service2.static_pool.worker_argv = crashing_argv
            service2.dynamic_pool.worker_argv = crashing_argv
            client2 = await _Client.connect(service2.port)
            # The exact key is cached: served before any pool is touched.
            cached = await client2.request(
                {"id": "s2", "op": "lint", "witness": "pht"})
            # confirm=True is a different key (same defense as the seed,
            # so the static variant of the key matches the cached entry);
            # dynamic and static both die, so the ladder lands on the
            # cached static verdict.
            degraded = await client2.request(
                {"id": "s3", "op": "lint", "witness": "pht",
                 "confirm": True}, timeout=60.0)
            # Never-computed content has no rung left: typed shed.
            shed = await client2.request(
                {"id": "s4", "op": "lint", "witness": "stl"}, timeout=60.0)
            client2.close()
            await stop_service(service2)
            return seeded, cached, degraded, shed

        seeded, cached, degraded, shed = asyncio.run(scenario())
        assert seeded["ok"] is True
        assert cached["ok"] is True and cached["cached"] is True
        assert degraded["ok"] is True
        assert degraded["tier"] == "cache"
        assert degraded["degraded"] is True
        assert shed["ok"] is False
        assert shed["error"]["kind"] == "degraded-unavailable"
        assert shed["error"]["retryable"] is True


class TestPoisonQuarantine:
    def test_poison_program_is_quarantined_by_content_hash(self, tmp_path):
        async def scenario():
            config = config_for(tmp_path, allow_chaos=True,
                                quarantine_deaths=2, max_restarts=0)
            service = await start_service(config)
            client = await _Client.connect(service.port)
            poison = {"op": "lint", "witness": "pht", "chaos": "die"}
            first = await client.request(dict(poison, id="p1"),
                                         timeout=60.0)
            second = await client.request(dict(poison, id="p2"),
                                          timeout=60.0)
            third = await client.request(dict(poison, id="p3"))
            # A different program is unaffected by the quarantine.
            healthy = await client.request(
                {"id": "h1", "op": "lint", "witness": "pht"}, timeout=60.0)
            client.close()
            report = await stop_service(service)
            return first, second, third, healthy, report

        first, second, third, healthy, report = asyncio.run(scenario())
        assert first["ok"] is False
        assert first["error"]["kind"] in {"worker-lost",
                                          "degraded-unavailable"}
        assert second["ok"] is False
        assert second["error"]["kind"] == "quarantined"
        assert third["error"]["kind"] == "quarantined"
        assert healthy["ok"] is True
        stats = report["stats"]["service"]
        assert stats["workers"]["quarantined_hashes"] == 1
        assert report["quarantine"]["quarantined"], \
            "shutdown report lists the poisoned hash"


class TestDrainInvariant:
    def test_every_accepted_request_resolves_under_drain(self, tmp_path):
        async def scenario():
            config = config_for(tmp_path, static_workers=1,
                                drain_timeout_s=0.2)
            service = await start_service(config)
            client = await _Client.connect(service.port)
            subjects = ["pht", "stl", "btb"]
            for i, witness in enumerate(subjects):
                await client.send({"id": f"q{i}", "op": "lint",
                                   "witness": witness})
            await asyncio.sleep(0.05)
            service.request_drain()
            responses = await client.collect(len(subjects), timeout=60.0)
            late = await client.request(
                {"id": "late", "op": "lint", "witness": "rsb"})
            client.close()
            await asyncio.wait_for(service.wait_drained(), 30.0)
            return responses, late, service.shutdown_report

        responses, late, report = asyncio.run(scenario())
        assert len(responses) == 3
        for response in responses:
            assert response.get("ok") is True or \
                response["error"]["kind"] in {"cancelled", "deadline"}
        cut = [r for r in responses if not r.get("ok")]
        assert cut, "0.2s drain budget must cut at least one queued lint"
        assert late["error"]["kind"] == "draining"
        assert report["status"] == "cut"
        assert report["stats"]["service"]["lifecycle"][
            "cancelled_at_drain"] >= 1

    def test_shutdown_report_file_is_written(self, tmp_path):
        async def scenario():
            config = config_for(tmp_path)
            service = await start_service(config)
            await stop_service(service)
            return config.state_dir

        state_dir = asyncio.run(scenario())
        path = os.path.join(state_dir, "shutdown-report.json")
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["status"] == "drained"
        assert "stats" in report and "admission" in report
