"""Service jobs reuse function-granular summaries across submissions."""

import os

from repro.service.worker import run_job

SOURCE = """
    .data idx 0x4000 words 64
    MOV X1, #0x4000
    LDR X2, [X1]
    CMP X2, #16
    B.HS done
    MOV X3, #0x5000
    LDRB X4, [X3, X2]
    LSL X4, X4, #6
    MOV X5, #0x6000
    LDRB X5, [X5, X4]
done:
    HALT
"""


def _job(summary_dir):
    return {"source": SOURCE, "secret_ranges": [[0x5010, 0x5011]],
            "summary_dir": summary_dir}


def test_second_submission_is_all_hits(tmp_path):
    summary_dir = str(tmp_path)
    first = run_job(_job(summary_dir))
    assert "summary" in first
    assert first["summary"]["misses"] > 0
    assert first["summary"]["cached_regions"] > 0
    assert os.path.exists(os.path.join(summary_dir, "summaries.jsonl"))

    second = run_job(_job(summary_dir))
    assert second["summary"]["misses"] == 0
    assert second["summary"]["hits"] > 0
    assert second["summary"]["reanalyzed"] == []
    # Verdicts and gadget reports are byte-identical across the replay.
    assert second["verdicts"] == first["verdicts"]
    assert second["gadgets"] == first["gadgets"]


def test_summary_backed_job_matches_whole_program(tmp_path):
    modular = run_job(_job(str(tmp_path)))
    whole = run_job({"source": SOURCE,
                     "secret_ranges": [[0x5010, 0x5011]]})
    assert "summary" not in whole
    assert modular["verdicts"] == whole["verdicts"]
    assert modular["gadgets"] == whole["gadgets"]
    assert modular["gadget_count"] == whole["gadget_count"]
