"""Protocol layer: validation is total and every failure is typed."""

import json

import pytest

from repro.config import DefenseKind
from repro.errors import ServiceError
from repro.service.protocol import (MAX_REQUEST_BYTES, PROTOCOL_VERSION,
                                    Request, content_key, encode,
                                    error_response, ok_response,
                                    parse_request)


def _line(**fields) -> str:
    payload = {"id": "r1", "op": "lint", "witness": "pht"}
    payload.update(fields)
    for key in [k for k, v in payload.items() if v is None]:
        del payload[key]
    return json.dumps(payload)


class TestParseRequest:
    def test_minimal_witness_request(self):
        request = parse_request(_line())
        assert request.id == "r1"
        assert request.op == "lint"
        assert request.witness == "pht"
        assert request.defense is DefenseKind.SPECASAN
        assert request.deadline_s is None

    def test_full_request_round_trip(self):
        request = parse_request(_line(
            witness=None, source="NOP", defense="stt",
            secret_ranges=[[16, 32], [64, 80]], confirm=True,
            deadline_s=2.5))
        assert request.source == "NOP"
        assert request.defense is DefenseKind.STT
        assert request.secret_ranges == ((16, 32), (64, 80))
        assert request.confirm is True
        assert request.deadline_s == 2.5

    def test_integer_id_is_stringified(self):
        assert parse_request(_line(id=7)).id == "7"

    @pytest.mark.parametrize("line,kind", [
        ("{not json", "malformed"),
        ("[1, 2]", "malformed"),
        (_line(v=99), "unsupported"),
        (_line(op="destroy"), "unsupported"),
        (_line(chaos="segfault"), "unsupported"),
        (_line(witness=None), "malformed"),                 # no subject
        (_line(source="NOP"), "malformed"),                 # both subjects
        (_line(defense="asan"), "malformed"),
        (_line(secret_ranges=[[5]]), "malformed"),
        (_line(secret_ranges=[[9, 3]]), "malformed"),
        (_line(secret_ranges="nope"), "malformed"),
        (_line(confirm="yes"), "malformed"),
        (_line(deadline_s=-1), "malformed"),
        (_line(deadline_s=True), "malformed"),
    ])
    def test_bad_input_is_typed(self, line, kind):
        with pytest.raises(ServiceError) as err:
            parse_request(line)
        assert err.value.kind == kind

    def test_oversize_checked_before_parsing(self):
        huge = _line(source="A" * 512, witness=None)
        with pytest.raises(ServiceError) as err:
            parse_request(huge, max_bytes=256)
        assert err.value.kind == "oversize"
        parse_request(huge, max_bytes=MAX_REQUEST_BYTES)

    def test_ping_needs_no_subject(self):
        request = parse_request(json.dumps({"op": "ping"}))
        assert request.op == "ping"
        assert request.id == ""


class TestContentKey:
    def test_same_computation_same_key(self):
        a = parse_request(_line())
        b = parse_request(_line(id="other-id", deadline_s=9.0))
        assert content_key(a) == content_key(b)

    @pytest.mark.parametrize("mutation", [
        {"witness": "stl"},
        {"defense": "none"},
        {"confirm": True},
        {"secret_ranges": [[1, 2]]},
        {"chaos": "die"},
    ])
    def test_computation_changing_fields_change_key(self, mutation):
        base = parse_request(_line())
        changed = parse_request(_line(**mutation))
        assert content_key(base) != content_key(changed)

    def test_source_and_witness_with_same_text_differ(self):
        src = parse_request(_line(witness=None, source="pht"))
        wit = parse_request(_line())
        assert content_key(src) != content_key(wit)


class TestResponses:
    def test_ok_response_records_tier(self):
        response = ok_response("r1", tier="static", verdicts={"none": True},
                               gadgets=[], degraded=True,
                               degraded_reason="dynamic pool open")
        assert response["ok"] is True
        assert response["tier"] == "static"
        assert response["degraded"] is True
        assert response["degraded_reason"] == "dynamic pool open"
        assert response["v"] == PROTOCOL_VERSION

    def test_error_response_carries_kind_and_retryability(self):
        response = error_response(
            "r1", ServiceError("queue full", kind="overloaded"))
        assert response["ok"] is False
        assert response["error"]["kind"] == "overloaded"
        assert response["error"]["retryable"] is True
        permanent = error_response(
            "r2", ServiceError("bad", kind="malformed"))
        assert permanent["error"]["retryable"] is False

    def test_encode_is_one_line(self):
        line = encode(ok_response("x", tier="cache", verdicts={},
                                  gadgets=[]))
        assert line.endswith("\n")
        assert "\n" not in line[:-1]
        assert json.loads(line)["tier"] == "cache"

    def test_request_subject_prefers_witness(self):
        assert Request(id="a", op="lint", witness="pht").subject == "pht"
        assert Request(id="a", op="lint", source="NOP").subject == "NOP"
