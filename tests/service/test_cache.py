"""Durable verdict cache (corruption-tolerant warm start) + single-flight."""

import asyncio
import json
import os

import pytest

from repro.errors import ServiceError
from repro.service.cache import SingleFlight, VerdictCache


ROW = {"verdicts": {"none": True, "specasan": False}, "gadget_count": 1,
       "tier": "static"}


class TestVerdictCache:
    def test_round_trip(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.put("k1", ROW)
        assert "k1" in cache
        assert cache.get("k1") == ROW
        assert len(cache) == 1

    def test_warm_start_from_disk(self, tmp_path):
        VerdictCache(str(tmp_path)).put("k1", ROW)
        reloaded = VerdictCache(str(tmp_path))
        assert reloaded.get("k1") == ROW
        assert reloaded.rejected == 0

    def test_later_records_win(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.put("k1", ROW)
        newer = dict(ROW, gadget_count=9)
        cache.put("k1", newer)
        assert VerdictCache(str(tmp_path)).get("k1") == newer

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.put("good", ROW)
        with open(cache.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"schema": 1, "key": "forged", "row": {}, '
                         '"sha256": "0000"}\n')
        reloaded = VerdictCache(str(tmp_path))
        assert reloaded.get("good") == ROW
        assert reloaded.get("forged") is None
        assert reloaded.rejected == 2

    def test_torn_tail_is_healed_not_fatal(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.put("k1", ROW)
        with open(cache.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "key": "torn"')   # crash mid-append
        reloaded = VerdictCache(str(tmp_path))
        assert reloaded.get("k1") == ROW
        assert reloaded.rejected == 1
        reloaded.put("k2", ROW)
        again = VerdictCache(str(tmp_path))
        assert again.get("k1") == ROW and again.get("k2") == ROW

    def test_stale_schema_recomputed(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.put("k1", ROW)
        with open(cache.path, encoding="utf-8") as handle:
            record = json.loads(handle.readline())
        record["schema"] = 0
        with open(cache.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        reloaded = VerdictCache(str(tmp_path))
        assert reloaded.get("k1") is None
        assert reloaded.rejected == 1

    def test_missing_file_is_empty_cache(self, tmp_path):
        cache = VerdictCache(str(tmp_path / "fresh"))
        assert len(cache) == 0
        assert os.path.isdir(str(tmp_path / "fresh"))


class TestSingleFlight:
    def test_leader_and_followers_share_one_result(self):
        async def scenario():
            flights = SingleFlight()
            future, leader = flights.begin("k")
            assert leader
            follower_future, follower = flights.begin("k")
            assert not follower
            assert follower_future is future
            flights.resolve("k", result={"answer": 42})
            return await follower_future

        assert asyncio.run(scenario()) == {"answer": 42}

    def test_leader_error_propagates_to_followers(self):
        async def scenario():
            flights = SingleFlight()
            _, leader = flights.begin("k")
            assert leader
            follower_future, _ = flights.begin("k")
            flights.resolve(
                "k", error=ServiceError("pool died", kind="worker-lost"))
            with pytest.raises(ServiceError) as err:
                await follower_future
            return err.value.kind

        assert asyncio.run(scenario()) == "worker-lost"

    def test_new_flight_after_resolution(self):
        async def scenario():
            flights = SingleFlight()
            flights.begin("k")
            flights.resolve("k", result={})
            _, leader = flights.begin("k")
            flights.resolve("k", result={})
            return leader

        assert asyncio.run(scenario()) is True

    def test_abandon_all_fails_everything_in_flight(self):
        async def scenario():
            flights = SingleFlight()
            f1, _ = flights.begin("a")
            f2, _ = flights.begin("b")
            cut = flights.abandon_all(
                ServiceError("drained", kind="cancelled"))
            kinds = []
            for future in (f1, f2):
                try:
                    await future
                except ServiceError as exc:
                    kinds.append(exc.kind)
            return cut, kinds, flights.in_flight

        cut, kinds, remaining = asyncio.run(scenario())
        assert cut == 2
        assert kinds == ["cancelled", "cancelled"]
        assert remaining == 0

    def test_in_flight_counts_only_pending(self):
        async def scenario():
            flights = SingleFlight()
            flights.begin("a")
            flights.begin("b")
            flights.resolve("a", result={})
            return flights.in_flight

        assert asyncio.run(scenario()) == 1
