"""Circuit-breaker and quarantine state machines, driven by a fake clock."""

import pytest

from repro.service.breaker import BreakerState, CircuitBreaker, Quarantine


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, clock):
        breaker = CircuitBreaker(clock=clock)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.healthy
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.healthy
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_consecutive_count(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        for _ in range(5):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_open_decays_to_half_open_after_timeout(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(4.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.healthy

    def test_half_open_bounds_concurrent_probes(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 half_open_probes=1, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()        # the single probe slot
        assert not breaker.allow()    # everyone else waits

    def test_probe_success_closes(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_immediately(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0,
                                 clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()   # one probe failure suffices
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        clock.advance(0.5)
        assert breaker.state is BreakerState.OPEN   # timer restarted

    def test_on_open_fires_once_per_transition(self, clock):
        trips = []
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 clock=clock, on_open=lambda: trips.append(1))
        breaker.record_failure()
        breaker.record_failure()   # already open: no second callback
        assert len(trips) == 1
        clock.advance(1.5)
        breaker.record_failure()   # half-open probe fails: re-open
        assert len(trips) == 2

    def test_snapshot_is_json_friendly(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["consecutive_failures"] == 1
        assert snap["opens"] == 1

    def test_rejects_bad_threshold(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)


class TestQuarantine:
    def test_trips_at_death_threshold(self, clock):
        quarantine = Quarantine(death_threshold=2, clock=clock)
        assert quarantine.record_death("k1") is False
        assert not quarantine.blocked("k1")
        assert quarantine.record_death("k1") is True
        assert quarantine.blocked("k1")
        assert quarantine.held == 1

    def test_keys_are_independent(self, clock):
        quarantine = Quarantine(death_threshold=2, clock=clock)
        quarantine.record_death("k1")
        quarantine.record_death("k2")
        assert not quarantine.blocked("k1")
        assert not quarantine.blocked("k2")

    def test_success_clears_the_count(self, clock):
        quarantine = Quarantine(death_threshold=2, clock=clock)
        quarantine.record_death("k1")
        quarantine.record_success("k1")
        assert quarantine.record_death("k1") is False

    def test_permanent_hold_without_timeout(self, clock):
        quarantine = Quarantine(death_threshold=1, hold_s=None, clock=clock)
        quarantine.record_death("k1")
        clock.advance(10_000)
        assert quarantine.blocked("k1")

    def test_timed_release_returns_to_probation(self, clock):
        quarantine = Quarantine(death_threshold=2, hold_s=60.0, clock=clock)
        quarantine.record_death("k1")
        quarantine.record_death("k1")
        assert quarantine.blocked("k1")
        clock.advance(61)
        assert not quarantine.blocked("k1")
        # Probation: a single further death re-trips at once.
        assert quarantine.record_death("k1") is True
        assert quarantine.blocked("k1")

    def test_deaths_while_blocked_are_not_double_counted(self, clock):
        quarantine = Quarantine(death_threshold=2, clock=clock)
        quarantine.record_death("k1")
        quarantine.record_death("k1")
        assert quarantine.record_death("k1") is False   # already held

    def test_on_quarantine_callback(self, clock):
        seen = []
        quarantine = Quarantine(death_threshold=1, clock=clock,
                                on_quarantine=seen.append)
        quarantine.record_death("bad-hash")
        assert seen == ["bad-hash"]

    def test_snapshot_partitions_held_and_probation(self, clock):
        quarantine = Quarantine(death_threshold=2, clock=clock)
        quarantine.record_death("held-key")
        quarantine.record_death("held-key")
        quarantine.record_death("probation-key")
        snap = quarantine.snapshot()
        assert snap["quarantined"] == ["held-key"]
        assert snap["probation"] == {"probation-key": 1}

    def test_rejects_bad_threshold(self, clock):
        with pytest.raises(ValueError):
            Quarantine(death_threshold=0, clock=clock)
