"""Request-scoped tracing end to end: trace IDs in responses, the span
log on disk, the timing-breakdown envelope, and the flight-recorder dump
on induced failure."""

import asyncio
import json
import os

import pytest

from repro.service.__main__ import _Client
from repro.service.server import FLIGHT_DUMP, SPANS_LOG
from repro.telemetry.obs import (SPAN_CACHE_LOOKUP, SPAN_POOL_DISPATCH,
                                 SPAN_QUEUE_WAIT, SPAN_STATIC_LINT,
                                 is_trace_id, load_spans, render_span_tree,
                                 span_forest)

from tests.service.test_server import (config_for, crashing_argv,
                                       start_service, stop_service)


class TestTracingEndToEnd:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        """One scripted run: a fresh lint, a cache hit, a client-supplied
        trace, and an induced worker-loss failure; then drain."""
        tmp_path = tmp_path_factory.mktemp("svc-tracing")

        async def scenario():
            config = config_for(tmp_path, breaker_threshold=1,
                                max_restarts=0)
            service = await start_service(config)
            client = await _Client.connect(service.port)
            fresh = await client.request(
                {"id": "r1", "op": "lint", "witness": "pht"}, timeout=60.0)
            hit = await client.request(
                {"id": "r2", "op": "lint", "witness": "pht"})
            tagged = await client.request(
                {"id": "r3", "op": "lint", "witness": "pht",
                 "trace": "cafe1234cafe1234"})
            # Induced failure: both pools die for never-seen content, so
            # the ladder runs dry and the request errors with the flight
            # tail attached server-side.
            service.static_pool.worker_argv = crashing_argv
            service.dynamic_pool.worker_argv = crashing_argv
            failed = await client.request(
                {"id": "r4", "op": "lint", "witness": "stl",
                 "trace": "deadbeefdeadbeef"}, timeout=60.0)
            client.close()
            await stop_service(service)
            return fresh, hit, tagged, failed, config.state_dir

        return asyncio.run(scenario())

    def test_response_carries_minted_trace(self, traced):
        fresh, hit, _, _, _ = traced
        assert is_trace_id(fresh["trace"]) and len(fresh["trace"]) == 16
        assert is_trace_id(hit["trace"])
        assert fresh["trace"] != hit["trace"]

    def test_client_supplied_trace_is_echoed(self, traced):
        _, _, tagged, failed, _ = traced
        assert tagged["trace"] == "cafe1234cafe1234"
        assert failed["trace"] == "deadbeefdeadbeef"

    def test_timing_parts_sum_to_total(self, traced):
        fresh, hit, tagged, _, _ = traced
        for response in (fresh, hit, tagged):
            timings = response["timings"]
            parts = (timings["queue_wait_ms"] + timings["analysis_ms"]
                     + timings["confirm_ms"] + timings["other_ms"])
            assert parts == pytest.approx(timings["total_ms"], abs=0.01)
        assert fresh["timings"]["analysis_ms"] > 0.0
        assert hit["timings"]["analysis_ms"] == 0.0   # cache tier: no worker

    def test_span_log_reconstructs_the_request(self, traced):
        fresh, _, _, failed, state_dir = traced
        spans = load_spans(os.path.join(state_dir, SPANS_LOG))
        forest = span_forest(spans)
        assert fresh["trace"] in forest
        root, kids = forest[fresh["trace"]][0]
        assert root.name == "request"
        assert root.status == "ok"
        names = [kid.name for kid, _ in kids]
        assert SPAN_QUEUE_WAIT in names
        assert SPAN_CACHE_LOOKUP in names
        assert SPAN_POOL_DISPATCH in names
        dispatch_kids = next(grand for kid, grand in kids
                             if kid.name == SPAN_POOL_DISPATCH)
        assert SPAN_STATIC_LINT in [kid.name for kid, _ in dispatch_kids]
        # The failed request's root span records the error status.
        failed_root = forest[failed["trace"]][0][0]
        assert failed_root.status == "error"

    def test_span_tree_renders_the_trace(self, traced):
        fresh, _, _, _, state_dir = traced
        spans = load_spans(os.path.join(state_dir, SPANS_LOG))
        text = render_span_tree(spans, trace_id=fresh["trace"])
        assert f"trace {fresh['trace']}" in text
        assert "request" in text and SPAN_POOL_DISPATCH in text

    def test_flight_dump_holds_the_failed_trace(self, traced):
        _, _, _, failed, state_dir = traced
        with open(os.path.join(state_dir, FLIGHT_DUMP),
                  encoding="utf-8") as handle:
            dump = json.load(handle)
        assert dump["recorded"] >= 1
        traces = {event.get("trace") for event in dump["events"]}
        assert failed["trace"] in traces
        events = {event["event"] for event in dump["events"]}
        assert "request-error" in events

    def test_shutdown_report_references_flight_dump(self, traced):
        *_, state_dir = traced
        with open(os.path.join(state_dir, "shutdown-report.json"),
                  encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["flight"]["dump"] == FLIGHT_DUMP
        assert report["flight"]["recorded"] >= 1
