"""Admission control: typed shedding, fairness, drain semantics."""

import asyncio

import pytest

from repro.errors import ServiceError
from repro.service.admission import AdmissionController


def run(coro):
    return asyncio.run(coro)


class TestBounds:
    def test_global_queue_bound_sheds_overloaded(self):
        async def scenario():
            control = AdmissionController(max_queue=2, max_per_client=5)
            control.admit("a", 1)
            control.admit("b", 2)
            with pytest.raises(ServiceError) as err:
                control.admit("c", 3)
            return err.value.kind, control.queued

        kind, queued = run(scenario())
        assert kind == "overloaded"
        assert queued == 2

    def test_per_client_bound_sheds_client_over_limit(self):
        async def scenario():
            control = AdmissionController(max_queue=10, max_per_client=2)
            control.admit("greedy", 1)
            control.admit("greedy", 2)
            with pytest.raises(ServiceError) as err:
                control.admit("greedy", 3)
            control.admit("other", 4)   # other clients still get in
            return err.value.kind

        assert run(scenario()) == "client-over-limit"

    def test_outstanding_includes_running_work(self):
        async def scenario():
            control = AdmissionController(max_queue=10, max_per_client=2)
            control.admit("c", 1)
            control.admit("c", 2)
            await control.next()   # now running, still outstanding
            with pytest.raises(ServiceError) as err:
                control.admit("c", 3)
            control.done("c")      # response written: slot refunded
            control.admit("c", 4)
            return err.value.kind, control.outstanding

        kind, outstanding = run(scenario())
        assert kind == "client-over-limit"
        assert outstanding == 2

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionController(max_per_client=0)


class TestFairness:
    def test_round_robin_across_clients(self):
        async def scenario():
            control = AdmissionController(max_queue=10, max_per_client=5)
            for i in range(3):
                control.admit("a", f"a{i}")
            control.admit("b", "b0")
            control.admit("c", "c0")
            order = []
            for _ in range(5):
                client, item = await control.next()
                order.append(item)
                control.done(client)
            return order

        # Client a's burst interleaves with b and c instead of draining
        # front-to-back; per-client order stays FIFO.
        order = run(scenario())
        assert order == ["a0", "b0", "c0", "a1", "a2"]

    def test_next_waits_for_work(self):
        async def scenario():
            control = AdmissionController()

            async def feed():
                await asyncio.sleep(0.01)
                control.admit("late", "item")

            feeder = asyncio.create_task(feed())
            entry = await asyncio.wait_for(control.next(), 1.0)
            await feeder
            return entry

        assert run(scenario()) == ("late", "item")


class TestDrain:
    def test_closed_admission_is_typed_draining(self):
        async def scenario():
            control = AdmissionController()
            control.close()
            with pytest.raises(ServiceError) as err:
                control.admit("a", 1)
            return err.value.kind

        assert run(scenario()) == "draining"

    def test_queued_work_still_dispatches_after_close(self):
        async def scenario():
            control = AdmissionController()
            control.admit("a", 1)
            control.close()
            first = await control.next()
            sentinel = await control.next()
            return first, sentinel

        first, sentinel = run(scenario())
        assert first == ("a", 1)
        assert sentinel is None

    def test_flush_empties_the_queue(self):
        async def scenario():
            control = AdmissionController()
            control.admit("a", 1)
            control.admit("b", 2)
            control.close()
            flushed = control.flush()
            return flushed, control.queued, await control.next()

        flushed, queued, sentinel = run(scenario())
        assert [item for _, item in flushed] == [1, 2]
        assert queued == 0
        assert sentinel is None

    def test_snapshot_reports_state(self):
        async def scenario():
            control = AdmissionController(max_queue=4, max_per_client=2)
            control.admit("a", 1)
            return control.snapshot()

        snap = run(scenario())
        assert snap["queued"] == 1
        assert snap["outstanding"] == {"a": 1}
        assert snap["draining"] is False
