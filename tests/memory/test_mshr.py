"""Miss Status Holding Registers."""

from repro.memory.mshr import MSHRFile


class TestMSHR:
    def test_allocate_and_lookup(self):
        mshrs = MSHRFile(entries=2)
        entry = mshrs.allocate(0x1000, ready_cycle=50)
        assert mshrs.lookup(0x1000) is entry
        assert mshrs.lookup(0x2000) is None

    def test_merge_counts(self):
        mshrs = MSHRFile(entries=2)
        entry = mshrs.allocate(0x1000, 50)
        mshrs.merge(entry)
        mshrs.merge(entry)
        assert entry.merged == 2
        assert mshrs.merges == 2

    def test_full(self):
        mshrs = MSHRFile(entries=2)
        mshrs.allocate(0x1000, 10)
        mshrs.allocate(0x2000, 20)
        assert mshrs.full
        assert mshrs.earliest_ready() == 10

    def test_drain_removes_completed(self):
        mshrs = MSHRFile(entries=4)
        mshrs.allocate(0x1000, 10)
        mshrs.allocate(0x2000, 30)
        done = mshrs.drain(15)
        assert [e.line_address for e in done] == [0x1000]
        assert mshrs.lookup(0x2000) is not None

    def test_unsafe_flag_defaults_false(self):
        mshrs = MSHRFile(entries=1)
        entry = mshrs.allocate(0x1000, 5)
        assert entry.unsafe is False
        entry.unsafe = True  # SpecASan's single-bit flag (§3.3.1)
        assert mshrs.lookup(0x1000).unsafe

    def test_flush(self):
        mshrs = MSHRFile(entries=2)
        mshrs.allocate(0x1000, 10)
        mshrs.flush()
        assert len(mshrs) == 0
