"""Line-Fill Buffer: fills, stale windows, tag coherence."""

from repro.memory.lfb import LineFillBuffer


class TestAllocation:
    def test_allocate_and_lookup(self):
        lfb = LineFillBuffer(entries=4)
        entry = lfb.allocate(0x1000, fill_ready_cycle=100)
        assert lfb.lookup(0x1000) is entry
        assert not entry.filled

    def test_round_robin_reuse(self):
        lfb = LineFillBuffer(entries=2)
        first = lfb.allocate(0x1000, 10)
        second = lfb.allocate(0x2000, 10)
        assert first is not second
        lfb.complete_fill(first, b"x" * 64, (1, 1, 1, 1))
        lfb.complete_fill(second, b"y" * 64, (2, 2, 2, 2))
        third = lfb.allocate(0x3000, 20)
        assert third in (first, second)

    def test_stale_content_preserved_until_fill(self):
        """The MDS window: a reused entry keeps its old bytes (§3.3.3)."""
        lfb = LineFillBuffer(entries=1)
        entry = lfb.allocate(0x1000, 10)
        lfb.complete_fill(entry, b"SECRET!!" + bytes(56), (5, 5, 5, 5))
        reused = lfb.allocate(0x2000, 100)
        assert reused is entry
        assert reused.stale_line_address == 0x1000
        assert reused.data.startswith(b"SECRET!!")   # stale bytes observable
        assert reused.locks == (5, 5, 5, 5)          # stale locks checked

    def test_drain_returns_arrived_fills(self):
        lfb = LineFillBuffer(entries=2)
        lfb.allocate(0x1000, 10)
        lfb.allocate(0x2000, 99)
        arrived = lfb.drain(cycle=50)
        assert [e.line_address for e in arrived] == [0x1000]


class TestCoherence:
    def test_update_lock_in_filled_entry(self):
        """STG must update LFB copies too (§3.3.3)."""
        lfb = LineFillBuffer(entries=2)
        entry = lfb.allocate(0x1000, 10)
        lfb.complete_fill(entry, bytes(64), (0, 0, 0, 0))
        lfb.update_lock(0x1000, granule_offset=2, tag=9)
        assert entry.locks == (0, 0, 9, 0)

    def test_invalidate(self):
        lfb = LineFillBuffer(entries=2)
        lfb.allocate(0x1000, 10)
        lfb.invalidate(0x1000)
        assert lfb.lookup(0x1000) is None

    def test_flush(self):
        lfb = LineFillBuffer(entries=2)
        lfb.allocate(0x1000, 10)
        lfb.flush()
        assert lfb.lookup(0x1000) is None
