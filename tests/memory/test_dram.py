"""Main memory + tag storage."""

import pytest

from repro.errors import MemoryFault
from repro.memory.dram import MainMemory
from repro.mte.tags import with_key


@pytest.fixture
def memory():
    return MainMemory()


class TestData:
    def test_read_write_bytes(self, memory):
        memory.write(0x1000, b"hello")
        assert memory.read(0x1000, 5) == b"hello"

    def test_word_round_trip(self, memory):
        memory.write_word(0x2000, 0xDEADBEEFCAFE)
        assert memory.read_word(0x2000) == 0xDEADBEEFCAFE

    def test_word_wraps_to_64_bits(self, memory):
        memory.write_word(0x2000, 1 << 65)
        assert memory.read_word(0x2000) == 0

    def test_tagged_address_is_transparent(self, memory):
        memory.write_word(with_key(0x3000, 5), 42)
        assert memory.read_word(0x3000) == 42

    def test_out_of_range_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.read(memory.size, 1)
        with pytest.raises(MemoryFault):
            memory.write(memory.size - 2, b"1234")

    def test_load_image(self, memory):
        memory.load_image(0x4000, bytes(range(16)))
        assert memory.read(0x4008, 4) == bytes([8, 9, 10, 11])


class TestTags:
    def test_lock_round_trip(self, memory):
        memory.set_lock(0x1000, 7)
        assert memory.lock_of(0x1000) == 7
        assert memory.lock_of(with_key(0x1000, 2)) == 7

    def test_tag_range(self, memory):
        memory.tag_range(0x2000, 64, 3)
        assert memory.line_locks(0x2000, 64) == (3, 3, 3, 3)

    def test_line_locks_mixed(self, memory):
        memory.tag_range(0x2000, 16, 1)
        memory.tag_range(0x2030, 16, 9)
        assert memory.line_locks(0x2000, 64) == (1, 0, 0, 9)
