"""Property-based hierarchy invariants."""

from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import AccessKind, MemRequest
from repro.mte.tags import with_key

addresses = st.integers(min_value=0, max_value=(1 << 20) - 8)
tags = st.integers(min_value=0, max_value=15)


class TestDataCorrectness:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(addresses, st.integers(0, (1 << 64) - 1)),
                    min_size=1, max_size=12))
    def test_loads_always_return_memory_truth(self, writes):
        """Whatever the cache/LFB state, unwithheld responses carry the
        architectural memory contents."""
        hierarchy = MemoryHierarchy(SystemConfig())
        cycle = 0
        for address, value in writes:
            address &= ~7
            hierarchy.memory.write_word(address, value)
            response = hierarchy.access(MemRequest(
                address=address, size=8, kind=AccessKind.LOAD, cycle=cycle))
            assert int.from_bytes(response.data, "little") == value & (2**64 - 1)
            cycle = response.ready_cycle + 1

    @settings(max_examples=25, deadline=None)
    @given(addresses, tags, tags)
    def test_tag_check_verdict_matches_tag_storage(self, address, lock, key):
        hierarchy = MemoryHierarchy(SystemConfig())
        address &= ~15
        hierarchy.memory.tag_range(address, 64, lock)
        response = hierarchy.access(MemRequest(
            address=with_key(address, key), size=8, kind=AccessKind.LOAD,
            cycle=0, check_tag=True))
        assert response.tag_ok == (key == lock)

    @settings(max_examples=20, deadline=None)
    @given(addresses, tags, tags)
    def test_blocked_mismatches_never_install_anywhere(self, address, lock, key):
        hierarchy = MemoryHierarchy(SystemConfig())
        address &= ~15
        hierarchy.memory.tag_range(address, 64, lock)
        response = hierarchy.access(MemRequest(
            address=with_key(address, key), size=8, kind=AccessKind.LOAD,
            cycle=0, check_tag=True, block_fill_on_mismatch=True))
        hierarchy.drain(response.ready_cycle + 100)
        if key != lock:
            assert response.data_withheld
            assert not hierarchy.is_cached(address)
        else:
            assert not response.data_withheld
            assert hierarchy.is_cached(address)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(addresses, min_size=1, max_size=20))
    def test_latency_is_monotone_in_presence(self, sequence):
        """A warm probe is never slower than a cold one."""
        hierarchy = MemoryHierarchy(SystemConfig())
        cycle = 0
        for address in sequence:
            cold = hierarchy.probe_latency(address)
            response = hierarchy.access(MemRequest(
                address=address, size=8, kind=AccessKind.LOAD, cycle=cycle))
            hierarchy.drain(response.ready_cycle + 1)
            warm = hierarchy.probe_latency(address)
            assert warm <= cold
            cycle = response.ready_cycle + 2
