"""The invalidation directory."""

from repro.memory.coherence import CoherenceDirectory


class TestDirectory:
    def test_store_invalidates_other_sharers(self):
        directory = CoherenceDirectory(num_cores=3)
        invalidated = []
        directory.register_invalidator(lambda c, l: invalidated.append((c, l)))
        directory.on_fill(0, 0x1000)
        directory.on_fill(1, 0x1000)
        directory.on_fill(2, 0x1000)
        count = directory.on_store(1, 0x1000)
        assert count == 2
        assert sorted(invalidated) == [(0, 0x1000), (2, 0x1000)]
        assert directory.sharers_of(0x1000) == {1}

    def test_store_with_no_other_sharers_is_free(self):
        directory = CoherenceDirectory(num_cores=2)
        directory.on_fill(0, 0x2000)
        assert directory.on_store(0, 0x2000) == 0

    def test_evict_removes_sharer(self):
        directory = CoherenceDirectory(num_cores=2)
        directory.on_fill(0, 0x1000)
        directory.on_evict(0, 0x1000)
        assert directory.sharers_of(0x1000) == set()

    def test_tag_update_broadcast_counts(self):
        """STG updates ride the clean-and-invalidate path (§3.3.1)."""
        directory = CoherenceDirectory(num_cores=2)
        directory.on_fill(0, 0x1000)
        directory.on_fill(1, 0x1000)
        directory.on_tag_update(0, 0x1000)
        assert directory.tag_update_broadcasts == 1
        assert directory.sharers_of(0x1000) == {0}
