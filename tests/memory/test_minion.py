"""The GhostMinion shadow structure."""

from repro.memory.minion import MinionCache


class TestMinion:
    def test_fill_and_lookup(self):
        minion = MinionCache(entries=4)
        minion.fill(0x1000, (1, 1, 1, 1), owner_seq=5)
        assert minion.contains(0x1000)
        assert minion.lookup(0x1000).owner_seq == 5

    def test_refill_keeps_youngest_owner(self):
        minion = MinionCache(entries=4)
        minion.fill(0x1000, (), owner_seq=5)
        minion.fill(0x1000, (), owner_seq=9)
        assert minion.lookup(0x1000).owner_seq == 9

    def test_capacity_eviction_is_lru(self):
        minion = MinionCache(entries=2)
        minion.fill(0x1000, (), 1)
        minion.fill(0x2000, (), 2)
        minion.lookup(0x1000)
        minion.fill(0x3000, (), 3)
        assert not minion.contains(0x2000)
        assert minion.capacity_evictions == 1

    def test_promotion_removes_line(self):
        minion = MinionCache(entries=2)
        minion.fill(0x1000, (7,), 1)
        line = minion.promote(0x1000)
        assert line.locks == (7,)
        assert not minion.contains(0x1000)
        assert minion.promote(0x1000) is None

    def test_squash_drops_younger_owners_only(self):
        """Strictness ordering: squashed loads leave no shadow trace."""
        minion = MinionCache(entries=4)
        minion.fill(0x1000, (), owner_seq=3)
        minion.fill(0x2000, (), owner_seq=8)
        dropped = minion.squash_younger(5)
        assert dropped == 1
        assert minion.contains(0x1000)
        assert not minion.contains(0x2000)
