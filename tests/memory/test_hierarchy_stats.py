"""Exact-count checks on HierarchyStats via scripted request sequences."""

import pytest

from repro.config import SystemConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import AccessKind, MemRequest, ServedFrom
from repro.mte.tags import with_key


@pytest.fixture
def hierarchy():
    h = MemoryHierarchy(SystemConfig())
    h.memory.write_word(0x2000, 0xABCD)
    h.memory.tag_range(0x2000, 64, 0x3)
    return h


def load(hierarchy, address, cycle, **kwargs):
    return hierarchy.access(MemRequest(
        address=address, size=8, kind=AccessKind.LOAD, cycle=cycle, **kwargs))


class TestHitCounters:
    def test_l1_hits_count_exactly(self, hierarchy):
        cold = load(hierarchy, 0x2000, 0)
        assert hierarchy.stats.l1_hits == 0
        assert hierarchy.stats.dram_fetches == 1
        hierarchy.drain(cold.ready_cycle + 1)
        for n in range(3):
            warm = load(hierarchy, 0x2000, cold.ready_cycle + 10 + n)
            assert warm.served_from is ServedFrom.L1
        assert hierarchy.stats.l1_hits == 3
        assert hierarchy.stats.loads == 4

    def test_lfb_hits_count_merges_on_inflight_line(self, hierarchy):
        load(hierarchy, 0x2000, 0)
        for n in range(2):  # both merges hit the in-flight LFB entry
            merged = load(hierarchy, 0x2008, 2 + n)
            assert merged.served_from is ServedFrom.LFB
        assert hierarchy.stats.lfb_hits == 2
        assert hierarchy.stats.dram_fetches == 1


class TestWithheldResponses:
    def test_each_blocked_mismatch_counts_once(self, hierarchy):
        warm = load(hierarchy, 0x2000, 0)
        hierarchy.drain(warm.ready_cycle + 1)
        for n in range(2):
            bad = load(hierarchy, with_key(0x2000, 0x5),
                       warm.ready_cycle + 10 + n,
                       check_tag=True, block_fill_on_mismatch=True)
            assert bad.data_withheld and bad.data == b""
        assert hierarchy.stats.withheld_responses == 2

    def test_unblocked_mismatch_does_not_count(self, hierarchy):
        warm = load(hierarchy, 0x2000, 0)
        hierarchy.drain(warm.ready_cycle + 1)
        bad = load(hierarchy, with_key(0x2000, 0x5), warm.ready_cycle + 10,
                   check_tag=True)  # baseline MTE: fill proceeds
        assert bad.tag_ok is False and not bad.data_withheld
        assert hierarchy.stats.withheld_responses == 0

    def test_matching_key_does_not_count(self, hierarchy):
        warm = load(hierarchy, 0x2000, 0)
        hierarchy.drain(warm.ready_cycle + 1)
        ok = load(hierarchy, with_key(0x2000, 0x3), warm.ready_cycle + 10,
                  check_tag=True, block_fill_on_mismatch=True)
        assert ok.tag_ok is True
        assert hierarchy.stats.withheld_responses == 0


class TestStaleForwardWindows:
    def test_recycled_lfb_entry_opens_exactly_one_window(self, hierarchy):
        capacity = hierarchy.config.memory.lfb_entries
        for index in range(capacity + 1):
            hierarchy.memory.write_word(0x10000 + index * 0x1000, index)
            hierarchy.memory.tag_range(0x10000 + index * 0x1000, 64, 0x3)
        cycle = 0
        # Fill every LFB slot with a completed fill.
        for index in range(capacity):
            response = load(hierarchy, 0x10000 + index * 0x1000, cycle)
            hierarchy.drain(response.ready_cycle + 1)
            cycle = response.ready_cycle + 2
        # The next allocation recycles slot 0; an assisted load that merges
        # before the fill arrives samples the previous occupant's bytes —
        # the RIDL/ZombieLoad window.
        victim = 0x10000 + capacity * 0x1000
        load(hierarchy, victim, cycle)
        probe = load(hierarchy, victim + 8, cycle + 1,
                     assist=True, speculative=True)
        assert probe.served_from is ServedFrom.LFB
        assert probe.stale_data is not None
        assert hierarchy.stats.stale_forward_windows == 1

    def test_unassisted_merge_opens_no_window(self, hierarchy):
        load(hierarchy, 0x2000, 0)
        merged = load(hierarchy, 0x2008, 2)  # ordinary merge, no assist
        assert merged.served_from is ServedFrom.LFB
        assert merged.stale_data is None
        assert hierarchy.stats.stale_forward_windows == 0


class TestRegistryView:
    def test_formulas_derive_from_the_same_counters(self, hierarchy):
        cold = load(hierarchy, 0x2000, 0)
        hierarchy.drain(cold.ready_cycle + 1)
        load(hierarchy, 0x2000, cold.ready_cycle + 10)
        registry = hierarchy.stats.registry()
        assert registry.get("mem.loads").value == 2
        assert registry.get("mem.l1_hit_rate").value == pytest.approx(0.5)
