"""The full hierarchy: levels, tag-check points, fills, and probes."""

import pytest

from repro.config import SystemConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import AccessKind, MemRequest, ServedFrom
from repro.mte.tags import with_key


@pytest.fixture
def hierarchy():
    h = MemoryHierarchy(SystemConfig())
    h.memory.write_word(0x2000, 0xABCD)
    h.memory.tag_range(0x2000, 64, 0x3)
    return h


def load(hierarchy, address, cycle, **kwargs):
    return hierarchy.access(MemRequest(
        address=address, size=8, kind=AccessKind.LOAD, cycle=cycle, **kwargs))


class TestLevels:
    def test_cold_miss_goes_to_dram(self, hierarchy):
        response = load(hierarchy, 0x2000, 0)
        assert response.served_from is ServedFrom.DRAM
        assert response.ready_cycle > 80
        assert response.data == (0xABCD).to_bytes(8, "little")

    def test_fill_lands_in_l1_and_l2(self, hierarchy):
        response = load(hierarchy, 0x2000, 0)
        hierarchy.drain(response.ready_cycle + 1)
        assert hierarchy.l1ds[0].contains(0x2000)
        assert hierarchy.l2.contains(0x2000)

    def test_warm_hit_is_l1_latency(self, hierarchy):
        first = load(hierarchy, 0x2000, 0)
        second = load(hierarchy, 0x2000, first.ready_cycle + 5)
        assert second.served_from is ServedFrom.L1
        assert (second.ready_cycle - (first.ready_cycle + 5)
                == hierarchy.config.l1d.hit_latency)

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        first = load(hierarchy, 0x2000, 0)
        hierarchy.drain(first.ready_cycle + 1)
        hierarchy.l1ds[0].invalidate(0x2000)
        hierarchy.lfbs[0].flush()  # drop the lingering fill-buffer copy too
        response = load(hierarchy, 0x2000, first.ready_cycle + 10)
        assert response.served_from is ServedFrom.L2

    def test_pending_same_line_merges(self, hierarchy):
        first = load(hierarchy, 0x2000, 0)
        merged = load(hierarchy, 0x2008, 3)
        assert merged.ready_cycle <= first.ready_cycle + 4

    def test_unmapped_access_reports_fault_without_state_change(self, hierarchy):
        response = load(hierarchy, 1 << 40, 0)
        assert response.faulted
        assert response.data == bytes(8)
        assert hierarchy.l2.resident_lines == 0


class TestTagChecks:
    def test_check_at_dram(self, hierarchy):
        response = load(hierarchy, with_key(0x2000, 0x3), 0, check_tag=True)
        assert response.tag_ok is True

    def test_mismatch_blocked_leaves_no_trace(self, hierarchy):
        response = load(hierarchy, with_key(0x2000, 0x5), 0, check_tag=True,
                        block_fill_on_mismatch=True)
        assert response.tag_ok is False
        assert response.data_withheld
        hierarchy.drain(response.ready_cycle + 10)
        assert not hierarchy.is_cached(0x2000)

    def test_mismatch_unblocked_fills_anyway(self, hierarchy):
        """Baseline MTE semantics: the speculative fill still happens."""
        response = load(hierarchy, with_key(0x2000, 0x5), 0, check_tag=True)
        assert response.tag_ok is False and not response.data_withheld
        hierarchy.drain(response.ready_cycle + 1)
        assert hierarchy.is_cached(0x2000)

    def test_check_at_l1_after_warm(self, hierarchy):
        warm = load(hierarchy, 0x2000, 0)
        hierarchy.drain(warm.ready_cycle + 1)
        response = load(hierarchy, with_key(0x2000, 0x4),
                        warm.ready_cycle + 5, check_tag=True,
                        block_fill_on_mismatch=True)
        assert response.served_from is ServedFrom.L1
        assert response.tag_ok is False
        # The check was resolved at L1 latency, not a DRAM round trip.
        assert (response.tag_known_cycle - (warm.ready_cycle + 5)
                <= hierarchy.config.l1d.hit_latency)


class TestCommitPaths:
    def test_commit_store_updates_memory_and_caches(self, hierarchy):
        hierarchy.commit_store(0x3000, b"\x99" * 8, core_id=0, cycle=5)
        assert hierarchy.memory.read(0x3000, 1) == b"\x99"
        assert hierarchy.l1ds[0].contains(0x3000)

    def test_store_tag_updates_all_copies(self, hierarchy):
        warm = load(hierarchy, 0x2000, 0)
        hierarchy.drain(warm.ready_cycle + 1)
        hierarchy.store_tag(0x2000, 0xA, core_id=0, cycle=warm.ready_cycle + 2)
        assert hierarchy.memory.lock_of(0x2000) == 0xA
        line = hierarchy.l1ds[0].lookup(0x2000, touch=False)
        assert line.locks[0] == 0xA

    def test_read_tag(self, hierarchy):
        assert hierarchy.read_tag(0x2000) == 0x3


class TestMinionPath:
    def test_minion_fill_bypasses_primary_hierarchy(self, hierarchy):
        response = load(hierarchy, 0x2000, 0, fill_to_minion=True, seq=7)
        hierarchy.drain(response.ready_cycle + 5)
        assert not hierarchy.is_cached(0x2000)
        assert hierarchy.minions[0].contains(0x2000)

    def test_promote_installs_into_l1_and_l2(self, hierarchy):
        response = load(hierarchy, 0x2000, 0, fill_to_minion=True, seq=7)
        hierarchy.drain(response.ready_cycle + 5)
        hierarchy.promote_minion(0x2000, core_id=0)
        assert hierarchy.l1ds[0].contains(0x2000)
        assert hierarchy.l2.contains(0x2000)

    def test_squash_drops_shadow_lines(self, hierarchy):
        response = load(hierarchy, 0x2000, 0, fill_to_minion=True, seq=7)
        hierarchy.drain(response.ready_cycle + 5)
        hierarchy.squash_minion(core_id=0, owner_seq=7)
        assert not hierarchy.minions[0].contains(0x2000)
        assert not hierarchy.is_cached(0x2000)


class TestProbes:
    def test_probe_latency_tiers(self, hierarchy):
        cold = hierarchy.probe_latency(0x2000)
        warm = load(hierarchy, 0x2000, 0)
        hierarchy.drain(warm.ready_cycle + 1)
        hot = hierarchy.probe_latency(0x2000)
        assert hot < cold
        assert hot == hierarchy.config.l1d.hit_latency

    def test_probe_does_not_perturb_state(self, hierarchy):
        before = hierarchy.l2.resident_lines
        hierarchy.probe_latency(0x8000)
        hierarchy.is_cached(0x8000)
        assert hierarchy.l2.resident_lines == before


class TestQuiesce:
    def test_quiesce_settles_pending_fills(self, hierarchy):
        load(hierarchy, 0x2000, 0)
        hierarchy.quiesce()
        assert hierarchy.is_cached(0x2000)
        # A fresh-timebase access must not wait on stale fill cycles.
        response = load(hierarchy, 0x2008, 0)
        assert response.served_from is ServedFrom.L1
