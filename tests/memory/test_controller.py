"""The memory controller's paired data + tag-storage accesses (§3.3.4)."""

import pytest

from repro.memory.controller import MemoryController
from repro.memory.dram import MainMemory
from repro.mte.tags import with_key


@pytest.fixture
def controller():
    memory = MainMemory()
    memory.tag_range(0x1000, 64, 0x6)
    return MemoryController(memory)


class TestLatency:
    def test_unchecked_line_latency(self, controller):
        base = controller.config.controller_latency + controller.config.dram_latency
        assert controller.line_latency(check_tag=False) == base

    def test_tag_read_adds_latency(self, controller):
        delta = (controller.line_latency(True)
                 - controller.line_latency(False))
        assert delta == controller.config.tag_fetch_extra_latency


class TestTagCheck:
    def test_matching_key_delivers(self, controller):
        result = controller.fetch_line(with_key(0x1000, 0x6), 0x1000, 64,
                                       cycle=0, check_tag=True,
                                       block_fill_on_mismatch=True)
        assert result.tag_ok is True
        assert result.deliver_data
        assert result.locks == (6, 6, 6, 6)

    def test_mismatch_blocks_delivery_when_requested(self, controller):
        result = controller.fetch_line(with_key(0x1000, 0x2), 0x1000, 64,
                                       cycle=0, check_tag=True,
                                       block_fill_on_mismatch=True)
        assert result.tag_ok is False
        assert not result.deliver_data
        assert controller.blocked_fills == 1

    def test_mismatch_without_blocking_still_delivers(self, controller):
        """Baseline MTE: the data returns; the fault is architectural."""
        result = controller.fetch_line(with_key(0x1000, 0x2), 0x1000, 64,
                                       cycle=0, check_tag=True,
                                       block_fill_on_mismatch=False)
        assert result.tag_ok is False
        assert result.deliver_data

    def test_unchecked_fetch_reports_no_verdict(self, controller):
        result = controller.fetch_line(0x1000, 0x1000, 64, cycle=0,
                                       check_tag=False,
                                       block_fill_on_mismatch=False)
        assert result.tag_ok is None
        assert controller.tag_reads == 0

    def test_lock_read_write(self, controller):
        controller.write_lock(0x2000, 0xB)
        assert controller.read_lock(0x2000) == 0xB
