"""Set-associative cache with allocation-tag sidecars."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memory.cache import Cache
from repro.mte.tags import with_key


def make_cache(size=4096, assoc=2):
    return Cache(CacheConfig(name="T", size_bytes=size, associativity=assoc))


class TestGeometry:
    def test_line_address_strips_tag_and_offset(self):
        cache = make_cache()
        assert cache.line_address(with_key(0x1234, 7)) == 0x1200

    def test_granule_offset(self):
        cache = make_cache()
        assert cache.granule_offset(0x1000) == 0
        assert cache.granule_offset(0x1010) == 1
        assert cache.granule_offset(0x103F) == 3


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0x1000) is None
        cache.insert(0x1000)
        assert cache.lookup(0x1008) is not None  # same line

    def test_contains_does_not_touch_lru(self):
        cache = make_cache(size=256, assoc=2)  # 2 sets
        cache.insert(0x000)
        cache.insert(0x100)   # same set (stride = sets*line = 0x100)
        cache.contains(0x000)  # must NOT refresh recency
        cache.lookup(0x100)
        cache.insert(0x200)   # evicts LRU = 0x000
        assert not cache.contains(0x000)
        assert cache.contains(0x100)

    def test_lru_eviction(self):
        cache = make_cache(size=256, assoc=2)
        cache.insert(0x000)
        cache.insert(0x100)
        cache.lookup(0x000)          # make 0x100 the LRU
        victim = cache.insert(0x200)
        assert victim.line_address == 0x100

    def test_invalidate(self):
        cache = make_cache()
        cache.insert(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.contains(0x1000)
        assert not cache.invalidate(0x1000)

    def test_dirty_marking(self):
        cache = make_cache()
        cache.insert(0x1000)
        cache.mark_dirty(0x1008)
        assert cache.lookup(0x1000).dirty

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200))
    @settings(max_examples=25)
    def test_resident_lines_never_exceed_capacity(self, line_numbers):
        cache = make_cache(size=1024, assoc=2)  # 16 lines capacity
        for number in line_numbers:
            cache.insert(number * 64)
        assert cache.resident_lines <= 16


class TestTagSidecar:
    def test_lock_lookup_by_granule(self):
        cache = make_cache()
        cache.insert(0x1000, locks=(1, 2, 3, 4))
        line = cache.lookup(0x1000)
        assert cache.lock_for(line, 0x1000) == 1
        assert cache.lock_for(line, 0x1030) == 4

    def test_check_tag_match_and_mismatch(self):
        cache = make_cache()
        cache.insert(0x1000, locks=(5, 5, 5, 5))
        line = cache.lookup(0x1000)
        assert cache.check_tag(line, with_key(0x1000, 5))
        assert not cache.check_tag(line, with_key(0x1000, 4))
        assert cache.tag_mismatches == 1

    def test_untracked_locks_always_pass(self):
        cache = make_cache()
        cache.insert(0x1000)  # no locks recorded
        line = cache.lookup(0x1000)
        assert cache.check_tag(line, with_key(0x1000, 9))

    def test_update_lock(self):
        cache = make_cache()
        cache.insert(0x1000, locks=(0, 0, 0, 0))
        cache.update_lock(0x1010, 7)
        line = cache.lookup(0x1000)
        assert line.locks == (0, 7, 0, 0)
