"""Pointer-key arithmetic (hypothesis-backed invariants)."""

from hypothesis import given, strategies as st

from repro.mte.tags import (
    granule_align,
    granule_count,
    granule_index,
    key_of,
    strip_tag,
    with_key,
)

addresses = st.integers(min_value=0, max_value=(1 << 56) - 1)
keys = st.integers(min_value=0, max_value=15)


class TestKeyRoundTrips:
    @given(addresses, keys)
    def test_with_key_then_key_of(self, address, key):
        assert key_of(with_key(address, key)) == key

    @given(addresses, keys)
    def test_with_key_preserves_address(self, address, key):
        assert strip_tag(with_key(address, key)) == address

    @given(addresses, keys, keys)
    def test_rekeying_overwrites(self, address, key1, key2):
        pointer = with_key(with_key(address, key1), key2)
        assert key_of(pointer) == key2

    def test_untagged_pointer_has_key_zero(self):
        assert key_of(0x4000) == 0

    def test_strip_is_idempotent(self):
        pointer = with_key(0x1234, 7)
        assert strip_tag(strip_tag(pointer)) == strip_tag(pointer)


class TestGranules:
    @given(addresses)
    def test_granule_index_ignores_tag(self, address):
        assert granule_index(with_key(address, 9)) == granule_index(address)

    def test_granule_boundaries(self):
        assert granule_index(0) == 0
        assert granule_index(15) == 0
        assert granule_index(16) == 1

    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_alignment_covers_size(self, size):
        aligned = granule_align(size)
        assert aligned >= size
        assert aligned % 16 == 0
        assert aligned - size < 16

    @given(st.integers(min_value=1, max_value=1 << 20))
    def test_count_matches_align(self, size):
        assert granule_count(size) * 16 == granule_align(size)
