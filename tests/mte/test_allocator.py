"""The tagging heap allocator (out-of-bounds / use-after-free semantics)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import MTEConfig, TagPolicy
from repro.errors import SimulationError
from repro.mte.allocator import TaggedHeap
from repro.mte.tags import key_of, strip_tag


def make_heap(policy=TagPolicy.DETERMINISTIC, size=1 << 16):
    return TaggedHeap(0x40000, size, MTEConfig(tag_policy=policy))


class TestAllocation:
    def test_pointer_carries_the_allocation_tag(self):
        heap = make_heap()
        allocation = heap.malloc(32)
        assert key_of(allocation.pointer) == allocation.tag
        assert strip_tag(allocation.pointer) == allocation.address

    def test_allocations_are_granule_aligned_and_disjoint(self):
        heap = make_heap()
        first = heap.malloc(5)
        second = heap.malloc(20)
        assert first.address % 16 == 0
        assert second.address >= first.end

    def test_deterministic_adjacent_tags_differ(self):
        heap = make_heap(TagPolicy.DETERMINISTIC)
        tags = [heap.malloc(16).tag for _ in range(20)]
        for left, right in zip(tags, tags[1:]):
            assert left != right

    def test_deterministic_never_uses_tag_zero(self):
        heap = make_heap(TagPolicy.DETERMINISTIC)
        assert all(heap.malloc(16).tag != 0 for _ in range(40))

    def test_explicit_tag_honoured(self):
        heap = make_heap()
        assert heap.malloc(16, tag=0x9).tag == 0x9

    def test_random_policy_is_seeded_deterministically(self):
        tags_a = [make_heap(TagPolicy.RANDOM).malloc(16).tag for _ in range(1)]
        tags_b = [make_heap(TagPolicy.RANDOM).malloc(16).tag for _ in range(1)]
        assert tags_a == tags_b

    def test_zero_size_rejected(self):
        with pytest.raises(SimulationError):
            make_heap().malloc(0)

    def test_exhaustion(self):
        heap = make_heap(size=64)
        heap.malloc(48)
        with pytest.raises(SimulationError):
            heap.malloc(32)


class TestFree:
    def test_free_retags_the_memory(self):
        heap = make_heap()
        allocation = heap.malloc(32)
        heap.free(allocation)
        retag = heap.assignments[-1]
        assert retag.address == allocation.address
        assert retag.tag != allocation.tag  # stale pointers now mismatch

    def test_double_free_detected(self):
        heap = make_heap()
        allocation = heap.malloc(16)
        heap.free(allocation)
        with pytest.raises(SimulationError):
            heap.free(allocation)

    def test_bytes_used_tracks_granules(self):
        heap = make_heap()
        heap.malloc(1)
        heap.malloc(17)
        assert heap.bytes_used == 16 + 32


class TestAssignmentReplay:
    @given(st.lists(st.integers(min_value=1, max_value=200),
                    min_size=1, max_size=12))
    def test_assignments_cover_every_allocation(self, sizes):
        heap = make_heap(size=1 << 16)
        allocations = [heap.malloc(size) for size in sizes]
        assert len(heap.assignments) == len(allocations)
        for allocation, assignment in zip(allocations, heap.assignments):
            assert assignment.address == allocation.address
            assert assignment.tag == allocation.tag
            assert assignment.size >= allocation.size
