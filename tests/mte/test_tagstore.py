"""The DRAM allocation-tag array."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.mte.tags import with_key
from repro.mte.tagstore import TagStorage


@pytest.fixture
def store():
    return TagStorage(memory_bytes=4096)


class TestBasics:
    def test_initially_untagged(self, store):
        assert store.get(0) == 0
        assert store.get(4080) == 0

    def test_set_and_get(self, store):
        store.set(0x100, 7)
        assert store.get(0x100) == 7
        assert store.get(0x10F) == 7      # same granule
        assert store.get(0x110) == 0      # next granule

    def test_tag_masked_to_width(self, store):
        store.set(0, 0x1F)
        assert store.get(0) == 0xF

    def test_tagged_address_reads_same_granule(self, store):
        store.set(0x200, 5)
        assert store.get(with_key(0x200, 3)) == 5

    def test_out_of_range_raises(self, store):
        with pytest.raises(SimulationError):
            store.get(4096)

    def test_check(self, store):
        store.set(0x40, 0x3)
        assert store.check(with_key(0x40, 0x3))
        assert not store.check(with_key(0x40, 0x4))


class TestRanges:
    def test_set_range_covers_partial_granules(self, store):
        store.set_range(0x10, 17, 2)  # spills one byte into granule 2
        assert store.get(0x10) == 2
        assert store.get(0x20) == 2
        assert store.get(0x30) == 0

    def test_zero_size_range_is_noop(self, store):
        store.set_range(0x10, 0, 9)
        assert store.get(0x10) == 0

    def test_line_tags(self, store):
        store.set_range(0x40, 64, 6)
        assert store.line_tags(0x40, 64) == (6, 6, 6, 6)

    @given(st.integers(min_value=0, max_value=4000),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=15))
    def test_every_byte_in_range_reads_the_tag(self, start, size, tag):
        fresh = TagStorage(memory_bytes=8192)
        fresh.set_range(start, size, tag)
        for offset in (0, size // 2, size - 1):
            assert fresh.get(start + offset) == tag
