"""End-to-end core behaviour: control flow, calls, memory, halting."""

import pytest

from repro import build_system, CORTEX_A76
from repro.errors import SimulationError
from repro.isa import assemble, ProgramBuilder


def run(source, **kwargs):
    return build_system(CORTEX_A76).run(assemble(source), **kwargs)


class TestControlFlow:
    def test_loop_with_counter(self):
        result = run("""
            MOV X0, #0
            MOV X1, #25
        loop:
            ADD X0, X0, #2
            SUB X1, X1, #1
            CBNZ X1, loop
            HALT
        """)
        assert result.register("X0") == 50

    def test_nested_branches(self):
        result = run("""
            MOV X0, #0
            MOV X1, #0
        outer:
            MOV X2, #0
        inner:
            ADD X0, X0, #1
            ADD X2, X2, #1
            CMP X2, #3
            B.LO inner
            ADD X1, X1, #1
            CMP X1, #4
            B.LO outer
            HALT
        """)
        assert result.register("X0") == 12

    def test_direct_call_and_return(self):
        result = run("""
            MOV X0, #5
            BL double
            BL double
            HALT
        double:
            ADD X0, X0, X0
            RET
        """)
        assert result.register("X0") == 20

    def test_nested_calls_with_stack(self):
        result = run("""
            MOV X28, #0x9000
            MOV X0, #1
            BL f1
            HALT
        f1:
            SUB X28, X28, #8
            STR LR, [X28]
            ADD X0, X0, #10
            BL f2
            LDR LR, [X28]
            ADD X28, X28, #8
            RET
        f2:
            ADD X0, X0, #100
            RET
        """)
        assert result.register("X0") == 111

    def test_indirect_branch(self):
        builder = ProgramBuilder()
        builder.li("X0", 0)
        builder.li("X9", 0)  # patched below
        li = builder.build().instructions[-1]
        builder.blr("X9")
        builder.halt()
        builder.label("target")
        builder.bti()
        builder.li("X0", 77)
        builder.ret()
        program = builder.build()
        li.imm = program.address_of("target")
        result = build_system(CORTEX_A76).run(program)
        assert result.register("X0") == 77

    def test_cbz_taken_and_not_taken(self):
        result = run("""
            MOV X0, #0
            MOV X1, #0
            CBZ X1, took
            MOV X0, #99
        took:
            ADD X0, X0, #1
            HALT
        """)
        assert result.register("X0") == 1


class TestMemoryOps:
    def test_store_load_roundtrip(self):
        result = run("""
            MOV X1, #0x3000
            MOV X2, #1234
            STR X2, [X1]
            LDR X3, [X1]
            HALT
        """)
        assert result.register("X3") == 1234

    def test_byte_ops(self):
        result = run("""
            MOV X1, #0x3000
            MOV X2, #0x1FF
            STRB X2, [X1]
            LDRB X3, [X1]
            HALT
        """)
        assert result.register("X3") == 0xFF

    def test_store_to_load_forwarding_value(self):
        """A load right behind a store to the same address must see it."""
        result = run("""
            MOV X1, #0x3000
            MOV X2, #42
            STR X2, [X1]
            LDR X3, [X1]
            ADD X4, X3, #1
            HALT
        """)
        assert result.register("X4") == 43

    def test_data_segment_initialisation(self):
        result = run("""
            .data tbl 0x4000 words 11 22 33
            MOV X1, #0x4000
            LDR X2, [X1, #8]
            HALT
        """)
        assert result.register("X2") == 22

    def test_register_offset_addressing(self):
        result = run("""
            .data tbl 0x4000 words 5 6 7
            MOV X1, #0x4000
            MOV X2, #16
            LDR X3, [X1, X2]
            HALT
        """)
        assert result.register("X3") == 7


class TestMTEInstructions:
    def test_addg_subg_adjust_key_and_address(self):
        result = run("""
            MOV X1, #0x4000
            ADDG X2, X1, #32, #3
            SUBG X3, X2, #16, #1
            HALT
        """)
        x2 = result.register("X2")
        x3 = result.register("X3")
        assert x2 & (1 << 56) - 1 == 0x4020
        assert (x2 >> 56) & 0xF == 3
        assert x3 & (1 << 56) - 1 == 0x4010
        assert (x3 >> 56) & 0xF == 2

    def test_stg_ldg_roundtrip(self):
        result = run("""
            MOV X1, #0x4000
            ADDG X2, X1, #0, #5
            STG X2, [X2]
            LDG X3, [X1]
            HALT
        """)
        assert (result.register("X3") >> 56) & 0xF == 5

    def test_irg_produces_valid_tagged_pointer(self):
        result = run("""
            MOV X1, #0x4000
            IRG X2, X1
            HALT
        """)
        assert result.register("X2") & ((1 << 56) - 1) == 0x4000


class TestRunControl:
    def test_halt_stops_cleanly(self):
        result = run("NOP\nHALT")
        assert result.halted

    def test_timeout_raises(self):
        with pytest.raises(SimulationError):
            run("loop:\nB loop\nHALT", max_cycles=500)

    def test_ipc_reported(self):
        result = run("NOP\nNOP\nNOP\nHALT")
        assert result.instructions == 4
        assert 0 < result.ipc <= 8

    def test_barrier_program_still_correct(self):
        result = run("""
            MOV X0, #1
            SB
            ADD X0, X0, #1
            SB
            ADD X0, X0, #1
            HALT
        """)
        assert result.register("X0") == 3
