"""Speculative execution mechanics: wrong paths, squash, recovery."""

from repro import build_system, CORTEX_A76
from repro.isa import assemble, ProgramBuilder


class TestMisprediction:
    def test_mispredicted_branch_recovers_architecturally(self):
        """A trained-then-flipped branch squashes its wrong path cleanly."""
        result = build_system(CORTEX_A76).run(assemble("""
            .data flags 0x4000 words 0 0 0 0 0 0 0 1
            MOV X0, #0
            MOV X5, #0
            MOV X1, #0x4000
            MOV X2, #0
        loop:
            LSL X3, X2, #3
            LDR X4, [X1, X3]
            CBNZ X4, taken
            ADD X0, X0, #1      // not-taken path (trained)
            B next
        taken:
            ADD X5, X5, #100    // flips on the last iteration
        next:
            ADD X2, X2, #1
            CMP X2, #8
            B.LO loop
            HALT
        """))
        assert result.register("X0") == 7
        assert result.register("X5") == 100
        assert result.stats.branch_mispredicts >= 1
        assert result.stats.squashed >= 1

    def test_wrong_path_stores_never_reach_memory(self):
        """Speculative stores must not commit when squashed."""
        result = build_system(CORTEX_A76).run(assemble("""
            .data guard 0x6040 words 1
            MOV X1, #0x6040
            MOV X2, #0x3000
            MOV X3, #0xBAD
            LDR X0, [X1]        // cold load: the branch resolves late
            CBNZ X0, skip       // actually taken; cold prediction says no
            STR X3, [X2]        // wrong path: must never commit
        skip:
            LDR X4, [X2]
            HALT
        """))
        assert result.register("X4") == 0

    def test_wrong_path_loads_do_perturb_the_cache(self):
        """The residual state TEAs exploit: squashed loads leave fills."""
        builder = ProgramBuilder()
        builder.words_segment("guard", 0x6040, [1])
        builder.zero_segment("probe", 0x8000, 64)
        builder.li("X1", 0x6040)
        builder.li("X2", 0x8000)
        builder.ldr("X0", "X1", note="cold guard")
        builder.cbnz("X0", "skip")
        builder.ldr("X3", "X2", note="wrong-path load")
        builder.label("skip")
        builder.halt()
        system = build_system(CORTEX_A76)
        system.run(builder.build())
        system.hierarchy.drain(10**9)
        assert system.hierarchy.is_cached(0x8000)

    def test_nested_misprediction(self):
        result = build_system(CORTEX_A76).run(assemble("""
            .data guard 0x6040 words 1 1
            MOV X1, #0x6040
            MOV X0, #0
            LDR X2, [X1]
            CBNZ X2, a          // mispredicted (cold)
            MOV X0, #111
            HALT
        a:
            LDR X3, [X1, #8]
            CBNZ X3, b          // second misprediction in flight
            MOV X0, #222
            HALT
        b:
            MOV X0, #333
            HALT
        """))
        assert result.register("X0") == 333


class TestReturnPrediction:
    def test_deep_call_chain_correctness_despite_rsb_wrap(self):
        """22 nested calls exceed the 16-entry RSB; results must still be
        architecturally correct (mispredicted returns squash and recover)."""
        builder = ProgramBuilder()
        builder.zero_segment("stack", 0x9000, 0x400)
        builder.li("X28", 0x9200)
        builder.li("X26", 0)
        builder.li("X0", 0)
        builder.bl("f")
        builder.halt()
        builder.label("f")
        builder.sub("X28", "X28", imm=8)
        builder.str_("X30", "X28")
        builder.add("X26", "X26", imm=1)
        builder.add("X0", "X0", imm=1)
        builder.cmp("X26", imm=22)
        builder.b_cond("HS", "unwind")
        builder.bl("f")
        builder.label("unwind")
        builder.ldr("X30", "X28")
        builder.add("X28", "X28", imm=8)
        builder.ret()
        result = build_system(CORTEX_A76).run(builder.build())
        assert result.register("X0") == 22


class TestOracleTaint:
    def test_secret_access_logged(self):
        builder = ProgramBuilder()
        builder.bytes_segment("secret", 0x5000, bytes([9] * 16))
        builder.li("X1", 0x5000)
        builder.ldrb("X2", "X1")
        builder.halt()
        system = build_system(CORTEX_A76)
        core = system.prepare(builder.build())
        core.secret_ranges = [(0x5000, 0x5010)]
        core.run()
        kinds = {event["kind"] for event in core.leak_log}
        assert "secret-access" in kinds

    def test_taint_propagates_to_dependent_address(self):
        builder = ProgramBuilder()
        builder.bytes_segment("secret", 0x5000, bytes([4] * 16))
        builder.zero_segment("probe", 0x8000, 0x1000)
        builder.words_segment("guard", 0x6040, [1])
        builder.li("X1", 0x5000)
        builder.li("X3", 0x8000)
        builder.li("X9", 0x6040)
        builder.ldrb("X2", "X1", note="read the secret")
        builder.ldr("X8", "X9", note="slow guard")
        builder.cbnz("X8", "skip")
        builder.lsl("X4", "X2", imm=6)
        builder.add("X5", "X3", "X4")
        builder.ldrb("X6", "X5", note="speculative transmit")
        builder.label("skip")
        builder.halt()
        system = build_system(CORTEX_A76)
        core = system.prepare(builder.build())
        core.secret_ranges = [(0x5000, 0x5010)]
        core.run()
        kinds = [event["kind"] for event in core.leak_log]
        assert "cache-transmit" in kinds
