"""Dynamic-instruction records and the per-core statistics."""

from repro.isa.instructions import Instruction, Opcode
from repro.pipeline.dyninstr import DynInstr, InstrState, TagCheckStatus
from repro.pipeline.stats import CoreStats


class TestTagCheckStatus:
    def test_two_bit_encoding(self):
        """§3.3.2: init=00, safe=01, unsafe=10, wait=11."""
        assert TagCheckStatus.INIT.value == 0b00
        assert TagCheckStatus.SAFE.value == 0b01
        assert TagCheckStatus.UNSAFE.value == 0b10
        assert TagCheckStatus.WAIT.value == 0b11


class TestDynInstr:
    def _dyn(self, op=Opcode.ADD, **kwargs):
        static = Instruction(op, rd=0, rn=1, imm=1)
        return DynInstr(seq=1, static=static, pc=0x1000, **kwargs)

    def test_initial_state(self):
        dyn = self._dyn()
        assert dyn.state is InstrState.FETCHED
        assert dyn.tcs is TagCheckStatus.INIT
        assert not dyn.completed
        assert not dyn.squashed
        assert dyn.taint_roots == frozenset()

    def test_completed_covers_committed(self):
        dyn = self._dyn()
        dyn.state = InstrState.COMPLETED
        assert dyn.completed
        dyn.state = InstrState.COMMITTED
        assert dyn.completed

    def test_producer_readiness(self):
        producer = self._dyn()
        consumer = self._dyn()
        consumer.producers = {1: producer}
        assert not consumer.producer_values_ready()
        producer.state = InstrState.COMPLETED
        assert consumer.producer_values_ready()
        consumer.producers = {1: None}  # reads the ARF
        assert consumer.producer_values_ready()

    def test_classification_shortcuts(self):
        load = DynInstr(seq=2, static=Instruction(Opcode.LDR, rd=0, rn=1),
                        pc=0)
        assert load.is_load and not load.is_store and not load.is_branch


class TestCoreStats:
    def test_derived_metrics(self):
        stats = CoreStats(cycles=100, committed=250, branches=50,
                          branch_mispredicts=5, restricted_committed=25)
        assert stats.ipc == 2.5
        assert stats.mispredict_rate == 0.1
        assert stats.restricted_fraction == 0.1

    def test_zero_division_guards(self):
        stats = CoreStats()
        assert stats.ipc == 0.0
        assert stats.mispredict_rate == 0.0
        assert stats.restricted_fraction == 0.0
