"""Execution-port accounting."""

from repro.isa.instructions import InstrClass
from repro.pipeline.exec_units import ExecPorts


class TestPorts:
    def test_claims_up_to_capacity(self):
        ports = ExecPorts({InstrClass.MUL: 1, InstrClass.ALU: 2})
        ports.new_cycle()
        assert ports.try_claim(InstrClass.MUL)
        assert not ports.try_claim(InstrClass.MUL)
        assert ports.contention_stalls == 1

    def test_new_cycle_resets_occupancy(self):
        ports = ExecPorts({InstrClass.MUL: 1})
        ports.new_cycle()
        ports.try_claim(InstrClass.MUL)
        ports.new_cycle()
        assert ports.try_claim(InstrClass.MUL)

    def test_issue_counts_accumulate(self):
        ports = ExecPorts({InstrClass.ALU: 4})
        for _ in range(3):
            ports.new_cycle()
            ports.try_claim(InstrClass.ALU)
        assert ports.issue_counts[InstrClass.ALU] == 3

    def test_occupancy_observable(self):
        """The SCC contention observable."""
        ports = ExecPorts({InstrClass.DIV: 1})
        ports.new_cycle()
        assert ports.occupancy(InstrClass.DIV) == 0
        ports.try_claim(InstrClass.DIV)
        assert ports.occupancy(InstrClass.DIV) == 1
