"""Differential testing: the out-of-order core vs the reference interpreter.

Hypothesis generates random (terminating) programs; whatever speculation,
squashing, forwarding, and replay the pipeline performs, its architectural
results must match plain sequential execution bit for bit — under *every*
defense policy.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import build_system, CORTEX_A76, DefenseKind
from repro.isa import ProgramBuilder
from repro.isa.interpreter import Interpreter
from repro.isa.registers import SP, XZR

#: Registers random programs operate on (a safe subset).
REGS = ["X0", "X1", "X2", "X3", "X4", "X5", "X6", "X7"]
DATA_BASE = 0x4000
DATA_SIZE = 512


def build_random_program(seed: int, length: int, with_branches: bool,
                         with_memory: bool) -> "Program":
    """A random terminating program: straight-line ALU work, optional
    bounded loads/stores over a scratch segment, and an optional counted
    loop wrapping it all."""
    rng = random.Random(seed)
    b = ProgramBuilder()
    data = bytes(rng.randrange(256) for _ in range(DATA_SIZE))
    b.bytes_segment("scratch", DATA_BASE, data)
    for index, reg in enumerate(REGS):
        b.li(reg, rng.getrandbits(16))
    b.li("X9", DATA_BASE)
    if with_branches:
        b.li("X11", rng.randrange(2, 6))
        b.label("loop")
    for _ in range(length):
        kind = rng.random()
        if with_memory and kind < 0.2:
            offset = rng.randrange(0, DATA_SIZE - 8) & ~7
            b.ldr(rng.choice(REGS), "X9", imm=offset)
        elif with_memory and kind < 0.3:
            offset = rng.randrange(0, DATA_SIZE - 8) & ~7
            b.str_(rng.choice(REGS), "X9", imm=offset)
        elif kind < 0.45 and with_branches:
            skip = b.fresh_label("d")
            b.cmp(rng.choice(REGS), imm=rng.randrange(1 << 15))
            b.b_cond(rng.choice(["EQ", "NE", "LO", "HS", "LT", "GE"]), skip)
            b.add(rng.choice(REGS), rng.choice(REGS),
                  imm=rng.randrange(1, 255))
            b.label(skip)
        else:
            op = rng.choice(["add", "sub", "eor", "orr", "and_"])
            if rng.random() < 0.5:
                getattr(b, op)(rng.choice(REGS), rng.choice(REGS),
                               rm=rng.choice(REGS))
            else:
                getattr(b, op)(rng.choice(REGS), rng.choice(REGS),
                               imm=rng.randrange(1, 1 << 12))
    if with_branches:
        b.sub("X11", "X11", imm=1)
        b.cbnz("X11", "loop")
    b.halt()
    return b.build()


def assert_equivalent(program, defense=DefenseKind.NONE):
    reference = Interpreter(program)
    reference.run()
    result = build_system(CORTEX_A76.with_defense(defense)).run(
        program, max_cycles=3_000_000)
    assert result.fault is None
    for reg in range(31):
        assert result.registers[reg] == reference.regs[reg], f"X{reg}"
    return reference, result


class TestDifferential:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_straight_line_alu(self, seed):
        program = build_random_program(seed, length=30, with_branches=False,
                                       with_memory=False)
        assert_equivalent(program)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_loops_and_branches(self, seed):
        program = build_random_program(seed, length=15, with_branches=True,
                                       with_memory=False)
        assert_equivalent(program)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_memory_and_forwarding(self, seed):
        program = build_random_program(seed, length=20, with_branches=True,
                                       with_memory=True)
        assert_equivalent(program)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=2_000),
           st.sampled_from([DefenseKind.FENCE, DefenseKind.STT,
                            DefenseKind.GHOSTMINION, DefenseKind.SPECCFI,
                            DefenseKind.SPECASAN]))
    def test_every_defense_preserves_semantics(self, seed, defense):
        program = build_random_program(seed, length=15, with_branches=True,
                                       with_memory=True)
        assert_equivalent(program, defense)

    def test_memory_image_matches_after_stores(self):
        program = build_random_program(7, length=40, with_branches=True,
                                       with_memory=True)
        reference = Interpreter(program)
        reference.run()
        system = build_system(CORTEX_A76)
        system.run(program, max_cycles=3_000_000)
        assert (system.hierarchy.memory.read(DATA_BASE, DATA_SIZE)
                == reference.memory.read(DATA_BASE, DATA_SIZE))
