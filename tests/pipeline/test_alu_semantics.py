"""Functional correctness of the ALU/flag semantics through the full core.

Each property builds a tiny program, runs it on the out-of-order pipeline
(with all its renaming, speculation, and squashing), and compares the
architectural result with a Python reference — so these double as
end-to-end pipeline correctness tests.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import build_system, CORTEX_A76
from repro.isa import ProgramBuilder

WORD = (1 << 64) - 1
u64 = st.integers(min_value=0, max_value=WORD)
small = st.integers(min_value=0, max_value=0xFFFF)


def run_binop(emit, a, b):
    builder = ProgramBuilder()
    builder.li("X1", a)
    builder.li("X2", b)
    emit(builder)
    builder.halt()
    return build_system(CORTEX_A76).run(builder.build())


@settings(max_examples=40, deadline=None)
@given(u64, u64)
def test_add(a, b):
    result = run_binop(lambda bl: bl.add("X0", "X1", rm="X2"), a, b)
    assert result.register("X0") == (a + b) & WORD


@settings(max_examples=40, deadline=None)
@given(u64, u64)
def test_sub(a, b):
    result = run_binop(lambda bl: bl.sub("X0", "X1", rm="X2"), a, b)
    assert result.register("X0") == (a - b) & WORD


@settings(max_examples=30, deadline=None)
@given(u64, u64)
def test_logicals(a, b):
    builder = ProgramBuilder()
    builder.li("X1", a)
    builder.li("X2", b)
    builder.and_("X3", "X1", rm="X2")
    builder.orr("X4", "X1", rm="X2")
    builder.eor("X5", "X1", rm="X2")
    builder.halt()
    result = build_system(CORTEX_A76).run(builder.build())
    assert result.register("X3") == a & b
    assert result.register("X4") == a | b
    assert result.register("X5") == a ^ b


@settings(max_examples=30, deadline=None)
@given(u64, st.integers(min_value=0, max_value=63))
def test_shifts(a, shift):
    builder = ProgramBuilder()
    builder.li("X1", a)
    builder.lsl("X2", "X1", imm=shift)
    builder.lsr("X3", "X1", imm=shift)
    builder.asr("X4", "X1", imm=shift)
    builder.halt()
    result = build_system(CORTEX_A76).run(builder.build())
    assert result.register("X2") == (a << shift) & WORD
    assert result.register("X3") == a >> shift
    signed = a - (1 << 64) if a >> 63 else a
    assert result.register("X4") == (signed >> shift) & WORD


@settings(max_examples=30, deadline=None)
@given(small, small)
def test_mul_udiv(a, b):
    builder = ProgramBuilder()
    builder.li("X1", a)
    builder.li("X2", b)
    builder.mul("X3", "X1", "X2")
    builder.udiv("X4", "X1", "X2")
    builder.halt()
    result = build_system(CORTEX_A76).run(builder.build())
    assert result.register("X3") == (a * b) & WORD
    assert result.register("X4") == (a // b if b else 0)


@settings(max_examples=40, deadline=None)
@given(u64, u64)
def test_unsigned_compare_branch(a, b):
    """CMP + B.LO must implement an exact unsigned a < b."""
    builder = ProgramBuilder()
    builder.li("X1", a)
    builder.li("X2", b)
    builder.li("X0", 0)
    builder.cmp("X1", rm="X2")
    builder.b_cond("LO", "lower")
    builder.b("done")
    builder.label("lower")
    builder.li("X0", 1)
    builder.label("done")
    builder.halt()
    result = build_system(CORTEX_A76).run(builder.build())
    assert result.register("X0") == int(a < b)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=-(2**63), max_value=2**63 - 1),
       st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_signed_compare_branch(a, b):
    """CMP + B.LT must implement an exact signed a < b (N/V flags)."""
    builder = ProgramBuilder()
    builder.li("X1", a & WORD)
    builder.li("X2", b & WORD)
    builder.li("X0", 0)
    builder.cmp("X1", rm="X2")
    builder.b_cond("LT", "lt")
    builder.b("done")
    builder.label("lt")
    builder.li("X0", 1)
    builder.label("done")
    builder.halt()
    result = build_system(CORTEX_A76).run(builder.build())
    assert result.register("X0") == int(a < b)


@pytest.mark.parametrize("cond,a,b,expected", [
    ("EQ", 5, 5, 1), ("EQ", 5, 6, 0),
    ("NE", 5, 6, 1), ("NE", 5, 5, 0),
    ("HS", 6, 5, 1), ("HS", 5, 5, 1), ("HS", 4, 5, 0),
    ("GE", 5, 5, 1), ("LE", 5, 5, 1), ("GT", 6, 5, 1), ("GT", 5, 5, 0),
    ("MI", WORD, 0, 1), ("PL", 1, 0, 1),
])
def test_condition_table(cond, a, b, expected):
    builder = ProgramBuilder()
    builder.li("X1", a)
    builder.li("X2", b)
    builder.li("X0", 0)
    builder.cmp("X1", rm="X2")
    builder.b_cond(cond, "hit")
    builder.b("done")
    builder.label("hit")
    builder.li("X0", 1)
    builder.label("done")
    builder.halt()
    result = build_system(CORTEX_A76).run(builder.build())
    assert result.register("X0") == expected
