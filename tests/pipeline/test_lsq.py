"""Load/store queue mechanics: forwarding, disambiguation, replay."""

from repro import build_system, CORTEX_A76
from repro.isa import assemble, ProgramBuilder


class TestForwarding:
    def test_exact_forward_from_pending_store(self):
        """The commit-blocked store's value must forward to the load."""
        result = build_system(CORTEX_A76).run(assemble("""
            .data slow 0x6040 words 7
            MOV X1, #0x6040
            MOV X2, #0x3000
            MOV X3, #55
            LDR X0, [X1]        // blocks commit for ~a DRAM round trip
            STR X3, [X2]        // waits in the SQ
            LDR X4, [X2]        // must forward 55 from the SQ
            ADD X5, X4, X0
            HALT
        """))
        assert result.register("X4") == 55
        assert result.register("X5") == 62
        assert result.stats.store_forwards >= 1

    def test_partial_overlap_waits_for_commit(self):
        """A byte store inside a word load's footprint: no forward, but the
        final value must still be correct."""
        result = build_system(CORTEX_A76).run(assemble("""
            MOV X2, #0x3000
            MOV X3, #0x1111
            STR X3, [X2]
            MOV X4, #0xFF
            STRB X4, [X2]
            LDR X5, [X2]
            HALT
        """))
        assert result.register("X5") == 0x11FF


class TestMemoryDependenceSpeculation:
    def test_bypass_violation_replays(self):
        """A load that bypasses an unresolved aliasing store must replay
        and observe the store's value."""
        builder = ProgramBuilder()
        import struct
        builder.bytes_segment("slowptr", 0x200000,
                              struct.pack("<Q", 0x3000) + bytes(4088))
        builder.words_segment("slot", 0x3000, [111])
        builder.li("X15", 0x200000)
        builder.li("X2", 0x3000)
        builder.li("X12", 222)
        builder.ldr("X11", "X15", note="store address arrives late")
        builder.str_("X12", "X11")
        builder.ldr("X5", "X2", note="bypasses, then replays")
        builder.halt()
        result = build_system(CORTEX_A76).run(builder.build())
        assert result.register("X5") == 222
        assert result.stats.ordering_violations >= 1

    def test_mdp_becomes_conservative_after_violation(self):
        builder = ProgramBuilder()
        import struct
        builder.bytes_segment("slowptr", 0x200000,
                              struct.pack("<Q", 0x3000) + bytes(4088))
        builder.words_segment("slot", 0x3000, [1])
        builder.li("X15", 0x200000)
        builder.li("X2", 0x3000)
        builder.li("X12", 2)
        builder.ldr("X11", "X15")
        builder.str_("X12", "X11")
        builder.ldr("X5", "X2")
        builder.halt()
        system = build_system(CORTEX_A76)
        core = system.prepare(builder.build())
        core.run()
        load_pc = None
        for instr in core.program.instructions:
            if instr.render() == "LDR X5, [X2]":
                load_pc = instr.address
        assert core.mdp.predicts_dependence(load_pc)


class TestLoosenetForwarding:
    def test_partial_address_alias_machine_clears(self):
        """4KB-aliased load transiently forwards, then replays with the
        correct memory value (the Fallout window, §4.1)."""
        result = build_system(CORTEX_A76).run(assemble("""
            .data slow 0x210000 words 7
            .data a 0x3040 words 0
            .data b 0x4040 words 77
            MOV X1, #0x210000
            MOV X2, #0x3040
            MOV X3, #0x4040
            MOV X4, #99
            LDR X0, [X1]        // commit blocker
            STR X4, [X2]        // in-flight store at page offset 0x40
            LDR X5, [X3]        // same page offset, different page
            HALT
        """))
        # The architectural value must be B's memory content, not the
        # transient forward.
        assert result.register("X5") == 77
        assert result.stats.ordering_violations >= 1

    def test_transient_forward_never_commits(self):
        """verify_pending must gate commit until the finenet check lands."""
        result = build_system(CORTEX_A76).run(assemble("""
            .data slow 0x210000 words 7
            .data b 0x4040 words 13
            MOV X1, #0x210000
            MOV X2, #0x3040
            MOV X3, #0x4040
            MOV X4, #99
            LDR X0, [X1]
            STR X4, [X2]
            LDR X5, [X3]
            ADD X6, X5, #1      // consumer of the (possibly wrong) value
            HALT
        """))
        assert result.register("X6") == 14
