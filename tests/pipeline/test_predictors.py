"""Branch-prediction and memory-dependence structures."""

from repro.pipeline.predictors import (
    BranchHistoryBuffer,
    BranchTargetBuffer,
    MemoryDependencePredictor,
    PatternHistoryTable,
    ReturnStackBuffer,
)


class TestBHB:
    def test_history_shifts(self):
        bhb = BranchHistoryBuffer(bits=4)
        for taken in (True, False, True, True):
            bhb.update(taken)
        assert bhb.history == 0b1011

    def test_history_saturates_to_width(self):
        bhb = BranchHistoryBuffer(bits=4)
        for _ in range(10):
            bhb.update(True)
        assert bhb.history == 0b1111

    def test_snapshot_restore(self):
        bhb = BranchHistoryBuffer()
        bhb.update(True)
        snapshot = bhb.snapshot()
        bhb.update(False)
        bhb.restore(snapshot)
        assert bhb.history == snapshot


class TestPHT:
    def test_cold_predicts_not_taken(self):
        pht = PatternHistoryTable(64, BranchHistoryBuffer())
        assert pht.predict(0x1000) is False

    def test_training_flips_prediction(self):
        bhb = BranchHistoryBuffer()
        pht = PatternHistoryTable(64, bhb)
        history = bhb.snapshot()
        pht.train(0x1000, True, history)
        pht.train(0x1000, True, history)
        assert pht.predict(0x1000) is True

    def test_counters_saturate(self):
        bhb = BranchHistoryBuffer()
        pht = PatternHistoryTable(64, bhb)
        history = bhb.snapshot()
        for _ in range(10):
            pht.train(0x1000, True, history)
        pht.train(0x1000, False, history)
        assert pht.predict(0x1000) is True  # one not-taken can't flip it

    def test_history_contexts_are_distinct(self):
        bhb = BranchHistoryBuffer()
        pht = PatternHistoryTable(1024, bhb)
        pht.train(0x1000, True, 0b0)
        bhb.update(True)  # different history -> different counter
        assert pht.predict(0x1000) is False


class TestBTB:
    def test_miss_then_train_then_hit(self):
        bhb = BranchHistoryBuffer()
        btb = BranchTargetBuffer(128, bhb)
        assert btb.predict(0x1000) is None
        btb.train(0x1000, 0x4000, bhb.snapshot())
        assert btb.predict(0x1000) == 0x4000

    def test_history_aliasing_is_possible(self):
        """The BHB-injection surface: same PC, different history, may map to
        a different slot; engineered (pc, history) pairs collide."""
        bhb = BranchHistoryBuffer(bits=8)
        btb = BranchTargetBuffer(512, bhb)
        # The Spectre-BHB collision construction: pc ^= 32 <-> history ^= 1.
        pc_t, h_t = 0x1000, 0b11111111
        pc_v, h_v = pc_t + 32, 0b11111110
        btb.train(pc_t, 0xBAD, h_t)
        bhb.restore(h_v)
        assert btb.predict(pc_v) == 0xBAD


class TestRSB:
    def test_push_pop(self):
        rsb = ReturnStackBuffer(4)
        rsb.push(0x100)
        rsb.push(0x200)
        assert rsb.pop() == 0x200
        assert rsb.pop() == 0x100

    def test_wraparound_returns_stale_entries(self):
        """Spectre-RSB's surface: deep chains wrap and pops past the
        underflow point re-read stale slots instead of reporting empty."""
        rsb = ReturnStackBuffer(4)
        for address in (1, 2, 3, 4, 5):  # 5 pushes into 4 slots
            rsb.push(address)
        assert [rsb.pop() for _ in range(4)] == [5, 4, 3, 2]
        assert rsb.pop() == 5  # stale wrap-around, not None

    def test_empty_rsb_predicts_none(self):
        assert ReturnStackBuffer(4).pop() is None


class TestMDP:
    def test_default_aggressive(self):
        mdp = MemoryDependencePredictor(64)
        assert not mdp.predicts_dependence(0x1000)

    def test_violation_trains_conservative(self):
        mdp = MemoryDependencePredictor(64)
        mdp.train_violation(0x1000)
        assert mdp.predicts_dependence(0x1000)
        assert mdp.violations == 1

    def test_decay_re_enables_speculation(self):
        mdp = MemoryDependencePredictor(64)
        mdp.train_violation(0x1000)
        for _ in range(3):
            mdp.decay(0x1000)
        assert not mdp.predicts_dependence(0x1000)
