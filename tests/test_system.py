"""The top-level SimulatedSystem façade."""

import pytest

from repro import build_system, CORTEX_A76, DefenseKind
from repro.isa import assemble


class TestRunResult:
    def test_register_access_by_name(self):
        result = build_system(CORTEX_A76).run(assemble("MOV X7, #9\nHALT"))
        assert result.register("X7") == 9
        assert result.register("XZR") == 0

    def test_result_before_run_raises(self):
        with pytest.raises(RuntimeError):
            build_system(CORTEX_A76).result()

    def test_ipc_and_counts(self):
        result = build_system(CORTEX_A76).run(assemble("NOP\nNOP\nHALT"))
        assert result.instructions == 3
        assert result.cycles > 0
        assert result.ipc == result.instructions / result.cycles


class TestWarmRuns:
    def test_warm_run_speeds_up_the_measured_run(self):
        source = """
            .data arr 0x5000 zero 4096
            MOV X1, #0x5000
            MOV X2, #0
            MOV X3, #32
        loop:
            LDR X4, [X1, X2]
            ADD X2, X2, #64
            SUB X3, X3, #1
            CBNZ X3, loop
            HALT
        """
        cold = build_system(CORTEX_A76).run(assemble(source))
        warm = build_system(CORTEX_A76).run(assemble(source), warm_runs=1)
        assert warm.cycles < cold.cycles

    def test_warm_run_preserves_architectural_results(self):
        source = "MOV X0, #3\nADD X0, X0, #4\nHALT"
        result = build_system(CORTEX_A76).run(assemble(source), warm_runs=2)
        assert result.register("X0") == 7


class TestDefensePlumbing:
    def test_every_defense_kind_runs_a_program(self):
        for defense in DefenseKind:
            result = build_system(CORTEX_A76.with_defense(defense)).run(
                assemble("""
                    MOV X0, #0
                    MOV X1, #5
                loop:
                    ADD X0, X0, X1
                    SUB X1, X1, #1
                    CBNZ X1, loop
                    HALT
                """))
            assert result.register("X0") == 15, defense
