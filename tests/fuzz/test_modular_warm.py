"""The fuzz executor lints through the warm in-memory summary cache."""

from repro.fuzz.executor import FuzzConfig, FuzzExecutor
from repro.telemetry.registry import StatsRegistry

TINY = FuzzConfig(seed=0x51, budget=6, sim_every=3, warmup=2,
                  repair_budget=1)


def test_executor_accumulates_summary_hits():
    executor = FuzzExecutor(TINY, StatsRegistry())
    result = executor.run()
    assert result.executed == TINY.budget
    # Candidates share gadget sections, so warm-cache re-linting must
    # land hits within a single campaign.
    assert executor.summaries.hits > 0
    assert executor.summaries.misses > 0


def test_modular_stats_are_booked_to_the_registry():
    registry = StatsRegistry()
    FuzzExecutor(TINY, registry).run()
    rendered = registry.render()
    assert "analysis.modular.runs" in rendered
    assert "analysis.modular.summary.hits" in rendered
    assert "analysis.modular.summary.hit_rate" in rendered


def test_determinism_survives_the_warm_cache():
    run_a = FuzzExecutor(TINY, StatsRegistry()).run()
    run_b = FuzzExecutor(TINY, StatsRegistry()).run()
    assert run_a.admitted == run_b.admitted
    assert run_a.disagreements == run_b.disagreements
    assert run_a.coverage.to_dict() == run_b.coverage.to_dict()
