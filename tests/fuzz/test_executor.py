"""Executor: config round-trip, a tiny agreeing run, determinism."""

from repro.config import DefenseKind
from repro.fuzz.executor import FuzzConfig, FuzzExecutor, static_verdict
from repro.fuzz.generator import build, CandidateSpec, SectionSpec
from repro.analysis.gadgets import find_gadgets
from repro.telemetry.registry import StatsRegistry

TINY = FuzzConfig(seed=0x51, budget=6, sim_every=3, warmup=2,
                  repair_budget=1)


def test_config_dict_round_trip():
    config = FuzzConfig(seed=7, budget=12,
                        defenses=(DefenseKind.SPECASAN,),
                        inject=("drop-sb-cut",))
    assert FuzzConfig.from_dict(config.to_dict()) == config


def test_static_verdict_filters_by_channel():
    candidate = build(CandidateSpec(
        sections=(SectionSpec(template="pht", residual=True),)))
    gadgets = find_gadgets(candidate.attack.builder_program,
                           candidate.secret_ranges)
    assert static_verdict(gadgets, "cache", DefenseKind.NONE)
    # A cache-only probe gadget cannot serve a contention oracle.
    assert not static_verdict(gadgets, "contention", DefenseKind.NONE)


def test_tiny_run_agrees_and_grows_coverage():
    result = FuzzExecutor(TINY, StatsRegistry()).run()
    assert result.executed == TINY.budget
    assert result.build_errors == 0
    assert result.disagreements == []
    assert result.coverage.frontier > 0
    assert result.admitted  # the first candidates always light features


def test_same_seed_runs_are_identical():
    run_a = FuzzExecutor(TINY, StatsRegistry()).run()
    run_b = FuzzExecutor(TINY, StatsRegistry()).run()
    assert run_a.admitted == run_b.admitted
    assert run_a.coverage.to_dict() == run_b.coverage.to_dict()
    assert run_a.simulated == run_b.simulated


def test_different_seeds_draw_different_streams():
    other = FuzzConfig(seed=0x52, budget=6, sim_every=3, warmup=2,
                       repair_budget=1)
    run_a = FuzzExecutor(TINY, StatsRegistry()).run()
    run_b = FuzzExecutor(other, StatsRegistry()).run()
    assert run_a.admitted != run_b.admitted
