"""Minimizer: ddmin mechanics on a stubbed oracle, fallback safety."""

from repro.config import DefenseKind
from repro.fuzz.generator import build, CandidateSpec, SectionSpec
from repro.fuzz.minimize import _Shrinker, minimize_source


class _StubShrinker(_Shrinker):
    """ddmin against a pure predicate — no assembler, no simulator."""

    def __init__(self, needed, max_evals=500):
        super().__init__(candidate=None, defense=DefenseKind.NONE,
                         static_leaked=True, dynamic_leaked=True,
                         max_evals=max_evals)
        self.needed = set(needed)

    def reproduces(self, lines, capped=True):
        if capped and self.evals >= self.max_evals:
            return False
        self.evals += 1
        return self.needed.issubset(lines)


def test_ddmin_reaches_the_minimal_subset():
    lines = [f"l{i}" for i in range(40)]
    shrinker = _StubShrinker(needed={"l3", "l17", "l31"})
    kept = shrinker.ddmin(list(lines), pinned=[])
    assert sorted(kept) == ["l17", "l3", "l31"]


def test_ddmin_preserves_line_order():
    lines = [f"l{i}" for i in range(16)]
    shrinker = _StubShrinker(needed={"l2", "l9"})
    kept = shrinker.ddmin(list(lines), pinned=[])
    assert kept == ["l2", "l9"]


def test_ddmin_respects_the_eval_cap():
    shrinker = _StubShrinker(needed={"l1"}, max_evals=5)
    kept = shrinker.ddmin([f"l{i}" for i in range(64)], pinned=[])
    assert shrinker.evals <= 5
    assert "l1" in kept  # never drops the needed line


def test_unreproducible_finding_returns_the_original_text():
    # A benign candidate never leaks; claiming static_leaked=True can't
    # reproduce, so the minimizer must hand back the full text untouched.
    candidate = build(CandidateSpec(
        sections=(SectionSpec(template="benign"),)))
    result = minimize_source(candidate, DefenseKind.NONE,
                             static_leaked=True, dynamic_leaked=False,
                             max_evals=10)
    assert not result.reproduced
    assert result.text == candidate.source_text
    assert result.minimized_lines == result.original_lines
