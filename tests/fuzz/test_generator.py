"""Generator: spec normalization, sampling/mutation determinism, builds."""

import random

import pytest

from repro.errors import FuzzError
from repro.fuzz.generator import (
    build,
    CandidateSpec,
    GeneratorBias,
    mutate,
    normalize,
    sample_spec,
    SectionSpec,
    SINGLETONS,
    SPLICEABLE,
    TEMPLATES,
)
from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, signature
from repro.rng import stream


def test_normalize_zeroes_ignored_knobs():
    # sbb honours residual/pad only; barrier/flip/train_iters reset.
    raw = SectionSpec(template="sbb", residual=True, pad=8, barrier=True,
                      flip=True, train_iters=9)
    norm = normalize(raw)
    assert norm == SectionSpec(template="sbb", residual=True, pad=8)


def test_spec_validation_rejects_bad_shapes():
    pht = SectionSpec(template="pht")
    with pytest.raises(FuzzError):
        CandidateSpec(sections=(pht, pht, pht))
    with pytest.raises(FuzzError):
        CandidateSpec(sections=(pht, SectionSpec(template="rsb")))
    with pytest.raises(FuzzError):
        CandidateSpec(sections=(SectionSpec(template="nope"),))


def test_sample_spec_is_deterministic_per_stream():
    specs_a = [sample_spec(stream(7, "t", k)) for k in range(32)]
    specs_b = [sample_spec(stream(7, "t", k)) for k in range(32)]
    assert specs_a == specs_b
    # The mix actually varies across draws.
    assert len({s.label for s in specs_a}) > 3


def test_bias_forces_the_drill_shapes():
    rng = stream(1, "bias")
    spec = sample_spec(rng, GeneratorBias(barrier_bias=True))
    assert spec.sections[0].template == "pht"
    assert spec.sections[0].barrier
    spec = sample_spec(rng, GeneratorBias(contention_bias=True))
    assert spec.sections[0].template == "contention"
    assert spec.channel == "contention"


def test_mutate_yields_a_distinct_normalized_spec():
    rng = stream(3, "mut")
    spec = CandidateSpec(sections=(SectionSpec(template="pht", pad=8),))
    for _ in range(24):
        mutated = mutate(spec, rng)
        assert mutated is not None
        assert mutated != spec
        for section in mutated.sections:
            assert normalize(section) == section


def test_mutate_splice_only_grafts_spliceable_donors():
    rng = random.Random(9)
    spec = CandidateSpec(sections=(SectionSpec(template="pht"),))
    donors = [CandidateSpec(sections=(SectionSpec(template="rsb"),)),
              CandidateSpec(sections=(SectionSpec(template="stl"),))]
    for _ in range(64):
        mutated = mutate(spec, rng, donors=donors)
        if mutated is not None and len(mutated.sections) == 2:
            assert mutated.sections[1].template in SPLICEABLE


@pytest.mark.parametrize("template", TEMPLATES)
def test_every_template_builds_and_round_trips(template):
    spec = CandidateSpec(
        sections=(normalize(SectionSpec(template=template, residual=True)),))
    candidate = build(spec)
    program = candidate.attack.builder_program
    # The program every oracle sees is the reassembly of the dump; the
    # dump of *that* program differs only in lost builder notes.
    assert signature(assemble(candidate.source_text)) == signature(program)
    assert signature(assemble(disassemble(program))) == signature(program)
    assert candidate.attack.variant == template
    assert candidate.secret_ranges


def test_build_is_byte_deterministic():
    spec = CandidateSpec(sections=(
        SectionSpec(template="pht", residual=True, pad=16, barrier=True),
        SectionSpec(template="stl", residual=True),
    ))
    assert build(spec).source_text == build(spec).source_text


def test_splice_uses_disjoint_register_banks():
    spec = CandidateSpec(sections=(SectionSpec(template="pht"),
                                   SectionSpec(template="sbb")))
    text = build(spec).source_text
    # The inter-section fence is the only structural seam; both sections
    # must be present in one program.
    assert "inter-section fence" in text
    assert "array0" in text and "sec_sbb1" in text
