"""Replay the committed minimized regression corpus (tier-1 gate).

``tests/fuzz/data/drill-corpus`` is a real fuzzing run: the drill config
(``drop-sb-cut`` injected, barrier-biased PHT generation) caught the
seeded analyzer defect as minimized precision findings.  Each committed
record must keep reproducing its exact verdict pair — replay reinstates
the recorded injected defect, lints, and simulates.  If an analyzer
change legitimately retires a finding, regenerate the corpus with
``python -m repro.fuzz`` (see EXPERIMENTS.md) rather than hand-editing.
"""

import os

from repro.fuzz import corpus

DATA = os.path.join(os.path.dirname(__file__), "data", "drill-corpus")


def test_committed_corpus_loads_intact():
    run = corpus.load_run(DATA)
    assert run.corrupt == 0
    assert run.manifest["schema"] == corpus.FUZZ_SCHEMA
    assert run.config.inject == ("drop-sb-cut",)
    assert len(run.regressions) >= 1


def test_committed_regressions_are_minimized_precision_findings():
    run = corpus.load_run(DATA)
    for record in run.regressions:
        assert record["kind"] == "precision"
        assert record["minimized_lines"] < record["original_lines"]
        assert record["injected"] == ["drop-sb-cut"]
        path = os.path.join(DATA, record["file"])
        source = open(path, encoding="utf-8").read()
        assert len(source.rstrip("\n").split("\n")) == \
            record["minimized_lines"]


def test_committed_regressions_still_reproduce():
    run = corpus.load_run(DATA)
    for record in run.regressions:
        ok, detail = corpus.replay_regression(DATA, record)
        assert ok, f"{record['file']}: {detail}"
