"""Corpus store: round-trip, corruption tolerance, merge, export."""

import json
import os

import pytest

from repro.errors import FuzzError
from repro.fuzz import corpus
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.executor import FuzzConfig, FuzzResult
from repro.fuzz.generator import CandidateSpec, SectionSpec


def _result(specs=(), counts=None, executed=0):
    coverage = CoverageMap.from_dict(counts or {})
    return FuzzResult(config=FuzzConfig(seed=1, budget=4),
                      coverage=coverage, disagreements=[],
                      admitted=list(specs), executed=executed)


def _spec(template="pht", **knobs):
    return CandidateSpec(sections=(SectionSpec(template=template, **knobs),))


def test_save_load_round_trip(tmp_path):
    directory = str(tmp_path / "run")
    specs = [_spec(), _spec(residual=True), _spec(template="sbb")]
    corpus.save_run(directory, _result(specs, {"f": 2, "g": 1}, executed=4))
    run = corpus.load_run(directory)
    assert run.corrupt == 0
    assert run.specs == specs
    assert run.coverage.counts == {"f": 2, "g": 1}
    assert run.config == FuzzConfig(seed=1, budget=4)
    assert run.manifest["executed"] == 4


def test_corrupt_corpus_lines_are_skipped_and_counted(tmp_path):
    directory = str(tmp_path / "run")
    corpus.save_run(directory, _result([_spec(), _spec(residual=True)]))
    path = os.path.join(directory, corpus.CORPUS)
    lines = open(path, encoding="utf-8").read().splitlines()
    lines[0] = lines[0].replace('"residual":false', '"residual":true', 1)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\nnot json\n")
    run = corpus.load_run(directory)
    assert run.corrupt == 2  # the flipped record and the garbage line
    assert len(run.specs) == 1


def test_missing_or_mismatched_manifest_fails_closed(tmp_path):
    with pytest.raises(FuzzError):
        corpus.load_run(str(tmp_path / "nowhere"))
    directory = str(tmp_path / "run")
    corpus.save_run(directory, _result())
    path = os.path.join(directory, corpus.MANIFEST)
    manifest = json.load(open(path, encoding="utf-8"))
    manifest["schema"] = "repro-fuzz/999"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    with pytest.raises(FuzzError):
        corpus.load_run(directory)


def test_merge_adds_coverage_and_dedups_specs(tmp_path):
    shard_a, shard_b = str(tmp_path / "a"), str(tmp_path / "b")
    shared, only_b = _spec(), _spec(template="stl")
    corpus.save_run(shard_a, _result([shared], {"f": 1}, executed=2))
    corpus.save_run(shard_b, _result([shared, only_b], {"f": 1, "g": 3},
                                     executed=3))
    merged = corpus.merge_runs(str(tmp_path / "merged"), [shard_a, shard_b],
                               FuzzConfig(seed=1, budget=4))
    assert merged.coverage.counts == {"f": 2, "g": 3}
    assert merged.specs == [shared, only_b]
    assert merged.manifest["executed"] == 5


def test_run_digest_tracks_every_artifact(tmp_path):
    directory = str(tmp_path / "run")
    corpus.save_run(directory, _result([_spec()], {"f": 1}))
    before = corpus.run_digest(directory)
    assert before == corpus.run_digest(directory)
    corpus.save_run(directory, _result([_spec()], {"f": 2}))
    assert corpus.run_digest(directory) != before


def test_export_requests_on_a_clean_run_is_empty(tmp_path):
    directory = str(tmp_path / "run")
    corpus.save_run(directory, _result([_spec()]))
    out = str(tmp_path / "requests.jsonl")
    assert corpus.export_requests(directory, out) == 0
    assert open(out, encoding="utf-8").read() == ""
