"""Campaign sharding: deterministic shard configs, the worker entry."""

import json
import os

from repro.fuzz import campaign, corpus
from repro.fuzz.executor import FuzzConfig
from repro.rng import derive_seed


def test_shard_configs_split_the_budget_with_distinct_seeds():
    config = FuzzConfig(seed=0xBEEF, budget=40, repair_budget=4)
    shards = [campaign.shard_config(config, 4, i) for i in range(4)]
    assert [s.budget for s in shards] == [10, 10, 10, 10]
    assert len({s.seed for s in shards}) == 4
    assert shards[2].seed == derive_seed(0xBEEF, "fuzz", "shard", 2)
    # Everything but seed/budget splits is inherited.
    assert all(s.defenses == config.defenses for s in shards)


def test_shard_config_is_stable_across_calls():
    config = FuzzConfig(seed=3, budget=30)
    assert campaign.shard_config(config, 3, 1) == \
        campaign.shard_config(config, 3, 1)


def test_run_worker_writes_outcome_and_a_loadable_run(tmp_path):
    out_dir = str(tmp_path / "shard-000")
    os.makedirs(out_dir)
    config = FuzzConfig(seed=0x77, budget=3, sim_every=3, warmup=1,
                        repair_budget=0)
    code = campaign.run_worker(
        out_dir, config,
        heartbeat_path=os.path.join(out_dir, "heartbeat"),
        outcome_path=os.path.join(out_dir, "outcome.json"))
    assert code == 0
    outcome = json.load(open(os.path.join(out_dir, "outcome.json"),
                             encoding="utf-8"))
    assert outcome["status"] == "ok"
    run = corpus.load_run(out_dir)
    assert run.manifest["executed"] == 3
    assert os.path.exists(os.path.join(out_dir, "heartbeat"))
