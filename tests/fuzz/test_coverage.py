"""CoverageMap: novelty signal, merge algebra, serialization."""

from repro.fuzz.coverage import CoverageMap


def test_commit_reports_only_new_features_sorted():
    cov = CoverageMap()
    cov.observe("win:pht:8:cut")
    cov.observe("taint:heap:cache")
    assert cov.commit() == ["taint:heap:cache", "win:pht:8:cut"]
    cov.observe("win:pht:8:cut")
    cov.observe("verdict:pht:specasan:safe")
    assert cov.commit() == ["verdict:pht:specasan:safe"]
    assert cov.frontier == 3


def test_commit_counts_every_hit_once_per_candidate():
    cov = CoverageMap()
    cov.observe("f")
    cov.observe("f")  # pending is a set: one candidate, one hit
    cov.commit()
    cov.observe("f")
    cov.commit()
    assert cov.counts["f"] == 2


def test_discard_drops_pending_without_folding():
    cov = CoverageMap()
    cov.observe("f")
    cov.discard()
    assert cov.frontier == 0
    cov.observe("f")
    assert cov.commit() == ["f"]


def test_merge_adds_counts():
    a, b = CoverageMap(), CoverageMap()
    a.observe("x")
    a.commit()
    b.observe("x")
    b.observe("y")
    b.commit()
    a.merge(b)
    assert a.counts == {"x": 2, "y": 1}
    assert a.frontier == 2


def test_dict_round_trip_is_exact_and_sorted():
    cov = CoverageMap()
    for feature in ("z", "a", "m"):
        cov.observe(feature)
    cov.commit()
    data = cov.to_dict()
    assert list(data) == ["a", "m", "z"]
    assert CoverageMap.from_dict(data).counts == cov.counts
