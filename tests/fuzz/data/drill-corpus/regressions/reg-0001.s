.base 0x1000
.data secret0 0x40010 tag=1 words 0xb 0x0
.data idx0 0x42800 words 0x1 0x2 0x3 0x1 0x2 0x3 0x1 0x10
    MOV X2, #72057594038190080  // victim array (malloc-tagged)
    MOV X12, #272384
    LDR X0, [X12, X24]  // index for this run
    CMP X0, X1
    B.HS skip0  // mistrained branch
    LDRB X5, [X2, X0]  // ACCESS: load array[X]
    LSL X6, X5, #12  // USE: Y * 4096
    ADD X7, X3, X6
    LDRB X8, [X7]  // TRANSMIT: touch probe[Y*4096]
skip0:
