"""The livelock watchdog and the deadlock snapshot path."""

from dataclasses import replace

import pytest

from repro import build_system, CORTEX_A76, DefenseKind
from repro.errors import DeadlockError, LivelockError
from repro.isa import assemble
from repro.resilience import summarize, Watchdog

SPIN = """
    MOV X1, #1
spin:
    CBNZ X1, spin
    HALT
"""

BUSY_LOOP = """
    MOV X2, #0
    MOV X3, #2000
loop:
    ADD X2, X2, #1
    SUB X3, X3, #1
    CBNZ X3, loop
    HALT
"""


class TestLivelock:
    def test_infinite_spin_raises_livelock(self):
        system = build_system(CORTEX_A76)
        core = system.prepare(assemble(SPIN))
        watchdog = Watchdog(commit_limit=500).attach(core)
        assert core.watchdog is watchdog
        with pytest.raises(LivelockError) as excinfo:
            core.run(max_cycles=1_000_000)
        error = excinfo.value
        assert error.commits > 500
        assert len(error.distinct_pcs) <= watchdog.distinct_pc_limit
        assert error.snapshot["cycle"] == core.cycle
        assert summarize(error.snapshot)

    def test_livelock_beats_the_cycle_timeout(self):
        # Without the watchdog a spin burns the whole max_cycles budget; the
        # watchdog converts it into a prompt, typed diagnosis.
        system = build_system(CORTEX_A76)
        core = system.prepare(assemble(SPIN))
        Watchdog(commit_limit=500).attach(core)
        with pytest.raises(LivelockError):
            core.run(max_cycles=1_000_000)
        assert core.cycle < 100_000

    def test_benign_loop_does_not_trip(self):
        # The loop body spans >2 distinct PCs, so the window keeps
        # resetting even though it commits far more than commit_limit.
        system = build_system(CORTEX_A76)
        core = system.prepare(assemble(BUSY_LOOP))
        watchdog = Watchdog(commit_limit=500).attach(core)
        core.run()
        assert core.halted
        assert watchdog.commits_seen > 500


class TestDeadlockSnapshot:
    def test_threshold_comes_from_config_and_snapshot_is_attached(self):
        config = replace(CORTEX_A76,
                         core=replace(CORTEX_A76.core, deadlock_threshold=8))
        # A cold LDR takes a DRAM round trip — far more than 8 cycles with
        # nothing committing, so the tiny threshold trips mid-miss.
        system = build_system(config)
        core = system.prepare(assemble(
            ".data arr 0x5000 zero 64\nMOV X1, #0x5000\nLDR X2, [X1]\nHALT"))
        with pytest.raises(DeadlockError) as excinfo:
            core.run()
        error = excinfo.value
        assert error.cycles > 8
        assert error.snapshot["rob"]["occupancy"] > 0
        head = error.snapshot["rob"]["head"]
        assert head is not None
        # The one-line summary names the stuck ROB head.
        assert "rob-head" in summarize(error.snapshot)
