"""Checkpoint fault kinds driven through the live injector.

The durable-state fault classes damage the run's newest checkpoint
generation while the simulation is still going — the TikTag-style question
asked of the checkpoint layer instead of the tag store: when the machinery
recovery relies on is itself perturbed, restore must degrade to an older
generation or fail typed, never load half-trusted state.
"""

from repro import build_system, CORTEX_A76, DefenseKind
from repro.checkpoint import CheckpointManager
from repro.errors import CheckpointError
from repro.resilience import (CHECKPOINT_FAULT_KINDS, FaultInjector,
                              FaultKind, FaultSchedule)
from repro.workloads import build_spec


def prepared(tmp_path, keep=2):
    config = CORTEX_A76.with_defense(DefenseKind.SPECASAN)
    program = build_spec("505.mcf_r", seed=3,
                         target_instructions=600).program
    manager = CheckpointManager(str(tmp_path / "gen"), keep=keep)
    system = build_system(config)
    core = system.prepare(program)
    return config, program, manager, system, core


class TestInjectedCheckpointDamage:
    def test_faults_fire_and_restore_never_loads_damage(self, tmp_path):
        config, program, manager, system, core = prepared(tmp_path)
        core.run(until_cycle=50)
        manager.save(system, program)   # generation 0: pristine fallback
        core.run(until_cycle=100)
        manager.save(system, program)   # generation 1: the fault target

        schedule = FaultSchedule.generate(
            seed=11, kinds=CHECKPOINT_FAULT_KINDS, count=1,
            start_cycle=110, window=40)
        injector = FaultInjector(schedule).attach(core)
        injector.checkpoint_target = (
            lambda: manager.path_for(manager.generations()[0]))
        core.run()
        assert injector.injected_kinds == set(CHECKPOINT_FAULT_KINDS)

        # The newest generation took four kinds of damage; restore must
        # either walk back to the pristine generation 0 (rejecting 1 with a
        # typed kind) or — had every generation been hit — raise. It must
        # never hand back state from the damaged file.
        resumed = build_system(config)
        try:
            result = manager.restore(resumed, program)
        except CheckpointError as err:
            assert err.kind in ("truncated", "section-corrupt",
                                "schema-skew", "config-skew", "torn-header")
        else:
            assert result.generation == 0
            assert result.cycle == 50
            assert result.rejected and all(
                r.kind != "missing" for r in result.rejected)
            assert resumed.core.cycle == 50

    def test_unset_target_makes_checkpoint_faults_noops(self, tmp_path):
        _, program, manager, system, core = prepared(tmp_path)
        core.run(until_cycle=60)
        manager.save(system, program)
        schedule = FaultSchedule.generate(
            seed=5, kinds=[FaultKind.CHECKPOINT_TRUNCATE], count=2,
            start_cycle=70, window=30)
        injector = FaultInjector(schedule).attach(core)
        core.run()  # checkpoint_target left None
        assert injector.injected_kinds == {FaultKind.CHECKPOINT_TRUNCATE}
        # The generation survived untouched.
        result = manager.restore(build_system(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN)), program)
        assert result.cycle == 60 and result.rejected == []

    def test_schedule_covers_checkpoint_kinds_deterministically(self):
        a = FaultSchedule.generate(3, CHECKPOINT_FAULT_KINDS, count=2)
        b = FaultSchedule.generate(3, CHECKPOINT_FAULT_KINDS, count=2)
        assert a.events == b.events
        assert {e.kind for e in a.events} == set(CHECKPOINT_FAULT_KINDS)
        for event in a.events:
            assert "checkpoint" in event.kind.value
            assert event.describe()
