"""Fault schedules, the injector, and the structure-level hooks."""

import pytest

from repro import build_system, CORTEX_A76, DefenseKind
from repro.errors import ConfigError
from repro.isa import assemble
from repro.memory.lfb import LineFillBuffer
from repro.memory.mshr import MSHRFile
from repro.mte.tagstore import TagStorage
from repro.resilience import (ALL_FAULT_KINDS, FaultEvent, FaultInjector,
                              FaultKind, FaultSchedule)

LOOP = """
    .data arr 0x5000 zero 8192
    MOV X1, #0x5000
    MOV X2, #0
    MOV X3, #64
loop:
    LDR X4, [X1, X2]
    ADD X2, X2, #64
    SUB X3, X3, #1
    CBNZ X3, loop
    HALT
"""


class TestSchedule:
    def test_generation_is_deterministic(self):
        a = FaultSchedule.generate(7, ALL_FAULT_KINDS)
        b = FaultSchedule.generate(7, ALL_FAULT_KINDS)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = FaultSchedule.generate(7, ALL_FAULT_KINDS)
        b = FaultSchedule.generate(8, ALL_FAULT_KINDS)
        assert a.events != b.events

    def test_events_sorted_and_counted(self):
        schedule = FaultSchedule.generate(1, ALL_FAULT_KINDS, count=3)
        assert len(schedule.events) == 3 * len(ALL_FAULT_KINDS)
        cycles = [e.cycle for e in schedule.events]
        assert cycles == sorted(cycles)
        assert {e.kind for e in schedule.events} == set(ALL_FAULT_KINDS)

    def test_describe_mentions_the_kind(self):
        for event in FaultSchedule.generate(2, ALL_FAULT_KINDS,
                                            count=1).events:
            assert event.kind.value in event.describe()


class TestTagStorageFlip:
    def test_flip_bit_corrupts_and_counts(self):
        tags = TagStorage(4096, granule_bytes=16, tag_bits=4)
        tags.set(0x100, 0x5)
        assert tags.flip_bit(0x100, 0) == 0x4
        assert tags.corruptions == 1
        assert tags.corrupted_granules == {0x100 // 16}

    def test_rewrite_scrubs_the_corruption(self):
        tags = TagStorage(4096)
        tags.flip_bit(0x200, 2)
        assert tags.corrupted_granules
        tags.set(0x200, 0x7)
        assert not tags.corrupted_granules

    def test_set_range_scrubs_too(self):
        tags = TagStorage(4096)
        tags.flip_bit(0x100, 1)
        tags.set_range(0x100, 32, 0x3)
        assert not tags.corrupted_granules

    def test_out_of_width_bit_rejected(self):
        with pytest.raises(ConfigError):
            TagStorage(4096, tag_bits=4).flip_bit(0x0, 4)


class TestStructureReservation:
    def test_mshr_reserve_saturates_capacity(self):
        mshrs = MSHRFile(4)
        assert mshrs.reserve(100, until_cycle=50) == 4
        assert mshrs.full
        assert mshrs.earliest_ready() == 50
        mshrs.release_reserved()
        assert not mshrs.full

    def test_mshr_reserve_respects_existing_entries(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, ready_cycle=10)
        assert mshrs.reserve(100, until_cycle=50) == 3

    def test_lfb_reserve_makes_phantoms(self):
        lfb = LineFillBuffer(4)
        assert lfb.reserve(2, until_cycle=99) == 2
        phantoms = [e for e in lfb.entries if e.phantom]
        assert len(phantoms) == 2
        # Phantoms never match lookups and never drain.
        assert lfb.lookup(-1) is None or not lfb.lookup(-1).phantom
        assert lfb.drain(1_000_000) == []
        lfb.release_reserved()
        assert not any(e.phantom for e in lfb.entries)
        assert all(e.filled for e in lfb.entries)


def _run_with_injector(schedule):
    system = build_system(CORTEX_A76.with_defense(DefenseKind.SPECASAN))
    core = system.prepare(assemble(LOOP))
    injector = FaultInjector(schedule).attach(core)
    core.run(max_cycles=200_000)
    return core, injector


class TestInjector:
    def test_attach_wires_core_and_controller(self):
        system = build_system(CORTEX_A76)
        core = system.prepare(assemble("HALT"))
        injector = FaultInjector(FaultSchedule(seed=0)).attach(core)
        assert core.fault_injector is injector
        assert system.hierarchy.controller.injector is injector

    def test_scheduled_faults_fire_during_a_run(self):
        schedule = FaultSchedule.generate(
            3, ALL_FAULT_KINDS, count=2, start_cycle=20, window=100)
        core, injector = _run_with_injector(schedule)
        assert core.halted
        assert injector.injected_kinds == set(ALL_FAULT_KINDS)
        assert len(injector.injected) == len(schedule.events)
        assert injector.report()

    def test_injection_is_reproducible(self):
        schedule = FaultSchedule.generate(
            11, [FaultKind.PREDICTOR_CORRUPT, FaultKind.TAG_RESPONSE_DELAY],
            count=2, start_cycle=20, window=100)
        first, a = _run_with_injector(schedule)
        second, b = _run_with_injector(schedule)
        assert [e for _, e in a.injected] == [e for _, e in b.injected]
        assert first.cycle == second.cycle

    def test_tag_response_drop_delays_but_completes(self):
        schedule = FaultSchedule(seed=0, events=[
            FaultEvent(cycle=5, kind=FaultKind.TAG_RESPONSE_DROP, count=8)])
        core, injector = _run_with_injector(schedule)
        assert core.halted
        assert core.hierarchy.controller.dropped_tag_responses > 0

    def test_perturbation_is_consumed(self):
        injector = FaultInjector(FaultSchedule(seed=0))
        injector._drops_armed = 1
        assert injector.perturb_tag_response() == (True, 0)
        assert injector.perturb_tag_response() == (False, 0)
