"""Invariant checking, snapshots, and graceful degradation."""

from types import SimpleNamespace

import pytest

from repro import build_system, CORTEX_A76, DefenseKind
from repro.errors import InvariantViolation
from repro.isa import assemble
from repro.pipeline.dyninstr import InstrState
from repro.resilience import (core_snapshot, GracefulDegradation, INVARIANTS,
                              InvariantChecker, summarize)

PROGRAM = """
    .data arr 0x5000 zero 4096
    MOV X1, #0x5000
    MOV X2, #0
    MOV X3, #16
loop:
    LDR X4, [X1, X2]
    ADD X2, X2, #64
    SUB X3, X3, #1
    CBNZ X3, loop
    HALT
"""


def _prepared_core(defense=DefenseKind.SPECASAN, source=PROGRAM):
    system = build_system(CORTEX_A76.with_defense(defense))
    return system, system.prepare(assemble(source))


class TestCleanRuns:
    @pytest.mark.parametrize("defense", [
        DefenseKind.NONE, DefenseKind.FENCE, DefenseKind.SPECASAN])
    def test_benign_program_has_zero_violations(self, defense):
        system, core = _prepared_core(defense)
        checker = InvariantChecker(interval=16).attach(core)
        core.run()
        assert core.halted
        assert checker.checks_run > 0
        assert checker.log == []

    def test_attach_returns_self_and_wires_core(self):
        _, core = _prepared_core()
        checker = InvariantChecker().attach(core)
        assert core.invariant_checker is checker


class TestViolationDetection:
    def test_tag_corruption_raises_typed_violation(self):
        system, core = _prepared_core()
        checker = InvariantChecker(interval=16).attach(core)
        core.hierarchy.memory.tags.flip_bit(0x5000, 1)
        with pytest.raises(InvariantViolation) as excinfo:
            core.run()
        error = excinfo.value
        assert error.invariant == "tag-storage-integrity"
        assert error.structure == "tag-storage"
        assert error.snapshot["cycle"] == core.cycle
        assert checker.log

    def test_rob_disorder_detected(self):
        _, core = _prepared_core()
        checker = InvariantChecker().attach(core)
        fake = lambda seq: SimpleNamespace(
            seq=seq, squashed=False, state=InstrState.ISSUED)
        core.rob.extend([fake(5), fake(3)])
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(core)
        assert excinfo.value.invariant == "rob-commit-order"
        assert excinfo.value.structure == "rob"

    def test_squashed_entry_in_rob_detected(self):
        _, core = _prepared_core()
        checker = InvariantChecker().attach(core)
        core.rob.append(SimpleNamespace(
            seq=1, squashed=True, state=InstrState.ISSUED))
        with pytest.raises(InvariantViolation, match="squashed"):
            checker.check(core)

    def test_lsq_orphan_detected(self):
        _, core = _prepared_core()
        checker = InvariantChecker().attach(core)
        orphan = SimpleNamespace(seq=2, is_load=True, is_store=False,
                                 static=SimpleNamespace(
                                     op=SimpleNamespace(value="LDR")))
        core.lsq.lq.append(orphan)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(core)
        assert excinfo.value.invariant == "lq-age-order"
        assert "leaked entry" in str(excinfo.value)

    def test_leaked_mshr_detected(self):
        system, core = _prepared_core()
        checker = InvariantChecker(future_slack=1_000).attach(core)
        system.hierarchy.l2_mshrs.allocate(0x9000, ready_cycle=10_000_000)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(core)
        assert excinfo.value.invariant == "mshr-leak-freedom"
        assert excinfo.value.structure == "mshr"

    def test_tag_coherence_drift_detected(self):
        system, core = _prepared_core()
        checker = InvariantChecker().attach(core)
        # Warm the cache with the tagged array, then silently change the
        # DRAM truth without the STG coherence path.
        core.run()
        core.halted = False
        tags = system.hierarchy.memory.tags
        tags._tags[0x5000 // 16] ^= 0x1
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check(core)
        assert excinfo.value.invariant == "tag-coherence"
        assert excinfo.value.structure == "tag-storage"


class TestGracefulDegradation:
    def test_tag_fault_degrades_to_fence_and_completes(self):
        system, core = _prepared_core()
        degradation = GracefulDegradation()
        InvariantChecker(interval=16, degradation=degradation).attach(core)
        core.hierarchy.memory.tags.flip_bit(0x5000, 1)
        core.run()
        assert core.halted
        assert degradation.degraded
        event = degradation.events[0]
        assert event.policy_before == "specasan"
        assert event.policy_after == "fence"
        assert core.policy.name == "fence"

    def test_pipeline_faults_are_never_absorbed(self):
        _, core = _prepared_core()
        degradation = GracefulDegradation()
        checker = InvariantChecker(degradation=degradation).attach(core)
        core.rob.append(SimpleNamespace(
            seq=1, squashed=True, state=InstrState.ISSUED))
        with pytest.raises(InvariantViolation):
            checker.check(core)
        assert not degradation.degraded

    def test_raise_mode_never_absorbs(self):
        from repro.resilience import DegradationMode
        system, core = _prepared_core()
        degradation = GracefulDegradation(mode=DegradationMode.RAISE)
        InvariantChecker(interval=16, degradation=degradation).attach(core)
        core.hierarchy.memory.tags.flip_bit(0x5000, 1)
        with pytest.raises(InvariantViolation):
            core.run()
        assert not degradation.degraded


class TestSnapshot:
    def test_snapshot_structure(self):
        system, core = _prepared_core()
        core.run()
        snapshot = core_snapshot(core)
        assert snapshot["halted"] is True
        assert snapshot["cycle"] == core.cycle
        for key in ("rob", "lq", "sq", "mshr", "policy", "last_commit_pc"):
            assert key in snapshot
        assert snapshot["rob"]["occupancy"] == 0

    def test_summarize_is_one_line(self):
        _, core = _prepared_core()
        core.run()
        text = summarize(core_snapshot(core))
        assert "\n" not in text
        assert "rob" in text

    def test_invariant_table_is_complete(self):
        names = {name for name, _ in INVARIANTS}
        assert names == {
            "rob-commit-order", "lq-age-order", "sq-age-order",
            "mshr-leak-freedom", "lfb-leak-freedom",
            "tag-storage-integrity", "tag-coherence"}
