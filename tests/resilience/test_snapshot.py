"""Diagnostic snapshots: summary capture and restorable rebuilds."""

import pytest

from repro import build_system, CORTEX_A76, DefenseKind
from repro.resilience.snapshot import core_snapshot, rebuild_core, summarize
from repro.workloads import build_spec


def paused_system(defense=DefenseKind.SPECASAN, until=80):
    config = CORTEX_A76.with_defense(defense)
    program = build_spec("505.mcf_r", seed=3,
                         target_instructions=600).program
    system = build_system(config)
    core = system.prepare(program)
    core.run(until_cycle=until)
    return config, program, system, core


class TestDiagnosticSnapshot:
    def test_names_structures_and_occupancies(self):
        _, _, _, core = paused_system()
        snapshot = core_snapshot(core)
        assert snapshot["cycle"] == core.cycle
        assert snapshot["rob"]["capacity"] == core.config.core.rob_entries
        assert 0 <= snapshot["rob"]["occupancy"] <= snapshot["rob"]["capacity"]
        assert {"lq", "sq", "mshr", "lfb_inflight"} <= set(snapshot)
        assert "state" not in snapshot  # summaries stay lightweight
        line = summarize(snapshot)
        assert "rob-head" in line and "mshr" in line

    def test_capture_does_not_perturb_the_run(self):
        _, _, reference_system, reference = paused_system()
        _, _, observed_system, observed = paused_system()
        core_snapshot(observed)
        reference.run()
        observed.run()
        assert reference.cycle == observed.cycle
        assert (reference_system.stats_registry().dump()
                == observed_system.stats_registry().dump())


class TestRestorableSnapshot:
    def test_rebuild_resumes_exactly_where_it_stopped(self):
        config, program, system, core = paused_system()
        snapshot = core_snapshot(core, restorable=True)
        hierarchy_state = system.hierarchy.state_dict()
        core.run()
        reference_cycle_end = core.cycle
        reference_committed = core.stats.committed

        # Post-mortem shape: fresh system, same config/program; bring the
        # hierarchy back to the pause point, rebuild the wedged core into
        # it, and let it finish.
        host = build_system(config)
        host.prepare(program)
        host.hierarchy.load_state_dict(hierarchy_state)
        revived = rebuild_core(snapshot, config, host.hierarchy, program)
        assert revived.cycle == snapshot["cycle"]
        assert revived.fetch_pc == snapshot["fetch_pc"]
        assert len(revived.rob) == snapshot["rob"]["occupancy"]
        assert len(revived.lsq.lq) == snapshot["lq"]["occupancy"]
        revived.run()
        assert revived.cycle == reference_cycle_end
        assert revived.stats.committed == reference_committed

    def test_non_restorable_snapshot_refuses_rebuild(self):
        config, program, system, core = paused_system(until=40)
        snapshot = core_snapshot(core)
        with pytest.raises(ValueError, match="restorable"):
            rebuild_core(snapshot, config, system.hierarchy, program)
