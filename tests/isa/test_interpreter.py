"""The sequential reference interpreter."""

import pytest

from repro.errors import SimulationError, TagCheckFault
from repro.isa import assemble, Interpreter


def run(source, **kwargs):
    interpreter = Interpreter(assemble(source), **kwargs)
    interpreter.run()
    return interpreter


class TestBasics:
    def test_arithmetic_and_loop(self):
        interp = run("""
            MOV X0, #0
            MOV X1, #10
        loop:
            ADD X0, X0, X1
            SUB X1, X1, #1
            CBNZ X1, loop
            HALT
        """)
        assert interp.regs[0] == 55

    def test_memory_round_trip(self):
        interp = run("""
            MOV X1, #0x3000
            MOV X2, #77
            STR X2, [X1]
            LDRB X3, [X1]
            HALT
        """)
        assert interp.regs[3] == 77

    def test_calls(self):
        interp = run("""
            MOV X0, #1
            BL f
            HALT
        f:
            ADD X0, X0, #41
            RET
        """)
        assert interp.regs[0] == 42

    def test_executed_counter(self):
        interp = run("NOP\nNOP\nHALT")
        assert interp.executed == 3

    def test_timeout(self):
        program = assemble("loop:\nB loop\nHALT")
        interpreter = Interpreter(program)
        with pytest.raises(SimulationError):
            interpreter.run(max_steps=100)

    def test_falls_off_text(self):
        program = assemble("NOP")  # no HALT
        interpreter = Interpreter(program)
        with pytest.raises(SimulationError):
            interpreter.run(max_steps=10)


class TestMTE:
    def test_tag_checked_mode_faults_on_mismatch(self):
        source = """
            .data buf 0x4000 tag=5 words 1
            MOV X1, #0x4000
            ADDG X1, X1, #0, #3
            LDR X2, [X1]
            HALT
        """
        with pytest.raises(TagCheckFault):
            run(source, check_tags=True)

    def test_tag_checked_mode_passes_on_match(self):
        source = """
            .data buf 0x4000 tag=5 words 9
            MOV X1, #0x4000
            ADDG X1, X1, #0, #5
            LDR X2, [X1]
            HALT
        """
        assert run(source, check_tags=True).regs[2] == 9

    def test_stg_ldg(self):
        interp = run("""
            MOV X1, #0x4000
            ADDG X2, X1, #0, #7
            STG X2, [X2]
            LDG X3, [X1]
            HALT
        """)
        assert (interp.regs[3] >> 56) & 0xF == 7

    def test_irg_is_seed_deterministic(self):
        source = "MOV X1, #0x4000\nIRG X2, X1\nHALT"
        first = run(source, seed=5).regs[2]
        second = run(source, seed=5).regs[2]
        third = run(source, seed=6).regs[2]
        assert first == second
        assert first & ((1 << 56) - 1) == 0x4000
        # (different seeds usually differ; at minimum they stay valid)
        assert third & ((1 << 56) - 1) == 0x4000
