"""Disassembler round-trip properties: ``assemble(disassemble(p)) == p``.

The contract (see :mod:`repro.isa.disasm`) is structural, not textual:
label names may be renamed (builder-fresh ``.L1`` labels are not valid
assembler labels) and instruction notes are annotations, so equality is
checked via :func:`~repro.isa.disasm.signature`.  Without notes the text
itself is a fixed point.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.disasm import disassemble, signature
from repro.workloads import PARSEC_BY_NAME, SPEC_BY_NAME
from repro.workloads.generator import generate

HANDWRITTEN = """
    .data arr 0x4000 tag=2 bytes 1 1 1 1
    .data sec 0x4100 tag=5 bytes 11
    .data probe 0x100000 zero 4096
    MOV X2, #0x4000
    MOV X0, #3
    CMP X0, #4
    B.HS skip
    LDRB X5, [X2, X0]
    LSL X6, X5, #12
    MOV X3, #0x100000
    ADD X7, X3, X6
    LDRB X8, [X7]
skip:
    HALT
"""


def roundtrip(program):
    """Disassemble, re-assemble, and assert structural identity."""
    text = disassemble(program)
    again = assemble(text)
    assert signature(again) == signature(program)
    return again, text


def _builder_program():
    """A program exercising builder-fresh (``.L1``-style) labels, tagged
    data, branches, and an end-of-loop back edge."""
    b = ProgramBuilder()
    b.bytes_segment("payload", 0x4000, bytes([7] * 16), tag=3)
    b.words_segment("table", 0x5000, [0x4000, (0x3 << 56) | 0x4008])
    loop = b.fresh_label("loop")
    done = b.fresh_label("done")
    b.li("X0", 4)
    b.li("X1", 0x4000)
    b.label(loop)
    b.cbz("X0", done)
    b.ldrb("X2", "X1", note="a note that must not survive re-assembly")
    b.sub("X0", "X0", imm=1)
    b.b(loop)
    b.label(done)
    b.halt()
    return b.build()


class TestRoundTrip:
    def test_handwritten_source_roundtrips(self):
        roundtrip(assemble(HANDWRITTEN))

    def test_builder_fresh_labels_are_renamed_and_roundtrip(self):
        program = _builder_program()
        again, text = roundtrip(program)
        assert ".L" not in text  # builder labels sanitized for the grammar
        # Idempotence: renaming already-valid labels is the identity.
        roundtrip(again)

    def test_text_fixed_point_without_notes(self):
        program = _builder_program()
        text = disassemble(program, notes=False)
        assert disassemble(assemble(text), notes=False) == text

    def test_notes_render_but_do_not_survive(self):
        program = _builder_program()
        text = disassemble(program)
        assert "must not survive" in text
        assert "must not survive" not in disassemble(assemble(text))

    def test_disassembly_is_deterministic(self):
        assert disassemble(_builder_program()) == disassemble(
            _builder_program())

    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from(sorted(SPEC_BY_NAME)), st.integers(0, 7),
           st.booleans())
    def test_generated_spec_workloads_roundtrip(self, name, seed,
                                                instrumented):
        program = generate(SPEC_BY_NAME[name], seed=seed,
                           target_instructions=300,
                           mte_instrumented=instrumented).program
        roundtrip(program)

    @settings(max_examples=4, deadline=None)
    @given(st.sampled_from(sorted(PARSEC_BY_NAME)), st.integers(0, 3))
    def test_generated_parsec_workloads_roundtrip(self, name, seed):
        spec = PARSEC_BY_NAME[name]
        program = generate(spec.profile, seed=seed, target_instructions=300,
                           shared_base=0x300000, shared_size=0x1000,
                           shared_fraction=spec.shared_fraction).program
        roundtrip(program)


class TestSignature:
    def test_signature_ignores_label_names_and_notes(self):
        a = assemble(HANDWRITTEN)
        b = assemble(HANDWRITTEN.replace("skip", "elsewhere"))
        assert signature(a) == signature(b)

    def test_signature_sees_operand_changes(self):
        a = assemble(HANDWRITTEN)
        b = assemble(HANDWRITTEN.replace("MOV X0, #3", "MOV X0, #5"))
        assert signature(a) != signature(b)

    def test_signature_sees_data_changes(self):
        a = assemble(HANDWRITTEN)
        b = assemble(HANDWRITTEN.replace("bytes 11", "bytes 12"))
        assert signature(a) != signature(b)
