"""Static-instruction classification and dependency extraction."""

import pytest

from repro.isa.instructions import (
    Cond,
    FLAGS_REG,
    Instruction,
    InstrClass,
    Opcode,
)
from repro.isa.registers import XZR


class TestClassification:
    def test_alu_ops(self):
        for op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.ORR,
                   Opcode.EOR, Opcode.LSL, Opcode.MOV, Opcode.CMP):
            assert Instruction(op, rd=0, rn=1, imm=1).klass is InstrClass.ALU

    def test_mul_div_classes(self):
        assert Instruction(Opcode.MUL, rd=0, rn=1, rm=2).klass is InstrClass.MUL
        assert Instruction(Opcode.UDIV, rd=0, rn=1, rm=2).klass is InstrClass.DIV

    def test_loads(self):
        for op in (Opcode.LDR, Opcode.LDRB, Opcode.LDG):
            instr = Instruction(op, rd=0, rn=1)
            assert instr.is_load and instr.is_memory and not instr.is_store

    def test_stores(self):
        for op in (Opcode.STR, Opcode.STRB, Opcode.STG):
            instr = Instruction(op, rd=0, rn=1)
            assert instr.is_store and instr.is_memory and not instr.is_load

    def test_branch_kinds(self):
        assert Instruction(Opcode.B, target="x").is_branch
        assert Instruction(Opcode.B_COND, cond=Cond.EQ,
                           target="x").is_conditional_branch
        assert Instruction(Opcode.BR, rn=3).is_indirect_branch
        assert Instruction(Opcode.RET).is_return
        assert Instruction(Opcode.BL, target="x").is_call
        assert Instruction(Opcode.BLR, rn=2).is_call
        assert Instruction(Opcode.BLR, rn=2).is_indirect_branch

    def test_barrier(self):
        assert Instruction(Opcode.SB).is_barrier
        assert Instruction(Opcode.SB).klass is InstrClass.BARRIER

    def test_memory_width(self):
        assert Instruction(Opcode.LDR, rd=0, rn=1).memory_bytes == 8
        assert Instruction(Opcode.LDRB, rd=0, rn=1).memory_bytes == 1
        assert Instruction(Opcode.STG, rd=0, rn=1).memory_bytes == 16


class TestDependencies:
    def test_alu_sources(self):
        instr = Instruction(Opcode.ADD, rd=0, rn=1, rm=2)
        assert set(instr.src_regs) == {1, 2}
        assert instr.dst_regs == (0,)

    def test_imm_form_has_one_source(self):
        instr = Instruction(Opcode.ADD, rd=0, rn=1, imm=4)
        assert instr.src_regs == (1,)

    def test_xzr_never_a_dependency(self):
        instr = Instruction(Opcode.ADD, rd=XZR, rn=XZR, rm=XZR)
        assert instr.src_regs == ()
        assert instr.dst_regs == ()

    def test_cmp_writes_flags(self):
        instr = Instruction(Opcode.CMP, rn=1, imm=5)
        assert instr.dst_regs == (FLAGS_REG,)

    def test_bcond_reads_flags(self):
        instr = Instruction(Opcode.B_COND, cond=Cond.LO, target="t")
        assert instr.src_regs == (FLAGS_REG,)

    def test_store_reads_data_and_address(self):
        instr = Instruction(Opcode.STR, rd=5, rn=6, rm=7)
        assert set(instr.src_regs) == {5, 6, 7}
        assert instr.dst_regs == ()

    def test_load_writes_destination(self):
        instr = Instruction(Opcode.LDR, rd=5, rn=6)
        assert instr.src_regs == (6,)
        assert instr.dst_regs == (5,)

    def test_call_writes_link_register(self):
        assert Instruction(Opcode.BL, target="f").dst_regs == (30,)
        assert Instruction(Opcode.BLR, rn=4).dst_regs == (30,)

    def test_ret_reads_link_register(self):
        assert Instruction(Opcode.RET).src_regs == (30,)

    def test_cbz_reads_its_register(self):
        assert Instruction(Opcode.CBZ, rn=9, target="t").src_regs == (9,)

    def test_stg_reads_tag_source_and_base(self):
        instr = Instruction(Opcode.STG, rd=2, rn=3)
        assert set(instr.src_regs) == {2, 3}


class TestRender:
    @pytest.mark.parametrize("instr,expected", [
        (Instruction(Opcode.ADD, rd=0, rn=1, imm=4), "ADD X0, X1, #4"),
        (Instruction(Opcode.LDR, rd=5, rn=2, rm=0), "LDR X5, [X2, X0]"),
        (Instruction(Opcode.STR, rd=5, rn=2, imm=8), "STR X5, [X2, #8]"),
        (Instruction(Opcode.B_COND, cond=Cond.LO, target="loop"), "B.LO loop"),
        (Instruction(Opcode.RET), "RET"),
        (Instruction(Opcode.MOV, rd=1, imm=42), "MOV X1, #42"),
    ])
    def test_render(self, instr, expected):
        assert instr.render() == expected
