"""Program container: linking, fetching, listings."""

import pytest

from repro.errors import AssemblerError
from repro.isa import assemble
from repro.isa.instructions import INSTR_BYTES


class TestLinking:
    def test_addresses_are_sequential(self):
        program = assemble("NOP\nNOP\nNOP\nHALT")
        addresses = [i.address for i in program.instructions]
        assert addresses == [program.base_address + k * INSTR_BYTES
                             for k in range(4)]

    def test_fetch_by_address(self):
        program = assemble("NOP\nMOV X0, #1\nHALT")
        assert program.fetch(program.base_address + 4).imm == 1

    def test_fetch_outside_text_returns_none(self):
        program = assemble("HALT")
        assert program.fetch(program.base_address - 4) is None
        assert program.fetch(program.end_address) is None

    def test_fetch_misaligned_returns_none(self):
        program = assemble("NOP\nHALT")
        assert program.fetch(program.base_address + 2) is None

    def test_end_address(self):
        program = assemble("NOP\nHALT")
        assert program.end_address == program.base_address + 8

    def test_address_of_unknown_label(self):
        program = assemble("HALT")
        with pytest.raises(AssemblerError):
            program.address_of("missing")


class TestListing:
    def test_listing_contains_labels_and_addresses(self):
        program = assemble("entry:\nMOV X0, #1\nloop:\nB loop\nHALT")
        text = program.listing()
        assert "entry:" in text and "loop:" in text
        assert f"{program.base_address:#08x}" in text

    def test_listing_window(self):
        program = assemble("NOP\nNOP\nNOP\nHALT")
        text = program.listing(start=2, count=1)
        assert text.count("NOP") == 1
