"""Two-pass assembler: syntax, labels, directives, and errors."""

import pytest

from repro.errors import AssemblerError
from repro.isa import assemble
from repro.isa.instructions import Cond, Opcode


class TestBasicParsing:
    def test_empty_lines_and_comments(self):
        program = assemble("""
            // a comment
            MOV X0, #1   ; trailing comment
            HALT
        """)
        assert len(program) == 2

    def test_alu_register_and_immediate(self):
        program = assemble("ADD X0, X1, X2\nADD X0, X1, #7\nHALT")
        assert program.instructions[0].rm == 2
        assert program.instructions[1].imm == 7

    def test_hex_immediates(self):
        program = assemble("MOV X0, #0x1F\nHALT")
        assert program.instructions[0].imm == 0x1F

    def test_negative_immediate(self):
        program = assemble("ADD X0, X1, #-4\nHALT")
        assert program.instructions[0].imm == -4

    def test_memory_operands(self):
        program = assemble("""
            LDR X0, [X1]
            LDR X0, [X1, #16]
            LDR X0, [X1, X2]
            STRB X0, [X1]
            HALT
        """)
        assert program.instructions[0].imm == 0
        assert program.instructions[1].imm == 16
        assert program.instructions[2].rm == 2
        assert program.instructions[3].op is Opcode.STRB

    def test_mte_instructions(self):
        program = assemble("""
            IRG X0, X1
            ADDG X0, X1, #16, #1
            STG X0, [X0]
            LDG X2, [X0]
            HALT
        """)
        assert program.instructions[0].op is Opcode.IRG
        assert program.instructions[1].imm == 16
        assert program.instructions[1].tag_imm == 1

    def test_conditions(self):
        program = assemble("""
        top:
            B.LO top
            B.HS top
            B.EQ top
            HALT
        """)
        assert program.instructions[0].cond is Cond.LO
        assert program.instructions[1].cond is Cond.HS


class TestLabels:
    def test_forward_and_backward_references(self):
        program = assemble("""
        start:
            B forward
        back:
            B back
        forward:
            B back
            HALT
        """)
        assert program.instructions[0].target_addr == program.address_of("forward")
        assert program.instructions[2].target_addr == program.address_of("back")

    def test_label_on_same_line_as_instruction(self):
        program = assemble("loop: SUB X0, X0, #1\nCBNZ X0, loop\nHALT")
        assert program.instructions[1].target_addr == program.base_address

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nNOP\na:\nHALT")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("B nowhere\nHALT")


class TestDirectives:
    def test_base_directive(self):
        program = assemble(".base 0x8000\nNOP\nHALT")
        assert program.base_address == 0x8000
        assert program.instructions[0].address == 0x8000

    def test_entry_directive(self):
        program = assemble("""
            .entry main
            NOP
        main:
            HALT
        """)
        assert program.entry_address == program.address_of("main")

    def test_data_words(self):
        program = assemble(".data tbl 0x4000 words 1 2 3\nHALT")
        segment = program.segment("tbl")
        assert segment.address == 0x4000
        assert segment.data[:8] == (1).to_bytes(8, "little")
        assert segment.size == 24

    def test_data_zero_and_tag(self):
        program = assemble(".data buf 0x5000 tag=3 zero 32\nHALT")
        segment = program.segment("buf")
        assert segment.size == 32 and segment.tag == 3

    def test_data_bytes(self):
        program = assemble(".data b 0x6000 bytes 1 2 255\nHALT")
        assert program.segment("b").data == bytes([1, 2, 255])

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 1\nHALT")


class TestErrors:
    @pytest.mark.parametrize("source", [
        "FROB X0, X1, X2",       # unknown mnemonic
        "ADD X0, X1",            # missing operand
        "LDR X0, X1",            # bad memory operand
        "B.XX somewhere",        # unknown condition
        "MOV X0, #zzz",          # bad immediate
    ])
    def test_bad_syntax_raises_with_line(self, source):
        with pytest.raises(AssemblerError):
            assemble(source + "\nHALT")

    def test_error_carries_line_number(self):
        try:
            assemble("NOP\nNOP\nFROB X0\nHALT")
        except AssemblerError as exc:
            assert "line 3" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected AssemblerError")


class TestDiagnostics:
    """Every user-facing assembler error names the offending source line."""

    def test_unknown_opcode_carries_line(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("NOP\nFROB X0\nHALT")
        assert exc.value.line_no == 2
        assert "line 2" in str(exc.value)

    def test_duplicate_label_carries_line(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("a:\nNOP\nNOP\na:\nHALT")
        assert exc.value.line_no == 4
        assert "duplicate label" in str(exc.value)

    def test_unresolved_branch_target_carries_line(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("NOP\nNOP\nB nowhere\nHALT")
        assert exc.value.line_no == 3
        assert "nowhere" in str(exc.value)

    def test_unresolved_conditional_target_carries_line(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("CBZ X0, missing\nHALT")
        assert exc.value.line_no == 1

    def test_first_unresolved_reference_wins(self):
        # Two bad references: the diagnostic points at the earliest one.
        with pytest.raises(AssemblerError) as exc:
            assemble("B gone\nNOP\nB also_gone\nHALT")
        assert exc.value.line_no == 1
        assert "gone" in str(exc.value)

    def test_undefined_entry_label_is_reported(self):
        with pytest.raises(AssemblerError) as exc:
            assemble(".entry main\nNOP\nHALT")
        assert "main" in str(exc.value)

    def test_bad_data_directive_carries_line(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("NOP\n.data t 0x4000 frob 1\nHALT")
        assert exc.value.line_no == 2


class TestRoundTrip:
    def test_render_then_reassemble(self):
        source = """
        entry:
            MOV X0, #5
            ADD X1, X0, #3
            CMP X1, X0
            B.HS entry
            LDR X2, [X1, X0]
            STR X2, [X1, #8]
            RET
        """
        first = assemble(source)
        rendered = "\n".join(
            i.render().replace("entry", "e") if i.target else i.render()
            for i in first.instructions)
        rendered = "e:\n" + rendered
        second = assemble(rendered)
        assert [i.op for i in first.instructions] == [
            i.op for i in second.instructions]
