"""Register naming round-trips and aliases."""

import pytest

from repro.errors import AssemblerError
from repro.isa.registers import FP, LR, reg_index, reg_name, SP, XZR


class TestRegIndex:
    def test_numbered_registers(self):
        for index in range(31):
            assert reg_index(f"X{index}") == index

    def test_case_insensitive(self):
        assert reg_index("x7") == 7
        assert reg_index("xzr") == XZR

    def test_aliases(self):
        assert reg_index("XZR") == 31
        assert reg_index("FP") == FP == 29
        assert reg_index("LR") == LR == 30
        assert reg_index("SP") == SP == 32

    def test_whitespace_tolerated(self):
        assert reg_index("  X3 ") == 3

    @pytest.mark.parametrize("bad", ["X31", "X32", "Y0", "", "X", "X-1", "W5"])
    def test_invalid_names_raise(self, bad):
        with pytest.raises(AssemblerError):
            reg_index(bad)


class TestRegName:
    def test_round_trip(self):
        for index in range(31):
            assert reg_index(reg_name(index)) == index

    def test_special_names(self):
        assert reg_name(XZR) == "XZR"
        assert reg_name(SP) == "SP"

    def test_out_of_range(self):
        with pytest.raises(AssemblerError):
            reg_name(64)
