"""Exhaustive operand-metadata table: every Opcode's srcs, dsts, and class.

The static analyzer (repro.analysis) and the rename/issue machinery both
key off ``src_regs``/``dst_regs``/``klass``; a silent metadata slip breaks
dependency tracking in ways far-removed from the cause.  This table pins a
canonical encoding of EVERY opcode to its exact register reads, writes, and
scheduling class — and fails if an opcode is added without a row here.
"""

import pytest

from repro.isa.instructions import (
    FLAGS_REG,
    Cond,
    InstrClass,
    Instruction,
    Opcode,
)
from repro.isa.registers import XZR

LR = 30

# op -> (instruction, expected srcs, expected dsts, expected class)
CASES = {
    Opcode.ADD: (Instruction(Opcode.ADD, rd=0, rn=1, rm=2),
                 (1, 2), (0,), InstrClass.ALU),
    Opcode.SUB: (Instruction(Opcode.SUB, rd=3, rn=4, imm=7),
                 (4,), (3,), InstrClass.ALU),
    Opcode.AND: (Instruction(Opcode.AND, rd=0, rn=1, rm=2),
                 (1, 2), (0,), InstrClass.ALU),
    Opcode.ORR: (Instruction(Opcode.ORR, rd=0, rn=1, rm=2),
                 (1, 2), (0,), InstrClass.ALU),
    Opcode.EOR: (Instruction(Opcode.EOR, rd=0, rn=1, rm=2),
                 (1, 2), (0,), InstrClass.ALU),
    Opcode.LSL: (Instruction(Opcode.LSL, rd=0, rn=1, imm=12),
                 (1,), (0,), InstrClass.ALU),
    Opcode.LSR: (Instruction(Opcode.LSR, rd=0, rn=1, imm=3),
                 (1,), (0,), InstrClass.ALU),
    Opcode.ASR: (Instruction(Opcode.ASR, rd=0, rn=1, imm=3),
                 (1,), (0,), InstrClass.ALU),
    Opcode.MUL: (Instruction(Opcode.MUL, rd=0, rn=1, rm=2),
                 (1, 2), (0,), InstrClass.MUL),
    Opcode.UDIV: (Instruction(Opcode.UDIV, rd=0, rn=1, rm=2),
                  (1, 2), (0,), InstrClass.DIV),
    Opcode.MOV: (Instruction(Opcode.MOV, rd=0, imm=5),
                 (), (0,), InstrClass.ALU),
    Opcode.CMP: (Instruction(Opcode.CMP, rn=1, rm=2),
                 (1, 2), (FLAGS_REG,), InstrClass.ALU),
    Opcode.B: (Instruction(Opcode.B, target="t"),
               (), (), InstrClass.BRANCH),
    Opcode.B_COND: (Instruction(Opcode.B_COND, cond=Cond.LO, target="t"),
                    (FLAGS_REG,), (), InstrClass.BRANCH),
    Opcode.CBZ: (Instruction(Opcode.CBZ, rn=5, target="t"),
                 (5,), (), InstrClass.BRANCH),
    Opcode.CBNZ: (Instruction(Opcode.CBNZ, rn=5, target="t"),
                  (5,), (), InstrClass.BRANCH),
    Opcode.BR: (Instruction(Opcode.BR, rn=9),
                (9,), (), InstrClass.BRANCH),
    Opcode.BL: (Instruction(Opcode.BL, target="t"),
                (), (LR,), InstrClass.BRANCH),
    Opcode.BLR: (Instruction(Opcode.BLR, rn=9),
                 (9,), (LR,), InstrClass.BRANCH),
    Opcode.RET: (Instruction(Opcode.RET),
                 (LR,), (), InstrClass.BRANCH),
    Opcode.LDR: (Instruction(Opcode.LDR, rd=0, rn=1, rm=2),
                 (1, 2), (0,), InstrClass.LOAD),
    Opcode.LDRB: (Instruction(Opcode.LDRB, rd=0, rn=1, imm=4),
                  (1,), (0,), InstrClass.LOAD),
    Opcode.STR: (Instruction(Opcode.STR, rd=0, rn=1, rm=2),
                 (0, 1, 2), (), InstrClass.STORE),
    Opcode.STRB: (Instruction(Opcode.STRB, rd=0, rn=1, imm=4),
                  (0, 1), (), InstrClass.STORE),
    Opcode.IRG: (Instruction(Opcode.IRG, rd=0, rn=1),
                 (1,), (0,), InstrClass.MTE),
    Opcode.ADDG: (Instruction(Opcode.ADDG, rd=0, rn=1, imm=16, tag_imm=1),
                  (1,), (0,), InstrClass.MTE),
    Opcode.SUBG: (Instruction(Opcode.SUBG, rd=0, rn=1, imm=16, tag_imm=1),
                  (1,), (0,), InstrClass.MTE),
    Opcode.STG: (Instruction(Opcode.STG, rd=0, rn=1),
                 (0, 1), (), InstrClass.STORE),
    Opcode.LDG: (Instruction(Opcode.LDG, rd=0, rn=1),
                 (1,), (0,), InstrClass.MTE),
    Opcode.BTI: (Instruction(Opcode.BTI),
                 (), (), InstrClass.NOP),
    Opcode.SB: (Instruction(Opcode.SB),
                (), (), InstrClass.BARRIER),
    Opcode.NOP: (Instruction(Opcode.NOP),
                 (), (), InstrClass.NOP),
    Opcode.HALT: (Instruction(Opcode.HALT),
                  (), (), InstrClass.HALT),
}


def test_table_covers_every_opcode():
    missing = set(Opcode) - set(CASES)
    assert not missing, f"add metadata rows for {sorted(o.value for o in missing)}"


@pytest.mark.parametrize("op", list(Opcode), ids=lambda o: o.value)
def test_operand_metadata(op):
    instr, srcs, dsts, klass = CASES[op]
    assert instr.src_regs == srcs
    assert instr.dst_regs == dsts
    assert instr.klass is klass


@pytest.mark.parametrize("op", list(Opcode), ids=lambda o: o.value)
def test_metadata_is_cached_and_stable(op):
    instr = CASES[op][0]
    assert instr.src_regs == instr.src_regs
    assert instr.dst_regs == instr.dst_regs


def test_xzr_never_appears_as_dependency():
    load = Instruction(Opcode.LDR, rd=XZR, rn=XZR, rm=XZR)
    assert load.src_regs == () and load.dst_regs == ()
    alu = Instruction(Opcode.ADD, rd=XZR, rn=XZR, rm=XZR)
    assert alu.src_regs == () and alu.dst_regs == ()


def test_memory_widths():
    assert Instruction(Opcode.LDRB, rd=0, rn=1).memory_bytes == 1
    assert Instruction(Opcode.STRB, rd=0, rn=1).memory_bytes == 1
    assert Instruction(Opcode.LDR, rd=0, rn=1).memory_bytes == 8
    assert Instruction(Opcode.STR, rd=0, rn=1).memory_bytes == 8
    assert Instruction(Opcode.STG, rd=0, rn=1).memory_bytes == 16
    assert Instruction(Opcode.LDG, rd=0, rn=1).memory_bytes == 16
