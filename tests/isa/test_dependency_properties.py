"""Property-based checks on instruction dependency extraction."""

from hypothesis import given, settings, strategies as st

from repro.isa.instructions import FLAGS_REG, Instruction, Opcode
from repro.isa.registers import XZR

regs = st.integers(min_value=0, max_value=30)
alu_ops = st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.ORR,
                           Opcode.EOR, Opcode.LSL, Opcode.LSR, Opcode.MUL,
                           Opcode.UDIV])


class TestDependencyProperties:
    @settings(max_examples=60)
    @given(alu_ops, regs, regs, regs)
    def test_alu_srcs_are_exactly_the_operands(self, op, rd, rn, rm):
        instr = Instruction(op, rd=rd, rn=rn, rm=rm)
        assert set(instr.src_regs) == {r for r in (rn, rm) if r != XZR}
        assert instr.dst_regs == ((rd,) if rd != XZR else ())

    @settings(max_examples=40)
    @given(alu_ops, regs, regs, st.integers(0, 4095))
    def test_immediate_forms_have_single_source(self, op, rd, rn, imm):
        instr = Instruction(op, rd=rd, rn=rn, imm=imm)
        assert set(instr.src_regs) <= {rn}

    @settings(max_examples=40)
    @given(regs, regs, regs)
    def test_stores_never_write_registers(self, rd, rn, rm):
        instr = Instruction(Opcode.STR, rd=rd, rn=rn, rm=rm)
        assert instr.dst_regs == ()
        assert rd in instr.src_regs or rd == XZR

    @settings(max_examples=40)
    @given(regs, regs)
    def test_flags_never_leak_into_plain_ops(self, rd, rn):
        instr = Instruction(Opcode.ADD, rd=rd, rn=rn, imm=1)
        assert FLAGS_REG not in instr.src_regs
        assert FLAGS_REG not in instr.dst_regs

    @settings(max_examples=40)
    @given(alu_ops, regs, regs, regs)
    def test_render_is_reparsable(self, op, rd, rn, rm):
        from repro.isa import assemble
        instr = Instruction(op, rd=rd, rn=rn, rm=rm)
        program = assemble(instr.render() + "\nHALT")
        again = program.instructions[0]
        assert (again.op, again.rd, again.rn, again.rm) == (op, rd, rn, rm)
