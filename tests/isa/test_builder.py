"""Programmatic builder API."""

import pytest

from repro.errors import AssemblerError
from repro.isa import ProgramBuilder
from repro.isa.instructions import Opcode


class TestBuilder:
    def test_build_simple_loop(self):
        b = ProgramBuilder()
        b.li("X0", 10)
        b.label("loop")
        b.sub("X0", "X0", imm=1)
        b.cbnz("X0", "loop")
        b.halt()
        program = b.build()
        assert len(program) == 4
        assert program.instructions[2].target_addr == program.address_of("loop")

    def test_register_accepts_names_and_indices(self):
        b = ProgramBuilder()
        b.add(0, "X1", rm=2)
        instr = b.build().instructions[0]
        assert (instr.rd, instr.rn, instr.rm) == (0, 1, 2)

    def test_alu_requires_exactly_one_second_operand(self):
        b = ProgramBuilder()
        with pytest.raises(ValueError):
            b.add("X0", "X1")
        with pytest.raises(ValueError):
            b.add("X0", "X1", rm="X2", imm=3)

    def test_li_masks_to_64_bits(self):
        b = ProgramBuilder()
        b.li("X0", 1 << 70)
        assert b.build().instructions[0].imm == 0

    def test_segments(self):
        b = ProgramBuilder()
        b.words_segment("w", 0x4000, [7, 8])
        b.zero_segment("z", 0x5000, 64, tag=2)
        b.bytes_segment("b", 0x6000, b"\x01\x02")
        b.halt()
        program = b.build()
        assert program.segment("w").data[:8] == (7).to_bytes(8, "little")
        assert program.segment("z").tag == 2
        assert program.segment("b").size == 2

    def test_overlapping_segments_rejected(self):
        b = ProgramBuilder()
        b.zero_segment("a", 0x4000, 64)
        with pytest.raises(AssemblerError):
            b.zero_segment("b", 0x4020, 64)

    def test_fresh_labels_are_unique(self):
        b = ProgramBuilder()
        assert b.fresh_label() != b.fresh_label()

    def test_current_address_and_pad_to(self):
        b = ProgramBuilder()
        start = b.current_address()
        b.nop()
        assert b.current_address() == start + 4
        b.pad_to(start + 32)
        assert b.current_address() == start + 32
        with pytest.raises(ValueError):
            b.pad_to(start)  # backwards

    def test_mte_helpers(self):
        b = ProgramBuilder()
        b.irg("X0", "X1")
        b.addg("X2", "X0", offset=16, tag_offset=1)
        b.stg("X2", "X2")
        b.ldg("X3", "X2")
        ops = [i.op for i in b.build().instructions]
        assert ops == [Opcode.IRG, Opcode.ADDG, Opcode.STG, Opcode.LDG]

    def test_entry_point(self):
        b = ProgramBuilder()
        b.nop()
        b.label("main")
        b.halt()
        b.entry("main")
        assert b.build().entry_address == b.build().address_of("main")
