"""Configuration validation and helpers."""

import pytest

from repro.config import (
    CacheConfig,
    CoreConfig,
    CORTEX_A76,
    DefenseKind,
    describe,
    MemoryConfig,
    MTEConfig,
    SystemConfig,
    TagPolicy,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig("x", size_bytes=32 * 1024, associativity=2)
        assert cache.num_sets == 256

    @pytest.mark.parametrize("kwargs", [
        dict(size_bytes=0, associativity=2),
        dict(size_bytes=1000, associativity=3),   # not divisible
        dict(size_bytes=4096, associativity=2, line_bytes=48),
    ])
    def test_invalid_geometry(self, kwargs):
        with pytest.raises(ConfigError):
            CacheConfig("x", **kwargs)


class TestMTEConfig:
    def test_arm_defaults(self):
        mte = MTEConfig()
        assert mte.granule_bytes == 16
        assert mte.num_tags == 16

    def test_wider_tags_for_ablation(self):
        assert MTEConfig(tag_bits=8).num_tags == 256

    def test_invalid(self):
        with pytest.raises(ConfigError):
            MTEConfig(granule_bytes=24)
        with pytest.raises(ConfigError):
            MTEConfig(tag_bits=0)


class TestSystemConfig:
    def test_table2_defaults(self):
        config = CORTEX_A76
        assert config.core.rob_entries == 40
        assert config.core.iq_entries == 32
        assert config.core.lq_entries == 16
        assert config.l1d.size_bytes == 32 * 1024
        assert config.l2.size_bytes == 1024 * 1024
        assert config.memory.lfb_entries == 16

    def test_with_defense_is_a_copy(self):
        tagged = CORTEX_A76.with_defense(DefenseKind.SPECASAN)
        assert tagged.defense is DefenseKind.SPECASAN
        assert CORTEX_A76.defense is DefenseKind.NONE

    def test_with_cores(self):
        assert CORTEX_A76.with_cores(4).num_cores == 4

    def test_defense_kind_helpers(self):
        assert DefenseKind.SPECASAN.uses_specasan
        assert DefenseKind.SPECASAN_CFI.uses_specasan
        assert DefenseKind.SPECASAN_CFI.uses_cfi
        assert DefenseKind.SPECCFI.uses_cfi
        assert not DefenseKind.STT.uses_specasan

    def test_describe_renders_table2(self):
        text = describe(CORTEX_A76)
        assert "40-entry Reorder Buffer" in text
        assert "1 MB" in text

    def test_memory_validation(self):
        with pytest.raises(ConfigError):
            MemoryConfig(dram_latency=0)


class TestCoreConfig:
    def test_deadlock_threshold_default(self):
        assert CORTEX_A76.core.deadlock_threshold == 50_000

    def test_deadlock_threshold_validated(self):
        with pytest.raises(ConfigError):
            CoreConfig(deadlock_threshold=0)
        with pytest.raises(ConfigError):
            CoreConfig(deadlock_threshold=-1)

    def test_max_cycles_default_matches_old_hardcoded_budget(self):
        assert CORTEX_A76.core.max_cycles == 2_000_000

    def test_max_cycles_validated(self):
        with pytest.raises(ConfigError):
            CoreConfig(max_cycles=0)
        with pytest.raises(ConfigError):
            CoreConfig(max_cycles=-5)
