"""The hierarchical stats registry: stats, scopes, dumps, formulas."""

import pytest

from repro.pipeline.stats import CoreStats
from repro.telemetry.registry import (
    CORE_FORMULAS,
    BoundScalar,
    Distribution,
    Scalar,
    StatsRegistry,
    bind_dataclass,
    core_registry,
    hierarchy_registry,
    ratio,
    system_registry,
)


class TestScalars:
    def test_scalar_inc_and_reset(self):
        s = Scalar("x")
        s.inc()
        s.inc(4)
        assert s.value == 5
        s.reset()
        assert s.value == 0

    def test_bound_scalar_views_live_attribute(self):
        stats = CoreStats()
        bound = BoundScalar("committed", lambda: stats.committed,
                            lambda v: setattr(stats, "committed", v))
        stats.committed += 7
        assert bound.value == 7
        bound.reset()
        assert stats.committed == 0

    def test_bound_scalar_without_setter_is_reset_noop(self):
        bound = BoundScalar("n", lambda: 3)
        bound.reset()
        assert bound.value == 3


class TestDistribution:
    def test_moments(self):
        d = Distribution("lat")
        for value in (2, 4, 6):
            d.sample(value)
        assert d.count == 3
        assert d.mean == pytest.approx(4.0)
        assert d.min == 2 and d.max == 6
        assert d.stdev == pytest.approx(1.63299, abs=1e-4)

    def test_linear_buckets(self):
        d = Distribution("occ", bucket_width=4)
        for value in (0, 3, 4, 11):
            d.sample(value)
        assert d.buckets == {0: 2, 1: 1, 2: 1}
        assert d.bucket_bounds(1) == (4, 8)

    def test_log2_buckets(self):
        d = Distribution("lat", log2_buckets=True)
        for value in (0, 1, 2, 3, 8, 200):
            d.sample(value)
        assert d.buckets == {0: 2, 1: 2, 3: 1, 7: 1}
        assert d.bucket_bounds(3) == (8, 16)

    def test_dump_and_reset(self):
        d = Distribution("x", bucket_width=2)
        d.sample(5)
        dump = d.dump()
        assert dump["count"] == 1 and dump["buckets"] == {"2": 1}
        d.reset()
        assert d.count == 0 and d.buckets == {} and d.min is None


class TestRegistry:
    def test_dotted_scopes_nest_in_dump(self):
        registry = StatsRegistry()
        commit = registry.scope("core0").scope("commit")
        commit.scalar("count").inc(3)
        assert registry.dump() == {"core0": {"commit": {"count": 3}}}

    def test_duplicate_name_rejected(self):
        registry = StatsRegistry()
        registry.scope("a").scalar("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.scope("a").scalar("x")

    def test_merge_prefixes(self):
        inner = StatsRegistry()
        inner.scope("core").scalar("cycles").inc(9)
        outer = StatsRegistry()
        outer.merge(inner, prefix="sys")
        assert outer.dump() == {"sys": {"core": {"cycles": 9}}}

    def test_formula_evaluates_lazily(self):
        registry = StatsRegistry()
        n = registry.scope("s").scalar("n")
        registry.scope("s").formula("double", lambda: 2 * n.value)
        n.inc(5)
        assert registry.get("s.double").value == 10

    def test_render_is_stats_txt_style(self):
        registry = StatsRegistry()
        registry.scope("core").scalar("committed", desc="instrs").inc(42)
        text = registry.render(title="run")
        assert "---------- run ----------" in text
        assert "core.committed" in text and "42" in text and "# instrs" in text

    def test_reset_all(self):
        registry = StatsRegistry()
        s = registry.scope("a").scalar("x")
        d = registry.scope("a").distribution("d")
        s.inc(2)
        d.sample(1)
        registry.reset()
        assert s.value == 0 and d.count == 0


class TestDataclassBindings:
    def test_bind_dataclass_covers_every_field(self):
        stats = CoreStats()
        registry = StatsRegistry()
        bind_dataclass(registry.scope("core"), stats)
        stats.committed = 11
        stats.tag_checks = 4
        dump = registry.dump()["core"]
        assert dump["committed"] == 11 and dump["tag_checks"] == 4
        registry.reset()
        assert stats.committed == 0 and stats.tag_checks == 0

    def test_core_registry_formulas_match_properties(self):
        stats = CoreStats(cycles=200, committed=100, branches=50,
                          branch_mispredicts=5, restricted_committed=20)
        registry = core_registry(stats)
        for name in CORE_FORMULAS:
            assert registry.get(f"core.{name}").value == pytest.approx(
                getattr(stats, name))

    def test_ratio_zero_denominator(self):
        assert ratio(5, 0) == 0.0
        assert ratio(5, 2) == 2.5

    def test_hierarchy_registry_hit_rate(self):
        from repro.memory.hierarchy import HierarchyStats
        stats = HierarchyStats(loads=10, l1_hits=6)
        registry = hierarchy_registry(stats)
        assert registry.get("mem.l1_hit_rate").value == pytest.approx(0.6)
        # the dataclass method returns the same view
        assert stats.registry().get("mem.l1_hit_rate").value == \
            pytest.approx(0.6)

    def test_system_registry_scopes_per_core(self):
        a, b = CoreStats(committed=1), CoreStats(committed=2)
        registry = system_registry(per_core=[a, b])
        dump = registry.dump()
        assert dump["core0"]["committed"] == 1
        assert dump["core1"]["committed"] == 2
