"""Latency histograms and the Prometheus text exposition."""

import pytest

from repro.telemetry.prometheus import metric_name, render_prometheus
from repro.telemetry.registry import StatsRegistry


def small_registry() -> StatsRegistry:
    registry = StatsRegistry()
    scope = registry.scope("service")
    hits = scope.scalar("cache.hits", "verdicts served from cache")
    hits.inc(3)
    latency = scope.latency("latency.request_ms", "request latency (ms)")
    for value in (1.0, 2.0, 4.0, 100.0):
        latency.observe(value)
    return registry


class TestLatencyHistogram:
    def test_percentiles_are_ordered_and_clamped(self):
        registry = StatsRegistry()
        hist = registry.scope("t").latency("ms")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.count == 100
        assert 1.0 <= hist.p50 <= hist.p95 <= hist.p99 <= 100.0
        assert hist.p50 == pytest.approx(50.0, rel=0.5)

    def test_empty_histogram_reports_zero(self):
        registry = StatsRegistry()
        hist = registry.scope("t").latency("ms")
        assert hist.p50 == hist.p95 == hist.p99 == 0.0

    def test_negative_observations_clamp_to_zero(self):
        registry = StatsRegistry()
        hist = registry.scope("t").latency("ms")
        hist.observe(-5.0)
        assert hist.count == 1
        assert hist.min == 0.0

    def test_dump_carries_percentiles(self):
        registry = StatsRegistry()
        hist = registry.scope("t").latency("ms")
        hist.observe(8.0)
        dump = hist.dump()
        assert {"p50", "p95", "p99", "count", "mean"} <= set(dump)

    def test_percentile_rejects_out_of_range(self):
        registry = StatsRegistry()
        hist = registry.scope("t").latency("ms")
        with pytest.raises(ValueError):
            hist.percentile(1.5)


class TestMetricName:
    def test_flattens_dots_and_dashes(self):
        assert metric_name("service.cache.hit-rate") == \
            "repro_service_cache_hit_rate"

    def test_no_namespace(self):
        assert metric_name("a.b", namespace="") == "a_b"

    def test_leading_digit_is_escaped(self):
        assert metric_name("505.mcf", namespace="")[0] == "_"


class TestRenderPrometheus:
    def test_gauge_lines(self):
        text = render_prometheus(small_registry())
        assert "# TYPE repro_service_cache_hits gauge" in text
        assert "repro_service_cache_hits 3" in text
        assert "# HELP repro_service_cache_hits verdicts served" in text

    def test_histogram_lines_are_cumulative(self):
        text = render_prometheus(small_registry())
        name = "repro_service_latency_request_ms"
        assert f"# TYPE {name} histogram" in text
        assert f'{name}_bucket{{le="+Inf"}} 4' in text
        assert f"{name}_count 4" in text
        assert f"{name}_sum 107" in text
        buckets = [line for line in text.splitlines()
                   if line.startswith(f"{name}_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts), "bucket series must be cumulative"

    def test_exposition_ends_with_newline(self):
        assert render_prometheus(small_registry()).endswith("\n")

    def test_formula_renders_as_gauge(self):
        registry = StatsRegistry()
        scope = registry.scope("x")
        scope.formula("half", lambda: 0.5, "a ratio")
        text = render_prometheus(registry)
        assert "repro_x_half 0.5" in text
