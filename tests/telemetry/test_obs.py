"""Tests for the observability plane primitives (repro.telemetry.obs)."""

import json
import time

import pytest

from repro.telemetry.obs import (FlightRecorder, Span, SpanRecorder,
                                 collapsed_stacks, is_trace_id, load_spans,
                                 new_trace_id, parse_spans, render_span_tree,
                                 span_forest, write_collapsed)


# ----------------------------------------------------------------------
# trace IDs
# ----------------------------------------------------------------------

class TestTraceIds:
    def test_fresh_ids_are_16_hex(self):
        trace = new_trace_id()
        assert len(trace) == 16
        assert all(c in "0123456789abcdef" for c in trace)
        assert is_trace_id(trace)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(256)}) == 256

    def test_loose_validation(self):
        assert is_trace_id("feedface00")
        assert is_trace_id("ab-cd")
        assert not is_trace_id("")
        assert not is_trace_id("UPPER")
        assert not is_trace_id("spaces here")
        assert not is_trace_id("x" * 65)
        assert not is_trace_id(123)


# ----------------------------------------------------------------------
# Span round-trip
# ----------------------------------------------------------------------

class TestSpan:
    def test_dict_round_trip(self):
        span = Span(trace_id="t" * 16, span_id="s" * 16, parent_id="",
                    name="static-lint", t0_ms=12.5, dur_ms=3.125,
                    status="ok", attrs={"pool": "static"})
        record = span.to_dict()
        assert record["kind"] == "span"
        back = Span.from_dict(record)
        assert back == span

    def test_attrs_omitted_when_empty(self):
        span = Span(trace_id="t", span_id="s", parent_id="", name="x",
                    t0_ms=0.0, dur_ms=1.0)
        assert "attrs" not in span.to_dict()


# ----------------------------------------------------------------------
# FlightRecorder ring semantics
# ----------------------------------------------------------------------

class TestFlightRecorder:
    def test_bounded_ring_drops_oldest(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight.record("tick", i=i)
        assert flight.recorded == 10
        assert flight.dropped == 6
        kept = [e["i"] for e in flight.tail(100)]
        assert kept == [6, 7, 8, 9]

    def test_tail_returns_newest_n(self):
        flight = FlightRecorder(capacity=16)
        for i in range(8):
            flight.record("tick", i=i)
        assert [e["i"] for e in flight.tail(3)] == [5, 6, 7]

    def test_events_carry_attrs_and_monotonic_seq(self):
        flight = FlightRecorder(capacity=8)
        entry = flight.record("shed", kind="backpressure", trace="ab12")
        assert entry["event"] == "shed"
        assert entry["trace"] == "ab12"
        later = flight.record("shed")
        assert later["seq"] > entry["seq"]

    def test_dump_shape(self):
        flight = FlightRecorder(capacity=2)
        flight.record("a")
        flight.record("b")
        flight.record("c")
        dump = flight.dump()
        assert dump["capacity"] == 2
        assert dump["recorded"] == 3
        assert dump["dropped"] == 1
        assert [e["event"] for e in dump["events"]] == ["b", "c"]
        json.dumps(dump)   # must be JSON-serializable as-is

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# ----------------------------------------------------------------------
# SpanRecorder
# ----------------------------------------------------------------------

class TestSpanRecorder:
    def test_context_manager_measures_and_links(self):
        spans = SpanRecorder()
        with spans.span("trace1", "pool-dispatch", parent_id="root1",
                        pool="static") as handle:
            handle.annotate(queued=2)
        assert spans.emitted == 1
        span = spans.spans[0]
        assert span.name == "pool-dispatch"
        assert span.trace_id == "trace1"
        assert span.parent_id == "root1"
        assert span.attrs == {"pool": "static", "queued": 2}
        assert span.dur_ms >= 0.0

    def test_exception_marks_error_status(self):
        spans = SpanRecorder()
        with pytest.raises(RuntimeError):
            with spans.span("trace1", "static-lint"):
                raise RuntimeError("worker died")
        span = spans.spans[0]
        assert span.status == "error"
        assert span.attrs["error"] == "worker died"

    def test_post_hoc_record_clamps_negative_duration(self):
        spans = SpanRecorder()
        span = spans.record("trace1", "queue-wait", t0_ms=5.0, dur_ms=-1.0)
        assert span.dur_ms == 0.0

    def test_at_rebases_monotonic_seconds(self):
        spans = SpanRecorder()
        mark = time.monotonic()
        rebased = spans.at(mark)
        assert abs(rebased - spans.now()) < 100.0   # same clock, close by

    def test_jsonl_file_append_and_load(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        spans = SpanRecorder(path)
        spans.record("trace1", "queue-wait", t0_ms=0.0, dur_ms=1.5)
        spans.record("trace1", "static-lint", t0_ms=1.5, dur_ms=2.0,
                     status="error")
        spans.close()
        loaded = load_spans(path)
        assert [s.name for s in loaded] == ["queue-wait", "static-lint"]
        assert loaded[1].status == "error"

    def test_mirrors_into_flight_recorder(self):
        flight = FlightRecorder(capacity=8)
        spans = SpanRecorder(flight=flight)
        spans.record("trace1", "cache-lookup", t0_ms=0.0, dur_ms=0.5)
        events = flight.tail()
        assert events and events[-1]["event"] == "span"
        assert events[-1]["trace"] == "trace1"


# ----------------------------------------------------------------------
# offline parse / forest / render
# ----------------------------------------------------------------------

def _forest_fixture():
    """One trace: root request span with two children, one grandchild."""
    return [
        Span("tr1", "root0000", "", "request", 0.0, 10.0),
        Span("tr1", "qw000000", "root0000", "queue-wait", 0.0, 1.0),
        Span("tr1", "pd000000", "root0000", "pool-dispatch", 1.0, 9.0),
        Span("tr1", "sl000000", "pd000000", "static-lint", 2.0, 4.0),
        Span("tr2", "lone0000", "", "request", 5.0, 2.0),
    ]


class TestOffline:
    def test_parse_skips_damaged_and_foreign_lines(self):
        lines = [
            json.dumps(Span("t", "a", "", "x", 0.0, 1.0).to_dict()),
            '{"kind": "stats", "other": true}',
            "{torn line",
            "",
        ]
        spans = parse_spans(lines)
        assert len(spans) == 1
        assert spans[0].name == "x"

    def test_forest_links_children_under_parents(self):
        forest = span_forest(_forest_fixture())
        assert set(forest) == {"tr1", "tr2"}
        roots = forest["tr1"]
        assert len(roots) == 1
        root, kids = roots[0]
        assert root.name == "request"
        assert [k.name for k, _ in kids] == ["queue-wait", "pool-dispatch"]
        dispatch_kids = kids[1][1]
        assert [k.name for k, _ in dispatch_kids] == ["static-lint"]

    def test_orphans_promote_to_roots(self):
        spans = [Span("tr", "kid00000", "gone0000", "static-lint", 0.0, 1.0)]
        forest = span_forest(spans)
        assert forest["tr"][0][0].name == "static-lint"

    def test_render_all_and_filtered(self):
        spans = _forest_fixture()
        text = render_span_tree(spans)
        assert "trace tr1" in text and "trace tr2" in text
        assert "static-lint" in text
        only = render_span_tree(spans, trace_id="tr2")
        assert "trace tr2" in only and "tr1" not in only
        missing = render_span_tree(spans, trace_id="nope")
        assert "no spans for trace" in missing


# ----------------------------------------------------------------------
# collapsed stacks
# ----------------------------------------------------------------------

def _busy(n):
    return sum(i * i for i in range(n))


def _outer(n):
    return _busy(n) + _busy(n)


class TestCollapsedStacks:
    def test_real_profile_produces_stacks(self, tmp_path):
        import cProfile
        profiler = cProfile.Profile()
        profiler.runcall(_outer, 20_000)
        path = str(tmp_path / "out.collapsed")
        count = write_collapsed(profiler, path, min_us=0)
        assert count > 0
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == count
        for line in lines:
            stack, _, micros = line.rpartition(" ")
            assert stack and int(micros) >= 0
        assert any("_busy" in line for line in lines)
        # the leaf frame's caller chain reaches the outer function
        busy_line = next(line for line in lines if "_busy" in line)
        assert "_outer" in busy_line

    def test_min_us_filters_cheap_frames(self):
        stats = {
            ("f.py", 1, "cheap"): (1, 1, 0.0000001, 0.0000001, {}),
            ("f.py", 2, "hot"): (1, 1, 0.5, 0.5, {}),
        }
        lines = collapsed_stacks(stats, min_us=10)
        assert len(lines) == 1
        assert "hot" in lines[0]

    def test_cycle_guard_terminates(self):
        a = ("f.py", 1, "a")
        b = ("f.py", 2, "b")
        stats = {
            a: (1, 1, 0.01, 0.02, {b: (1, 1, 0.01, 0.02)}),
            b: (1, 1, 0.01, 0.02, {a: (1, 1, 0.01, 0.02)}),
        }
        lines = collapsed_stacks(stats)
        assert len(lines) == 2
