"""Occupancy sampling and the Figure-8 latency distributions."""

from repro import CORTEX_A76, DefenseKind, build_system
from repro.isa import assemble
from repro.telemetry.occupancy import OccupancyProfiler

BRANCHY = """
    MOV X0, #0
    MOV X1, #20
loop:
    ADD X0, X0, X1
    SUB X1, X1, #1
    CBNZ X1, loop
    HALT
"""


def profiled_run(interval=1, defense=DefenseKind.NONE, source=BRANCHY):
    system = build_system(CORTEX_A76.with_defense(defense))
    profiler = OccupancyProfiler(interval=interval)
    system.occupancy = profiler
    core = system.prepare(assemble(source))
    core.run()
    return profiler, core, system


class TestSampling:
    def test_samples_once_per_cycle_by_default(self):
        profiler, core, _ = profiled_run()
        assert profiler.samples_taken == core.cycle
        assert profiler.rob.count == core.cycle

    def test_interval_thins_samples(self):
        profiler, core, _ = profiled_run(interval=4)
        assert profiler.samples_taken == core.cycle // 4

    def test_occupancies_respect_capacities(self):
        profiler, core, _ = profiled_run()
        config = core.config.core
        assert profiler.rob.max <= config.rob_entries
        assert profiler.iq.max <= config.iq_entries
        assert profiler.lq.max <= config.lq_entries
        assert profiler.sq.max <= config.sq_entries

    def test_shadow_lengths_recorded_per_branch(self):
        profiler, core, _ = profiled_run()
        assert profiler.shadow_length.count == core.stats.branches
        assert profiler.shadow_length.min >= 1

    def test_interval_must_be_positive(self):
        import pytest
        with pytest.raises(ValueError):
            OccupancyProfiler(interval=0)


class TestRestrictionDelay:
    def test_stt_restrictions_record_lift_delays(self):
        # spectre-v1's tainted transmit load is exactly what STT delays;
        # the training-path copies complete after the branch resolves, so
        # their restrictions lift and the delay distribution fills in.
        from repro.attacks import REGISTRY
        attack = REGISTRY["spectre-v1"][0][1]()
        system = build_system(CORTEX_A76.with_defense(DefenseKind.STT))
        profiler = OccupancyProfiler()
        system.occupancy = profiler
        core = system.prepare(attack.builder_program)
        core.run(max_cycles=attack.max_cycles)
        assert core.stats.restricted_events > 0
        assert profiler.restriction_delay.count > 0
        assert profiler.restriction_delay.min >= 1


class TestOutput:
    def test_registry_dump_has_every_structure(self):
        profiler, _, _ = profiled_run()
        dump = profiler.dump()["occupancy"]
        for name in OccupancyProfiler.STRUCTURES:
            assert dump[name]["count"] == profiler.samples_taken
        assert dump["samples"] == profiler.samples_taken
        assert "shadow_length" in dump and "restriction_delay" in dump

    def test_system_stats_registry_includes_occupancy(self):
        _, _, system = profiled_run()
        dump = system.stats_registry().dump()
        assert "occupancy" in dump and "core" in dump and "mem" in dump
