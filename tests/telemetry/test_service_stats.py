"""The ``service.*`` stats scope: unit semantics + one scripted e2e run.

The e2e scenario drives a real service through the events the counters
exist for — admission, cache hit, a dying dynamic pool (worker deaths,
breaker trip, degraded serve), and a shed at drain — then asserts the
shutdown report's ``service.*`` numbers tell that exact story.
"""

import asyncio

import pytest

from repro.service.__main__ import _Client
from repro.telemetry.service import (ServiceStats, TIER_CACHE, TIER_FULL,
                                     TIER_STATIC)

from tests.service.test_server import (config_for, crashing_argv,
                                       start_service, stop_service)


class TestServiceStatsUnit:
    def test_reject_books_by_kind(self):
        stats = ServiceStats()
        stats.reject("overloaded")
        stats.reject("overloaded")
        stats.reject("draining")
        dump = stats.dump()["service"]["admission"]
        assert dump["rejected_overloaded"] == 2
        assert dump["rejected_draining"] == 1

    def test_reject_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            ServiceStats().reject("not-a-kind")

    def test_shed_fraction(self):
        stats = ServiceStats()
        for _ in range(3):
            stats.accepted.inc()
        stats.reject("overloaded")
        dump = stats.dump()["service"]["admission"]
        assert dump["shed_fraction"] == pytest.approx(0.25)

    def test_serve_tiers_and_degraded_fraction(self):
        stats = ServiceStats()
        stats.serve(TIER_FULL)
        stats.serve(TIER_STATIC, degraded=True)
        stats.serve(TIER_CACHE, degraded=True)
        dump = stats.dump()["service"]["tier"]
        assert dump["static_dynamic"] == 1
        assert dump["static"] == 1
        assert dump["cache"] == 1
        assert dump["degraded"] == 2
        assert dump["degraded_fraction"] == pytest.approx(2 / 3)

    def test_cache_hit_rate(self):
        stats = ServiceStats()
        stats.cache_hits.inc()
        stats.cache_hits.inc()
        stats.cache_misses.inc()
        dump = stats.dump()["service"]["cache"]
        assert dump["hit_rate"] == pytest.approx(2 / 3)

    def test_observe_timings_fills_latency_histograms(self):
        stats = ServiceStats()
        for total in (10.0, 20.0, 30.0):
            stats.observe_timings({"total_ms": total, "queue_wait_ms": 1.0,
                                   "analysis_ms": 5.0, "confirm_ms": 2.0})
        assert stats.request_ms.count == 3
        assert 10.0 <= stats.request_ms.p50 <= 30.0
        assert stats.request_ms.p50 <= stats.request_ms.p99
        assert stats.queue_wait_ms.count == 3
        assert stats.analysis_ms.mean == pytest.approx(5.0, abs=3.0)


class TestServiceStatsEndToEnd:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("svc-stats")

        async def scenario():
            config = config_for(tmp_path, breaker_threshold=1,
                                breaker_reset_s=30.0, max_restarts=0)
            service = await start_service(config)
            client = await _Client.connect(service.port)
            fresh = await client.request(
                {"id": "r1", "op": "lint", "witness": "pht"}, timeout=60.0)
            hit = await client.request(
                {"id": "r2", "op": "lint", "witness": "pht"})
            # Kill the dynamic pool: the confirm request costs worker
            # deaths, trips the breaker, and is served degraded.
            service.dynamic_pool.worker_argv = crashing_argv
            degraded = await client.request(
                {"id": "r3", "op": "lint", "witness": "pht",
                 "confirm": True, "defense": "none"}, timeout=60.0)
            # A request after drain starts is a typed admission shed.
            service.request_drain()
            shed = await client.request(
                {"id": "r4", "op": "lint", "witness": "stl"})
            client.close()
            await asyncio.wait_for(service.wait_drained(), 30.0)
            return fresh, hit, degraded, shed, service.shutdown_report

        fresh, hit, degraded, shed, report = asyncio.run(scenario())
        assert fresh["ok"] and fresh["cached"] is False
        assert hit["cached"] is True
        assert degraded["ok"] and degraded["degraded"] is True
        assert shed["ok"] is False and shed["error"]["kind"] == "draining"
        return report["stats"]["service"]

    def test_admission_counters(self, report):
        assert report["admission"]["accepted"] == 3
        assert report["admission"]["rejected_draining"] == 1
        assert report["admission"]["shed_fraction"] == pytest.approx(0.25)

    def test_cache_counters(self, report):
        assert report["cache"]["hits"] >= 1
        assert report["cache"]["misses"] >= 1
        assert 0.0 < report["cache"]["hit_rate"] < 1.0

    def test_tier_and_degradation_counters(self, report):
        assert report["tier"]["static"] + report["tier"]["cache"] == 3
        assert report["tier"]["degraded"] == 1
        assert report["tier"]["degraded_fraction"] == pytest.approx(1 / 3)

    def test_worker_and_breaker_counters(self, report):
        assert report["workers"]["deaths"] >= 1
        assert report["workers"]["breaker_opens"] >= 1

    def test_lifecycle_counters(self, report):
        assert report["lifecycle"]["completed"] == 3
        assert report["lifecycle"]["cancelled_at_drain"] == 0

    def test_latency_histograms_observed_every_serve(self, report):
        request = report["latency"]["request_ms"]
        assert request["count"] == 3
        assert request["p50"] > 0.0
        assert request["p50"] <= request["p95"] <= request["p99"]
        assert report["latency"]["queue_wait_ms"]["count"] == 3
