"""Pipeline tracing: emission, formats, parsing, reconciliation."""

import io

from repro import CORTEX_A76, DefenseKind, build_system
from repro.isa import assemble
from repro.telemetry.trace import (
    TICKS_PER_CYCLE,
    PipelineTracer,
    parse_jsonl,
    parse_o3pipeview,
)

BRANCHY = """
    MOV X0, #0
    MOV X1, #5
loop:
    ADD X0, X0, X1
    SUB X1, X1, #1
    CBNZ X1, loop
    HALT
"""


def traced_run(source=BRANCHY, defense=DefenseKind.NONE):
    o3, jsonl = io.StringIO(), io.StringIO()
    tracer = PipelineTracer(o3, jsonl)
    system = build_system(CORTEX_A76.with_defense(defense))
    system.tracer = tracer
    core = system.prepare(assemble(source))
    core.run()
    tracer.close()
    return o3.getvalue(), jsonl.getvalue(), tracer, core


class TestEmission:
    def test_counts_reconcile_with_core_stats(self):
        _, _, tracer, core = traced_run()
        assert tracer.committed == core.stats.committed
        assert tracer.squashed == core.stats.squashed
        assert tracer.records == tracer.committed + tracer.squashed

    def test_jsonl_records_and_summary(self):
        _, jsonl, tracer, core = traced_run()
        records, summary = parse_jsonl(jsonl.splitlines())
        assert len(records) == tracer.records
        assert summary["committed"] == core.stats.committed
        assert summary["squashed"] == core.stats.squashed
        committed = [r for r in records if r["fate"] == "commit"]
        assert len(committed) == core.stats.committed

    def test_stage_cycles_are_monotone_for_committed(self):
        _, jsonl, _, _ = traced_run()
        records, _ = parse_jsonl(jsonl.splitlines())
        for record in records:
            if record["fate"] != "commit":
                continue
            stages = [record[k] for k in
                      ("fetch", "dispatch", "issue", "complete", "retire")
                      if record.get(k, -1) >= 0]
            assert stages == sorted(stages), record

    def test_no_tracer_attached_costs_nothing_and_still_runs(self):
        system = build_system(CORTEX_A76)
        result = system.run(assemble(BRANCHY))
        assert system.core.trace is None
        assert result.halted

    def test_tail_ring_buffer_is_bounded(self):
        o3, jsonl = io.StringIO(), io.StringIO()
        tracer = PipelineTracer(o3, jsonl, tail_limit=8)
        system = build_system(CORTEX_A76)
        system.tracer = tracer
        system.prepare(assemble(BRANCHY)).run()
        tail = tracer.tail()
        assert 0 < len(tail) <= 8
        assert tracer.tail(limit=2) == tail[-2:]


class TestO3PipeView:
    def test_line_format_parses_back(self):
        o3, _, tracer, _ = traced_run()
        assert o3.startswith("O3PipeView:fetch:")
        records, _ = parse_o3pipeview(o3.splitlines())
        assert len(records) == tracer.records
        fates = {r["fate"] for r in records}
        assert fates == {"commit", "squash"}

    def test_ticks_are_cycle_multiples(self):
        o3, jsonl, _, _ = traced_run()
        json_records, _ = parse_jsonl(jsonl.splitlines())
        o3_records, _ = parse_o3pipeview(o3.splitlines())
        by_seq = {r["seq"]: r for r in json_records}
        for record in o3_records:
            twin = by_seq[record["seq"]]
            assert record["fetch"] == twin["fetch"]
            assert record["pc"] == twin["pc"]
            if record["fate"] == "commit":
                assert record["retire"] == twin["retire"]

    def test_squashed_entries_retire_at_tick_zero(self):
        o3, _, tracer, core = traced_run()
        assert core.stats.squashed > 0  # the loop mispredicts at least once
        assert o3.count("O3PipeView:retire:0:store:0\n") == tracer.squashed

    def test_tick_scale(self):
        o3, _, _, _ = traced_run()
        first_fetch = int(o3.splitlines()[0].split(":")[2])
        assert first_fetch % TICKS_PER_CYCLE == 0


class TestDefenseEvents:
    def test_specasan_attack_run_traces_defense_events(self):
        from repro.attacks import REGISTRY
        attack = REGISTRY["spectre-v1"][0][1]()
        o3, jsonl = io.StringIO(), io.StringIO()
        tracer = PipelineTracer(o3, jsonl)
        system = build_system(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN))
        system.tracer = tracer
        core = system.prepare(attack.builder_program)
        core.run(max_cycles=attack.max_cycles)
        tracer.close()
        records, _ = parse_jsonl(jsonl.getvalue().splitlines())
        kinds = {event[1] for record in records
                 for event in record.get("events", ())}
        assert "tagcheck" in kinds
        assert "withheld" in kinds or "restrict" in kinds

    def test_events_attach_to_the_right_instruction(self):
        from repro.attacks import REGISTRY
        attack = REGISTRY["spectre-v1"][0][1]()
        _, jsonl = io.StringIO(), io.StringIO()
        tracer = PipelineTracer(None, jsonl)
        system = build_system(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN))
        system.tracer = tracer
        core = system.prepare(attack.builder_program)
        core.run(max_cycles=attack.max_cycles)
        tracer.close()
        records, _ = parse_jsonl(jsonl.getvalue().splitlines())
        for record in records:
            for cycle, kind, _details in record.get("events", ()):
                assert record["fetch"] <= cycle
                if kind == "tagcheck":
                    assert "LD" in record["disasm"] or \
                        "ST" in record["disasm"]
