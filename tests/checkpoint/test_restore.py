"""Checkpoint/restore property: a paused-and-restored run IS the run.

The acceptance criterion: for every Table-1 defense, on several workload
profiles, checkpoint-then-restore must produce a stats registry
byte-identical to the straight-through run — pipeline, memory hierarchy,
MTE tags, predictors, and RNG streams all land exactly where they were.
Plus the generation machinery: rotation, pruning, corrupt-newest fallback,
and the ``checkpoint.*`` telemetry counters.
"""

import json
import os

import pytest

from repro.checkpoint import (CheckpointHook, CheckpointManager,
                              CheckpointStats, corrupt)
from repro.config import CORTEX_A76, DefenseKind
from repro.errors import CheckpointError
from repro.multicore import MulticoreSystem
from repro.system import build_system
from repro.workloads import build_parsec, build_spec

ALL_DEFENSES = list(DefenseKind)
SPEC_PROFILES = ["505.mcf_r", "531.deepsjeng_r"]


def blob(system) -> str:
    return json.dumps(system.stats_registry().dump(), sort_keys=True)


def spec_program(name, seed=3, target=600):
    # Small enough to keep the 7-defense matrix fast; the pause points
    # below still land mid-run, with the ROB/LSQ/MSHRs genuinely busy.
    return build_spec(name, seed=seed, target_instructions=target).program


class TestByteIdenticalContinuation:
    """Straight-through vs checkpoint-at-pause-then-restore, per defense."""

    @pytest.mark.parametrize("defense", ALL_DEFENSES,
                             ids=[d.value for d in ALL_DEFENSES])
    @pytest.mark.parametrize("workload", SPEC_PROFILES)
    def test_spec_profiles(self, tmp_path, defense, workload):
        config = CORTEX_A76.with_defense(defense)
        program = spec_program(workload)

        reference = build_system(config)
        reference.prepare(program).run()
        reference_blob = blob(reference)

        manager = CheckpointManager(str(tmp_path / "gen"))
        victim = build_system(config)
        victim.prepare(program).run(until_cycle=140)
        manager.save(victim, program)
        del victim  # the kill: nothing of the live system survives

        resumed = build_system(config)
        result = manager.restore(resumed, program)
        assert resumed.core.cycle == result.cycle
        resumed.core.run()
        assert blob(resumed) == reference_blob

    @pytest.mark.parametrize("defense",
                             [DefenseKind.NONE, DefenseKind.SPECASAN,
                              DefenseKind.GHOSTMINION],
                             ids=["none", "specasan", "ghostminion"])
    def test_parsec_profile_multicore(self, tmp_path, defense):
        config = CORTEX_A76.with_defense(defense).with_cores(2)
        programs = [w.program for w in build_parsec(
            "canneal", seed=1, num_threads=2, target_instructions=400)]

        reference = MulticoreSystem(config)
        reference.prepare(programs)
        reference.run_prepared()
        reference_blob = blob(reference)

        manager = CheckpointManager(str(tmp_path / "gen"))
        victim = MulticoreSystem(config)
        victim.prepare(programs)
        victim.run_prepared(until_cycle=120)
        manager.save(victim, programs)
        del victim

        resumed = MulticoreSystem(config)
        result = manager.restore(resumed, programs)
        assert result.cycle == 120
        resumed.run_prepared()
        assert blob(resumed) == reference_blob

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_seed_sweep(self, tmp_path, seed):
        config = CORTEX_A76.with_defense(DefenseKind.SPECASAN)
        program = spec_program("541.leela_r", seed=seed)
        reference = build_system(config)
        reference.prepare(program).run()

        manager = CheckpointManager(str(tmp_path / "gen"))
        victim = build_system(config)
        victim.prepare(program).run(until_cycle=90)
        manager.save(victim, program)
        resumed = build_system(config)
        manager.restore(resumed, program)
        resumed.core.run()
        assert blob(resumed) == blob(reference)


class TestGenerations:
    def _saved(self, tmp_path, keep=2, saves=3, stats=None):
        config = CORTEX_A76.with_defense(DefenseKind.SPECASAN)
        program = spec_program("505.mcf_r")
        manager = CheckpointManager(str(tmp_path / "gen"), keep=keep,
                                    stats=stats)
        system = build_system(config)
        core = system.prepare(program)
        for pause in range(1, saves + 1):
            core.run(until_cycle=pause * 60)
            manager.save(system, program)
        return manager, config, program

    def test_rotation_prunes_to_keep(self, tmp_path):
        manager, _, _ = self._saved(tmp_path, keep=2, saves=3)
        assert manager.generations() == [2, 1]
        assert not os.path.exists(manager.path_for(0))

    def test_corrupt_newest_falls_back_one_generation(self, tmp_path):
        stats = CheckpointStats()
        manager, config, program = self._saved(tmp_path, stats=stats)
        corrupt.flip_bit(manager.path_for(2), section="cores")
        resumed = build_system(config)
        result = manager.restore(resumed, program)
        assert result.generation == 1 and result.cycle == 120
        assert [r.kind for r in result.rejected] == ["section-corrupt"]
        assert stats.corrupt_rejected == 1 and stats.restores == 1

    def test_every_generation_corrupt_raises_newest_rejection(self,
                                                              tmp_path):
        manager, config, program = self._saved(tmp_path)
        corrupt.truncate(manager.path_for(2), 0.3)
        corrupt.flip_bit(manager.path_for(1), section="hierarchy")
        with pytest.raises(CheckpointError) as err:
            manager.restore(build_system(config), program)
        assert err.value.kind == "truncated"  # the newest generation's kind

    def test_no_generations_is_kind_missing(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "void"))
        config = CORTEX_A76.with_defense(DefenseKind.SPECASAN)
        with pytest.raises(CheckpointError) as err:
            manager.restore(build_system(config),
                            spec_program("505.mcf_r"))
        assert err.value.kind == "missing"

    def test_wrong_defense_config_is_skew(self, tmp_path):
        manager, _, program = self._saved(tmp_path)
        other = build_system(CORTEX_A76.with_defense(DefenseKind.FENCE))
        with pytest.raises(CheckpointError) as err:
            manager.restore(other, program)
        assert err.value.kind == "config-skew"


class TestPeriodicHookAndTelemetry:
    def test_hook_checkpoints_mid_run_and_counters_register(self, tmp_path):
        config = CORTEX_A76.with_defense(DefenseKind.SPECASAN)
        program = spec_program("505.mcf_r")
        stats = CheckpointStats()
        manager = CheckpointManager(str(tmp_path / "gen"), keep=2,
                                    stats=stats)
        system = build_system(config)
        system.checkpoint_stats = stats
        core = system.prepare(program)
        core.checkpoint_hook = CheckpointHook(manager, system, program,
                                              interval=100)
        core.run()
        assert stats.saves >= 2  # several generations along the way
        assert stats.bytes > 0
        assert stats.save_cycles % 100 == 0
        assert len(manager.generations()) <= 2  # pruned to keep
        dump = system.stats_registry().dump()
        assert dump["checkpoint"]["saves"] == stats.saves
        assert dump["checkpoint"]["corrupt_rejected"] == 0

    def test_hook_runs_do_not_perturb_results(self, tmp_path):
        # A hooked run must measure exactly what an unhooked run measures
        # (modulo the checkpoint scope itself): saving is observation-free.
        config = CORTEX_A76.with_defense(DefenseKind.STT)
        program = spec_program("531.deepsjeng_r")
        plain = build_system(config)
        plain.prepare(program).run()

        manager = CheckpointManager(str(tmp_path / "gen"))
        hooked = build_system(config)
        core = hooked.prepare(program)
        core.checkpoint_hook = CheckpointHook(manager, hooked, program,
                                              interval=70)
        core.run()
        assert blob(hooked) == blob(plain)
