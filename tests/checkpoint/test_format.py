"""Checkpoint file format: durability, fingerprints, fail-closed reads.

Every damage primitive in :mod:`repro.checkpoint.corrupt` must be detected
by the reader and attributed to the right :class:`CheckpointError.kind` —
the degradation ladder upstream (generation walk-back, straight-through
re-run) dispatches on those kinds and must never see a half-trusted file.
"""

import os

import pytest

from repro.checkpoint import (MAGIC, SCHEMA_VERSION, config_fingerprint,
                              corrupt, program_fingerprint, read_checkpoint,
                              read_header, section_ranges, write_checkpoint)
from repro.config import CORTEX_A76, DefenseKind
from repro.errors import CheckpointError
from repro.workloads import build_spec

SECTIONS = {
    "meta": {"multicore": False, "cycle": 123},
    # Bulky enough that the payloads dominate the file: fractional
    # truncation then lands in a section, not the header.
    "hierarchy": {"caches": [(i * 2654435761) % (1 << 32)
                             for i in range(4096)],
                  "tags": {"0x40": 7}},
    "cores": [{"cycle": 123, "arf": list(range(32)),
               "instrs": [(i * 40503) % 65536 for i in range(4096)]}],
}


def write_sample(path, sections=None, config="c" * 16, program="p" * 16):
    return write_checkpoint(str(path), sections or SECTIONS,
                            config_hash=config, program_hash=program,
                            cycle=123)


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "a.ckpt"
        nbytes = write_sample(path)
        assert nbytes == os.path.getsize(path)
        header, sections = read_checkpoint(str(path))
        assert header["schema"] == SCHEMA_VERSION
        assert header["cycle"] == 123
        assert sections == SECTIONS

    def test_file_leads_with_magic(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_sample(path)
        assert open(path, "rb").read(len(MAGIC)) == MAGIC

    def test_atomic_write_leaves_no_temp_droppings(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_sample(path)
        write_sample(path)  # overwrite goes through os.replace too
        assert sorted(os.listdir(tmp_path)) == ["a.ckpt"]

    def test_fingerprint_expectations_enforced(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_sample(path)
        read_checkpoint(str(path), expect_config="c" * 16)  # matching: fine
        with pytest.raises(CheckpointError) as err:
            read_checkpoint(str(path), expect_config="0" * 16)
        assert err.value.kind == "config-skew"
        with pytest.raises(CheckpointError) as err:
            read_checkpoint(str(path), expect_program="0" * 16)
        assert err.value.kind == "config-skew"

    def test_section_ranges_cover_the_tail(self, tmp_path):
        path = tmp_path / "a.ckpt"
        write_sample(path)
        ranges = list(section_ranges(str(path)))
        assert [name for name, _, _ in ranges] == list(SECTIONS)
        assert ranges[-1][2] == os.path.getsize(path)


class TestFingerprints:
    def test_config_fingerprint_distinguishes_defenses(self):
        base = config_fingerprint(CORTEX_A76)
        other = config_fingerprint(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN))
        assert base != other
        assert base == config_fingerprint(CORTEX_A76)

    def test_program_fingerprint_covers_text_and_data(self):
        one = build_spec("505.mcf_r", seed=1).program
        two = build_spec("505.mcf_r", seed=2).program
        assert program_fingerprint(one) == program_fingerprint(one)
        assert program_fingerprint(one) != program_fingerprint(two)
        # A program list hashes differently from its single head.
        assert program_fingerprint([one, two]) != program_fingerprint(one)


class TestFailClosed:
    """Damage primitive -> exact fault kind, nothing restored."""

    @pytest.mark.parametrize("damage,expected", [
        (lambda p: corrupt.truncate(p, 0.5), "truncated"),
        (lambda p: corrupt.flip_bit(p, section="hierarchy"),
         "section-corrupt"),
        (lambda p: corrupt.flip_bit(p, section="cores"), "section-corrupt"),
        (lambda p: corrupt.skew_header(p, "schema"), "schema-skew"),
        (corrupt.tear_write, "torn-header"),
    ], ids=["truncate", "flip-hierarchy", "flip-cores", "schema-skew",
            "torn-write"])
    def test_damage_detected_with_kind(self, tmp_path, damage, expected):
        path = str(tmp_path / "a.ckpt")
        write_sample(path)
        damage(path)
        with pytest.raises(CheckpointError) as err:
            read_checkpoint(str(path))
        assert err.value.kind == expected

    def test_config_skew_primitive_defeats_expectation(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        write_sample(path)
        corrupt.skew_header(path, "config")
        with pytest.raises(CheckpointError) as err:
            read_checkpoint(path, expect_config="c" * 16)
        assert err.value.kind == "config-skew"

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError) as err:
            read_header(str(tmp_path / "nope.ckpt"))
        assert err.value.kind == "missing"

    def test_foreign_file_is_bad_magic(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"definitely not a checkpoint\n")
        with pytest.raises(CheckpointError) as err:
            read_header(str(path))
        assert err.value.kind == "bad-magic"
