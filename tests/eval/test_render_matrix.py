"""The Table-1 renderer."""

from repro.attacks.common import AttackOutcome
from repro.attacks.matrix import (
    classify,
    MatrixCell,
    Mitigation,
    render_matrix,
)
from repro.config import DefenseKind


def _cell(attack, defense, mitigation):
    return MatrixCell(attack, defense, mitigation)


class TestRenderMatrix:
    def test_symbols_and_agreement(self):
        matrix = {
            "spectre-v1": {
                DefenseKind.STT: _cell("spectre-v1", DefenseKind.STT,
                                       Mitigation.FULL),
                DefenseKind.GHOSTMINION: _cell("spectre-v1",
                                               DefenseKind.GHOSTMINION,
                                               Mitigation.FULL),
                DefenseKind.SPECCFI: _cell("spectre-v1", DefenseKind.SPECCFI,
                                           Mitigation.NONE),
                DefenseKind.SPECASAN: _cell("spectre-v1",
                                            DefenseKind.SPECASAN,
                                            Mitigation.FULL),
                DefenseKind.SPECASAN_CFI: _cell("spectre-v1",
                                                DefenseKind.SPECASAN_CFI,
                                                Mitigation.FULL),
            },
        }
        text = render_matrix(matrix)
        assert "●" in text and "○" in text
        assert "match" in text

    def test_disagreement_is_flagged(self):
        matrix = {
            "spectre-v1": {
                DefenseKind.STT: _cell("spectre-v1", DefenseKind.STT,
                                       Mitigation.NONE),  # paper says FULL
                DefenseKind.GHOSTMINION: _cell("spectre-v1",
                                               DefenseKind.GHOSTMINION,
                                               Mitigation.FULL),
                DefenseKind.SPECCFI: _cell("spectre-v1", DefenseKind.SPECCFI,
                                           Mitigation.NONE),
                DefenseKind.SPECASAN: _cell("spectre-v1",
                                            DefenseKind.SPECASAN,
                                            Mitigation.FULL),
                DefenseKind.SPECASAN_CFI: _cell("spectre-v1",
                                                DefenseKind.SPECASAN_CFI,
                                                Mitigation.FULL),
            },
        }
        assert "DIFFERS" in render_matrix(matrix)

    def test_mitigation_symbols(self):
        assert Mitigation.FULL.symbol == "●"
        assert Mitigation.PARTIAL.symbol == "◐"
        assert Mitigation.NONE.symbol == "○"
