"""The evaluation harness (small-scale smoke of every figure)."""

import pytest

from repro.config import DefenseKind
from repro.eval import (
    figure1,
    figure5_trace,
    geomean,
    MISSING_CELL,
    normalized,
    percent,
    render_figure1,
    render_rows,
    run_spec,
)


class TestRepairRows:
    def _row(self, **overrides):
        from repro.eval.experiments import RepairRow
        params = dict(subject="pht/same-key", defense=DefenseKind.SPECASAN,
                      fixes=("retag",), baseline_cycles=1000,
                      repaired_cycles=1100, verified=True,
                      dynamic_blocked=True)
        params.update(overrides)
        return RepairRow(**params)

    def test_overhead_is_normalized_minus_one(self):
        assert self._row().overhead == pytest.approx(0.1)
        assert self._row(repaired_cycles=1000).overhead == pytest.approx(0.0)

    def test_render_shows_fixes_and_both_verdicts(self):
        from repro.eval.experiments import render_repair_rows
        text = render_repair_rows(
            [self._row(), self._row(subject="sbb/same-key", fixes=(),
                                    verified=False, dynamic_blocked=False)])
        assert "pht/same-key" in text and "retag" in text
        assert "sanitized" in text and "blocked" in text
        assert "LEAKS" in text and "(none)" in text

    def test_repair_overhead_measures_one_subject(self):
        from repro.eval.experiments import repair_overhead
        rows = repair_overhead(subjects=["pht/same-key"])
        (row,) = rows
        assert row.verified and row.dynamic_blocked
        assert row.fixes and row.baseline_cycles > 0


class TestMetrics:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_geomean_rejects_nonpositive_values(self):
        # Regression: zero-cycle cells used to be dropped silently, which
        # inflated the aggregate instead of flagging the broken cell.
        with pytest.raises(ValueError, match="non-positive"):
            geomean([1.0, 0.0, 4.0])
        with pytest.raises(ValueError, match="non-positive"):
            geomean([-2.0])

    def test_normalized(self):
        assert normalized(110, 100) == pytest.approx(1.1)
        assert normalized(5, 0) == 0.0

    def test_percent(self):
        assert percent(0.0176) == 1.76


class TestFigure1:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure1()

    def test_baseline_runs_and_leaks_every_stage(self, rows):
        baseline = next(r for r in rows if r.defense is DefenseKind.NONE)
        assert baseline.access_happened and baseline.transmit_happened
        assert baseline.leaked

    def test_delay_access_class_blocks_the_access(self, rows):
        fence = next(r for r in rows if r.defense is DefenseKind.FENCE)
        assert not fence.access_happened and not fence.leaked

    def test_delay_use_class_allows_access_blocks_transmit(self, rows):
        stt = next(r for r in rows if r.defense is DefenseKind.STT)
        assert stt.access_happened
        assert not stt.transmit_happened and not stt.leaked

    def test_delay_transmit_class_hides_the_trace(self, rows):
        ghost = next(r for r in rows if r.defense is DefenseKind.GHOSTMINION)
        assert ghost.access_happened and ghost.transmit_happened
        assert not ghost.leaked

    def test_specasan_is_selective_delay(self, rows):
        spec = next(r for r in rows if r.defense is DefenseKind.SPECASAN)
        assert not spec.access_happened and not spec.leaked

    def test_render(self, rows):
        text = render_figure1(rows)
        assert "delay ACCESS" in text and "selective" in text


class TestFigure5:
    def test_trace_shows_the_unsafe_transition(self):
        trace = figure5_trace()
        events = [event for _, _, event in trace]
        assert any("unsafe" in event for event in events)
        assert any("safe SSA=1" in event for event in events)


class TestRunSpec:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_spec(benchmarks=["541.leela_r"],
                        defenses=[DefenseKind.FENCE, DefenseKind.SPECASAN],
                        target_instructions=1500)

    def test_baseline_row_present(self, rows):
        baseline = [r for r in rows if r.defense is DefenseKind.NONE]
        assert len(baseline) == 1
        assert baseline[0].normalized_time == 1.0

    def test_fence_costs_more_than_specasan(self, rows):
        by_defense = {r.defense: r for r in rows}
        assert (by_defense[DefenseKind.FENCE].normalized_time
                >= by_defense[DefenseKind.SPECASAN].normalized_time)

    def test_fence_restricts_far_more(self, rows):
        by_defense = {r.defense: r for r in rows}
        assert (by_defense[DefenseKind.FENCE].restricted_pct
                > 10 * max(by_defense[DefenseKind.SPECASAN].restricted_pct, 0.01))

    def test_render_rows(self, rows):
        text = render_rows(rows)
        assert "541.leela_r" in text and "geomean" in text
        text = render_rows(rows, metric="restricted")
        assert "average" in text

    def test_render_rows_marks_missing_cells(self, rows):
        # Pinning the expected grid wider than the measured rows (the shape
        # of a campaign whose cell exhausted its retries) must degrade to
        # explicit markers, not raise.
        text = render_rows(rows, benchmarks=["541.leela_r", "548.exchange2_r"],
                           defenses=[DefenseKind.NONE, DefenseKind.FENCE,
                                     DefenseKind.STT])
        lines = text.splitlines()
        # The never-measured benchmark renders as a full row of markers.
        exchange = next(l for l in lines if l.startswith("548."))
        assert exchange.count(MISSING_CELL) == 3
        # Partial columns get flagged aggregates; the never-measured STT
        # column has no aggregate at all.
        geomean_line = next(l for l in lines if l.startswith("geomean"))
        assert "*" in geomean_line
        assert MISSING_CELL in geomean_line
        assert "available cells only" in lines[-1]

    def test_render_rows_complete_grid_unchanged(self, rows):
        # With no explicit grid the historical strict rendering survives.
        assert MISSING_CELL not in render_rows(rows)
