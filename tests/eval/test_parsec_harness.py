"""The PARSEC side of the evaluation harness."""

import pytest

from repro.config import DefenseKind
from repro.eval import run_parsec


class TestRunParsec:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_parsec(benchmarks=["swaptions"],
                          defenses=[DefenseKind.FENCE, DefenseKind.SPECASAN],
                          num_threads=2, target_instructions=500)

    def test_row_structure(self, rows):
        defenses = [row.defense for row in rows]
        assert defenses == [DefenseKind.NONE, DefenseKind.FENCE,
                            DefenseKind.SPECASAN]
        assert all(row.benchmark == "swaptions" for row in rows)

    def test_baseline_normalization(self, rows):
        assert rows[0].normalized_time == 1.0

    def test_fence_costs_most(self, rows):
        by_defense = {row.defense: row for row in rows}
        assert (by_defense[DefenseKind.FENCE].normalized_time
                >= by_defense[DefenseKind.SPECASAN].normalized_time)

    def test_ipc_positive(self, rows):
        assert all(row.ipc > 0 for row in rows)
