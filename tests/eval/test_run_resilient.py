"""Bounded retry-with-reseed for experiment campaigns."""

from dataclasses import replace

import pytest

from repro.config import CORTEX_A76, DefenseKind
from repro.errors import DeadlockError, LivelockError, SimulationError
from repro.eval.experiments import run_resilient
from repro.isa import assemble
from repro.resilience import Watchdog

PROGRAM = assemble("""
    .data arr 0x5000 zero 1024
    MOV X1, #0x5000
    LDR X2, [X1]
    ADD X0, X2, #7
    HALT
""")


class TestRunResilient:
    def test_clean_run_has_no_failures(self):
        result, failures = run_resilient(PROGRAM, DefenseKind.SPECASAN)
        assert result.halted
        assert failures == []
        assert result.register("X0") == 7

    def test_attach_hook_sees_each_fresh_core(self):
        cores = []
        result, _ = run_resilient(PROGRAM, DefenseKind.NONE,
                                  attach=cores.append)
        assert result.halted
        assert len(cores) == 1
        assert cores[0].halted

    def test_typed_failures_are_retried_then_reraised(self):
        # A watchdog with an absurd limit makes every attempt fail the same
        # way; run_resilient must retry max_retries times, record each
        # failure, and re-raise the last one.
        spin = assemble("MOV X1, #1\nspin: CBNZ X1, spin\nHALT")
        seen = []

        def attach(core):
            seen.append(core)
            Watchdog(commit_limit=200).attach(core)

        with pytest.raises(LivelockError):
            run_resilient(spin, DefenseKind.NONE, max_retries=2,
                          attach=attach)
        assert len(seen) == 3  # initial attempt + 2 retries

    def test_reseed_perturbs_the_config(self):
        # Deadlock via a tiny threshold: every attempt fails, and each
        # attempt after the first runs with a perturbed MTE seed.
        config = replace(CORTEX_A76,
                         core=replace(CORTEX_A76.core, deadlock_threshold=5))
        seeds = []
        with pytest.raises(DeadlockError) as excinfo:
            run_resilient(PROGRAM, DefenseKind.NONE, config=config,
                          max_retries=2,
                          attach=lambda c: seeds.append(c.config.mte.seed))
        assert len(set(seeds)) == 3  # every retry reseeded
        assert excinfo.value.snapshot  # snapshot survives the retry loop

    def test_exhausted_retries_attach_the_full_failure_history(self):
        # The re-raised error must carry every attempt's failure, not just
        # the last one — campaign logs need the whole retry history.
        spin = assemble("MOV X1, #1\nspin: CBNZ X1, spin\nHALT")

        def attach(core):
            Watchdog(commit_limit=200).attach(core)

        with pytest.raises(LivelockError) as excinfo:
            run_resilient(spin, DefenseKind.NONE, max_retries=2,
                          attach=attach)
        assert len(excinfo.value.failures) == 3
        assert [f.split(":")[0] for f in excinfo.value.failures] == [
            "attempt 0", "attempt 1", "attempt 2"]

    def test_cycle_budget_defaults_to_the_config(self):
        # max_cycles hoisted into CoreConfig: a tiny configured budget must
        # bound the run without any explicit max_cycles argument.
        config = replace(CORTEX_A76,
                         core=replace(CORTEX_A76.core, max_cycles=10))
        with pytest.raises(SimulationError, match="10 cycles"):
            run_resilient(PROGRAM, DefenseKind.NONE, config=config,
                          max_retries=0)

    def test_untyped_errors_propagate_immediately(self):
        calls = []

        def attach(core):
            calls.append(core)
            raise ValueError("a real bug")

        with pytest.raises(ValueError):
            run_resilient(PROGRAM, DefenseKind.NONE, attach=attach)
        assert len(calls) == 1  # no retry on non-ReproError
