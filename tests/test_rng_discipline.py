"""Source-tree audit: all randomness flows through seeded streams.

The reproducibility contract (:mod:`repro.rng`) bans the module-level
``random.*`` functions — they share one process-global Mersenne state,
so any call site would make replay depend on import order and on what
every other subsystem drew first.  Constructing ``random.Random`` (an
explicitly seeded, privately owned stream) is the one allowed use; the
derivation helpers in ``repro.rng`` itself are exempt.
"""

import ast
import os

import repro

SRC_ROOT = os.path.dirname(os.path.abspath(repro.__file__))

#: The only attributes of the ``random`` module code may touch.
ALLOWED = {"Random", "SystemRandom"}
#: The stream-discipline module itself wraps ``random`` for everyone.
EXEMPT = {"rng.py"}


def _violations(path):
    tree = ast.parse(open(path, encoding="utf-8").read(), filename=path)
    found = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "random"
                and node.attr not in ALLOWED):
            found.append(f"{path}:{node.lineno}: random.{node.attr}")
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            bad = [a.name for a in node.names if a.name not in ALLOWED]
            if bad:
                found.append(f"{path}:{node.lineno}: "
                             f"from random import {', '.join(bad)}")
    return found


def test_no_global_random_state_in_src():
    violations = []
    for dirpath, _, filenames in os.walk(SRC_ROOT):
        for name in sorted(filenames):
            if not name.endswith(".py") or name in EXEMPT:
                continue
            violations.extend(_violations(os.path.join(dirpath, name)))
    assert not violations, "\n".join(violations)
