"""The 4-core system: parallel execution, coherence, aggregation."""

import pytest

from repro.config import CORTEX_A76, DefenseKind
from repro.errors import ConfigError
from repro.isa import assemble
from repro.multicore import MulticoreSystem
from repro.workloads import build_parsec


def counting_program(increment, address):
    return assemble(f"""
        MOV X0, #0
        MOV X1, #20
    loop:
        ADD X0, X0, #{increment}
        SUB X1, X1, #1
        CBNZ X1, loop
        MOV X2, #{address}
        STR X0, [X2]
        HALT
    """)


class TestBasics:
    def test_two_cores_run_independent_programs(self):
        system = MulticoreSystem(CORTEX_A76.with_cores(2))
        result = system.run([counting_program(2, 0x3000),
                             counting_program(3, 0x3100)])
        assert system.hierarchy.memory.read_word(0x3000) == 40
        assert system.hierarchy.memory.read_word(0x3100) == 60
        assert result.instructions == sum(s.committed for s in result.per_core)

    def test_cycles_is_the_slowest_thread(self):
        system = MulticoreSystem(CORTEX_A76.with_cores(2))
        result = system.run([counting_program(1, 0x3000),
                             assemble("HALT")])
        assert result.cycles == max(s.cycles for s in result.per_core)

    def test_too_many_programs_rejected(self):
        system = MulticoreSystem(CORTEX_A76.with_cores(1))
        with pytest.raises(ConfigError):
            system.run([assemble("HALT"), assemble("HALT")])


class TestCoherence:
    def test_cross_core_store_invalidates_sharer(self):
        """Core 1's committed store must invalidate core 0's L1 copy."""
        reader = assemble("""
            MOV X1, #0x3000
            LDR X2, [X1]        // brings the line into core 0's L1
            MOV X3, #4000
        spin:
            SUB X3, X3, #1
            CBNZ X3, spin
            LDR X4, [X1]        // after the writer's store
            HALT
        """)
        writer = assemble("""
            MOV X3, #600
        delay:
            SUB X3, X3, #1
            CBNZ X3, delay
            MOV X1, #0x3000
            MOV X2, #777
            STR X2, [X1]
            HALT
        """)
        system = MulticoreSystem(CORTEX_A76.with_cores(2))
        result = system.run([reader, writer])
        assert result.invalidations >= 1
        reader_core = system.cores[0]
        assert reader_core.arf[4] == 777  # saw the remote write

    def test_parsec_runs_under_every_defense(self):
        for defense in (DefenseKind.NONE, DefenseKind.SPECASAN):
            threads = build_parsec("swaptions", num_threads=2,
                                   target_instructions=600)
            system = MulticoreSystem(
                CORTEX_A76.with_cores(2).with_defense(defense))
            result = system.run([t.program for t in threads])
            assert not any(result.faults)
            assert result.instructions > 800
