"""MulticoreResult aggregation arithmetic."""

from repro.multicore import MulticoreResult
from repro.pipeline.stats import CoreStats


class TestAggregates:
    def _result(self):
        per_core = [
            CoreStats(cycles=100, committed=150, restricted_committed=3),
            CoreStats(cycles=120, committed=250, restricted_committed=1),
        ]
        return MulticoreResult(cycles=120, per_core=per_core,
                               faults=[None, None], restricted=4,
                               invalidations=7)

    def test_instruction_sum(self):
        assert self._result().instructions == 400

    def test_ipc_uses_total_cycles(self):
        result = self._result()
        assert result.ipc == 400 / 120

    def test_restricted_fraction_pools_threads(self):
        assert self._result().restricted_fraction == 4 / 400

    def test_empty_guards(self):
        empty = MulticoreResult(cycles=0, per_core=[], faults=[],
                                restricted=0, invalidations=0)
        assert empty.ipc == 0.0
        assert empty.restricted_fraction == 0.0
