"""Cross-core leakage through the shared L2.

The threat model (§3.1) includes attackers observing residual state from
*another* core: a victim's squashed speculative access still fills the
shared L2, which a co-located attacker can probe.  SpecASan's fill-blocking
(G3) keeps mismatched speculative lines out of the L2 too, closing the
cross-core channel.
"""

from repro.attacks import spectre_v1
from repro.config import CORTEX_A76, DefenseKind
from repro.defenses import make_policy
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.isa import assemble
from repro.system import load_program


def _run_victim_with_observer(defense):
    """Victim (core 1) runs the Spectre-v1 PoC; the attacker (core 0) just
    spins, then probes the shared L2 for secret-indexed probe lines."""
    attack = spectre_v1.build()
    config = CORTEX_A76.with_cores(2).with_defense(defense)
    hierarchy = MemoryHierarchy(config)
    observer_prog = assemble("""
        MOV X1, #4000
    spin:
        SUB X1, X1, #1
        CBNZ X1, spin
        HALT
    """)
    load_program(hierarchy, observer_prog)
    load_program(hierarchy, attack.builder_program)
    observer = Core(config, hierarchy, observer_prog,
                    policy=make_policy(defense), core_id=0)
    victim = Core(config, hierarchy, attack.builder_program,
                  policy=make_policy(defense), core_id=1)
    victim.secret_ranges = [(attack.secret_address,
                             attack.secret_address + 16)]
    while not (observer.halted and victim.halted):
        if not observer.halted:
            observer.tick()
        if not victim.halted:
            victim.tick()
    hierarchy.drain(10 ** 9)
    # The attacker probes through ITS OWN core: only the shared L2 can
    # betray the victim's speculation.
    recovered = [
        value for value in range(attack.candidates)
        if value not in attack.benign_values
        and hierarchy.l2.contains(attack.probe_base
                                  + value * attack.probe_stride)
    ]
    return attack, recovered


class TestCrossCoreChannel:
    def test_baseline_leaks_into_the_shared_l2(self):
        attack, recovered = _run_victim_with_observer(DefenseKind.NONE)
        assert attack.secret_value in recovered

    def test_specasan_keeps_the_shared_l2_clean(self):
        attack, recovered = _run_victim_with_observer(DefenseKind.SPECASAN)
        assert attack.secret_value not in recovered

    def test_ghostminion_shadow_never_reaches_l2(self):
        attack, recovered = _run_victim_with_observer(DefenseKind.GHOSTMINION)
        assert attack.secret_value not in recovered
