"""The hardware cost model (Table 3)."""

import pytest

from repro.hwcost import (
    build_components,
    compute_table3,
    LogicBlock,
    MECHANISMS,
    render_table3,
    SRAMArray,
)


class TestSRAMModel:
    def test_area_scales_with_bits(self):
        small = SRAMArray("a", entries=16, bits_per_entry=64)
        big = SRAMArray("b", entries=32, bits_per_entry=64)
        assert big.area_um2 == pytest.approx(2 * small.area_um2)

    def test_ports_cost_area_and_leakage(self):
        single = SRAMArray("a", entries=16, bits_per_entry=64, ports=1)
        dual = SRAMArray("b", entries=16, bits_per_entry=64, ports=2)
        assert dual.area_um2 > single.area_um2
        assert dual.leakage_uw > single.leakage_uw

    def test_access_energy_uses_access_bits(self):
        array = SRAMArray("a", entries=16, bits_per_entry=512, access_bits=4)
        full = SRAMArray("b", entries=16, bits_per_entry=512)
        assert array.read_energy_fj < full.read_energy_fj

    def test_logic_block_scales_with_gates(self):
        assert (LogicBlock("x", gates=200).area_um2
                == 2 * LogicBlock("y", gates=100).area_um2)


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return compute_table3()

    def _cell(self, rows, component, metric, mechanism):
        for row in rows:
            if row.component == component and metric in row.metric:
                return row.values[mechanism]
        raise KeyError((component, metric))

    def test_mte_touches_only_the_l1d(self, rows):
        assert self._cell(rows, "L1 D-Cache", "Area", "ARM MTE") > 0
        assert self._cell(rows, "LFB", "Area", "ARM MTE") == 0
        assert self._cell(rows, "ROB/LSQ/MSHR", "Area", "ARM MTE") == 0

    def test_specasan_adds_lfb_and_backend_bits(self, rows):
        assert self._cell(rows, "LFB", "Area", "SpecASan") > 0
        assert self._cell(rows, "ROB/LSQ/MSHR", "Area", "SpecASan") > 0
        # ...but inherits MTE's L1D cost unchanged.
        assert (self._cell(rows, "L1 D-Cache", "Area", "SpecASan")
                == self._cell(rows, "L1 D-Cache", "Area", "ARM MTE"))

    def test_cfi_only_in_the_combined_column(self, rows):
        assert self._cell(rows, "CFI Extensions", "Area", "SpecASan") == 0
        assert self._cell(rows, "CFI Extensions", "Area", "SpecASan+CFI") > 0

    def test_l1d_overhead_matches_paper_band(self, rows):
        """Paper: 3.84% area / 3.31% static / 0.74% dynamic."""
        assert 3.0 <= self._cell(rows, "L1 D-Cache", "Area", "ARM MTE") <= 4.5
        assert 2.4 <= self._cell(rows, "L1 D-Cache", "Static", "ARM MTE") <= 4.0
        assert 0.5 <= self._cell(rows, "L1 D-Cache", "Dynamic", "ARM MTE") <= 1.0

    def test_lfb_overhead_matches_paper_band(self, rows):
        """Paper: 3.72% area / 3.11% static / 0.68% dynamic."""
        assert 2.8 <= self._cell(rows, "LFB", "Area", "SpecASan") <= 4.5
        assert 0.4 <= self._cell(rows, "LFB", "Dynamic", "SpecASan") <= 1.0

    def test_total_core_ordering(self, rows):
        """MTE < SpecASan < SpecASan+CFI, all well under 1%."""
        totals = [self._cell(rows, "Total Core", "Area", m)
                  for m in MECHANISMS]
        assert totals[0] < totals[1] < totals[2] < 1.0

    def test_total_core_matches_paper_band(self, rows):
        """Paper: 0.17 / 0.28 / 0.38 (%)."""
        assert self._cell(rows, "Total Core", "Area", "ARM MTE") == pytest.approx(0.17, abs=0.03)
        assert self._cell(rows, "Total Core", "Area", "SpecASan") == pytest.approx(0.28, abs=0.08)
        assert self._cell(rows, "Total Core", "Area", "SpecASan+CFI") == pytest.approx(0.38, abs=0.10)

    def test_render_contains_all_mechanisms(self, rows):
        text = render_table3(rows)
        for mechanism in MECHANISMS:
            assert mechanism in text

    def test_components_list(self):
        names = [c.name for c in build_components()]
        assert names == ["L1 D-Cache", "LFB", "ROB/LSQ/MSHR",
                         "CFI Extensions"]
