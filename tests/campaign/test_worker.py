"""Worker semantics, in-process: measurement, heartbeats, typed failures."""

import json

import pytest

from repro.campaign import CellSpec, Heartbeat, run_cell
from repro.campaign.heartbeat import age_s
from repro.campaign.worker import main as worker_main
from repro.errors import ReproError


def spec_cell(**overrides):
    params = dict(kind="spec", benchmark="505.mcf_r", defense="specasan",
                  target_instructions=300, warm_runs=0)
    params.update(overrides)
    return CellSpec(**params)


class TestRunCell:
    def test_spec_cell_measures(self):
        row = run_cell(spec_cell())
        assert row["halted"]
        assert row["cycles"] > 0 and row["instructions"] > 0
        assert 0.0 <= row["restricted_fraction"] <= 1.0

    def test_deterministic_across_processes_boundary(self):
        # Same spec, fresh systems: identical payloads — the property the
        # resume byte-identity guarantee is built on.
        assert run_cell(spec_cell()) == run_cell(spec_cell())

    def test_parsec_cell_measures(self):
        row = run_cell(CellSpec(kind="parsec", benchmark="canneal",
                                defense="none", target_instructions=200,
                                warm_runs=0, num_threads=2))
        assert row["halted"] and row["cycles"] > 0

    def test_cycle_budget_enforced_as_typed_error(self):
        with pytest.raises(ReproError):
            run_cell(spec_cell(max_cycles=50))

    def test_repair_cell_is_self_normalizing(self):
        row = run_cell(CellSpec(kind="repair", benchmark="pht/same-key",
                                defense="specasan"))
        assert row["verified"] and row["fixes"]
        assert row["baseline_cycles"] > 0 and row["cycles"] > 0
        assert row["halted"]
        stats = row["stats"]["repair"]["pht-same-key"]
        assert stats["baseline_cycles"] == row["baseline_cycles"]
        assert "cycles" in stats["fix1"]

    def test_repair_cell_is_deterministic(self):
        cell = CellSpec(kind="repair", benchmark="stl/untagged",
                        defense="specasan")
        assert run_cell(cell) == run_cell(cell)

    def test_heartbeat_pulsed_from_the_run_loop(self, tmp_path):
        path = str(tmp_path / "hb")
        heartbeat = Heartbeat(path, interval=100, min_wall_s=0.0)
        run_cell(spec_cell(), heartbeat=heartbeat)
        assert heartbeat.beats > 1
        assert age_s(path) is not None
        beat = json.loads(open(path, encoding="utf-8").read())
        assert beat["cycle"] > 0


class TestWorkerCLI:
    def _argv(self, tmp_path, cell):
        spec = tmp_path / "cell.json"
        spec.write_text(json.dumps(cell.to_dict()))
        return (["--spec", str(spec), "--out", str(tmp_path / "out.json"),
                 "--heartbeat", str(tmp_path / "hb")],
                tmp_path / "out.json")

    def test_success_writes_ok_outcome(self, tmp_path):
        argv, out = self._argv(tmp_path, spec_cell())
        assert worker_main(argv) == 0
        outcome = json.loads(out.read_text())
        assert outcome["status"] == "ok"
        assert outcome["cell_id"] == "spec:505.mcf_r:specasan"
        assert outcome["row"]["cycles"] > 0

    def test_typed_failure_is_exit_3_with_error_payload(self, tmp_path):
        argv, out = self._argv(tmp_path, spec_cell(max_cycles=50))
        assert worker_main(argv) == 3
        outcome = json.loads(out.read_text())
        assert outcome["status"] == "failed"
        assert outcome["error_type"] == "SimulationError"
        assert "50 cycles" in outcome["error"]
