"""Scheduler: isolation, retry/backoff, stragglers, resume, degradation.

The tests that need *real* workers use a 300-instruction single-benchmark
figure-9 sweep (4 cells, ~1s each); failure-path tests swap the worker argv
for stubs so nothing real has to hang or crash slowly.
"""

import json
import os
import shutil
import sys

import pytest

from repro.campaign import (CampaignConfig, CampaignScheduler, ResultStore)
from repro.errors import ManifestMismatch
from repro.eval.experiments import MISSING_CELL

QUICK = dict(figure="figure9", benchmarks=("505.mcf_r",),
             target_instructions=300, warm_runs=0, max_workers=2,
             backoff_base_s=0.02, backoff_jitter_s=0.02, timeout_s=120.0)


def quick_config(**overrides):
    params = dict(QUICK)
    params.update(overrides)
    return CampaignConfig(**params)


def sleeper_argv(cell, paths, attempt, reseed):
    """A worker that never heartbeats and never finishes."""
    return [sys.executable, "-c", "import time; time.sleep(600)"]


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def finished(self, tmp_path_factory):
        run_dir = str(tmp_path_factory.mktemp("campaign") / "run")
        config = quick_config()
        outcome = CampaignScheduler(config, run_dir).run()
        return config, run_dir, outcome

    def test_all_cells_complete(self, finished):
        config, _, outcome = finished
        assert outcome.ok
        assert len(outcome.completed) == len(outcome.cells) == 4
        assert outcome.failed == {} and outcome.corrupt == []

    def test_rows_render_without_markers(self, finished):
        _, _, outcome = finished
        text = outcome.render()
        assert "505.mcf_r" in text and MISSING_CELL not in text

    def test_store_holds_checksummed_records(self, finished):
        config, run_dir, outcome = finished
        records, corrupt = ResultStore(run_dir).load()
        assert corrupt == []
        assert {r["cell_id"] for r in records} == set(outcome.completed)

    def test_report_persisted(self, finished):
        _, run_dir, _ = finished
        report = json.loads(open(os.path.join(run_dir, "report.json"),
                                 encoding="utf-8").read())
        assert report["ok"] and report["completed"] == 4

    def test_rerun_resumes_everything(self, finished):
        config, run_dir, first = finished
        again = CampaignScheduler(config, run_dir).run()
        assert again.skipped == 4
        assert again.render() == first.render()

    def test_interrupted_store_resumes_byte_identical(self, finished,
                                                      tmp_path):
        # Simulate a campaign killed after its first two durable appends:
        # copy the manifest plus a truncated (but record-aligned) store into
        # a fresh run directory and resume there.
        config, run_dir, reference = finished
        partial = str(tmp_path / "partial")
        os.makedirs(os.path.join(partial, "work"))
        shutil.copy(os.path.join(run_dir, "manifest.json"),
                    os.path.join(partial, "manifest.json"))
        with open(os.path.join(run_dir, "results.jsonl"),
                  encoding="utf-8") as handle:
            first_two = handle.readlines()[:2]
        with open(os.path.join(partial, "results.jsonl"), "w",
                  encoding="utf-8") as handle:
            handle.writelines(first_two)
        resumed = CampaignScheduler(config, partial).run(resume=True)
        assert resumed.skipped == 2
        assert resumed.ok
        assert resumed.render() == reference.render()
        assert resumed.render("restricted") == reference.render("restricted")

    def test_resume_under_changed_config_is_fail_stop(self, finished):
        _, run_dir, _ = finished
        changed = quick_config(target_instructions=999)
        with pytest.raises(ManifestMismatch):
            CampaignScheduler(changed, run_dir).run(resume=True)


class TestStragglerRecovery:
    def test_hung_workers_are_reaped_retried_then_marked_missing(
            self, tmp_path):
        config = quick_config(max_retries=1, stall_timeout_s=0.3)
        scheduler = CampaignScheduler(config, str(tmp_path / "run"),
                                      worker_argv=sleeper_argv,
                                      poll_interval_s=0.01)
        outcome = scheduler.run()
        assert not outcome.ok
        assert len(outcome.failed) == 4
        for failures in outcome.failed.values():
            assert len(failures) == 2  # initial attempt + 1 retry
            assert all(f.kind == "stalled" for f in failures)
        # Degradation, not abortion: the figure still renders, with every
        # cell explicitly marked missing.
        text = outcome.render()
        assert text.count(MISSING_CELL) > 4  # cells + aggregates
        report = json.loads(open(scheduler.store.report_path,
                                 encoding="utf-8").read())
        assert not report["ok"] and len(report["failed"]) == 4

    def test_wall_timeout_beats_the_clock(self, tmp_path):
        config = quick_config(benchmarks=("505.mcf_r",), max_retries=0,
                              timeout_s=0.3, stall_timeout_s=60.0)
        scheduler = CampaignScheduler(config, str(tmp_path / "run"),
                                      worker_argv=sleeper_argv,
                                      poll_interval_s=0.01)
        outcome = scheduler.run()
        assert not outcome.ok
        kinds = {f.kind for failures in outcome.failed.values()
                 for f in failures}
        assert kinds == {"wall-timeout"}


class TestRetryRecovery:
    def test_crashing_attempt_is_retried_to_success(self, tmp_path):
        # Attempt 0 of every cell dies instantly with no outcome file (the
        # shape of an OOM kill); attempt 1 runs the real worker.  The
        # campaign must converge with full results.
        launches = []

        def flaky_argv(cell, paths, attempt, reseed):
            launches.append((cell.cell_id, attempt, reseed))
            if attempt == 0:
                return [sys.executable, "-c", "import sys; sys.exit(9)"]
            return scheduler._default_argv(cell, paths, attempt, reseed)

        config = quick_config(max_retries=1)
        scheduler = CampaignScheduler(config, str(tmp_path / "run"),
                                      worker_argv=flaky_argv,
                                      poll_interval_s=0.01)
        outcome = scheduler.run()
        assert outcome.ok
        assert len(outcome.completed) == 4
        # Every cell was launched twice.  An environmental death keeps the
        # reseed (so the dead attempt's mid-cell checkpoints stay
        # restorable); only typed simulation failures perturb the seed.
        by_cell = {}
        for cell_id, attempt, reseed in launches:
            by_cell.setdefault(cell_id, []).append((attempt, reseed))
        assert all(attempts == [(0, 0), (1, 0)]
                   for attempts in by_cell.values())


class TestGracefulInterrupt:
    def test_sigterm_reaps_workers_and_leaves_run_resumable(self, tmp_path):
        import signal
        import threading

        config = quick_config()
        run_dir = str(tmp_path / "run")
        scheduler = CampaignScheduler(config, run_dir,
                                      worker_argv=sleeper_argv,
                                      poll_interval_s=0.01)
        timer = threading.Timer(
            0.4, lambda: signal.raise_signal(signal.SIGTERM))
        timer.start()
        try:
            outcome = scheduler.run()
        finally:
            timer.cancel()
        # Interrupted, not failed: nothing was marked permanently missing,
        # the report says "interrupted", and the directory stays resumable.
        assert outcome.interrupted and not outcome.ok
        assert outcome.failed == {} and outcome.completed == {}
        report = json.loads(open(scheduler.store.report_path,
                                 encoding="utf-8").read())
        assert report["status"] == "interrupted" and report["resumable"]
        assert not report["ok"]

    def test_interrupt_flag_stops_loop_without_signal(self, tmp_path):
        # The same path is reachable programmatically (non-main threads,
        # embedding services): interrupt() before run() returns instantly.
        scheduler = CampaignScheduler(quick_config(), str(tmp_path / "run"),
                                      worker_argv=sleeper_argv,
                                      poll_interval_s=0.01)
        scheduler.interrupt()
        outcome = scheduler.run()
        assert outcome.interrupted and outcome.completed == {}

    def test_interrupted_run_resumes_to_completion(self, tmp_path):
        import signal
        import threading

        config = quick_config()
        run_dir = str(tmp_path / "run")
        interrupted = CampaignScheduler(config, run_dir,
                                        worker_argv=sleeper_argv,
                                        poll_interval_s=0.01)
        timer = threading.Timer(
            0.3, lambda: signal.raise_signal(signal.SIGTERM))
        timer.start()
        try:
            assert interrupted.run().interrupted
        finally:
            timer.cancel()
        resumed = CampaignScheduler(config, run_dir).run(resume=True)
        assert resumed.ok and len(resumed.completed) == 4
