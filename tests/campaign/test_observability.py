"""Campaign-side observability: per-cell traces, the run-dir span log,
periodic metrics dumps, and the flight-recorder dump."""

import json
import os

from repro.campaign import CampaignScheduler, ResultStore
from repro.campaign.cells import CellSpec
from repro.campaign.scheduler import (FLIGHT_DUMP, METRICS_JSON,
                                      METRICS_PROM, SPANS_LOG)
from repro.campaign.worker import main as worker_main
from repro.telemetry.obs import is_trace_id, load_spans, span_forest

from tests.campaign.test_scheduler import quick_config


class TestSchedulerObservability:
    def run_once(self, tmp_path):
        run_dir = str(tmp_path / "run")
        outcome = CampaignScheduler(quick_config(), run_dir).run()
        assert outcome.ok
        return run_dir, outcome

    def test_run_dir_artifacts_and_traces(self, tmp_path):
        run_dir, outcome = self.run_once(tmp_path)

        # Every completed record carries its cell's 16-hex trace.
        records, corrupt = ResultStore(run_dir).load()
        assert corrupt == []
        traces = {record["cell_id"]: record["trace"] for record in records}
        assert len(traces) == len(outcome.completed)
        for trace in traces.values():
            assert is_trace_id(trace) and len(trace) == 16
        assert len(set(traces.values())) == len(traces), \
            "each cell gets its own trace"

        # The span log reconstructs each attempt with its phase children.
        spans = load_spans(os.path.join(run_dir, SPANS_LOG))
        forest = span_forest(spans)
        for cell_id, trace in traces.items():
            assert trace in forest, f"no spans for {cell_id}"
            root, kids = forest[trace][0]
            assert root.name == "cell-attempt"
            assert root.status == "ok"
            kid_names = [kid.name for kid, _ in kids]
            assert "simulate" in kid_names
            assert "workload-generate" in kid_names
            # Phase children tile the attempt sequentially.
            starts = [kid.t0_ms for kid, _ in kids]
            assert starts == sorted(starts)

        # Metrics dumps: the JSON registry and the Prometheus exposition.
        metrics = json.loads(open(os.path.join(run_dir, METRICS_JSON),
                                  encoding="utf-8").read())
        campaign = metrics["campaign"]
        assert campaign["cells_completed"] == len(outcome.completed)
        assert campaign["attempts_launched"] >= len(outcome.completed)
        assert campaign["cell_latency_ms"]["count"] >= 1
        assert campaign["cell_latency_ms"]["p50"] > 0.0
        prom = open(os.path.join(run_dir, METRICS_PROM),
                    encoding="utf-8").read()
        assert "repro_campaign_cells_completed" in prom

        # The flight recorder dumped with one launch event per attempt.
        flight = json.loads(open(os.path.join(run_dir, FLIGHT_DUMP),
                                 encoding="utf-8").read())
        launches = [event for event in flight["events"]
                    if event["event"] == "cell-launch"]
        assert len(launches) >= len(outcome.completed)
        assert all(is_trace_id(event["trace"]) for event in launches)


class TestWorkerTraceEcho:
    def test_trace_id_flag_rides_the_outcome_envelope(self, tmp_path):
        cell = CellSpec(kind="spec", benchmark="505.mcf_r",
                        defense="specasan", target_instructions=300,
                        warm_runs=0)
        spec_path = str(tmp_path / "cell.json")
        out_path = str(tmp_path / "outcome.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(cell.to_dict(), handle)
        code = worker_main([
            "--spec", spec_path, "--out", out_path,
            "--heartbeat", str(tmp_path / "hb"),
            "--trace-id", "abcd1234abcd1234"])
        assert code == 0
        outcome = json.loads(open(out_path, encoding="utf-8").read())
        assert outcome["status"] == "ok"
        assert outcome["trace"] == "abcd1234abcd1234"
        # Wall-clock phase timings ride the envelope, never the row.
        assert outcome["timings"]["run_ms"] > 0.0
        assert "timings" not in outcome["row"]
        assert not any(key.endswith("_ms") for key in outcome["row"])

    def test_without_flag_no_trace_key(self, tmp_path):
        cell = CellSpec(kind="repair", benchmark="pht/same-key",
                        defense="specasan", target_instructions=0,
                        warm_runs=0)
        spec_path = str(tmp_path / "cell.json")
        out_path = str(tmp_path / "outcome.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(cell.to_dict(), handle)
        code = worker_main([
            "--spec", spec_path, "--out", out_path,
            "--heartbeat", str(tmp_path / "hb")])
        assert code == 0
        outcome = json.loads(open(out_path, encoding="utf-8").read())
        assert "trace" not in outcome
        assert outcome["timings"]["synthesize_ms"] >= 0.0
