"""Cell model: building, serialization, config derivation, row assembly."""

import pytest

from repro.campaign import (CampaignConfig, CellSpec, rows_from_records,
                            system_config)
from repro.config import CORTEX_A76, DefenseKind
from repro.errors import CampaignError


class TestCellSpec:
    def test_dict_roundtrip(self):
        cell = CellSpec(kind="parsec", benchmark="canneal",
                        defense="specasan", num_threads=4, max_cycles=50_000)
        assert CellSpec.from_dict(cell.to_dict()) == cell

    def test_bad_kind_rejected(self):
        with pytest.raises(CampaignError):
            CellSpec(kind="nope", benchmark="x", defense="none")

    def test_bad_defense_rejected(self):
        with pytest.raises(ValueError):
            CellSpec(kind="spec", benchmark="x", defense="warded")


class TestSystemConfig:
    def test_defense_and_budget_applied(self):
        cell = CellSpec(kind="spec", benchmark="505.mcf_r",
                        defense="specasan", max_cycles=123_456)
        config = system_config(cell)
        assert config.defense is DefenseKind.SPECASAN
        assert config.core.max_cycles == 123_456
        assert config.num_cores == 1

    def test_default_budget_comes_from_core_config(self):
        cell = CellSpec(kind="spec", benchmark="505.mcf_r", defense="none")
        assert (system_config(cell).core.max_cycles
                == CORTEX_A76.core.max_cycles)

    def test_reseed_perturbs_only_the_tag_seed(self):
        cell = CellSpec(kind="spec", benchmark="505.mcf_r", defense="none")
        base, retried = system_config(cell), system_config(cell, reseed=2)
        assert retried.mte.seed == base.mte.seed + 2
        assert retried.core == base.core

    def test_parsec_gets_cores(self):
        cell = CellSpec(kind="parsec", benchmark="canneal", defense="none",
                        num_threads=4)
        assert system_config(cell).num_cores == 4


class TestCampaignConfig:
    def test_cells_cover_baseline_plus_defenses(self):
        config = CampaignConfig(figure="figure6", benchmarks=("505.mcf_r",))
        ids = [cell.cell_id for cell in config.build_cells()]
        assert ids[0] == "spec:505.mcf_r:none"
        assert len(ids) == len(set(ids)) == 1 + len(config.defenses)

    def test_figure7_builds_parsec_cells(self):
        config = CampaignConfig(figure="figure7", benchmarks=("canneal",),
                                num_threads=4)
        cells = config.build_cells()
        assert all(cell.kind == "parsec" and cell.num_threads == 4
                   for cell in cells)

    def test_repair_overhead_schedules_no_baseline_cells(self):
        config = CampaignConfig(figure="repair-overhead")
        cells = config.build_cells()
        # One self-normalizing cell per residual witness subject.
        assert all(cell.kind == "repair" for cell in cells)
        assert all(cell.defense == "specasan" for cell in cells)
        assert [c.benchmark for c in cells] == [
            "pht/same-key", "btb/same-key", "rsb/same-key",
            "stl/untagged", "sbb/same-key", "lfb/same-key"]

    def test_hash_is_stable_and_parameter_sensitive(self):
        a = CampaignConfig(figure="figure6", target_instructions=300)
        b = CampaignConfig(figure="figure6", target_instructions=300)
        c = CampaignConfig(figure="figure6", target_instructions=301)
        assert a.config_hash() == b.config_hash() != c.config_hash()

    def test_unknown_figure_rejected(self):
        with pytest.raises(CampaignError):
            CampaignConfig(figure="figure42")


class TestRowAssembly:
    def _record(self, cycles):
        return {"row": {"cycles": cycles, "instructions": 100,
                        "restricted_fraction": 0.1, "ipc": 1.0,
                        "halted": True}}

    def test_rows_join_against_baseline(self):
        config = CampaignConfig(figure="figure6", benchmarks=("505.mcf_r",))
        cells = config.build_cells()
        records = {"spec:505.mcf_r:none": self._record(1000),
                   "spec:505.mcf_r:fence": self._record(2500)}
        rows = rows_from_records(cells, records)
        by_defense = {row.defense: row for row in rows}
        assert by_defense[DefenseKind.FENCE].normalized_time == 2.5
        assert by_defense[DefenseKind.NONE].normalized_time == 1.0

    def test_repair_rows_normalize_against_their_own_payload(self):
        config = CampaignConfig(figure="repair-overhead",
                                benchmarks=("btb/same-key",))
        cells = config.build_cells()
        record = self._record(1100)
        record["row"]["baseline_cycles"] = 1000
        rows = rows_from_records(
            cells, {"repair:btb/same-key:specasan": record})
        assert len(rows) == 1
        assert rows[0].normalized_time == pytest.approx(1.1)

    def test_missing_baseline_drops_the_benchmark(self):
        # Without a baseline there is nothing sound to normalize against;
        # the rows vanish and render_rows shows MISSING markers instead.
        config = CampaignConfig(figure="figure6", benchmarks=("505.mcf_r",))
        cells = config.build_cells()
        rows = rows_from_records(
            cells, {"spec:505.mcf_r:fence": self._record(2500)})
        assert rows == []
