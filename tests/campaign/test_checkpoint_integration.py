"""Campaign <-> checkpoint integration: warm sharing, mid-cell resume,
retry reuse, and graceful degradation past corrupt files.

Everything here runs the worker in-process (the scheduler end-to-end path
is covered by ``test_scheduler.py`` and the campaign smoke); the invariant
throughout is that checkpoint corruption costs re-simulation *time*, never
*results* and never the campaign.
"""

import glob
import json
import os

from repro.campaign import CampaignConfig, CellSpec, run_cell
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.worker import CheckpointPlan
from repro.campaign.cells import system_config
from repro.checkpoint import CheckpointManager, corrupt
from repro.system import build_system
from repro.workloads import SPEC_BY_NAME
from repro.workloads.generator import generate


def spec_cell(**overrides):
    params = dict(kind="spec", benchmark="505.mcf_r", defense="specasan",
                  target_instructions=400, warm_runs=1)
    params.update(overrides)
    return CellSpec(**params)


def plan_for(tmp_path, cell, interval=150):
    safe = cell.cell_id.replace(":", "_").replace("+", "")
    return CheckpointPlan(stem=os.path.join(str(tmp_path), safe),
                          interval=interval, keep=2,
                          warm_dir=str(tmp_path))


class TestWarmSharing:
    def test_first_cell_produces_then_group_shares(self, tmp_path):
        specasan = spec_cell()
        row1 = run_cell(specasan, checkpointing=plan_for(tmp_path, specasan))
        assert row1["warm"] == "produced"
        # Same instrumented-program group, different defense: shared.
        cfi = spec_cell(defense="specasan+cfi")
        row2 = run_cell(cfi, checkpointing=plan_for(tmp_path, cfi))
        assert row2["warm"] == "shared"
        assert row2["degradations"] == []
        # One warm file serves the whole group.
        assert len(glob.glob(os.path.join(str(tmp_path),
                                          "warm.*.ckpt"))) == 1

    def test_warm_sharing_does_not_change_results(self, tmp_path):
        # Producer and sharer of the same (workload, defense) measure
        # identical cycles: the shared state is exactly the produced state.
        cell = spec_cell()
        row1 = run_cell(cell, checkpointing=plan_for(tmp_path, cell))
        for path in glob.glob(os.path.join(str(tmp_path), "*.ckpt.*")):
            os.unlink(path)  # drop generations so the rerun re-measures
        row2 = run_cell(cell, checkpointing=plan_for(tmp_path, cell))
        assert row2["warm"] == "shared"
        assert (row1["cycles"], row1["instructions"], row1["ipc"]) == \
               (row2["cycles"], row2["instructions"], row2["ipc"])

    def test_corrupt_warm_checkpoint_degrades_to_local_warm(self, tmp_path):
        cell = spec_cell()
        reference = run_cell(cell, checkpointing=plan_for(tmp_path, cell))
        [warm_path] = glob.glob(os.path.join(str(tmp_path), "warm.*.ckpt"))
        corrupt.flip_bit(warm_path, section="hierarchy")
        for path in glob.glob(os.path.join(str(tmp_path), "*.ckpt.*")):
            os.unlink(path)
        row = run_cell(cell, checkpointing=plan_for(tmp_path, cell))
        # Re-warmed locally, recorded the fault class, measured the same.
        assert row["warm"] == "produced"
        assert [(d["stage"], d["kind"]) for d in row["degradations"]] == \
               [("warm", "section-corrupt")]
        assert row["cycles"] == reference["cycles"]

    def test_disabled_plan_keeps_legacy_payload_shape(self):
        row = run_cell(spec_cell(warm_runs=0))
        assert "warm" not in row and "degradations" not in row


class TestMidCellResume:
    def test_retry_resumes_from_prior_attempts_generation(self, tmp_path):
        # The "attempt 0 died mid-cell" shape: a checkpoint exists at the
        # attempt-independent stem; the retried cell must restore it and
        # still produce exactly the straight-through row.
        cell = spec_cell(warm_runs=0)
        plan = plan_for(tmp_path, cell)
        reference = run_cell(cell, checkpointing=plan)
        for path in glob.glob(os.path.join(str(tmp_path), "*.ckpt.*")):
            os.unlink(path)

        # Fabricate the dead attempt: identical system paused mid-run.
        program = generate(
            SPEC_BY_NAME[cell.benchmark], seed=cell.seed,
            target_instructions=cell.target_instructions,
            mte_instrumented=cell.defense_kind.uses_specasan).program
        victim = build_system(system_config(cell, 0))
        victim.prepare(program).run(until_cycle=100)
        CheckpointManager(plan.stem, keep=plan.keep).save(victim, program)

        row = run_cell(cell, checkpointing=plan)
        assert row["warm"] == "checkpoint"
        assert row["resumed_cycle"] == 100
        assert row["cycles"] == reference["cycles"]
        assert row["instructions"] == reference["instructions"]

    def test_all_generations_corrupt_restarts_and_records(self, tmp_path):
        cell = spec_cell(warm_runs=0)
        plan = plan_for(tmp_path, cell, interval=120)
        reference = run_cell(cell, checkpointing=plan)
        gens = sorted(glob.glob(os.path.join(str(tmp_path), "*.ckpt.*")))
        assert gens, "expected periodic generations from the first run"
        for path in gens:
            corrupt.truncate(path, 0.4)
        row = run_cell(cell, checkpointing=plan)
        assert row.get("resumed_cycle") is None  # started over
        kinds = {(d["stage"], d["kind"]) for d in row["degradations"]}
        assert kinds == {("resume", "truncated")}
        assert row["cycles"] == reference["cycles"]

    def test_reseeded_retry_silently_skips_stale_generations(self, tmp_path):
        # After a typed failure the scheduler bumps the reseed; the old
        # generations are config-skewed, which is an expected fresh start,
        # not a degradation.
        cell = spec_cell(warm_runs=0)
        plan = plan_for(tmp_path, cell, interval=120)
        run_cell(cell, checkpointing=plan, reseed=0)
        row = run_cell(cell, checkpointing=plan, reseed=1)
        assert row.get("resumed_cycle") is None
        assert row["degradations"] == []


class TestSchedulerThreading:
    def test_argv_carries_checkpoint_flags(self, tmp_path):
        config = CampaignConfig(figure="figure9",
                                benchmarks=("505.mcf_r",),
                                checkpoint_interval=5000,
                                checkpoint_keep=3)
        scheduler = CampaignScheduler(config, str(tmp_path / "run"))
        cell = config.build_cells()[0]
        paths = scheduler._paths(cell, attempt=1)
        argv = scheduler._default_argv(cell, paths, attempt=1, reseed=0)
        assert "--checkpoint-stem" in argv and "--warm-dir" in argv
        assert argv[argv.index("--checkpoint-interval") + 1] == "5000"
        assert argv[argv.index("--checkpoint-keep") + 1] == "3"
        # The checkpoint stem is attempt-independent: attempt 2 must find
        # attempt 1's generations.
        assert paths["ckpt"] == scheduler._paths(cell, attempt=2)["ckpt"]
        assert ".a1" not in paths["ckpt"]

    def test_checkpointing_disabled_drops_the_flags(self, tmp_path):
        config = CampaignConfig(figure="figure9",
                                benchmarks=("505.mcf_r",),
                                checkpoint_interval=0, share_warm=False)
        scheduler = CampaignScheduler(config, str(tmp_path / "run"))
        cell = config.build_cells()[0]
        argv = scheduler._default_argv(cell, scheduler._paths(cell, 0), 0, 0)
        assert "--checkpoint-stem" not in argv
        assert "--warm-dir" not in argv


class TestCampaignDegradationReport:
    def test_corrupt_checkpoints_never_abort_and_land_in_report(
            self, tmp_path):
        run_dir = str(tmp_path / "run")
        config = CampaignConfig(
            figure="figure9", benchmarks=("505.mcf_r",),
            target_instructions=300, warm_runs=1, max_workers=2,
            backoff_base_s=0.02, backoff_jitter_s=0.02,
            checkpoint_interval=100)
        first = CampaignScheduler(config, run_dir).run()
        assert first.ok and first.degradations == {}

        # Damage every durable warm file and generation, forget the rows,
        # and rerun: the campaign must complete, record each cell's
        # degradations (with fault class) in report.json, and reproduce
        # the identical figure.
        work = os.path.join(run_dir, "work")
        for path in glob.glob(os.path.join(work, "warm.*.ckpt")):
            corrupt.flip_bit(path, section="hierarchy")
        for path in glob.glob(os.path.join(work, "*.ckpt.*")):
            corrupt.truncate(path, 0.4)
        os.unlink(os.path.join(run_dir, "results.jsonl"))
        second = CampaignScheduler(config, run_dir).run()
        assert second.ok
        assert set(second.degradations) == set(second.completed)
        report = json.loads(open(os.path.join(run_dir, "report.json"),
                                 encoding="utf-8").read())
        assert report["ok"]
        recorded_kinds = {d["kind"]
                          for degradations in report["degradations"].values()
                          for d in degradations}
        assert recorded_kinds == {"section-corrupt", "truncated"}
        assert second.render() == first.render()
