"""Result-store durability: atomic appends, checksums, corruption handling."""

import json
import os

import pytest

from repro.campaign import (CampaignConfig, ResultStore, checksum)
from repro.campaign.cells import SCHEMA_VERSION
from repro.errors import CampaignError, ManifestMismatch, ResultCorruption


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "run"))


@pytest.fixture
def config():
    return CampaignConfig(figure="figure6", benchmarks=("505.mcf_r",),
                          target_instructions=300)


def ok_record(cell_id="spec:505.mcf_r:none", cycles=1000):
    return {"cell_id": cell_id, "status": "ok", "attempt": 0, "reseed": 0,
            "cell": {}, "row": {"cycles": cycles, "instructions": 500,
                                "restricted_fraction": 0.0, "ipc": 0.5,
                                "halted": True}}


class TestAppendLoad:
    def test_roundtrip(self, store, config):
        store.initialize(config, config.build_cells())
        store.append(ok_record())
        store.append(ok_record("spec:505.mcf_r:fence", 1500))
        records, corrupt = store.load()
        assert corrupt == []
        assert [r["cell_id"] for r in records] == [
            "spec:505.mcf_r:none", "spec:505.mcf_r:fence"]
        assert all(r["schema"] == SCHEMA_VERSION for r in records)

    def test_empty_store_loads_empty(self, store):
        os.makedirs(store.run_dir)
        assert store.load() == ([], [])

    def test_no_stray_tmp_files_left(self, store, config):
        store.initialize(config, config.build_cells())
        store.append(ok_record())
        leftovers = [name for name in os.listdir(store.run_dir)
                     if name.endswith(".tmp")]
        assert leftovers == []


class TestCorruptionDetection:
    """Satellite: truncated or checksum-bad records are detected on load,
    reported, and their cells re-queued rather than silently trusted."""

    def _ids(self, store):
        return [cell_id for cell_id in (
            "spec:505.mcf_r:none", "spec:505.mcf_r:fence")]

    def test_truncated_tail_is_reported_and_requeued(self, store, config):
        store.initialize(config, config.build_cells())
        store.append(ok_record())
        store.append(ok_record("spec:505.mcf_r:fence", 1500))
        # Simulate a record torn mid-write (crash between write and rename
        # of a non-atomic writer, or a partial disk flush).
        with open(store.results_path, encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(store.results_path, "w", encoding="utf-8") as handle:
            handle.write(lines[0])
            handle.write(lines[1][: len(lines[1]) // 2])
        records, corrupt = store.load()
        assert len(records) == 1
        assert len(corrupt) == 1
        assert "truncated" in corrupt[0].reason
        done, corrupt = store.completed(self._ids(store))
        assert set(done) == {"spec:505.mcf_r:none"}  # fence re-queued

    def test_bitflip_fails_checksum(self, store, config):
        store.initialize(config, config.build_cells())
        store.append(ok_record(cycles=1000))
        with open(store.results_path, encoding="utf-8") as handle:
            line = handle.read()
        with open(store.results_path, "w", encoding="utf-8") as handle:
            handle.write(line.replace('"cycles":1000', '"cycles":9999'))
        records, corrupt = store.load()
        assert records == []
        assert len(corrupt) == 1
        assert "checksum" in corrupt[0].reason
        assert corrupt[0].cell_id == "spec:505.mcf_r:none"

    def test_strict_mode_raises(self, store, config):
        store.initialize(config, config.build_cells())
        store.append(ok_record())
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"cell_id": "x", "status": "ok"')  # torn line
        with pytest.raises(ResultCorruption):
            store.load(strict=True)

    def test_stale_schema_is_requeued(self, store, config):
        store.initialize(config, config.build_cells())
        record = ok_record()
        record["schema"] = SCHEMA_VERSION + 1
        record["sha256"] = checksum(record)
        os.makedirs(store.run_dir, exist_ok=True)
        with open(store.results_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        records, corrupt = store.load()
        assert records == []
        assert "stale" in corrupt[0].reason

    def test_failed_records_do_not_count_as_completed(self, store, config):
        store.initialize(config, config.build_cells())
        store.append({"cell_id": "spec:505.mcf_r:none", "status": "failed",
                      "cell": {}, "failures": []})
        done, _ = store.completed(["spec:505.mcf_r:none"])
        assert done == {}


class TestManifest:
    def test_missing_manifest_is_typed(self, store):
        with pytest.raises(CampaignError):
            store.load_manifest()

    def test_resume_config_roundtrip(self, store, config):
        store.initialize(config, config.build_cells())
        reloaded = store.resume_config()
        assert reloaded == config
        assert reloaded.config_hash() == config.config_hash()

    def test_mismatched_resume_is_fail_stop(self, store, config):
        store.initialize(config, config.build_cells())
        changed = CampaignConfig(figure="figure6",
                                 benchmarks=("505.mcf_r",),
                                 target_instructions=999)
        with pytest.raises(ManifestMismatch) as excinfo:
            store.resume_config(expected=changed)
        assert excinfo.value.expected == config.config_hash()
        assert excinfo.value.actual == changed.config_hash()

    def test_hand_edited_manifest_detected(self, store, config):
        store.initialize(config, config.build_cells())
        with open(store.manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["config"]["target_instructions"] = 12345
        with open(store.manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ManifestMismatch):
            store.resume_config()
