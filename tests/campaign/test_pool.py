"""The shared process-pool core (campaign + service supervision)."""

import json
import os
import subprocess
import sys
import time

from repro.campaign import pool
from repro.campaign.pool import (AdaptiveWait, WorkerProcess, classify_exit,
                                 launch)


class TestClassifyExit:
    def test_ok(self):
        exit = classify_exit(0, {"status": "ok", "row": {}})
        assert exit.kind == "ok" and exit.outcome["status"] == "ok"

    def test_zero_exit_without_outcome_is_crash(self):
        exit = classify_exit(0, None, tail="boom")
        assert exit.kind == "crashed" and "boom" in exit.error

    def test_typed_failure(self):
        exit = classify_exit(pool.EXIT_TYPED_FAILURE,
                             {"status": "failed", "error": "faulted",
                              "error_type": "ReproError"})
        assert exit.kind == "typed"
        assert exit.error == "faulted" and exit.error_type == "ReproError"

    def test_crashed_outcome(self):
        exit = classify_exit(1, {"status": "crashed", "error": "bug",
                                 "error_type": "KeyError"})
        assert exit.kind == "crashed" and exit.error_type == "KeyError"

    def test_signal_death(self):
        exit = classify_exit(-9, None)
        assert exit.kind == "killed" and "signal 9" in exit.error

    def test_nonzero_exit_no_outcome(self):
        exit = classify_exit(7, None)
        assert exit.kind == "crashed" and "exit code 7" in exit.error


class TestWorkerProcess:
    def _spawn(self, tmp_path, code, **kwargs):
        paths = {name: str(tmp_path / name)
                 for name in ("out", "hb", "log")}
        worker = launch([sys.executable, "-c", code],
                        out_path=paths["out"], heartbeat_path=paths["hb"],
                        log_path=paths["log"], **kwargs)
        return worker, paths

    def test_successful_worker_round_trip(self, tmp_path):
        out = str(tmp_path / "out")
        code = (f"import json; json.dump({{'status': 'ok', 'row': {{}}}}, "
                f"open({out!r}, 'w'))")
        worker, _ = self._spawn(tmp_path, code)
        deadline = time.monotonic() + 10
        exit = None
        while exit is None and time.monotonic() < deadline:
            exit = worker.exit()
            time.sleep(0.01)
        assert exit is not None and exit.kind == "ok"

    def test_wall_timeout_and_reap(self, tmp_path):
        worker, _ = self._spawn(tmp_path, "import time; time.sleep(600)",
                                timeout_s=0.05)
        time.sleep(0.1)
        failure = worker.liveness_failure()
        assert failure is not None and failure.kind == pool.WALL_TIMEOUT
        worker.reap()
        assert worker.proc.poll() is not None

    def test_stalled_without_heartbeat(self, tmp_path):
        worker, _ = self._spawn(tmp_path, "import time; time.sleep(600)",
                                stall_timeout_s=0.05)
        time.sleep(0.1)
        failure = worker.liveness_failure()
        assert failure is not None and failure.kind == pool.STALLED
        worker.reap()

    def test_fresh_heartbeat_keeps_worker_alive(self, tmp_path):
        worker, paths = self._spawn(tmp_path, "import time; time.sleep(600)",
                                    stall_timeout_s=0.5)
        with open(paths["hb"], "w") as handle:
            json.dump({"cycle": 1}, handle)
        assert worker.liveness_failure() is None
        worker.reap()

    def test_log_captured(self, tmp_path):
        worker, paths = self._spawn(tmp_path, "print('hello from worker')")
        worker.proc.wait(timeout=10)
        assert "hello from worker" in pool.log_tail(paths["log"])


class TestWorkerEnv:
    def test_repro_importable_in_child(self):
        proc = subprocess.run(
            [sys.executable, "-c", "import repro"],
            env=pool.worker_env(), capture_output=True)
        assert proc.returncode == 0, proc.stderr

    def test_existing_pythonpath_preserved(self, monkeypatch):
        monkeypatch.setenv("PYTHONPATH", "/elsewhere")
        env = pool.worker_env()
        parts = env["PYTHONPATH"].split(os.pathsep)
        assert "/elsewhere" in parts and len(parts) == 2


class TestAdaptiveWait:
    def test_active_stays_at_base(self):
        wait = AdaptiveWait(base=0.01, cap=1.0)
        assert [wait.interval(True) for _ in range(3)] == [0.01] * 3

    def test_idle_backs_off_to_cap(self):
        wait = AdaptiveWait(base=0.01, cap=0.05)
        intervals = [wait.interval(False) for _ in range(8)]
        assert intervals[0] == 0.01
        assert intervals == sorted(intervals)   # monotone growth
        assert intervals[-1] == 0.05            # capped

    def test_activity_resets_backoff(self):
        wait = AdaptiveWait(base=0.01, cap=1.0)
        for _ in range(5):
            wait.interval(False)
        assert wait.interval(True) == 0.01
        assert wait.interval(False) == 0.01     # streak restarted

    def test_cap_never_below_base(self):
        wait = AdaptiveWait(base=0.2, cap=0.01)
        assert wait.interval(False) <= wait.cap and wait.cap == 0.2
