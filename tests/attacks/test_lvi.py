"""LVI through the stale-LFB window (§6 discussion)."""

import pytest

from repro.attacks import lvi
from repro.attacks.common import run_attack_program
from repro.config import DefenseKind


class TestLVI:
    def test_injection_leaks_on_baseline(self):
        outcome = run_attack_program(lvi.build(), DefenseKind.NONE)
        assert outcome.leaked
        assert outcome.recovered == [lvi.SECRET_VALUE]

    @pytest.mark.parametrize("defense", [
        DefenseKind.STT, DefenseKind.GHOSTMINION, DefenseKind.SPECCFI])
    def test_speculation_window_defenses_miss_it(self, defense):
        """No branch misprediction anywhere: nothing for them to delay."""
        assert run_attack_program(lvi.build(), defense).leaked

    def test_specasan_blocks_the_injection(self):
        """§6: buffer tag validation stops the injected value."""
        outcome = run_attack_program(lvi.build(), DefenseKind.SPECASAN)
        assert not outcome.leaked
        assert not outcome.faulted

    def test_victim_architectural_result_is_always_correct(self):
        """The injection is transient: the committed value is the real 0."""
        from repro.config import CORTEX_A76
        from repro.system import build_system
        attack = lvi.build()
        system = build_system(CORTEX_A76)
        core = system.prepare(attack.builder_program)
        core.secret_ranges = [(attack.secret_address,
                               attack.secret_address + 16)]
        core.run(max_cycles=attack.max_cycles)
        # X5 holds the victim variable's low byte: architecturally 0.
        assert core.arf[5] & 0xFF == 0
