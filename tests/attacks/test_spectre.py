"""Spectre-family PoCs: leak on the baseline, blocked per Table 1."""

import pytest

from repro.attacks import spectre_bhb, spectre_v1, spectre_v2, spectre_v4, \
    spectre_v5
from repro.attacks.common import run_attack_program
from repro.config import DefenseKind


def outcome(builder, defense):
    return run_attack_program(builder(), defense)


class TestSpectreV1:
    def test_baseline_leaks_exact_secret(self):
        result = outcome(spectre_v1.build, DefenseKind.NONE)
        assert result.leaked
        assert result.recovered == [spectre_v1.SECRET_VALUE]

    @pytest.mark.parametrize("defense", [
        DefenseKind.FENCE, DefenseKind.STT, DefenseKind.GHOSTMINION,
        DefenseKind.SPECASAN, DefenseKind.SPECASAN_CFI])
    def test_blocked(self, defense):
        assert not outcome(spectre_v1.build, defense).leaked

    def test_speccfi_does_not_help(self):
        """v1 is not a control-flow violation: SpecCFI alone is ○."""
        assert outcome(spectre_v1.build, DefenseKind.SPECCFI).leaked

    def test_no_fault_on_wrong_path_block(self):
        """SpecASan squashes the unsafe speculative access silently."""
        result = outcome(spectre_v1.build, DefenseKind.SPECASAN)
        assert not result.faulted


class TestSpectreV2:
    def test_baseline_leaks_both_variants(self):
        for variant in spectre_v2.VARIANTS:
            result = run_attack_program(spectre_v2.build(variant),
                                        DefenseKind.NONE)
            assert result.leaked, variant

    def test_specasan_partial(self):
        """Blocked when the gadget's key mismatches; leaks in-domain (§4.3)."""
        mismatched = run_attack_program(
            spectre_v2.build("mismatched-tag"), DefenseKind.SPECASAN)
        matched = run_attack_program(
            spectre_v2.build("matched-tag"), DefenseKind.SPECASAN)
        assert not mismatched.leaked
        assert matched.leaked

    def test_speccfi_blocks_both(self):
        for variant in spectre_v2.VARIANTS:
            result = run_attack_program(spectre_v2.build(variant),
                                        DefenseKind.SPECCFI)
            assert not result.leaked, variant

    def test_combination_blocks_matched_gadget(self):
        result = run_attack_program(spectre_v2.build("matched-tag"),
                                    DefenseKind.SPECASAN_CFI)
        assert not result.leaked


class TestSpectreV4:
    def test_baseline_leaks_stale_value(self):
        result = outcome(spectre_v4.build, DefenseKind.NONE)
        assert result.leaked

    def test_specasan_holds_tagged_bypass(self):
        assert not outcome(spectre_v4.build, DefenseKind.SPECASAN).leaked

    def test_stt_and_ghostminion_block(self):
        assert not outcome(spectre_v4.build, DefenseKind.STT).leaked
        assert not outcome(spectre_v4.build, DefenseKind.GHOSTMINION).leaked

    def test_speccfi_irrelevant(self):
        assert outcome(spectre_v4.build, DefenseKind.SPECCFI).leaked


class TestSpectreV5:
    def test_baseline_leaks_via_rsb_wrap(self):
        result = run_attack_program(spectre_v5.build("mismatched-tag"),
                                    DefenseKind.NONE)
        assert result.leaked

    def test_shadow_stack_blocks_both_variants(self):
        for variant in spectre_v5.VARIANTS:
            result = run_attack_program(spectre_v5.build(variant),
                                        DefenseKind.SPECCFI)
            assert not result.leaked, variant

    def test_specasan_partial(self):
        mismatched = run_attack_program(
            spectre_v5.build("mismatched-tag"), DefenseKind.SPECASAN)
        matched = run_attack_program(
            spectre_v5.build("matched-tag"), DefenseKind.SPECASAN)
        assert not mismatched.leaked
        assert matched.leaked


class TestSpectreBHB:
    def test_history_collision_injection_leaks(self):
        result = run_attack_program(spectre_bhb.build("mismatched-tag"),
                                    DefenseKind.NONE)
        assert result.leaked

    def test_speccfi_blocks(self):
        result = run_attack_program(spectre_bhb.build("matched-tag"),
                                    DefenseKind.SPECCFI)
        assert not result.leaked

    def test_specasan_blocks_mismatched_only(self):
        mismatched = run_attack_program(
            spectre_bhb.build("mismatched-tag"), DefenseKind.SPECASAN)
        matched = run_attack_program(
            spectre_bhb.build("matched-tag"), DefenseKind.SPECASAN)
        assert not mismatched.leaked
        assert matched.leaked
