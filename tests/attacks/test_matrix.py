"""Table-1 classification machinery (cell logic; the full matrix is a bench)."""

from repro.attacks.matrix import (
    classify,
    evaluate_cell,
    EXPECTED,
    Mitigation,
    TABLE1_DEFENSES,
)
from repro.attacks import TABLE1_ROWS
from repro.attacks.common import AttackOutcome
from repro.config import DefenseKind


def _outcome(leaked):
    return AttackOutcome(attack="x", variant="v", defense=DefenseKind.NONE,
                         leaked=leaked, recovered=[], contention_events=0,
                         cycles=0, faulted=False, restricted=0)


class TestClassify:
    def test_all_blocked_is_full(self):
        assert classify([_outcome(False), _outcome(False)]) is Mitigation.FULL

    def test_all_leaked_is_none(self):
        assert classify([_outcome(True)]) is Mitigation.NONE

    def test_mixed_is_partial(self):
        assert classify([_outcome(True), _outcome(False)]) is Mitigation.PARTIAL


class TestExpectedMatrix:
    def test_expected_covers_every_row_and_column(self):
        assert set(EXPECTED) == set(TABLE1_ROWS)
        for row in EXPECTED.values():
            assert len(row) == len(TABLE1_DEFENSES)

    def test_specasan_cfi_column_is_all_full(self):
        """§4.3: the combination addresses the whole spectrum."""
        column = TABLE1_DEFENSES.index(DefenseKind.SPECASAN_CFI)
        assert all(row[column] is Mitigation.FULL for row in EXPECTED.values())

    def test_specasan_is_the_only_defense_covering_mds(self):
        for attack in ("fallout", "ridl", "zombieload"):
            row = EXPECTED[attack]
            for defense, cell in zip(TABLE1_DEFENSES, row):
                expected_full = defense.uses_specasan
                assert (cell is Mitigation.FULL) == expected_full


class TestLiveCells:
    def test_spectre_v1_specasan_cell_matches_paper(self):
        cell = evaluate_cell("spectre-v1", DefenseKind.SPECASAN)
        assert cell.mitigation is Mitigation.FULL
        assert cell.matches_paper

    def test_spectre_v2_specasan_cell_is_partial(self):
        cell = evaluate_cell("spectre-v2", DefenseKind.SPECASAN)
        assert cell.mitigation is Mitigation.PARTIAL
        assert cell.matches_paper

    def test_ridl_ghostminion_cell_is_none(self):
        cell = evaluate_cell("ridl", DefenseKind.GHOSTMINION)
        assert cell.mitigation is Mitigation.NONE
        assert cell.matches_paper
