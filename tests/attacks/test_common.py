"""Shared attack scaffolding and PoC structural properties."""

import pytest

from repro.attacks import build_variants, REGISTRY, TABLE1_ROWS
from repro.attacks.common import (
    AttackProgram,
    emit_transmit,
    make_probe_array,
    plant_secret,
    PROBE_BASE,
    PROBE_STRIDE,
    run_attack_program,
    SECRET_BASE,
    slow_cell_segment,
    SLOW_CELLS,
    TAG_SECRET,
)
from repro.config import DefenseKind
from repro.isa import ProgramBuilder


class TestRegistry:
    def test_every_table1_row_has_builders(self):
        for attack in TABLE1_ROWS:
            assert attack in REGISTRY
            assert REGISTRY[attack]

    def test_build_variants_returns_fresh_programs(self):
        first = build_variants("spectre-v1")
        second = build_variants("spectre-v1")
        assert first[0].builder_program is not second[0].builder_program

    def test_variant_names_are_distinct(self):
        for attack, variants in REGISTRY.items():
            names = [name for name, _ in variants]
            assert len(names) == len(set(names)), attack

    def test_partial_attacks_have_multiple_variants(self):
        """Partial Table-1 cells need >1 variant to be observable."""
        for attack in ("spectre-v2", "spectre-v5", "spectre-bhb",
                       "smotherspectre", "interference", "rewind"):
            assert len(REGISTRY[attack]) >= 2, attack


class TestHelpers:
    def test_plant_secret_places_value_and_tag(self):
        b = ProgramBuilder()
        address = plant_secret(b, 9)
        b.halt()
        program = b.build()
        segment = program.segment("secret")
        assert segment.address == address == SECRET_BASE
        assert segment.data[0] == 9
        assert segment.tag == TAG_SECRET

    def test_make_probe_array_size(self):
        b = ProgramBuilder()
        base = make_probe_array(b, candidates=16)
        b.halt()
        segment = b.build().segment("probe")
        assert base == PROBE_BASE
        assert segment.size == 16 * PROBE_STRIDE

    def test_emit_transmit_shape(self):
        b = ProgramBuilder()
        b.li("X5", 3)
        b.li("X3", PROBE_BASE)
        emit_transmit(b, "X5", "X3")
        b.halt()
        renders = [i.render() for i in b.build().instructions]
        assert any("LSL" in r for r in renders)
        assert any("LDRB" in r for r in renders)

    def test_slow_cells_hold_values(self):
        b = ProgramBuilder()
        slow_cell_segment(b, count=3, values=[7, 8])
        b.halt()
        segment = b.build().segment("slow_cells")
        assert segment.data[0] == 7
        assert segment.data[4096] == 8
        assert segment.data[8192] == 0  # missing values default to zero


class TestRunner:
    def test_outcome_fields(self):
        from repro.attacks import spectre_v1
        outcome = run_attack_program(spectre_v1.build(), DefenseKind.NONE)
        assert outcome.attack == "spectre-v1"
        assert outcome.defense is DefenseKind.NONE
        assert outcome.cycles > 0
        assert "LEAKED" in str(outcome)

    def test_benign_values_are_excluded_from_recovery(self):
        from repro.attacks import spectre_v1
        outcome = run_attack_program(spectre_v1.build(), DefenseKind.NONE)
        assert spectre_v1.TRAIN_VALUE not in outcome.recovered
