"""MDS and contention-channel PoCs."""

import pytest

from repro.attacks import mds, scc
from repro.attacks.common import run_attack_program
from repro.config import DefenseKind

MDS_BUILDERS = [mds.build_fallout, mds.build_ridl, mds.build_zombieload]


class TestMDS:
    @pytest.mark.parametrize("builder", MDS_BUILDERS)
    def test_baseline_leaks(self, builder):
        result = run_attack_program(builder(), DefenseKind.NONE)
        assert result.leaked
        assert mds.SECRET_VALUE in result.recovered

    @pytest.mark.parametrize("builder", MDS_BUILDERS)
    @pytest.mark.parametrize("defense", [
        DefenseKind.STT, DefenseKind.GHOSTMINION, DefenseKind.SPECCFI])
    def test_speculation_defenses_miss_mds(self, builder, defense):
        """The sampling load is bound to commit — STT/GhostMinion/SpecCFI
        never engage (Table 1's MDS rows)."""
        assert run_attack_program(builder(), defense).leaked

    @pytest.mark.parametrize("builder", MDS_BUILDERS)
    def test_specasan_blocks(self, builder):
        result = run_attack_program(builder(), DefenseKind.SPECASAN)
        assert not result.leaked
        assert not result.faulted

    def test_fallout_uses_partial_forwarding(self):
        """The leak must come through the loosenet window, not the cache."""
        from repro.config import CORTEX_A76
        from repro.system import build_system
        attack = mds.build_fallout()
        system = build_system(CORTEX_A76)
        core = system.prepare(attack.builder_program)
        core.secret_ranges = [(attack.secret_address,
                               attack.secret_address + 16)]
        core.run(max_cycles=attack.max_cycles)
        assert core.stats.store_forwards >= 1
        assert core.stats.ordering_violations >= 1  # the machine clear

    def test_ridl_samples_stale_lfb_bytes(self):
        from repro.config import CORTEX_A76
        from repro.system import build_system
        attack = mds.build_ridl()
        system = build_system(CORTEX_A76)
        core = system.prepare(attack.builder_program)
        core.secret_ranges = [(attack.secret_address,
                               attack.secret_address + 64)]
        core.run(max_cycles=attack.max_cycles)
        assert core.stats.stale_forwards >= 1


class TestSCC:
    @pytest.mark.parametrize("attack", scc.ATTACKS)
    def test_baseline_leaks_every_variant(self, attack):
        for variant in scc.VARIANTS:
            result = run_attack_program(scc.build(attack, variant),
                                        DefenseKind.NONE)
            assert result.leaked, (attack, variant)

    def test_contention_channel_is_not_cache_based(self):
        result = run_attack_program(
            scc.build("smotherspectre", "alu-contention"), DefenseKind.NONE)
        assert result.contention_events > 0

    def test_stt_partial(self):
        """STT-Default stops load transmitters, not arithmetic contention."""
        alu = run_attack_program(
            scc.build("rewind", "alu-contention"), DefenseKind.STT)
        loadv = run_attack_program(
            scc.build("rewind", "load-contention"), DefenseKind.STT)
        assert alu.leaked
        assert not loadv.leaked

    def test_specasan_blocks_access_but_not_matched_gadget(self):
        blocked = run_attack_program(
            scc.build("interference", "alu-contention"), DefenseKind.SPECASAN)
        matched = run_attack_program(
            scc.build("interference", "matched-tag"), DefenseKind.SPECASAN)
        assert not blocked.leaked
        assert matched.leaked

    def test_combination_is_comprehensive(self):
        """§4.3: SpecASan+CFI covers all SCC variants."""
        for variant in scc.VARIANTS:
            result = run_attack_program(
                scc.build("smotherspectre", variant),
                DefenseKind.SPECASAN_CFI)
            assert not result.leaked, variant
