"""Property: every generated workload yields a well-formed CFG.

The generator emits loops, helper functions, indirect calls through a
function-pointer table, and MTE churn; this sweep checks the static CFG of
every profile family over several seeds: no block unreachable (counting
address-taken helpers as roots) and no fall-through off the text segment.
"""

import pytest

from repro.analysis.cfg import build_cfg
from repro.workloads.generator import generate
from repro.workloads.parsec import PARSEC_SPECS
from repro.workloads.spec import SPEC_PROFILES

SEEDS = (0, 1, 2)


@pytest.mark.parametrize("profile", SPEC_PROFILES, ids=lambda p: p.name)
def test_spec_workload_cfg_well_formed(profile):
    for seed in SEEDS:
        workload = generate(profile, seed=seed, target_instructions=1500)
        problems = build_cfg(workload.program).check_well_formed()
        assert problems == [], (
            f"{profile.name}/seed{seed}: "
            + "; ".join(str(p) for p in problems))


@pytest.mark.parametrize("spec", PARSEC_SPECS,
                         ids=lambda s: s.profile.name)
def test_parsec_workload_cfg_well_formed(spec):
    workload = generate(spec.profile, seed=0, target_instructions=1500)
    assert build_cfg(workload.program).check_well_formed() == []


def test_mte_instrumented_workload_cfg_well_formed():
    workload = generate(SPEC_PROFILES[0], seed=0, target_instructions=1500,
                        mte_instrumented=True)
    assert build_cfg(workload.program).check_well_formed() == []


def test_cfg_covers_every_instruction():
    workload = generate(SPEC_PROFILES[0], seed=0, target_instructions=1500)
    cfg = build_cfg(workload.program)
    covered = {i.address for b in cfg.blocks for i in b.instructions}
    assert covered == {i.address for i in workload.program.instructions}
