"""The SPEC and PARSEC suite definitions."""

import pytest

from repro.workloads import (
    build_parsec,
    build_spec,
    PARSEC_SPECS,
    parsec_names,
    SPEC_PROFILES,
    spec_names,
)
from repro.workloads.parsec import SHARED_BASE, THREAD_HEAP_STRIDE
from repro.workloads.generator import HEAP_BASE


class TestSpecSuite:
    def test_fifteen_benchmarks(self):
        """§5.1: the paper runs 15 of 23 SPEC CPU2017 benchmarks."""
        assert len(SPEC_PROFILES) == 15
        assert spec_names()[0] == "500.perlbench_r"
        assert spec_names()[-1] == "557.xz_r"

    def test_profiles_are_distinct(self):
        keys = {(p.working_set, p.branch_entropy, p.pointer_chase,
                 p.alu_weight) for p in SPEC_PROFILES}
        assert len(keys) >= 13  # essentially all distinct

    def test_mcf_is_the_memory_bound_one(self):
        from repro.workloads import SPEC_BY_NAME
        mcf = SPEC_BY_NAME["505.mcf_r"]
        assert mcf.working_set == max(p.working_set for p in SPEC_PROFILES)
        assert mcf.pointer_chase == max(p.pointer_chase for p in SPEC_PROFILES)

    def test_build_spec_produces_program(self):
        workload = build_spec("541.leela_r", target_instructions=1200)
        assert workload.name == "541.leela_r"
        assert len(workload.program.instructions) > 20


class TestParsecSuite:
    def test_seven_benchmarks(self):
        """§5.1: 7 of 13 PARSEC benchmarks, 4 threads."""
        assert len(PARSEC_SPECS) == 7
        assert "blackscholes" in parsec_names()
        assert "streamcluster" in parsec_names()

    def test_threads_get_disjoint_heaps(self):
        threads = build_parsec("swaptions", num_threads=4,
                               target_instructions=800)
        assert len(threads) == 4
        spans = []
        for index, workload in enumerate(threads):
            base = HEAP_BASE + index * THREAD_HEAP_STRIDE
            for segment in workload.program.data_segments:
                if segment.name in ("stream", "chase", "hot_chase"):
                    assert base <= segment.address < base + THREAD_HEAP_STRIDE
                    spans.append((segment.address, segment.end))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start  # no overlap anywhere

    def test_threads_share_the_shared_region(self):
        threads = build_parsec("streamcluster", num_threads=2,
                               target_instructions=800)
        for workload in threads:
            shared = workload.program.segment("shared")
            assert shared.address == SHARED_BASE

    def test_heaps_and_shared_region_fit_in_memory(self):
        from repro.config import MemoryConfig
        limit = MemoryConfig().size_bytes
        for name in parsec_names():
            for workload in build_parsec(name, num_threads=4,
                                         target_instructions=400):
                for segment in workload.program.data_segments:
                    assert segment.end <= limit, (name, segment.name)
