"""Workload generation: determinism, structure, and runnability."""

import pytest

from repro import build_system, CORTEX_A76, DefenseKind
from repro.workloads import WorkloadProfile
from repro.workloads.generator import generate


@pytest.fixture(scope="module")
def profile():
    return WorkloadProfile("testload", working_set=32 * 1024,
                           branch_entropy=0.1, pointer_chase=0.2,
                           call_fraction=0.08, indirect_fraction=0.5)


class TestDeterminism:
    def test_same_seed_same_program(self, profile):
        first = generate(profile, seed=3, target_instructions=1500)
        second = generate(profile, seed=3, target_instructions=1500)
        assert ([i.render() for i in first.program.instructions]
                == [i.render() for i in second.program.instructions])
        assert first.iterations == second.iterations

    def test_different_seed_different_body(self, profile):
        first = generate(profile, seed=1, target_instructions=1500)
        second = generate(profile, seed=2, target_instructions=1500)
        assert ([i.render() for i in first.program.instructions]
                != [i.render() for i in second.program.instructions])


class TestStructure:
    def test_iterations_scale_with_target(self, profile):
        small = generate(profile, target_instructions=1000)
        big = generate(profile, target_instructions=4000)
        assert big.iterations > small.iterations

    def test_indirect_targets_have_landing_pads(self, profile):
        workload = generate(profile, target_instructions=1500)
        program = workload.program
        import struct
        table = program.segment("functable")
        for offset in range(0, table.size, 8):
            target = struct.unpack_from("<Q", table.data, offset)[0]
            assert program.fetch(target).op.value == "BTI"

    def test_chase_chain_is_a_cycle_of_tagged_pointers(self, profile):
        import struct
        from repro.mte.tags import key_of, strip_tag
        workload = generate(profile, target_instructions=1500)
        chase = workload.program.segment("chase")
        start = chase.address
        seen = set()
        cursor = start
        for _ in range(chase.size // 8):
            offset = cursor - start
            pointer = struct.unpack_from("<Q", chase.data, offset)[0]
            assert key_of(pointer) == chase.tag
            cursor = strip_tag(pointer)
            assert chase.address <= cursor < chase.address + chase.size
            assert cursor not in seen  # a single cycle, no early repeats
            seen.add(cursor)

    def test_instrumented_build_matches_plain_work(self, profile):
        plain = generate(profile, target_instructions=1500)
        tagged = generate(profile, target_instructions=1500,
                          mte_instrumented=True)
        assert tagged.iterations == plain.iterations
        ops_plain = [i.op.value for i in plain.program.instructions]
        ops_tagged = [i.op.value for i in tagged.program.instructions]
        assert "IRG" in ops_tagged and "STG" in ops_tagged
        assert "IRG" not in ops_plain
        # The plain body is a subsequence of the instrumented one.
        iterator = iter(ops_tagged)
        assert all(op in iterator for op in ops_plain)


class TestRunnability:
    @pytest.mark.parametrize("defense", [
        DefenseKind.NONE, DefenseKind.FENCE, DefenseKind.SPECASAN])
    def test_runs_to_completion_without_faults(self, profile, defense):
        workload = generate(profile, target_instructions=1200,
                            mte_instrumented=defense.uses_specasan)
        result = build_system(CORTEX_A76.with_defense(defense)).run(
            workload.program, max_cycles=5_000_000)
        assert result.halted
        assert result.fault is None
        assert result.instructions > 500

    def test_shared_region_traffic(self):
        shared_profile = WorkloadProfile("sharer", working_set=32 * 1024)
        workload = generate(shared_profile, target_instructions=1200,
                            shared_base=0xA00000, shared_size=16 * 1024,
                            shared_fraction=0.5, shared_store_fraction=0.3)
        renders = [i.note for i in workload.program.instructions]
        assert any("shared-region" in note for note in renders)
        result = build_system(CORTEX_A76).run(workload.program,
                                              max_cycles=5_000_000)
        assert result.halted and result.fault is None
