"""The MTE-instrumented workload builds (§5.2's toolchain analogue)."""

from repro import build_system, CORTEX_A76, DefenseKind
from repro.workloads import SPEC_BY_NAME
from repro.workloads.generator import generate


class TestInstrumentedBuilds:
    def _pair(self, name="541.leela_r", target=1500):
        profile = SPEC_BY_NAME[name]
        plain = generate(profile, target_instructions=target)
        tagged = generate(profile, target_instructions=target,
                          mte_instrumented=True)
        return plain, tagged

    def test_churn_lives_in_the_outer_loop(self):
        _, tagged = self._pair()
        renders = [(i.render(), i.note) for i in tagged.program.instructions]
        irg_positions = [k for k, (r, _) in enumerate(renders)
                         if r.startswith("IRG")]
        assert len(irg_positions) == 1  # once per outer trip, not per item

    def test_instrumented_runs_clean_under_specasan(self):
        _, tagged = self._pair()
        result = build_system(
            CORTEX_A76.with_defense(DefenseKind.SPECASAN)).run(
                tagged.program, max_cycles=5_000_000, warm_runs=1)
        assert result.halted and result.fault is None
        # The run exercised real tag-management traffic.
        assert any(i.render().startswith("STG")
                   for i in tagged.program.instructions)

    def test_instrumentation_cost_is_small(self):
        plain, tagged = self._pair()
        base = build_system(CORTEX_A76).run(plain.program, warm_runs=1)
        instr = build_system(CORTEX_A76).run(tagged.program, warm_runs=1)
        # The MTE build carries a few percent of extra instructions at most
        # and stays within a tight cycle band of the plain build.
        assert instr.instructions > base.instructions
        assert instr.cycles < base.cycles * 1.15

    def test_tag_state_ends_consistent(self):
        """After all the IRG/STG churn, the scratch granule's lock matches
        the last STG's key — i.e. the tag write-path really works."""
        _, tagged = self._pair()
        system = build_system(CORTEX_A76.with_defense(DefenseKind.SPECASAN))
        core = system.prepare(tagged.program)
        core.run(max_cycles=5_000_000)
        # Every tagged segment's lock must still be a valid 4-bit tag after
        # the run's STG traffic rewrote the scratch granule.
        locks = set()
        for segment in tagged.program.data_segments:
            if segment.tag is not None:
                locks.add(system.hierarchy.memory.lock_of(segment.address))
        assert all(0 <= lock < 16 for lock in locks)
