"""Workload profile validation."""

import pytest

from repro.errors import ConfigError
from repro.workloads import WorkloadProfile


class TestValidation:
    def test_defaults_are_valid(self):
        profile = WorkloadProfile("x")
        assert 0.99 < sum(profile.mix.values()) < 1.01

    def test_mix_is_normalized(self):
        profile = WorkloadProfile("x", alu_weight=10, load_weight=10,
                                  store_weight=0, mul_weight=0,
                                  div_weight=0, branch_weight=0)
        assert profile.mix["alu"] == pytest.approx(0.5)
        assert profile.mix["load"] == pytest.approx(0.5)

    @pytest.mark.parametrize("kwargs", [
        dict(alu_weight=-1),
        dict(branch_entropy=1.5),
        dict(pointer_chase=-0.1),
        dict(working_set=100),
        dict(alu_weight=0, mul_weight=0, div_weight=0, load_weight=0,
             store_weight=0, branch_weight=0),
    ])
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            WorkloadProfile("bad", **kwargs)

    def test_frozen(self):
        profile = WorkloadProfile("x")
        with pytest.raises(Exception):
            profile.alu_weight = 9
