"""The experiment harness: one entry point per table/figure of the paper.

Every function regenerates the corresponding result from scratch on the
simulator and returns structured rows; the ``render_*`` helpers format them
the way the paper presents them.  The benchmark suite under ``benchmarks/``
calls straight into this module.

Experiment ↔ paper mapping:

- :func:`figure1`  — delay-stage comparison of defense classes (Fig. 1);
- :func:`figure5_trace` — SpecASan's step-by-step Spectre-v1 block (Fig. 5);
- :func:`table1`   — the security matrix (Table 1);
- :func:`figure6`  — SPEC CPU2017 normalized execution time (Fig. 6);
- :func:`figure7`  — PARSEC normalized execution time, 4 cores (Fig. 7);
- :func:`figure8`  — % restricted speculative instructions (Fig. 8);
- :func:`figure9`  — SpecCFI / SpecASan / combined overheads (Fig. 9).

Scale note: ``target_instructions`` trades fidelity for wall-clock time; the
shipped defaults keep a full figure under a few minutes of simulation while
preserving the paper's qualitative shape (who wins, by roughly what factor).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.attacks import run_attack_program, spectre_v1
from repro.attacks.matrix import evaluate_matrix, MatrixCell, render_matrix
from repro.config import CORTEX_A76, DefenseKind, SystemConfig
from repro.errors import ReproError
from repro.eval.metrics import geomean, normalized, percent
from repro.multicore import MulticoreSystem
from repro.system import build_system
from repro.workloads import PARSEC_BY_NAME, parsec_names, SPEC_BY_NAME, spec_names
from repro.workloads.generator import generate
from repro.workloads.parsec import SHARED_BASE, SHARED_SIZE, THREAD_HEAP_STRIDE
from repro.workloads.generator import HEAP_BASE

#: The defense bars of Figure 6/7 (plus the implicit unsafe baseline).
FIG6_DEFENSES = [DefenseKind.FENCE, DefenseKind.STT,
                 DefenseKind.GHOSTMINION, DefenseKind.SPECASAN]
#: Figure 8 compares restriction fractions for these mechanisms.
FIG8_DEFENSES = [DefenseKind.FENCE, DefenseKind.STT, DefenseKind.SPECASAN]
#: Figure 9's three bars.
FIG9_DEFENSES = [DefenseKind.SPECCFI, DefenseKind.SPECASAN,
                 DefenseKind.SPECASAN_CFI]


@dataclass
class ExperimentRow:
    """One (benchmark, defense) measurement."""

    benchmark: str
    defense: DefenseKind
    cycles: int
    baseline_cycles: int
    restricted_fraction: float
    ipc: float

    @property
    def normalized_time(self) -> float:
        return normalized(self.cycles, self.baseline_cycles)

    @property
    def restricted_pct(self) -> float:
        return percent(self.restricted_fraction)


def _spec_programs(name: str, target_instructions: int, seed: int = 0):
    """(plain, mte-instrumented) builds of one SPEC-like workload."""
    profile = SPEC_BY_NAME[name]
    plain = generate(profile, seed=seed,
                     target_instructions=target_instructions).program
    tagged = generate(profile, seed=seed,
                      target_instructions=target_instructions,
                      mte_instrumented=True).program
    return plain, tagged


def run_spec(benchmarks: Optional[Sequence[str]] = None,
             defenses: Optional[Sequence[DefenseKind]] = None,
             target_instructions: int = 4000,
             warm_runs: int = 1,
             config: Optional[SystemConfig] = None) -> List[ExperimentRow]:
    """Run SPEC-like workloads under the baseline plus ``defenses``.

    MTE-enabled defenses run the MTE-instrumented build of each benchmark
    (the toolchain analogue of §5.2); everything else runs the plain build.
    Normalization is always against the plain build on the unsafe baseline.
    """
    benchmarks = list(benchmarks or spec_names())
    defenses = list(defenses or FIG6_DEFENSES)
    config = config or CORTEX_A76
    rows: List[ExperimentRow] = []
    for name in benchmarks:
        plain, tagged = _spec_programs(name, target_instructions)
        baseline = build_system(config.with_defense(DefenseKind.NONE)).run(
            plain, warm_runs=warm_runs)
        rows.append(ExperimentRow(name, DefenseKind.NONE, baseline.cycles,
                                  baseline.cycles,
                                  baseline.stats.restricted_fraction,
                                  baseline.ipc))
        for defense in defenses:
            program = tagged if defense.uses_specasan else plain
            result = build_system(config.with_defense(defense)).run(
                program, warm_runs=warm_runs)
            if result.fault is not None:
                raise RuntimeError(
                    f"{name} faulted under {defense.value}: {result.fault}")
            rows.append(ExperimentRow(
                name, defense, result.cycles, baseline.cycles,
                result.stats.restricted_fraction, result.ipc))
    return rows


def run_parsec(benchmarks: Optional[Sequence[str]] = None,
               defenses: Optional[Sequence[DefenseKind]] = None,
               num_threads: int = 4,
               target_instructions: int = 1500,
               warm_runs: int = 1,
               config: Optional[SystemConfig] = None) -> List[ExperimentRow]:
    """Run PARSEC-like workloads on the multicore system (Figure 7)."""
    benchmarks = list(benchmarks or parsec_names())
    defenses = list(defenses or FIG6_DEFENSES)
    config = (config or CORTEX_A76).with_cores(num_threads)
    rows: List[ExperimentRow] = []
    for name in benchmarks:
        spec = PARSEC_BY_NAME[name]
        plain = [generate(spec.profile, seed=t * 101,
                          target_instructions=target_instructions,
                          heap_base=HEAP_BASE + t * THREAD_HEAP_STRIDE,
                          shared_base=SHARED_BASE, shared_size=SHARED_SIZE,
                          shared_fraction=spec.shared_fraction,
                          shared_store_fraction=spec.shared_store_fraction
                          ).program for t in range(num_threads)]
        tagged = [generate(spec.profile, seed=t * 101,
                           target_instructions=target_instructions,
                           heap_base=HEAP_BASE + t * THREAD_HEAP_STRIDE,
                           shared_base=SHARED_BASE, shared_size=SHARED_SIZE,
                           shared_fraction=spec.shared_fraction,
                           shared_store_fraction=spec.shared_store_fraction,
                           mte_instrumented=True
                           ).program for t in range(num_threads)]
        baseline = MulticoreSystem(config.with_defense(DefenseKind.NONE)).run(
            plain, warm_runs=warm_runs)
        committed = baseline.instructions
        rows.append(ExperimentRow(name, DefenseKind.NONE, baseline.cycles,
                                  baseline.cycles,
                                  baseline.restricted_fraction,
                                  baseline.ipc))
        for defense in defenses:
            programs = tagged if defense.uses_specasan else plain
            result = MulticoreSystem(config.with_defense(defense)).run(
                programs, warm_runs=warm_runs)
            if any(result.faults):
                raise RuntimeError(f"{name} faulted under {defense.value}")
            rows.append(ExperimentRow(
                name, defense, result.cycles, baseline.cycles,
                result.restricted_fraction, result.ipc))
    return rows


# ----------------------------------------------------------------------
# per-figure entry points
# ----------------------------------------------------------------------

def figure6(**kwargs) -> List[ExperimentRow]:
    """SPEC CPU2017 normalized execution time (Figure 6)."""
    return run_spec(defenses=FIG6_DEFENSES, **kwargs)


def figure7(**kwargs) -> List[ExperimentRow]:
    """PARSEC normalized execution time on 4 cores (Figure 7)."""
    return run_parsec(defenses=FIG6_DEFENSES, **kwargs)


def figure8(spec_kwargs: Optional[dict] = None,
            parsec_kwargs: Optional[dict] = None) -> Dict[str, List[ExperimentRow]]:
    """% restricted speculative instructions, SPEC and PARSEC (Figure 8)."""
    return {
        "spec": run_spec(defenses=FIG8_DEFENSES, **(spec_kwargs or {})),
        "parsec": run_parsec(defenses=FIG8_DEFENSES, **(parsec_kwargs or {})),
    }


def figure9(**kwargs) -> List[ExperimentRow]:
    """SpecCFI vs SpecASan vs SpecASan+CFI on SPEC (Figure 9)."""
    return run_spec(defenses=FIG9_DEFENSES, **kwargs)


def table1(attacks: Optional[List[str]] = None) -> Dict[str, Dict[DefenseKind, MatrixCell]]:
    """The security matrix (Table 1)."""
    return evaluate_matrix(attacks=attacks)


def table1_differential(attacks: Optional[List[str]] = None):
    """Table 1 twice — statically (spec-lint) and dynamically — plus the diff.

    Returns ``(static, dynamic, mismatches)``; an empty mismatch list means
    the analyzer reproduces every simulated cell.  See
    :mod:`repro.analysis.differential` and ``python -m repro.analysis
    --differential`` for the lint-style report.
    """
    from repro.analysis.differential import compare_matrices, static_matrix

    static = static_matrix(attacks)
    dynamic = evaluate_matrix(attacks=attacks)
    return static, dynamic, compare_matrices(static, dynamic)


@dataclass
class Figure1Row:
    """One defense class's behaviour on the Spectre-v1 gadget (Figure 1)."""

    defense: DefenseKind
    delay_class: str
    leaked: bool
    cycles: int
    access_happened: bool
    transmit_happened: bool


#: Which Figure-1 delay class each mechanism belongs to.
DELAY_CLASSES = {
    DefenseKind.NONE: "no defense",
    DefenseKind.FENCE: "delay ACCESS",
    DefenseKind.STT: "delay USE",
    DefenseKind.GHOSTMINION: "delay TRANSMIT",
    DefenseKind.SPECASAN: "selective delay (SpecASan)",
}


def figure1() -> List[Figure1Row]:
    """Reproduce Figure 1: where each defense class stops the v1 gadget.

    ``access_happened`` — the speculative secret read returned data;
    ``transmit_happened`` — a secret-dependent address reached the memory
    subsystem.  The unsafe baseline exhibits both; delay-ACCESS and SpecASan
    stop the first; delay-USE/TRANSMIT allow the access but block the leak.
    """
    rows: List[Figure1Row] = []
    for defense, delay_class in DELAY_CLASSES.items():
        attack = spectre_v1.build()
        outcome = run_attack_program(attack, defense)
        system = build_system(CORTEX_A76.with_defense(defense))
        core = system.prepare(attack.builder_program)
        core.secret_ranges = [(attack.secret_address,
                               attack.secret_address + attack.secret_size)]
        core.run(max_cycles=attack.max_cycles)
        access = any(e["kind"] == "secret-access" and e.get("speculative")
                     for e in core.leak_log)
        transmit = any(e["kind"] == "cache-transmit" for e in core.leak_log)
        rows.append(Figure1Row(defense, delay_class, outcome.leaked,
                               outcome.cycles, access, transmit))
    return rows


def figure5_trace() -> List[tuple]:
    """The TSH event trace of SpecASan blocking Spectre-v1 (Figure 5)."""
    attack = spectre_v1.build()
    system = build_system(CORTEX_A76.with_defense(DefenseKind.SPECASAN))
    core = system.prepare(attack.builder_program)
    core.secret_ranges = [(attack.secret_address,
                           attack.secret_address + attack.secret_size)]
    core.run(max_cycles=attack.max_cycles)
    return list(core.policy.tsh.trace)


def run_resilient(program, defense: DefenseKind = DefenseKind.SPECASAN, *,
                  config: Optional[SystemConfig] = None,
                  max_retries: int = 2, max_cycles: Optional[int] = None,
                  attach=None):
    """Run ``program`` with bounded retry-with-reseed on typed failures.

    Long experiment sweeps should not abandon a whole campaign because one
    run deadlocked or tripped an invariant: retry up to ``max_retries``
    times, perturbing the MTE tag-assignment seed each attempt so the rerun
    does not just replay the identical failure.  Only :class:`ReproError`
    subclasses (deadlock, livelock, invariant violations, simulation
    timeouts) are retried — a bare Python exception is a bug and propagates
    immediately.  Once retries are exhausted the last error is re-raised
    with the accumulated per-attempt ``failures`` history attached
    (:attr:`ReproError.failures`), so campaign logs show every distinct
    failure, not just the final one.

    ``max_cycles`` defaults to the config's
    :attr:`~repro.config.CoreConfig.max_cycles` budget.  ``attach`` is
    called with the fresh core before each attempt — the hook point for
    resilience objects (checker, watchdog, injector).

    Returns ``(RunResult, failures)`` where ``failures`` lists the error
    message of each failed attempt (empty on first-try success).
    """
    base = (config or CORTEX_A76).with_defense(defense)
    failures: List[str] = []
    last_error: Optional[ReproError] = None
    for attempt in range(1 + max_retries):
        cfg = base if attempt == 0 else replace(
            base, mte=replace(base.mte, seed=base.mte.seed + attempt))
        system = build_system(cfg)
        core = system.prepare(program)
        if attach is not None:
            attach(core)
        try:
            core.run(max_cycles=max_cycles)
        except ReproError as exc:
            failures.append(f"attempt {attempt}: {exc}")
            last_error = exc
            continue
        return system.result(), failures
    last_error.failures = tuple(failures)
    raise last_error


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------

#: Marker rendered for a (benchmark, defense) cell with no surviving result.
MISSING_CELL = "MISSING"


def render_rows(rows: List[ExperimentRow], metric: str = "normalized", *,
                benchmarks: Optional[Sequence[str]] = None,
                defenses: Optional[Sequence[DefenseKind]] = None) -> str:
    """Format experiment rows as the paper's bar-chart data.

    ``metric`` is ``"normalized"`` (Figures 6/7/9) or ``"restricted"``
    (Figure 8).

    ``benchmarks``/``defenses`` optionally pin the *expected* grid: combos
    with no row (a campaign cell that exhausted its retries) render as an
    explicit :data:`MISSING_CELL` marker instead of raising, and the
    geomean/average line aggregates only the cells that exist (flagged with
    ``*`` when incomplete).  By default the grid is inferred from ``rows``
    themselves, which reproduces the strict historical behaviour for
    complete sweeps.
    """
    inferred_defenses: List[DefenseKind] = []
    inferred_benchmarks: List[str] = []
    for row in rows:
        if row.defense not in inferred_defenses:
            inferred_defenses.append(row.defense)
        if row.benchmark not in inferred_benchmarks:
            inferred_benchmarks.append(row.benchmark)
    defenses = list(defenses) if defenses is not None else inferred_defenses
    benchmarks = (list(benchmarks) if benchmarks is not None
                  else inferred_benchmarks)
    header = f"{'benchmark':18s}" + "".join(
        f"{d.value:>14s}" for d in defenses)
    lines = [header, "-" * len(header)]
    by_key = {(r.benchmark, r.defense): r for r in rows}
    columns: Dict[DefenseKind, List[float]] = {d: [] for d in defenses}
    incomplete = {d: False for d in defenses}
    for bench in benchmarks:
        cells = []
        for defense in defenses:
            row = by_key.get((bench, defense))
            if row is None:
                incomplete[defense] = True
                cells.append(f"{MISSING_CELL:>14s}")
                continue
            value = (row.normalized_time if metric == "normalized"
                     else row.restricted_pct)
            columns[defense].append(value)
            cells.append(f"{value:14.3f}")
        lines.append(f"{bench:18s}" + "".join(cells))
    summary = []
    for defense in defenses:
        values = columns[defense]
        if not values:
            summary.append(f"{MISSING_CELL:>14s}")
            continue
        if metric == "normalized":
            text = f"{geomean(values):.3f}"
        else:
            text = f"{sum(values) / len(values):.2f}"
        if incomplete[defense]:
            text += "*"
        summary.append(f"{text:>14s}")
    label = "geomean" if metric == "normalized" else "average"
    lines.append(f"{label:18s}" + "".join(summary))
    if any(incomplete.values()):
        lines.append("(* aggregate over available cells only; "
                     f"{MISSING_CELL} = cell exhausted its retries)")
    return "\n".join(lines)


# -- repair overhead (the spec-repair pipeline's performance half) ------------


@dataclass
class RepairRow:
    """One repaired-witness measurement under the target defense."""

    subject: str
    defense: DefenseKind
    fixes: tuple
    baseline_cycles: int
    repaired_cycles: int
    #: Static re-lint: nothing leaks under the target defense anymore.
    verified: bool
    #: Simulator re-run: the witness leak is gone.
    dynamic_blocked: bool

    @property
    def overhead(self) -> float:
        return normalized(self.repaired_cycles, self.baseline_cycles) - 1.0


def repair_overhead(subjects: Optional[Sequence[str]] = None,
                    defense: DefenseKind = DefenseKind.SPECASAN,
                    config: Optional[SystemConfig] = None) -> List[RepairRow]:
    """Repair each witness subject and measure the cycle cost of its fixes.

    ``subjects`` are witness names (``pht/same-key``); the default is every
    residual (repair-needing) variant.  Each row carries both verification
    verdicts — the static flip and the simulator confirmation — plus the
    repaired-over-baseline cycle overhead under ``defense``.
    """
    from repro.analysis import repair as repair_mod
    from repro.analysis.witness import (
        secret_ranges_of, synthesize, variant_name, witness_kind,
        WITNESS_KINDS)

    subjects = list(subjects) if subjects else [
        f"{kind.value}/{variant_name(kind, True)}" for kind in WITNESS_KINDS]
    rows: List[RepairRow] = []
    for subject in subjects:
        kind_name, _, variant = subject.partition("/")
        kind = witness_kind(kind_name)
        residual = variant != variant_name(kind, residual=False)
        witness = synthesize(kind, residual=residual)
        result = repair_mod.plan(witness.attack.builder_program,
                                 secret_ranges_of(witness.attack),
                                 defense=defense)
        registry = repair_mod.measure_overhead(result, subject=witness.subject,
                                               config=config)
        prefix = f"repair.{witness.subject.replace('/', '-')}"
        baseline = int(registry.get(f"{prefix}.baseline_cycles").value)
        repaired = (int(registry.get(f"{prefix}.repaired_cycles").value)
                    if result.fixes else baseline)
        after = run_attack_program(
            replace(witness.attack, builder_program=result.repaired),
            defense, config)
        rows.append(RepairRow(
            subject=witness.subject, defense=defense,
            fixes=tuple(fix.kind.value for fix in result.fixes),
            baseline_cycles=baseline, repaired_cycles=repaired,
            verified=result.verified, dynamic_blocked=not after.leaked))
    return rows


def render_repair_rows(rows: List[RepairRow]) -> str:
    """The per-fix overhead table of the repair pipeline."""
    header = (f"{'subject':16s}{'fixes':20s}{'baseline':>10s}"
              f"{'repaired':>10s}{'overhead':>10s}{'static':>12s}"
              f"{'simulator':>11s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        fixes = "+".join(row.fixes) if row.fixes else "(none)"
        static = "sanitized" if row.verified else "LEAKS"
        dynamic = "blocked" if row.dynamic_blocked else "LEAKS"
        lines.append(
            f"{row.subject:16s}{fixes:20s}{row.baseline_cycles:>10d}"
            f"{row.repaired_cycles:>10d}{row.overhead:>9.1%}"
            f"{static:>12s}{dynamic:>11s}")
    return "\n".join(lines)


def render_figure1(rows: List[Figure1Row]) -> str:
    header = (f"{'defense':14s}{'class':28s}{'ACCESS ran':>12s}"
              f"{'TRANSMIT ran':>14s}{'leaked':>8s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.defense.value:14s}{row.delay_class:28s}"
            f"{str(row.access_happened):>12s}{str(row.transmit_happened):>14s}"
            f"{str(row.leaked):>8s}")
    return "\n".join(lines)


__all__ = [
    "DELAY_CLASSES",
    "ExperimentRow",
    "FIG6_DEFENSES",
    "FIG8_DEFENSES",
    "FIG9_DEFENSES",
    "figure1",
    "Figure1Row",
    "figure5_trace",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "MISSING_CELL",
    "render_figure1",
    "render_matrix",
    "render_repair_rows",
    "render_rows",
    "repair_overhead",
    "RepairRow",
    "run_parsec",
    "run_resilient",
    "run_spec",
    "table1",
    "table1_differential",
]
