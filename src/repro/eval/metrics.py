"""Metric helpers shared by the experiment harness."""

from __future__ import annotations

import math
from typing import Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the aggregation the paper's figures report).

    The geometric mean is undefined for non-positive values; silently
    dropping them would skew every figure that aggregates over benchmarks,
    so they raise instead.
    """
    values = list(values)
    if not values:
        return 0.0
    bad = [v for v in values if v <= 0]
    if bad:
        raise ValueError(
            f"geomean is undefined for non-positive values: {bad!r}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalized(cycles: int, baseline_cycles: int) -> float:
    """Normalized execution time relative to the unsafe baseline."""
    if baseline_cycles <= 0:
        return 0.0
    return cycles / baseline_cycles


def percent(fraction: float) -> float:
    """A fraction as a percentage, rounded for display."""
    return round(100.0 * fraction, 2)
