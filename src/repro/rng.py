"""Seeded RNG stream discipline for everything that synthesizes programs.

Reproducibility contract: every source of randomness in the repo is an
explicitly seeded :class:`random.Random` *stream*, derived from one root
seed plus a string label path.  No module ever calls the module-level
``random.*`` functions (the process-global Mersenne state) — a fuzz run,
a workload sweep, or a minimized regression must replay byte-identically
from its recorded seed alone, regardless of import order, interleaving,
or what any other subsystem drew before it.  ``tests/test_rng_discipline``
audits the source tree for violations.

Derivation is SHA-256 over ``root`` plus the labels (stable across
processes and Python versions, unlike ``hash()`` under randomized
``PYTHONHASHSEED``), so streams for distinct labels are statistically
independent and adding a new consumer never perturbs existing ones:

    rng = stream(root_seed, "fuzz", "gen", candidate_id)

:func:`workload_stream` keeps the workload generator's historic
``crc32(name) ^ seed`` derivation: committed baselines (BENCH snapshots,
campaign figures) depend on those exact instruction streams staying
byte-identical.
"""

from __future__ import annotations

import hashlib
import random
import zlib

#: Mask bounding derived seeds (and the historic workload derivation).
_SEED_MASK = 0xFFFFFFFFFFFFFFFF


def derive_seed(root: int, *labels: object) -> int:
    """A 64-bit seed for the stream named by ``labels`` under ``root``.

    Labels are separated by an ASCII unit separator so ``("ab", "c")`` and
    ``("a", "bc")`` derive different streams.
    """
    digest = hashlib.sha256()
    digest.update(str(int(root)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & _SEED_MASK


def stream(root: int, *labels: object) -> random.Random:
    """An independent, replayable RNG stream for ``labels`` under ``root``."""
    return random.Random(derive_seed(root, *labels))


def workload_stream(name: str, seed: int) -> random.Random:
    """The workload generator's stream for ``(profile name, seed)``.

    Preserves the original ``crc32 ^ seed`` derivation exactly: generated
    SPEC/PARSEC instruction streams are pinned by committed perf baselines
    and campaign figures, so this derivation is frozen even though new
    consumers should use :func:`stream`.
    """
    return random.Random((zlib.crc32(name.encode()) ^ seed) & 0xFFFFFFFF)
