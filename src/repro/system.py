"""Top-level façade: build and run a complete simulated system.

This is the main entry point downstream users touch::

    from repro import build_system, CORTEX_A76, DefenseKind
    from repro.isa import assemble

    program = assemble('''
        MOV X0, #41
        ADD X0, X0, #1
        HALT
    ''')
    system = build_system(CORTEX_A76.with_defense(DefenseKind.SPECASAN))
    result = system.run(program)
    assert result.register("X0") == 42

A :class:`SimulatedSystem` owns one memory hierarchy and (for the
single-core experiments) one out-of-order core; the PARSEC experiments use
:class:`repro.multicore.MulticoreSystem`, which shares the same loader.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import SystemConfig
from repro.defenses import make_policy
from repro.errors import TagCheckFault
from repro.isa.program import Program
from repro.isa.registers import reg_index
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.pipeline.stats import CoreStats


@dataclass
class RunResult:
    """Summary of one program execution."""

    cycles: int
    instructions: int
    halted: bool
    stats: CoreStats
    fault: Optional[TagCheckFault] = None
    registers: Dict[int, int] = field(default_factory=dict)
    restricted: int = 0
    leak_log: List[dict] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        from repro.telemetry.registry import ratio
        return ratio(self.instructions, self.cycles)

    @property
    def faulted(self) -> bool:
        return self.fault is not None

    def register(self, name: str) -> int:
        """Final architectural value of a register, by name (``"X5"``)."""
        return self.registers.get(reg_index(name), 0)


def load_program(hierarchy: MemoryHierarchy, program: Program) -> None:
    """Place a program's data segments (bytes + allocation tags) in memory."""
    program.link()
    for segment in program.data_segments:
        hierarchy.memory.load_image(segment.address, segment.data)
        if segment.tag is not None:
            hierarchy.memory.tag_range(segment.address, max(segment.size, 1),
                                       segment.tag)


class SimulatedSystem:
    """One hierarchy plus one core, ready to run programs.

    ``policy_factory`` overrides the defense policy construction — used by
    the ablation studies to plug SpecASan variants that have no
    :class:`~repro.config.DefenseKind` of their own.
    """

    def __init__(self, config: SystemConfig, policy_factory=None):
        self.config = config
        self.policy_factory = policy_factory
        self.hierarchy = MemoryHierarchy(config)
        self.core: Optional[Core] = None
        #: Telemetry hooks (:mod:`repro.telemetry`): assign a
        #: :class:`~repro.telemetry.trace.TraceSink` and/or an
        #: :class:`~repro.telemetry.occupancy.OccupancyProfiler` before
        #: :meth:`prepare`/:meth:`run`; each fresh core is wired to them.
        self.tracer = None
        self.occupancy = None
        #: Checkpoint telemetry (:class:`repro.checkpoint.stats.CheckpointStats`),
        #: attached by a :class:`repro.checkpoint.manager.CheckpointManager`;
        #: registers under the ``checkpoint`` scope in :meth:`stats_registry`.
        self.checkpoint_stats = None

    def prepare(self, program: Program) -> Core:
        """Load ``program`` and build a fresh core for it (not yet run)."""
        self.hierarchy.quiesce()
        load_program(self.hierarchy, program)
        policy = (self.policy_factory() if self.policy_factory is not None
                  else make_policy(self.config.defense))
        self.core = Core(self.config, self.hierarchy, program, policy=policy)
        if self.tracer is not None:
            self.core.trace = self.tracer
        if self.occupancy is not None:
            self.occupancy.attach(self.core)
        return self.core

    def run(self, program: Program, max_cycles: Optional[int] = None,
            warm_runs: int = 0) -> RunResult:
        """Load and run ``program`` to completion on a fresh core.

        ``max_cycles`` defaults to the configured
        :attr:`~repro.config.CoreConfig.max_cycles` budget.  ``warm_runs``
        first executes the program that many times on the *same* memory
        hierarchy (caches and tag state stay warm) before the measured run —
        the analogue of the paper's 10-billion-instruction fast-forward
        before detailed simulation (§5.1).
        """
        for _ in range(warm_runs):
            core = self.prepare(program)
            core.run(max_cycles=max_cycles)
        core = self.prepare(program)
        core.run(max_cycles=max_cycles)
        return self.result()

    def result(self) -> RunResult:
        """Snapshot the outcome of the last (possibly in-progress) run."""
        core = self.core
        if core is None:
            raise RuntimeError("no program has been run on this system")
        return RunResult(
            cycles=core.cycle,
            instructions=core.stats.committed,
            halted=core.halted,
            stats=core.stats,
            fault=core.fault,
            registers=dict(enumerate(core.arf)),
            restricted=len(core.policy.restricted_seqs),
            leak_log=list(core.leak_log),
        )

    def stats_registry(self):
        """One :class:`~repro.telemetry.registry.StatsRegistry` over the last
        run's core counters, the hierarchy counters, and (when an
        :class:`~repro.telemetry.occupancy.OccupancyProfiler` is attached)
        the occupancy histograms."""
        from repro.telemetry.registry import system_registry
        return system_registry(
            core_stats=self.core.stats if self.core is not None else None,
            hierarchy_stats=self.hierarchy.stats,
            occupancy=self.occupancy,
            checkpoint=self.checkpoint_stats)

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete serializable system state (hierarchy + core [+ occupancy]).

        Taken between cycles; pair with
        :meth:`~repro.pipeline.core.Core.run`'s ``until_cycle`` pause.
        """
        if self.core is None:
            raise RuntimeError("no program prepared; nothing to checkpoint")
        state = {
            "hierarchy": self.hierarchy.state_dict(),
            "core": self.core.state_dict(),
        }
        if self.occupancy is not None:
            state["occupancy"] = self.occupancy.state_dict()
        return state

    def load_state_dict(self, state: dict, program: Program) -> Core:
        """Restore a :meth:`state_dict` snapshot and return the live core.

        Builds a fresh core against ``program`` (which must be the program
        the snapshot was taken from — the checkpoint file format fingerprints
        it), then overwrites every stateful structure, leaving the system
        exactly mid-run: ``core.run()`` continues from the paused cycle and
        produces the same continuation as an uninterrupted run.
        """
        core = self.prepare(program)
        self.hierarchy.load_state_dict(state["hierarchy"])
        core.load_state_dict(state["core"])
        if self.occupancy is not None and "occupancy" in state:
            self.occupancy.load_state_dict(state["occupancy"])
        return core


def build_system(config: Optional[SystemConfig] = None,
                 policy_factory=None) -> SimulatedSystem:
    """Construct a :class:`SimulatedSystem` (default: Table 2's CORTEX_A76)."""
    return SimulatedSystem(config or SystemConfig(),
                           policy_factory=policy_factory)
