"""An N-core system over one shared memory hierarchy.

Each core owns its private L1D/LFB/MinionCache inside the shared
:class:`~repro.memory.hierarchy.MemoryHierarchy`; the L2, memory controller,
DRAM tag storage, and coherence directory are shared.  Committed stores (and
STG tag updates) by one core invalidate other cores' copies through the
directory, so the PARSEC workloads' shared-region stores produce real
coherence traffic.

The system ticks all cores in lockstep each cycle and finishes when every
core has halted — the reported execution time is the slowest thread's, which
is how the paper's Figure 7 normalizes multi-threaded runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import SystemConfig
from repro.defenses import make_policy
from repro.errors import ConfigError, SimulationError, TagCheckFault
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.core import Core
from repro.pipeline.stats import CoreStats
from repro.system import load_program


@dataclass
class MulticoreResult:
    """Outcome of one multi-threaded run."""

    cycles: int
    per_core: List[CoreStats]
    faults: List[Optional[TagCheckFault]]
    restricted: int
    invalidations: int

    @property
    def instructions(self) -> int:
        return sum(stats.committed for stats in self.per_core)

    @property
    def ipc(self) -> float:
        from repro.telemetry.registry import ratio
        return ratio(self.instructions, self.cycles)

    @property
    def restricted_fraction(self) -> float:
        """Aggregate Figure-8 restriction fraction across threads."""
        from repro.telemetry.registry import ratio
        restricted = sum(stats.restricted_committed for stats in self.per_core)
        return ratio(restricted, self.instructions)


class MulticoreSystem:
    """``config.num_cores`` cores sharing one hierarchy."""

    def __init__(self, config: SystemConfig):
        if config.num_cores < 1:
            raise ConfigError("need at least one core")
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        self.cores: List[Core] = []
        #: Campaign liveness probe pulsed from the lockstep loop (same
        #: contract as :attr:`repro.pipeline.core.Core.heartbeat`).
        self.heartbeat = None
        #: Telemetry (:mod:`repro.telemetry`): ``tracer_factory(core_id)``
        #: builds one :class:`~repro.telemetry.trace.TraceSink` per core;
        #: ``occupancy_factory(core_id)`` one occupancy profiler per core.
        self.tracer_factory = None
        self.occupancy_factory = None
        self.tracers: List = []
        #: Lockstep cycle of the current prepared run.
        self._cycle = 0
        #: Checkpoint telemetry, same contract as
        #: :attr:`repro.system.SimulatedSystem.checkpoint_stats`.
        self.checkpoint_stats = None
        #: Periodic re-checkpoint hook (duck-typed ``.interval`` +
        #: ``.save(core)``), fired from the lockstep loop — the multicore
        #: analogue of :attr:`repro.pipeline.core.Core.checkpoint_hook`.
        self.checkpoint_hook = None

    def run(self, programs: List[Program], max_cycles: int = 5_000_000,
            warm_runs: int = 0) -> MulticoreResult:
        """Run one program per core to completion.

        Fewer programs than cores leaves the extra cores idle (halted),
        matching how PARSEC regions with fewer worker threads behave.
        ``warm_runs`` pre-executes the programs on the same hierarchy first
        (the fast-forward analogue, §5.1).
        """
        if len(programs) > self.config.num_cores:
            raise ConfigError(
                f"{len(programs)} programs for {self.config.num_cores} cores")
        for _ in range(warm_runs):
            self._run_once(programs, max_cycles)
        return self._run_once(programs, max_cycles)

    def _run_once(self, programs: List[Program],
                  max_cycles: int) -> MulticoreResult:
        self.prepare(programs)
        self.run_prepared(max_cycles)
        return self.result()

    def prepare(self, programs: List[Program]) -> List[Core]:
        """Load the programs and build fresh cores (not yet run)."""
        self.cores = []
        self.hierarchy.quiesce()
        self._cycle = 0
        for core_id, program in enumerate(programs):
            load_program(self.hierarchy, program)
            core = Core(self.config, self.hierarchy, program,
                        policy=make_policy(self.config.defense),
                        core_id=core_id)
            if self.tracer_factory is not None:
                core.trace = self.tracer_factory(core_id)
                self.tracers.append(core.trace)
            if self.occupancy_factory is not None:
                self.occupancy_factory(core_id).attach(core)
            self.cores.append(core)
        return self.cores

    def run_prepared(self, max_cycles: int = 5_000_000,
                     until_cycle: Optional[int] = None) -> None:
        """Lockstep loop over the prepared cores.

        ``until_cycle`` pauses between cycles without raising — the
        checkpoint seam, mirroring
        :meth:`repro.pipeline.core.Core.run`.
        """
        while not all(core.halted for core in self.cores):
            if until_cycle is not None and self._cycle >= until_cycle:
                return  # paused, resumable
            self._cycle += 1
            if self._cycle > max_cycles:
                raise SimulationError(
                    f"multicore run did not finish within {max_cycles} cycles")
            for core in self.cores:
                if not core.halted:
                    core.tick()
            heartbeat = self.heartbeat
            if heartbeat is not None and self._cycle % heartbeat.interval == 0:
                heartbeat.beat(self._cycle)
            hook = self.checkpoint_hook
            if hook is not None and self._cycle % hook.interval == 0:
                hook.save(None)
        for tracer in self.tracers:
            tracer.close()

    def result(self) -> MulticoreResult:
        """Summarize the (finished or paused) run."""
        restricted = sum(len(core.policy.restricted_seqs)
                         for core in self.cores)
        return MulticoreResult(
            cycles=max(core.cycle for core in self.cores),
            per_core=[core.stats for core in self.cores],
            faults=[core.fault for core in self.cores],
            restricted=restricted,
            invalidations=self.hierarchy.directory.invalidations)

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        if not self.cores:
            raise RuntimeError("no programs prepared; nothing to checkpoint")
        return {
            "cycle": self._cycle,
            "hierarchy": self.hierarchy.state_dict(),
            "cores": [core.state_dict() for core in self.cores],
        }

    def load_state_dict(self, state: dict,
                        programs: List[Program]) -> List[Core]:
        """Restore a snapshot taken against the same ``programs``."""
        from repro.errors import CheckpointError
        cores = self.prepare(programs)
        if len(state["cores"]) != len(cores):
            raise CheckpointError(
                f"checkpoint has {len(state['cores'])} cores, system "
                f"prepared {len(cores)}", kind="state-mismatch")
        self.hierarchy.load_state_dict(state["hierarchy"])
        for core, sub in zip(cores, state["cores"]):
            core.load_state_dict(sub)
        self._cycle = state["cycle"]
        return cores

    def stats_registry(self):
        """One :class:`~repro.telemetry.registry.StatsRegistry` over every
        core (``core0`` / ``core1`` / …) plus the shared hierarchy."""
        from repro.telemetry.registry import system_registry
        return system_registry(
            hierarchy_stats=self.hierarchy.stats,
            per_core=[core.stats for core in self.cores],
            checkpoint=self.checkpoint_stats)
