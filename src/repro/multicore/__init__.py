"""The multi-core system used for the PARSEC experiments (Figure 7)."""

from repro.multicore.system import MulticoreResult, MulticoreSystem

__all__ = ["MulticoreResult", "MulticoreSystem"]
