"""The durable checkpoint file format.

One checkpoint is a single file::

    repro-ckpt\\n                  # magic
    {...header JSON...}\\n         # one line
    <section payloads, concatenated>

The header carries the schema version, the SHA-256-derived fingerprints of
the :class:`~repro.config.SystemConfig` and the program(s) the snapshot was
taken against, the paused cycle, and a section table (name, byte length,
SHA-256 of the compressed payload).  Each section is the zlib-compressed
canonical JSON of one ``state_dict()`` subtree, hashed independently so a
flipped bit is attributed to the section it hit.

Durability follows the PR-2 store idiom: writes go through a same-directory
temp file, ``fsync``, and ``os.replace``, so a crash mid-write leaves either
the old generation or the new one, never a tear.  Reads fail *closed*: every
malformed input maps to a :class:`~repro.errors.CheckpointError` whose
``kind`` names the failure class ("missing", "bad-magic", "torn-header",
"schema-skew", "config-skew", "truncated", "section-corrupt") — the
degradation ladder upstream (generation walk-back, straight-through re-run)
keys off those kinds and never sees a half-trusted snapshot.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import zlib
from typing import Dict, Iterable, Tuple

from repro.errors import CheckpointError

MAGIC = b"repro-ckpt\n"
#: Bump on any incompatible change to the header or section encoding.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------

def _jsonable(value):
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def config_fingerprint(config) -> str:
    """Stable hash of a :class:`~repro.config.SystemConfig`.

    A checkpoint only restores into a system built from the identical
    config; the fingerprint is how the header enforces that.
    """
    blob = json.dumps(_jsonable(dataclasses.asdict(config)), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def program_fingerprint(programs) -> str:
    """Stable hash of one program or a sequence of programs.

    Covers the linked instruction listing and every data segment (name,
    address, tag, initial bytes): restored DynInstrs rehydrate their static
    instructions from the program text by pc, so the text must match.
    """
    if not isinstance(programs, (list, tuple)):
        programs = [programs]
    digest = hashlib.sha256()
    for program in programs:
        program.link()
        digest.update(program.listing().encode("utf-8"))
        for segment in program.data_segments:
            digest.update(
                f"\n{segment.name}@{segment.address:#x}:{segment.tag}\n"
                .encode("utf-8"))
            digest.update(segment.data)
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------

def _atomic_write_bytes(path: str, data: bytes) -> None:
    """Same-directory tmp + fsync + ``os.replace`` (PR-2 durability idiom)."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_checkpoint(path: str, sections: Dict[str, object], *,
                     config_hash: str, program_hash: str,
                     cycle: int) -> int:
    """Serialize ``sections`` to ``path``; returns the bytes written."""
    payloads = []
    table = []
    for name, obj in sections.items():
        payload = zlib.compress(
            json.dumps(obj, sort_keys=True).encode("utf-8"), 6)
        payloads.append(payload)
        table.append({"name": name, "length": len(payload),
                      "sha256": hashlib.sha256(payload).hexdigest()})
    header = {"schema": SCHEMA_VERSION, "config": config_hash,
              "program": program_hash, "cycle": cycle, "sections": table}
    blob = (MAGIC + json.dumps(header, sort_keys=True).encode("utf-8")
            + b"\n" + b"".join(payloads))
    _atomic_write_bytes(path, blob)
    return len(blob)


# ----------------------------------------------------------------------
# reading (fail-closed)
# ----------------------------------------------------------------------

def read_header(path: str) -> Tuple[dict, int]:
    """Parse and validate the header; returns (header, payload offset).

    Raises :class:`CheckpointError` with kind "missing", "bad-magic", or
    "torn-header"; schema/config validation is the caller's
    (:func:`read_checkpoint`'s) job since only it knows the expectations.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        raise CheckpointError("no such checkpoint", path=path, kind="missing")
    if not blob.startswith(MAGIC):
        raise CheckpointError("magic bytes do not match", path=path,
                              kind="bad-magic")
    newline = blob.find(b"\n", len(MAGIC))
    if newline < 0:
        raise CheckpointError("header line is unterminated", path=path,
                              kind="torn-header")
    try:
        header = json.loads(blob[len(MAGIC):newline].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise CheckpointError(f"header is not valid JSON ({err})",
                              path=path, kind="torn-header")
    if not isinstance(header, dict) or "sections" not in header:
        raise CheckpointError("header is missing the section table",
                              path=path, kind="torn-header")
    return header, newline + 1


def read_checkpoint(path: str, *, expect_config: str = "",
                    expect_program: str = "") -> Tuple[dict, Dict[str, object]]:
    """Read, verify, and decode every section of a checkpoint.

    Returns ``(header, {section name: decoded object})``.  Any deviation —
    wrong schema, fingerprint skew against the expectations, short payload,
    hash mismatch, undecodable section — raises :class:`CheckpointError`
    with the matching ``kind``; nothing partially-verified is returned.
    """
    header, offset = read_header(path)
    if header.get("schema") != SCHEMA_VERSION:
        raise CheckpointError(
            f"schema {header.get('schema')!r} != supported {SCHEMA_VERSION}",
            path=path, kind="schema-skew")
    if expect_config and header.get("config") != expect_config:
        raise CheckpointError(
            f"config fingerprint {header.get('config')!r} != expected "
            f"{expect_config!r}", path=path, kind="config-skew")
    if expect_program and header.get("program") != expect_program:
        raise CheckpointError(
            f"program fingerprint {header.get('program')!r} != expected "
            f"{expect_program!r}", path=path, kind="config-skew")
    with open(path, "rb") as handle:
        blob = handle.read()
    sections: Dict[str, object] = {}
    for entry in header["sections"]:
        name = entry.get("name", "?")
        length = entry.get("length", -1)
        payload = blob[offset:offset + length]
        if length < 0 or len(payload) < length:
            raise CheckpointError(
                f"payload ends {length - len(payload)} bytes early",
                path=path, section=name, kind="truncated")
        if hashlib.sha256(payload).hexdigest() != entry.get("sha256"):
            raise CheckpointError("payload hash mismatch", path=path,
                                  section=name, kind="section-corrupt")
        try:
            sections[name] = json.loads(
                zlib.decompress(payload).decode("utf-8"))
        except (zlib.error, ValueError, UnicodeDecodeError) as err:
            raise CheckpointError(f"payload undecodable ({err})", path=path,
                                  section=name, kind="section-corrupt")
        offset += length
    return header, sections


def section_ranges(path: str) -> Iterable[Tuple[str, int, int]]:
    """Byte ranges ``(name, start, end)`` of each section payload.

    Used by the corruption tooling (:mod:`repro.checkpoint.corrupt` and the
    fault injector) to aim a bit-flip at a specific section.
    """
    header, offset = read_header(path)
    for entry in header["sections"]:
        yield entry["name"], offset, offset + entry["length"]
        offset += entry["length"]
