"""Checkpoint corruption primitives.

The write-side of the robustness story: these helpers damage a checkpoint
file in each of the ways the read path must detect and reject.  They are
used by the corruption-matrix tests, by ``python -m repro.checkpoint``'s
self-test, and by the :class:`~repro.resilience.faults.FaultInjector`'s
checkpoint fault kinds.

Every helper writes the damaged bytes *directly* (no atomic rename): they
model the failure modes the atomic writer cannot rule out — media
corruption after a successful write, and the torn partial writes a
non-atomic writer would have produced.
"""

from __future__ import annotations

import json
import random

from repro.checkpoint.format import MAGIC, read_header, section_ranges


def truncate(path: str, keep_fraction: float = 0.5) -> None:
    """Cut the file short, as an interrupted copy or a bad sector would."""
    with open(path, "rb") as handle:
        blob = handle.read()
    keep = max(len(MAGIC), int(len(blob) * keep_fraction))
    with open(path, "wb") as handle:
        handle.write(blob[:keep])


def flip_bit(path: str, section: str = "", seed: int = 0) -> None:
    """Flip one payload bit — inside ``section`` if named, else anywhere
    past the header."""
    ranges = list(section_ranges(path))
    if section:
        ranges = [r for r in ranges if r[0] == section]
        if not ranges:
            raise ValueError(f"no section {section!r} in {path}")
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    rng = random.Random(seed)
    _name, start, end = ranges[rng.randrange(len(ranges))]
    end = min(end, len(blob))
    if start >= end:
        raise ValueError(f"section range empty in {path}")
    offset = rng.randrange(start, end)
    blob[offset] ^= 1 << rng.randrange(8)
    with open(path, "wb") as handle:
        handle.write(blob)


def skew_header(path: str, field: str = "schema") -> None:
    """Rewrite the header with a skewed ``field`` (payloads untouched).

    ``field="schema"`` bumps the schema version (an incompatible-writer
    checkpoint); ``field="config"`` / ``"program"`` replace the fingerprint
    (a checkpoint from a different experiment configuration).
    """
    header, offset = read_header(path)
    with open(path, "rb") as handle:
        blob = handle.read()
    if field == "schema":
        header["schema"] = header.get("schema", 0) + 1
    elif field in ("config", "program"):
        header[field] = "0" * 16
    else:
        raise ValueError(f"unknown header field {field!r}")
    with open(path, "wb") as handle:
        handle.write(MAGIC + json.dumps(header, sort_keys=True).encode("utf-8")
                     + b"\n" + blob[offset:])


def tear_write(path: str) -> None:
    """Leave the half-written file a non-atomic writer would have: the
    magic plus a prefix of the (unterminated) header line."""
    with open(path, "rb") as handle:
        blob = handle.read()
    newline = blob.find(b"\n", len(MAGIC))
    cut = len(MAGIC) + max(1, (max(newline, 0) - len(MAGIC)) // 2)
    with open(path, "wb") as handle:
        handle.write(blob[:cut])
