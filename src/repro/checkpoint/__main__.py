"""Checkpoint subsystem driver.

``python -m repro.checkpoint --selftest`` — file-level round-trip plus the
corruption matrix: every damage primitive must be detected with the right
fault kind.

``python -m repro.checkpoint --smoke`` — the CI job's end-to-end ladder:
warm a workload, checkpoint mid-run, *discard the live system* (the
in-process equivalent of killing the worker), restore into a fresh system,
finish, and require the stats registry to match a straight-through run
byte-for-byte; then corrupt the newest generation and require the restore
walk to fall back to the older one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.checkpoint import corrupt
from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.stats import CheckpointStats
from repro.config import CORTEX_A76, DefenseKind
from repro.errors import CheckpointError
from repro.system import build_system
from repro.workloads import build_spec


def _registry_blob(system) -> str:
    return json.dumps(system.stats_registry().dump(), sort_keys=True)


def _fresh_system():
    return build_system(CORTEX_A76.with_defense(DefenseKind.SPECASAN))


def selftest() -> int:
    workload = build_spec("505.mcf_r", seed=1)
    program = workload.program
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        manager = CheckpointManager(os.path.join(tmp, "self"))
        system = _fresh_system()
        core = system.prepare(program)
        core.run(until_cycle=200)
        path = manager.save(system, program)

        # Round trip.
        restored = _fresh_system()
        result = manager.restore(restored, program)
        if result.cycle != 200 or restored.core.cycle != 200:
            print(f"FAIL round-trip: cycle {result.cycle}")
            failures += 1
        else:
            print("ok  round-trip restores at the paused cycle")

        # Corruption matrix: damage -> expected fault kind.
        matrix = [
            ("truncate", lambda p: corrupt.truncate(p, 0.6), "truncated"),
            ("bit-flip hierarchy",
             lambda p: corrupt.flip_bit(p, section="hierarchy"),
             "section-corrupt"),
            ("bit-flip cores",
             lambda p: corrupt.flip_bit(p, section="cores"),
             "section-corrupt"),
            ("schema skew", lambda p: corrupt.skew_header(p, "schema"),
             "schema-skew"),
            ("config skew", lambda p: corrupt.skew_header(p, "config"),
             "config-skew"),
            ("torn write", corrupt.tear_write, "torn-header"),
        ]
        for label, damage, expected in matrix:
            manager2 = CheckpointManager(os.path.join(tmp, label.replace(" ", "_")))
            gen_path = manager2.save(system, program)
            damage(gen_path)
            try:
                manager2.restore(_fresh_system(), program)
            except CheckpointError as err:
                if err.kind == expected:
                    print(f"ok  {label} -> rejected as {err.kind!r}")
                else:
                    print(f"FAIL {label}: kind {err.kind!r} != {expected!r}")
                    failures += 1
            else:
                print(f"FAIL {label}: corrupt checkpoint restored")
                failures += 1
        if os.path.exists(path):
            os.unlink(path)
    return failures


def smoke() -> int:
    workload = build_spec("531.deepsjeng_r", seed=5)
    program = workload.program
    failures = 0

    # Straight-through reference.
    reference = _fresh_system()
    reference.prepare(program).run()
    reference_blob = _registry_blob(reference)

    with tempfile.TemporaryDirectory() as tmp:
        stats = CheckpointStats()
        manager = CheckpointManager(os.path.join(tmp, "smoke"), keep=2,
                                    stats=stats)

        # Warm to the pause point, checkpoint twice (two generations), then
        # drop the system on the floor — the kill-mid-cell equivalent.
        victim = _fresh_system()
        core = victim.prepare(program)
        core.run(until_cycle=150)
        manager.save(victim, program)
        core.run(until_cycle=300)
        manager.save(victim, program)
        del victim, core

        # Restore and finish; registries must match byte-for-byte.
        resumed = _fresh_system()
        result = manager.restore(resumed, program)
        resumed.core.run()
        if _registry_blob(resumed) == reference_blob:
            print(f"ok  restored gen {result.generation} at cycle "
                  f"{result.cycle}; registry byte-identical to "
                  "straight-through run")
        else:
            print("FAIL restored run diverged from straight-through run")
            failures += 1

        # Corrupt the newest generation: restore must fall back to gen 0.
        corrupt.flip_bit(manager.path_for(1), section="cores")
        fallback = _fresh_system()
        result = manager.restore(fallback, program)
        if result.generation == 0 and len(result.rejected) == 1:
            rejected = result.rejected[0]
            print(f"ok  newest generation rejected ({rejected.kind}); "
                  f"fell back to gen 0 at cycle {result.cycle}")
        else:
            print(f"FAIL fallback walked to gen {result.generation} "
                  f"rejecting {len(result.rejected)}")
            failures += 1
        fallback.core.run()
        if _registry_blob(fallback) == reference_blob:
            print("ok  fallback generation also replays byte-identically")
        else:
            print("FAIL fallback run diverged")
            failures += 1
        print(f"stats: saves={stats.saves} bytes={stats.bytes} "
              f"restores={stats.restores} "
              f"corrupt_rejected={stats.corrupt_rejected}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.checkpoint",
                                     description=__doc__)
    parser.add_argument("--selftest", action="store_true",
                        help="file round-trip + corruption matrix")
    parser.add_argument("--smoke", action="store_true",
                        help="end-to-end warm/kill/restore/compare ladder")
    args = parser.parse_args(argv)
    if not (args.selftest or args.smoke):
        args.selftest = True
    failures = 0
    if args.selftest:
        failures += selftest()
    if args.smoke:
        failures += smoke()
    print("PASS" if failures == 0 else f"{failures} FAILURES")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
