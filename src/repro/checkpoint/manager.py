"""Generation-managed checkpointing of whole simulated systems.

A :class:`CheckpointManager` owns one *stem* (``<dir>/<name>``); each save
writes the next generation file ``<stem>.ckpt.<N>`` and prunes old ones,
keeping ``keep`` generations.  Restore walks the generations newest→oldest,
rejecting corrupt files (counted in
:class:`~repro.checkpoint.stats.CheckpointStats`) until one verifies — the
degradation ladder's middle rungs.  Only when *no* generation restores does
the manager raise, and the caller's last rung (a straight-through re-run)
takes over.

The manager is duck-typed over both system shapes:
:class:`repro.system.SimulatedSystem` (one core) and
:class:`repro.multicore.system.MulticoreSystem` (core list); both expose
``state_dict()`` / ``load_state_dict(state, program(s))``.

:class:`CheckpointHook` adapts a manager to
:attr:`repro.pipeline.core.Core.checkpoint_hook`, re-checkpointing every
``interval`` *simulated* cycles mid-run, the same cadence contract as the
campaign heartbeat.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.checkpoint.format import (
    config_fingerprint,
    program_fingerprint,
    read_checkpoint,
    write_checkpoint,
)
from repro.checkpoint.stats import CheckpointStats
from repro.errors import CheckpointError


@dataclass
class RestoreResult:
    """Outcome of one successful restore walk."""

    generation: int
    path: str
    cycle: int
    #: Newer generations that were rejected as corrupt on the way down.
    rejected: List[CheckpointError] = field(default_factory=list)


class CheckpointManager:
    """Versioned save/restore of one system's full state."""

    def __init__(self, stem: str, keep: int = 2,
                 stats: Optional[CheckpointStats] = None):
        if keep < 1:
            raise ValueError("must keep at least one generation")
        self.stem = stem
        self.keep = keep
        self.stats = stats if stats is not None else CheckpointStats()

    # -- generation bookkeeping ---------------------------------------------

    def path_for(self, generation: int) -> str:
        return f"{self.stem}.ckpt.{generation}"

    def generations(self) -> List[int]:
        """Existing generation numbers, newest first."""
        directory = os.path.dirname(self.stem) or "."
        prefix = os.path.basename(self.stem) + ".ckpt."
        pattern = re.compile(re.escape(prefix) + r"(\d+)$")
        found = []
        try:
            names = os.listdir(directory)
        except FileNotFoundError:
            return []
        for name in names:
            match = pattern.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found, reverse=True)

    def _prune(self) -> None:
        for generation in self.generations()[self.keep:]:
            try:
                os.unlink(self.path_for(generation))
            except OSError:
                pass

    # -- save / restore ------------------------------------------------------

    @staticmethod
    def _sections_of(state: dict) -> Tuple[dict, int]:
        """Normalize either system shape into named sections."""
        multicore = "cores" in state
        cycle = state["cycle"] if multicore else state["core"]["cycle"]
        sections = {
            "meta": {"multicore": multicore, "cycle": cycle},
            "hierarchy": state["hierarchy"],
            "cores": state["cores"] if multicore else [state["core"]],
        }
        if "occupancy" in state:
            sections["occupancy"] = state["occupancy"]
        return sections, cycle

    def save(self, system, programs) -> str:
        """Checkpoint ``system`` (paused between cycles) as a new generation."""
        sections, cycle = self._sections_of(system.state_dict())
        generations = self.generations()
        generation = generations[0] + 1 if generations else 0
        path = self.path_for(generation)
        nbytes = write_checkpoint(
            path, sections,
            config_hash=config_fingerprint(system.config),
            program_hash=program_fingerprint(programs),
            cycle=cycle)
        self.stats.saves += 1
        self.stats.save_cycles = cycle
        self.stats.bytes += nbytes
        self._prune()
        return path

    def restore(self, system, programs) -> RestoreResult:
        """Restore the newest verifiable generation into ``system``.

        Corrupt generations are rejected (with their fault class counted
        and reported) and the walk falls back to the next-older one.
        Raises :class:`CheckpointError` only when no generation restores:
        the newest rejection when at least one file existed, else kind
        ``"missing"``.
        """
        expect_config = config_fingerprint(system.config)
        expect_program = program_fingerprint(programs)
        rejected: List[CheckpointError] = []
        for generation in self.generations():
            path = self.path_for(generation)
            try:
                header, sections = read_checkpoint(
                    path, expect_config=expect_config,
                    expect_program=expect_program)
                state = self._assemble(sections)
                system.load_state_dict(state, programs)
            except CheckpointError as err:
                rejected.append(err)
                self.stats.corrupt_rejected += 1
                continue
            self.stats.restores += 1
            return RestoreResult(generation=generation, path=path,
                                 cycle=header["cycle"], rejected=rejected)
        if rejected:
            raise rejected[0]
        raise CheckpointError("no checkpoint generations found",
                              path=self.stem, kind="missing")

    @staticmethod
    def _assemble(sections: dict) -> dict:
        try:
            meta = sections["meta"]
            cores = sections["cores"]
            hierarchy = sections["hierarchy"]
        except KeyError as err:
            raise CheckpointError(f"section {err} absent", section=str(err),
                                  kind="section-corrupt")
        if meta.get("multicore"):
            return {"cycle": meta["cycle"], "hierarchy": hierarchy,
                    "cores": cores}
        state = {"hierarchy": hierarchy, "core": cores[0]}
        if "occupancy" in sections:
            state["occupancy"] = sections["occupancy"]
        return state


class CheckpointHook:
    """Adapter for :attr:`repro.pipeline.core.Core.checkpoint_hook`.

    ``core.run()`` calls :meth:`save` every ``interval`` simulated cycles;
    the hook re-checkpoints the whole owning system, so a long cell killed
    mid-run resumes from its latest periodic generation.
    """

    def __init__(self, manager: CheckpointManager, system, programs,
                 interval: int = 10_000):
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.manager = manager
        self.system = system
        self.programs = programs
        self.interval = interval

    def save(self, core) -> None:
        self.manager.save(self.system, self.programs)
