"""Durable checkpoint/restore of full simulated-system state.

``repro.checkpoint`` serializes a paused
:class:`~repro.system.SimulatedSystem` (or
:class:`~repro.multicore.system.MulticoreSystem`) — pipeline, memory
hierarchy, MTE tags, predictors, RNG streams, telemetry — to a versioned,
checksummed file, and restores it to a byte-identical continuation.

Layers:

- :mod:`repro.checkpoint.format` — the sectioned, hashed, atomically
  written file format and its fail-closed reader;
- :mod:`repro.checkpoint.manager` — generation rotation, newest→oldest
  corruption fallback, and the periodic in-run checkpoint hook;
- :mod:`repro.checkpoint.corrupt` — the damage primitives the tests and
  the fault injector aim at checkpoint files;
- :mod:`repro.checkpoint.stats` — the ``checkpoint.*`` telemetry counters.

``python -m repro.checkpoint --smoke`` exercises the full ladder
end-to-end (see :mod:`repro.checkpoint.__main__`).
"""

from repro.checkpoint.format import (
    config_fingerprint,
    MAGIC,
    program_fingerprint,
    read_checkpoint,
    read_header,
    SCHEMA_VERSION,
    section_ranges,
    write_checkpoint,
)
from repro.checkpoint.manager import (
    CheckpointHook,
    CheckpointManager,
    RestoreResult,
)
from repro.checkpoint.stats import CheckpointStats

__all__ = [
    "CheckpointHook",
    "CheckpointManager",
    "CheckpointStats",
    "config_fingerprint",
    "MAGIC",
    "program_fingerprint",
    "read_checkpoint",
    "read_header",
    "RestoreResult",
    "SCHEMA_VERSION",
    "section_ranges",
    "write_checkpoint",
]
