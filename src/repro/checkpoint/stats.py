"""Checkpoint telemetry counters.

A plain stats dataclass in the style of
:class:`~repro.pipeline.stats.CoreStats`: flat integer fields the
checkpoint machinery bumps directly, registered under the ``checkpoint``
scope by :func:`repro.telemetry.registry.system_registry` (pass the object
as its ``checkpoint`` argument, or attach it to a system's
``checkpoint_stats``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass
class CheckpointStats:
    """Counters for one system's checkpoint activity."""

    #: Checkpoints written.
    saves: int = 0
    #: Simulated cycle of the most recent save (how much re-simulation a
    #: restore avoids).
    save_cycles: int = 0
    #: Total bytes written across all saves.
    bytes: int = 0
    #: Successful restores.
    restores: int = 0
    #: Checkpoint generations rejected as corrupt during restore walks.
    corrupt_rejected: int = 0

    def state_dict(self) -> dict:
        return dataclasses.asdict(self)

    def load_state_dict(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, int(value))
