"""The resilient spec-lint service: asyncio front end over the pools.

:class:`SpecLintService` wires every robustness mechanism of the package
into one always-on front end (TCP and stdio share the same stream
handler):

1. **Admission** — each ``lint`` line is parsed (typed rejections for
   malformed/oversize/unsupported input) and offered to the
   :class:`~repro.service.admission.AdmissionController`; past the queue
   or per-client bound the client hears ``overloaded`` /
   ``client-over-limit`` immediately instead of waiting forever.
2. **Dispatch** — a fixed set of dispatcher tasks drains the queue in
   round-robin client order.  Every accepted request resolves: to a
   verdict, a degraded-tier verdict, or a typed error — the invariant the
   chaos drill checks.
3. **Degradation ladder** — ``static+dynamic`` → ``static`` → ``cache``
   → shed (``degraded-unavailable``), stepping down when the relevant
   pool's circuit breaker is open or its workers are lost.  The served
   tier, and whether it is below the requested one, is recorded in every
   response and in the ``service.tier.*`` stats.
4. **Single-flight + durable cache** — identical in-flight requests
   coalesce onto one computation; completed verdicts persist to
   ``verdicts.jsonl`` so a drained restart answers repeat content from
   cache without touching a worker.
5. **Drain** — SIGTERM/SIGINT stops admission, lets in-flight work
   finish inside ``drain_timeout_s``, then cuts stragglers with typed
   ``cancelled`` responses, reaps every worker, and writes
   ``shutdown-report.json``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, List, Optional, Tuple

from repro.campaign.store import atomic_write
from repro.errors import ServiceError
from repro.service.admission import AdmissionController
from repro.service.breaker import CircuitBreaker, Quarantine
from repro.service.cache import SingleFlight, VerdictCache
from repro.service.protocol import (MAX_REQUEST_BYTES, Request, content_key,
                                    encode, error_response, ok_response,
                                    parse_request, pong_response,
                                    stats_response, timing_breakdown)
from repro.service.supervisor import WorkerPool
from repro.telemetry.obs import (SPAN_CACHE_LOOKUP, SPAN_CONFIRM,
                                 SPAN_POOL_DISPATCH, SPAN_QUEUE_WAIT,
                                 SPAN_STATIC_LINT, FlightRecorder, Span,
                                 SpanRecorder, new_trace_id)
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.service import (TIER_CACHE, TIER_FULL, TIER_STATIC,
                                     ServiceStats)

SHUTDOWN_REPORT = "shutdown-report.json"
#: Request-scoped span log, appended to in the state dir.
SPANS_LOG = "spans.jsonl"
#: Flight-recorder dump written next to the shutdown report at drain.
FLIGHT_DUMP = "flight-recorder.json"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (tests shrink the timeouts)."""

    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral; resolved at start()
    max_queue: int = 16
    max_per_client: int = 4
    static_workers: int = 2
    dynamic_workers: int = 2
    default_deadline_s: float = 20.0
    max_deadline_s: float = 60.0
    drain_timeout_s: float = 8.0
    max_request_bytes: int = MAX_REQUEST_BYTES
    allow_chaos: bool = False          # honour chaos modes (smoke drill)
    max_restarts: int = 1
    stall_timeout_s: float = 15.0
    breaker_threshold: int = 3
    breaker_reset_s: float = 5.0
    quarantine_deaths: int = 2
    max_confirm_cycles: int = 200_000
    #: Flight-recorder ring capacity (events kept per process).
    flight_capacity: int = 256
    #: Write the request span log (spans.jsonl in the state dir).
    span_log: bool = True


@dataclass
class _Work:
    """One admitted lint request awaiting dispatch."""

    client_id: str
    request: Request
    future: "asyncio.Future[dict]"
    deadline: float                     # absolute, time.monotonic scale
    trace: str = ""                     # request-scoped trace ID
    admitted_at: float = field(default_factory=time.monotonic)


@dataclass
class _TraceCtx:
    """Span-recording context threaded through one request's ladder."""

    trace: str
    root: str                           # span id of the request root span


def _peek_id(text: str) -> str:
    """Best-effort request id from a line that failed validation."""
    try:
        data = json.loads(text)
    except (json.JSONDecodeError, ValueError):
        return ""
    if isinstance(data, dict) and isinstance(data.get("id"), (str, int)):
        return str(data["id"])
    return ""


class SpecLintService:
    """One service instance: pools, cache, admission, dispatchers."""

    def __init__(self, config: ServiceConfig, *,
                 stats: Optional[ServiceStats] = None,
                 worker_argv: Optional[Callable[..., List[str]]] = None):
        self.config = config
        self.stats = stats if stats is not None else ServiceStats()
        os.makedirs(config.state_dir, exist_ok=True)
        self.flight = FlightRecorder(capacity=config.flight_capacity)
        self.spans = SpanRecorder(
            os.path.join(config.state_dir, SPANS_LOG)
            if config.span_log else None,
            flight=self.flight)
        self.cache = VerdictCache(config.state_dir)
        self.flights = SingleFlight()
        self.admission = AdmissionController(
            max_queue=config.max_queue,
            max_per_client=config.max_per_client)
        self.quarantine = Quarantine(
            death_threshold=config.quarantine_deaths,
            on_quarantine=lambda key: self.flight.record(
                "quarantine", key=key))
        work_dir = os.path.join(config.state_dir, "work")
        pool_kwargs = dict(
            stats=self.stats, quarantine=self.quarantine,
            max_restarts=config.max_restarts,
            stall_timeout_s=config.stall_timeout_s,
            allow_chaos=config.allow_chaos, worker_argv=worker_argv,
            flight=self.flight)
        self.static_pool = WorkerPool(
            "static", work_dir, size=config.static_workers,
            breaker=self._breaker("static"), **pool_kwargs)
        self.dynamic_pool = WorkerPool(
            "dynamic", work_dir, size=config.dynamic_workers,
            breaker=self._breaker("dynamic"), **pool_kwargs)
        self.draining = False
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatchers: List[asyncio.Task] = []
        self._drain_task: Optional[asyncio.Task] = None
        self._drained = asyncio.Event()
        self._conn_seq = itertools.count()
        self.shutdown_report: Optional[dict] = None

    def _breaker(self, pool_name: str) -> CircuitBreaker:
        def on_open() -> None:
            self.stats.breaker_opens.inc()
            self.flight.record("breaker-open", pool=pool_name)

        return CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_timeout_s=self.config.breaker_reset_s,
            on_open=on_open)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the TCP listener and start the dispatcher tasks."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=max(self.config.max_request_bytes * 2, 64 * 1024))
        self.port = self._server.sockets[0].getsockname()[1]
        count = self.config.static_workers + self.config.dynamic_workers
        self._dispatchers = [
            asyncio.create_task(self._dispatcher(), name=f"dispatch-{i}")
            for i in range(max(2, count))]

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (main thread only)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, ValueError):
                return   # non-main thread or unsupported platform

    def request_drain(self) -> None:
        """Idempotent drain trigger (signal handler / tests)."""
        if self._drain_task is None:
            self._drain_task = asyncio.create_task(
                self._drain(), name="drain")

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def _drain(self) -> dict:
        """Stop admission, settle in-flight work, cut stragglers, report."""
        self.draining = True
        self.admission.close()   # new work is rejected with "draining"
        cutoff = time.monotonic() + self.config.drain_timeout_s
        while self.admission.outstanding > 0 and time.monotonic() < cutoff:
            await asyncio.sleep(0.02)

        # Cut whatever is still queued: each accepted request still gets
        # a typed response — the no-lost-requests invariant.
        queued_cut = 0
        for client_id, work in self.admission.flush():
            self._finish(work, error_response(
                work.request.id,
                ServiceError("server drained before this request ran",
                             kind="cancelled")))
            self.stats.cancelled_at_drain.inc()
            self.stats.errored.inc()
            queued_cut += 1

        # Idle dispatchers notice the closed queue and exit on their own;
        # only those still computing past the timeout get cancelled (their
        # CancelledError paths answer the work future and reap the worker).
        _, busy = await asyncio.wait(
            self._dispatchers, timeout=0.25) if self._dispatchers \
            else (set(), set())
        running_cut = sum(1 for task in busy if task.cancel())
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        abandoned = self.flights.abandon_all(
            ServiceError("server drained mid-computation",
                         kind="cancelled"))
        reaped = self.static_pool.reap_all() + self.dynamic_pool.reap_all()

        status = "drained" if not (queued_cut or running_cut) else "cut"
        report = {
            "status": status,
            "queued_cut": queued_cut,
            "running_cut": running_cut,
            "flights_abandoned": abandoned,
            "workers_reaped_at_drain": reaped,
            "cache_entries": len(self.cache),
            "cache_rejected_at_load": self.cache.rejected,
            "admission": self.admission.snapshot(),
            "pools": [self.static_pool.snapshot(),
                      self.dynamic_pool.snapshot()],
            "quarantine": self.quarantine.snapshot(),
            "stats": self.stats.dump(),
            "flight": {"recorded": self.flight.recorded,
                       "dropped": self.flight.dropped,
                       "dump": FLIGHT_DUMP},
        }
        atomic_write(os.path.join(self.config.state_dir, FLIGHT_DUMP),
                     json.dumps(self.flight.dump(), indent=2,
                                sort_keys=True))
        atomic_write(os.path.join(self.config.state_dir, SHUTDOWN_REPORT),
                     json.dumps(report, indent=2, sort_keys=True))
        self.spans.close()
        self.shutdown_report = report
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()
        return report

    # -- connections ---------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        client_id = (f"{peer[0]}:{peer[1]}" if peer
                     else f"conn-{next(self._conn_seq)}")
        await self.serve_stream(reader, writer, client_id)

    async def serve_stream(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           client_id: str) -> None:
        """Request/response loop over one line stream (TCP or stdio).

        Each line gets its own response task so a client may pipeline —
        responses interleave by completion order and carry the request id.
        """
        lock = asyncio.Lock()

        async def send(response: dict) -> None:
            async with lock:
                writer.write(encode(response).encode("utf-8"))
                await writer.drain()

        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    # Event-loop teardown cancelling a connection task is
                    # a normal hang-up, not an error to propagate.
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    # The line never fit in the stream buffer; the only
                    # safe recovery is to answer typed and hang up.
                    err = ServiceError(
                        "request line exceeds the stream limit",
                        kind="oversize")
                    self.stats.reject("oversize")
                    await send(error_response("", err))
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                task = asyncio.create_task(
                    self._respond(client_id, text, send))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, client_id: str, text: str,
                       send: Callable[[dict], Awaitable[None]]) -> None:
        """Parse, admit, await, and write the response for one line."""
        try:
            request = parse_request(text, self.config.max_request_bytes)
        except ServiceError as exc:
            self.stats.reject(exc.kind)
            await send(error_response(_peek_id(text), exc))
            return
        if request.op == "ping":
            await send(pong_response(request.id, self.health()))
            return
        if request.op == "stats":
            if request.fmt == "prometheus":
                await send(stats_response(
                    request.id, render_prometheus(self.stats.registry),
                    fmt="prometheus"))
            else:
                await send(stats_response(request.id, self.stats.dump()))
            return

        trace = request.trace or new_trace_id()
        budget = min(request.deadline_s
                     if request.deadline_s is not None
                     else self.config.default_deadline_s,
                     self.config.max_deadline_s)
        work = _Work(client_id=client_id, request=request,
                     future=asyncio.get_running_loop().create_future(),
                     deadline=time.monotonic() + budget, trace=trace)
        try:
            self.admission.admit(client_id, work)
        except ServiceError as exc:
            self.stats.reject(exc.kind)
            self.flight.record("shed", kind=exc.kind, trace=trace,
                               client=client_id)
            exc.flight = tuple(self.flight.tail())
            await send(error_response(request.id, exc, trace=trace))
            return
        self.stats.accepted.inc()
        await send(await work.future)

    # -- dispatch ------------------------------------------------------------

    def _finish(self, work: _Work, response: dict) -> None:
        if not work.future.done():
            work.future.set_result(response)
        self.admission.done(work.client_id)

    async def _dispatcher(self) -> None:
        while True:
            entry = await self.admission.next()
            if entry is None:
                return   # drained and empty
            _, work = entry
            try:
                response = await self._serve(work)
            except asyncio.CancelledError:
                self._finish(work, error_response(
                    work.request.id,
                    ServiceError("request cut by drain timeout",
                                 kind="cancelled"), trace=work.trace))
                self.stats.cancelled_at_drain.inc()
                self.stats.errored.inc()
                raise
            except Exception as exc:   # bulkhead: dispatcher never dies
                response = error_response(
                    work.request.id,
                    ServiceError(f"internal dispatch failure: {exc}",
                                 kind="worker-lost"), trace=work.trace)
                self.stats.errored.inc()
            self._finish(work, response)

    async def _serve(self, work: _Work) -> dict:
        request = work.request
        start = time.monotonic()
        queue_wait_ms = max(0.0, (start - work.admitted_at) * 1000.0)
        key = content_key(request)
        ctx = _TraceCtx(trace=work.trace, root=new_trace_id())
        self.spans.record(
            work.trace, SPAN_QUEUE_WAIT, parent_id=ctx.root,
            t0_ms=self.spans.at(work.admitted_at), dur_ms=queue_wait_ms,
            client=work.client_id)
        try:
            result = await self._lint(request, key, work.deadline, ctx)
        except ServiceError as exc:
            self.stats.errored.inc()
            self.flight.record("request-error", trace=work.trace,
                               kind=exc.kind, key=key)
            exc.flight = tuple(self.flight.tail())
            self._emit_root(ctx, work, status="error", error=exc.kind)
            return error_response(request.id, exc, trace=work.trace)
        row = result["row"]
        end = time.monotonic()
        worker_timings = row.get("timings", {}) if not result["cached"] \
            else {}
        timings = timing_breakdown(
            queue_wait_ms=queue_wait_ms,
            analysis_ms=float(worker_timings.get("analysis_ms", 0.0)),
            confirm_ms=float(worker_timings.get("confirm_ms", 0.0)),
            total_ms=(end - work.admitted_at) * 1000.0)
        self.stats.observe_timings(timings)
        self._emit_root(ctx, work, tier=result["tier"],
                        cached=result["cached"])
        self.stats.completed.inc()
        self.stats.serve(result["tier"], degraded=result["degraded"])
        return ok_response(
            request.id, tier=result["tier"],
            verdicts=row.get("verdicts", {}),
            gadgets=row.get("gadgets", []),
            degraded=result["degraded"],
            degraded_reason=result["degraded_reason"],
            cached=result["cached"],
            coalesced=result.get("coalesced", False),
            dynamic=row.get("dynamic"),
            elapsed_s=end - start, trace=work.trace, timings=timings)

    def _emit_root(self, ctx: _TraceCtx, work: _Work,
                   status: str = "ok", **attrs) -> None:
        """Close the request root span (its id was pre-minted so child
        spans recorded during the ladder already link to it)."""
        attrs.setdefault("op", work.request.op)
        t0 = self.spans.at(work.admitted_at)
        self.spans.emit(Span(
            trace_id=work.trace, span_id=ctx.root, parent_id="",
            name="request", t0_ms=t0, dur_ms=self.spans.now() - t0,
            status=status, attrs=attrs))

    # -- the ladder ----------------------------------------------------------

    async def _lint(self, request: Request, key: str, deadline: float,
                    ctx: _TraceCtx) -> dict:
        """Cache → single-flight → compute; returns the serve record."""
        with self.spans.span(ctx.trace, SPAN_CACHE_LOOKUP,
                             parent_id=ctx.root, key=key) as lookup:
            row = self.cache.get(key)
            lookup.annotate(hit=row is not None)
        if row is not None:
            self.stats.cache_hits.inc()
            return {"row": row, "tier": row.get("tier", TIER_STATIC),
                    "degraded": False, "degraded_reason": "",
                    "cached": True}
        self.stats.cache_misses.inc()
        future, leader = self.flights.begin(key)
        if not leader:
            self.stats.coalesced.inc()
            result = await future   # leader's ServiceError propagates
            return {**result, "coalesced": True}
        try:
            result = await self._compute(request, key, deadline, ctx)
        except BaseException as exc:
            self.flights.resolve(key, error=exc)
            raise
        self.flights.resolve(key, result=result)
        return result

    async def _submit(self, pool: WorkerPool, job: dict, key: str,
                      deadline: float, ctx: _TraceCtx) -> dict:
        """One pool submission wrapped in a ``pool-dispatch`` span, with
        the worker-reported phase durations re-based as child spans."""
        with self.spans.span(ctx.trace, SPAN_POOL_DISPATCH,
                             parent_id=ctx.root, pool=pool.name,
                             key=key) as dispatch:
            row = dict(await pool.submit(job, key=key, deadline=deadline))
        timings = row.get("timings", {})
        now = self.spans.now()
        analysis_ms = float(timings.get("analysis_ms", 0.0))
        confirm_ms = float(timings.get("confirm_ms", 0.0))
        if analysis_ms > 0.0:
            self.spans.record(
                ctx.trace, SPAN_STATIC_LINT,
                parent_id=dispatch.span_id,
                t0_ms=now - analysis_ms - confirm_ms,
                dur_ms=analysis_ms, pool=pool.name)
        if confirm_ms > 0.0:
            self.spans.record(
                ctx.trace, SPAN_CONFIRM, parent_id=dispatch.span_id,
                t0_ms=now - confirm_ms, dur_ms=confirm_ms,
                pool=pool.name)
        return row

    async def _compute(self, request: Request, key: str, deadline: float,
                       ctx: _TraceCtx) -> dict:
        if self.quarantine.blocked(key):
            raise ServiceError(
                f"content hash {key} is quarantined as a poison program",
                kind="quarantined")
        job = self._job_of(request, ctx.trace)
        reasons: List[str] = []

        # Rung 1: full static+dynamic.
        if request.confirm:
            if self.dynamic_pool.healthy:
                try:
                    row = await self._submit(
                        self.dynamic_pool, job, key, deadline, ctx)
                    row["tier"] = TIER_FULL
                    self.cache.put(key, row)
                    return {"row": row, "tier": TIER_FULL,
                            "degraded": False, "degraded_reason": "",
                            "cached": False}
                except ServiceError as exc:
                    if exc.kind != "worker-lost":
                        raise
                    reasons.append(f"dynamic confirmation lost: {exc}")
            else:
                reasons.append("dynamic pool circuit breaker is open")

        # Rung 2: static-only.
        static_key = key
        if request.confirm:
            static_key = content_key(
                dataclasses.replace(request, confirm=False))
        static_job = dict(job)
        static_job["confirm"] = False
        if self.static_pool.healthy:
            try:
                row = await self._submit(
                    self.static_pool, static_job, key, deadline, ctx)
                row["tier"] = TIER_STATIC
                self.cache.put(static_key, row)
                if request.confirm:
                    self.flight.record(
                        "degrade", trace=ctx.trace, to=TIER_STATIC,
                        reason="; ".join(reasons))
                return {"row": row, "tier": TIER_STATIC,
                        "degraded": bool(request.confirm),
                        "degraded_reason": "; ".join(reasons),
                        "cached": False}
            except ServiceError as exc:
                if exc.kind != "worker-lost":
                    raise
                reasons.append(f"static analysis lost: {exc}")
        else:
            reasons.append("static pool circuit breaker is open")

        # Rung 3: cache-only — any completed verdict for this content.
        for candidate in (key, static_key):
            row = self.cache.get(candidate)
            if row is not None:
                self.flight.record(
                    "degrade", trace=ctx.trace, to=TIER_CACHE,
                    reason="; ".join(reasons))
                return {"row": row, "tier": TIER_CACHE, "degraded": True,
                        "degraded_reason": "; ".join(reasons),
                        "cached": True}

        # Rung 4: shed, typed.
        raise ServiceError(
            "all tiers unavailable: "
            + ("; ".join(reasons) or "no pool, no cached verdict"),
            kind="degraded-unavailable")

    def _job_of(self, request: Request, trace: str = "") -> dict:
        # ``summary_dir`` points workers at the shared persistent summary
        # cache: function-granular reuse beneath the whole-program verdict
        # cache (a resubmission editing one function only re-analyzes it
        # and its transitive callers).
        return {"source": request.source, "witness": request.witness,
                "secret_ranges": [list(r) for r in request.secret_ranges],
                "defense": request.defense.value,
                "confirm": request.confirm, "chaos": request.chaos,
                "max_cycles": self.config.max_confirm_cycles,
                "summary_dir": os.path.join(self.config.state_dir,
                                            "summaries"),
                "trace": trace}

    # -- observability -------------------------------------------------------

    def health(self) -> dict:
        return {"draining": self.draining,
                "admission": self.admission.snapshot(),
                "pools": [self.static_pool.snapshot(),
                          self.dynamic_pool.snapshot()],
                "cache": {"entries": len(self.cache),
                          "rejected_at_load": self.cache.rejected,
                          "in_flight": self.flights.in_flight},
                "quarantine": self.quarantine.snapshot()}


async def open_stdio_stream(
        limit: int) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Asyncio reader/writer over this process's stdin/stdout."""
    import sys
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader(limit=limit)
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin)
    transport, proto = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout)
    writer = asyncio.StreamWriter(transport, proto, reader, loop)
    return reader, writer
