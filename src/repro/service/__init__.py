"""Resilient spec-lint service: the always-on front end over the lint
pipeline (static analysis + optional dynamic confirmation on the
simulator).

Run it with ``python -m repro.service --state-dir DIR`` (TCP) or
``--stdio``; speak the JSON-lines protocol of
:mod:`repro.service.protocol`.  The architecture is documented in
DESIGN.md §Service; the layering here is:

- :mod:`repro.service.protocol` — request/response schema, content keys;
- :mod:`repro.service.admission` — bounded fair queueing, load shedding;
- :mod:`repro.service.breaker` — circuit breaker + poison quarantine;
- :mod:`repro.service.cache` — durable verdict cache + single-flight;
- :mod:`repro.service.worker` — the per-job subprocess;
- :mod:`repro.service.supervisor` — the supervised async worker pool;
- :mod:`repro.service.server` — admission → ladder → response wiring.
"""

from repro.service.server import ServiceConfig, SpecLintService

__all__ = ["ServiceConfig", "SpecLintService"]
