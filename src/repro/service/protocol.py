"""JSON-lines protocol of the spec-lint service.

One request per line, one response per line, plain TCP or stdio — no
framing library, no third-party deps.  A request is a JSON object::

    {"id": "r1", "op": "lint", "source": "...assembly...",
     "defense": "specasan", "secret_ranges": [[16640, 16656]],
     "confirm": true, "deadline_s": 10.0}

- ``op`` — ``lint`` (the work op), ``ping`` (liveness + health snapshot),
  or ``stats`` (live ``service.*`` registry dump).  Both auxiliary ops are
  answered inline and never enter the admission queue.
- ``source`` *or* ``witness`` — the program: ``.s`` assembly text, or the
  name of a synthesized witness subject (``pht``, ``stl/untagged``, ...)
  standing in for a pre-assembled program.
- ``defense`` — the :class:`~repro.config.DefenseKind` dynamic
  confirmation runs under; the static verdict table always covers every
  defense.
- ``deadline_s`` — the request budget; it bounds queue time, analysis,
  and simulator confirmation together (server caps apply).
- ``confirm`` — request the full static+dynamic tier; the server may
  degrade it (ladder: ``static+dynamic`` → ``static`` → ``cache``) and
  records the served tier in the response.

Responses echo ``id`` and carry either ``"ok": true`` with the verdict
payload (``tier``, ``degraded``, ``cached``, ``verdicts``, ``gadgets``,
optional ``dynamic``) or ``"ok": false`` with a typed error object whose
``kind`` is one of :data:`repro.errors.SERVICE_ERROR_KINDS`.  Every lint
response additionally carries the request's ``trace`` ID (client-supplied
``trace`` field, or minted at admission) and — on success — a ``timings``
breakdown (``queue_wait_ms`` / ``analysis_ms`` / ``confirm_ms`` /
``other_ms``) whose parts sum to ``total_ms`` exactly.  The ``stats`` op
accepts ``"format": "prometheus"`` for a text exposition snapshot.

Every malformed input maps to a :class:`~repro.errors.ServiceError`, never
an unhandled exception: the parse layer is the service's first bulkhead.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.config import DefenseKind
from repro.errors import ServiceError
from repro.telemetry.obs import is_trace_id

#: Protocol schema version, echoed in responses; requests may pin it.
PROTOCOL_VERSION = 1

#: Default cap on one request line (oversize requests are shed unread).
MAX_REQUEST_BYTES = 256 * 1024

#: Ops answered from the admission queue vs. inline.
WORK_OPS = frozenset({"lint"})
INLINE_OPS = frozenset({"ping", "stats"})
OPS = WORK_OPS | INLINE_OPS

#: Chaos modes a worker honours only when the server enables fault
#: injection (``--allow-chaos``): the smoke drill's crash/hang levers.
CHAOS_MODES = frozenset({"die", "hang"})


@dataclass(frozen=True)
class Request:
    """One validated protocol request."""

    id: str
    op: str
    source: str = ""
    witness: str = ""
    defense: DefenseKind = DefenseKind.SPECASAN
    secret_ranges: Tuple[Tuple[int, int], ...] = ()
    confirm: bool = False
    deadline_s: Optional[float] = None
    chaos: str = ""
    #: Client-supplied trace ID; the server mints one when empty and
    #: echoes it in the response either way.
    trace: str = ""
    #: ``stats`` op output format: ``json`` (registry dump) or
    #: ``prometheus`` (text exposition snapshot).
    fmt: str = "json"

    @property
    def subject(self) -> str:
        return self.witness if self.witness else self.source


def _require(condition: bool, message: str, kind: str = "malformed") -> None:
    if not condition:
        raise ServiceError(message, kind=kind)


def parse_request(line: str,
                  max_bytes: int = MAX_REQUEST_BYTES) -> Request:
    """Validate one request line into a :class:`Request` (fail typed)."""
    _require(len(line.encode("utf-8", errors="replace")) <= max_bytes,
             f"request exceeds {max_bytes} bytes", kind="oversize")
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"request is not valid JSON: {exc.msg}",
                           kind="malformed")
    _require(isinstance(data, dict), "request must be a JSON object")
    version = data.get("v", PROTOCOL_VERSION)
    _require(version == PROTOCOL_VERSION,
             f"protocol version {version!r} != {PROTOCOL_VERSION}",
             kind="unsupported")

    request_id = data.get("id")
    _require(request_id is None or isinstance(request_id, (str, int)),
             "id must be a string or integer")
    op = data.get("op", "lint")
    _require(isinstance(op, str) and op in OPS,
             f"unknown op {op!r}; have {sorted(OPS)}", kind="unsupported")

    source = data.get("source", "")
    witness = data.get("witness", "")
    _require(isinstance(source, str) and isinstance(witness, str),
             "source/witness must be strings")
    if op in WORK_OPS:
        _require(bool(source) ^ bool(witness),
                 "exactly one of source (.s text) or witness "
                 "(gadget-class subject) is required")

    defense_name = data.get("defense", DefenseKind.SPECASAN.value)
    try:
        defense = DefenseKind(defense_name)
    except ValueError:
        raise ServiceError(
            f"unknown defense {defense_name!r}; have "
            f"{[d.value for d in DefenseKind]}", kind="malformed")

    raw_ranges = data.get("secret_ranges", [])
    _require(isinstance(raw_ranges, list), "secret_ranges must be a list")
    ranges: List[Tuple[int, int]] = []
    for entry in raw_ranges:
        _require(isinstance(entry, (list, tuple)) and len(entry) == 2
                 and all(isinstance(v, int) for v in entry),
                 f"secret range {entry!r} must be [lo, hi]")
        lo, hi = entry
        _require(0 <= lo < hi, f"secret range [{lo}, {hi}] must satisfy "
                               "0 <= lo < hi")
        ranges.append((lo, hi))

    confirm = data.get("confirm", False)
    _require(isinstance(confirm, bool), "confirm must be a boolean")
    deadline_s = data.get("deadline_s")
    _require(deadline_s is None
             or (isinstance(deadline_s, (int, float))
                 and not isinstance(deadline_s, bool) and deadline_s > 0),
             "deadline_s must be a positive number")
    chaos = data.get("chaos", "")
    _require(chaos == "" or chaos in CHAOS_MODES,
             f"unknown chaos mode {chaos!r}", kind="unsupported")
    trace = data.get("trace", "")
    _require(trace == "" or is_trace_id(trace),
             f"trace must be a short lowercase hex id, got {trace!r}")
    fmt = data.get("format", "json")
    _require(fmt in ("json", "prometheus"),
             f"unknown stats format {fmt!r}; have ['json', 'prometheus']",
             kind="unsupported")

    return Request(
        id="" if request_id is None else str(request_id), op=op,
        source=source, witness=witness, defense=defense,
        secret_ranges=tuple(ranges), confirm=confirm,
        deadline_s=float(deadline_s) if deadline_s is not None else None,
        chaos=chaos, trace=trace, fmt=fmt)


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------

def timing_breakdown(*, queue_wait_ms: float, analysis_ms: float,
                     confirm_ms: float, total_ms: float) -> dict:
    """The served-tier timing breakdown carried in every response.

    The named parts never overlap; ``other_ms`` is the remainder (process
    spawn, cache I/O, scheduling) so the parts always sum to the observed
    ``total_ms`` exactly — the envelope invariant the tests assert.
    """
    queue_wait_ms = max(0.0, queue_wait_ms)
    analysis_ms = max(0.0, analysis_ms)
    confirm_ms = max(0.0, confirm_ms)
    total_ms = max(total_ms, queue_wait_ms + analysis_ms + confirm_ms)
    other_ms = total_ms - queue_wait_ms - analysis_ms - confirm_ms
    return {"queue_wait_ms": round(queue_wait_ms, 3),
            "analysis_ms": round(analysis_ms, 3),
            "confirm_ms": round(confirm_ms, 3),
            "other_ms": round(other_ms, 3),
            "total_ms": round(queue_wait_ms + analysis_ms + confirm_ms
                              + other_ms, 3)}


def ok_response(request_id: str, *, tier: str, verdicts: dict,
                gadgets: list, degraded: bool = False,
                degraded_reason: str = "", cached: bool = False,
                coalesced: bool = False, dynamic: Optional[dict] = None,
                elapsed_s: float = 0.0, trace: str = "",
                timings: Optional[dict] = None) -> dict:
    response = {
        "v": PROTOCOL_VERSION, "id": request_id, "ok": True,
        "tier": tier, "degraded": degraded, "cached": cached,
        "coalesced": coalesced, "verdicts": verdicts, "gadgets": gadgets,
        "elapsed_s": round(elapsed_s, 6),
    }
    if trace:
        response["trace"] = trace
    if timings is not None:
        response["timings"] = timings
    if degraded_reason:
        response["degraded_reason"] = degraded_reason
    if dynamic is not None:
        response["dynamic"] = dynamic
    return response


def error_response(request_id: str, error: ServiceError,
                   trace: str = "") -> dict:
    response = {
        "v": PROTOCOL_VERSION, "id": request_id, "ok": False,
        "error": {"kind": error.kind, "message": str(error),
                  "retryable": error.retryable},
    }
    if trace:
        response["trace"] = trace
    return response


def pong_response(request_id: str, health: dict) -> dict:
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True,
            "pong": True, "health": health}


def stats_response(request_id: str, stats,
                   fmt: str = "json") -> dict:
    """``stats`` op payload: a registry dump (``json``) or a Prometheus
    text exposition snapshot (``prometheus``)."""
    if fmt == "prometheus":
        return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True,
                "format": "prometheus", "stats_text": stats}
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True,
            "stats": stats}


def encode(response: dict) -> str:
    """One response line (newline-terminated, compact)."""
    return json.dumps(response, sort_keys=True,
                      separators=(",", ":")) + "\n"


# ----------------------------------------------------------------------
# content identity
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _ContentKeyFields:
    """What makes two lint requests 'the same computation'."""

    subject: str
    is_witness: bool
    defense: str
    secret_ranges: Tuple[Tuple[int, int], ...] = ()
    confirm: bool = False
    chaos: str = field(default="")


def content_key(request: Request) -> str:
    """Content hash coalescing identical (program, config) requests.

    The served verdict depends on exactly these fields, so two requests
    agreeing on them share one computation (single-flight) and one cache
    entry.  Chaos-mode requests are keyed apart so an injected crash never
    poisons the cache entry of the genuine program.
    """
    fields = _ContentKeyFields(
        subject=request.subject, is_witness=bool(request.witness),
        defense=request.defense.value,
        secret_ranges=request.secret_ranges, confirm=request.confirm,
        chaos=request.chaos)
    canonical = json.dumps(
        {"subject": fields.subject, "witness": fields.is_witness,
         "defense": fields.defense,
         "secrets": [list(r) for r in fields.secret_ranges],
         "confirm": fields.confirm, "chaos": fields.chaos},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
