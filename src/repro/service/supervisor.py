"""Supervised async worker pool for the spec-lint service.

Wraps the shared :mod:`repro.campaign.pool` primitives (launch, heartbeat
liveness, exit classification, reap) in an asyncio supervision loop:

- **bounded concurrency** — at most ``size`` worker subprocesses per pool;
- **deadlines** — each job runs under the request's remaining budget as
  its wall limit; overruns are reaped and surface as typed ``deadline``
  errors, refunding the slot;
- **cooperative cancellation** — cancelling :meth:`WorkerPool.submit`
  reaps the subprocess before propagating, so a dropped client or a drain
  cut never leaks a worker;
- **heartbeat liveness** — a worker that stops pulsing (wedged analyzer,
  livelocked simulation) is reaped as ``stalled`` and treated as a death;
- **automatic restart with exponential backoff** — environmental deaths
  (crash, signal, stall) are retried up to ``max_restarts`` times with
  ``backoff_base_s * 2**k`` waits, clipped to the remaining budget;
- **circuit breaker + quarantine** — every death feeds the pool's
  :class:`~repro.service.breaker.CircuitBreaker` (consecutive deaths trip
  it; the ladder then routes around the pool) and the per-content-hash
  :class:`~repro.service.breaker.Quarantine` (a hash that keeps killing
  workers is poison and gets typed ``quarantined`` rejections).

The pool is job-per-process, so "restart" means relaunching the job in a
fresh subprocess — there is no long-lived worker state to resurrect, which
is exactly what makes the restarts safe.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import sys
import time
from typing import Callable, List, Optional

from repro.campaign import pool
from repro.campaign.pool import AdaptiveWait, WorkerExit
from repro.campaign.store import atomic_write
from repro.errors import ServiceError
from repro.service.breaker import CircuitBreaker, Quarantine
from repro.telemetry.obs import FlightRecorder
from repro.telemetry.service import ServiceStats

#: Worker-exit kinds that count as deaths (environmental, retryable).
DEATH_KINDS = frozenset({"crashed", "killed", pool.STALLED})


def default_worker_argv(paths: dict, allow_chaos: bool) -> List[str]:
    argv = [sys.executable, "-m", "repro.service.worker",
            "--spec", paths["spec"], "--out", paths["out"],
            "--heartbeat", paths["heartbeat"]]
    if allow_chaos:
        argv.append("--allow-chaos")
    return argv


class WorkerPool:
    """One supervised pool (the service runs two: static and dynamic)."""

    def __init__(self, name: str, work_dir: str, *, size: int = 2,
                 stats: Optional[ServiceStats] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 quarantine: Optional[Quarantine] = None,
                 max_restarts: int = 1, backoff_base_s: float = 0.05,
                 stall_timeout_s: float = 20.0, allow_chaos: bool = False,
                 worker_argv: Optional[Callable[..., List[str]]] = None,
                 flight: Optional[FlightRecorder] = None):
        self.name = name
        self.work_dir = work_dir
        self.stats = stats
        self.flight = flight
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.quarantine = quarantine
        self.max_restarts = max_restarts
        self.backoff_base_s = backoff_base_s
        self.stall_timeout_s = stall_timeout_s
        self.allow_chaos = allow_chaos
        self.worker_argv = worker_argv or default_worker_argv
        self._slots = asyncio.Semaphore(size)
        self._seq = itertools.count()
        self.size = size
        #: Live WorkerProcess handles, for drain-time reaping.
        self._active: set = set()
        os.makedirs(work_dir, exist_ok=True)

    # -- health --------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        """False while the breaker is hard-open (the ladder routes away)."""
        return self.breaker.healthy

    def snapshot(self) -> dict:
        return {"name": self.name, "size": self.size,
                "active": len(self._active),
                "breaker": self.breaker.snapshot()}

    # -- the one entry point -------------------------------------------------

    async def submit(self, job: dict, *, key: str,
                     deadline: float) -> dict:
        """Run one job to a row payload, or raise a typed ServiceError.

        ``deadline`` is absolute (``time.monotonic`` scale) and bounds
        slot wait + every attempt + every backoff together.
        """
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ServiceError("budget exhausted before dispatch",
                               kind="deadline")
        try:
            await asyncio.wait_for(self._slots.acquire(), timeout=remaining)
        except asyncio.TimeoutError:
            raise ServiceError(
                f"no {self.name} worker slot within the budget",
                kind="deadline")
        try:
            return await self._run_with_retries(job, key, deadline)
        finally:
            self._slots.release()

    async def _run_with_retries(self, job: dict, key: str,
                                deadline: float) -> dict:
        deaths = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError("request budget expired", kind="deadline")
            exit = await self._run_once(job, remaining)
            if exit.kind == "ok":
                self.breaker.record_success()
                if self.quarantine is not None:
                    self.quarantine.record_success(key)
                return exit.outcome["row"]
            if exit.kind == "typed":
                # The *pool* is fine; the program is bad.  AssemblerError
                # and friends become invalid-program protocol errors.
                self.breaker.record_success()
                raise ServiceError(
                    f"{exit.error_type or 'ReproError'}: {exit.error}",
                    kind="invalid-program")
            if exit.kind == pool.WALL_TIMEOUT:
                raise ServiceError(
                    f"{self.name} worker exceeded the request budget",
                    kind="deadline")
            # Death: crashed / killed / stalled.
            deaths += 1
            self.breaker.record_failure()
            if self.stats is not None:
                self.stats.worker_deaths.inc()
            if self.flight is not None:
                self.flight.record(
                    "worker-death", pool=self.name, kind=exit.kind,
                    key=key, trace=job.get("trace", ""),
                    attempt=deaths)
            if self.quarantine is not None \
                    and self.quarantine.record_death(key):
                if self.stats is not None:
                    self.stats.quarantined_hashes.inc()
                raise ServiceError(
                    f"content hash {key} killed {self.name} workers "
                    f"{self.quarantine.death_threshold}x: quarantined",
                    kind="quarantined")
            if deaths > self.max_restarts:
                raise ServiceError(
                    f"{self.name} worker died {deaths}x "
                    f"({exit.kind}: {exit.error}); retries exhausted",
                    kind="worker-lost")
            if self.stats is not None:
                self.stats.worker_restarts.inc()
            backoff = min(self.backoff_base_s * (2 ** (deaths - 1)),
                          max(0.0, deadline - time.monotonic()))
            await asyncio.sleep(backoff)

    async def _run_once(self, job: dict, budget_s: float) -> WorkerExit:
        """One worker attempt under ``budget_s``; reaps on cancellation."""
        stem = os.path.join(self.work_dir,
                            f"{self.name}.j{next(self._seq)}")
        paths = {"spec": stem + ".job.json", "out": stem + ".out.json",
                 "heartbeat": stem + ".hb", "log": stem + ".log"}
        atomic_write(paths["spec"], json.dumps(job))
        for stale in ("out", "heartbeat"):
            try:
                os.unlink(paths[stale])
            except OSError:
                pass
        worker = pool.launch(
            self.worker_argv(paths, self.allow_chaos),
            out_path=paths["out"], heartbeat_path=paths["heartbeat"],
            log_path=paths["log"], timeout_s=budget_s,
            stall_timeout_s=min(self.stall_timeout_s, budget_s))
        self._active.add(worker)
        wait = AdaptiveWait(base=0.005, cap=0.1)
        try:
            while True:
                exit = worker.exit()
                if exit is None:
                    exit = worker.liveness_failure()
                    if exit is not None:
                        worker.reap()
                        if self.stats is not None \
                                and exit.kind == pool.WALL_TIMEOUT:
                            self.stats.worker_reaped.inc()
                        if self.flight is not None:
                            self.flight.record(
                                "worker-reap", pool=self.name,
                                kind=exit.kind,
                                trace=job.get("trace", ""))
                if exit is not None:
                    return exit
                await asyncio.sleep(wait.interval(active=False))
        except asyncio.CancelledError:
            worker.reap()
            if self.stats is not None:
                self.stats.worker_reaped.inc()
            raise
        finally:
            self._active.discard(worker)

    # -- lifecycle -----------------------------------------------------------

    def reap_all(self) -> int:
        """Kill every live worker (drain-timeout hammer); returns count."""
        reaped = 0
        for worker in list(self._active):
            worker.reap()
            reaped += 1
        return reaped
