"""Service worker: runs exactly one lint job, in its own process.

The supervisor launches ``python -m repro.service.worker --spec … --out …
--heartbeat …`` so a poison program — one that crashes, wedges, or OOMs
the analyzer or simulator — takes down *one request's attempt*, never the
service.  The contract is the campaign worker's, byte for byte:

- heartbeat pulsed at every job stage (and from inside the simulation
  loop during dynamic confirmation, via the ``core.heartbeat`` hook);
- outcome written to ``--out`` atomically, then exit 0 (ok),
  :data:`~repro.campaign.pool.EXIT_TYPED_FAILURE` (typed
  :class:`~repro.errors.ReproError` — e.g. the submitted program does not
  assemble), or 1 (unexpected exception).

:func:`run_job` is the process-agnostic core, also used in-process by
tests.  Chaos modes (``die`` / ``hang``) are honoured only when the
supervisor passes ``--allow-chaos`` — the fault-injection lever of the CI
smoke drill, dead code in production.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
import traceback
from typing import List, Optional

from repro.analysis.cfg import build_cfg
from repro.analysis.gadgets import find_gadgets, leaks_under
from repro.campaign.heartbeat import Heartbeat
from repro.campaign.pool import EXIT_TYPED_FAILURE
from repro.campaign.store import atomic_write
from repro.config import CORTEX_A76, DefenseKind
from repro.errors import ReproError
from repro.isa.assembler import assemble


def _chaos(mode: str) -> None:
    """Injected worker faults for the smoke drill (supervisor-gated)."""
    if mode == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "hang":
        while True:         # never heartbeats: the stall reaper's target
            time.sleep(1)


def _subject_program(job: dict):
    """(program, secret ranges, attack-or-None) for the job's subject."""
    witness_subject = job.get("witness", "")
    if witness_subject:
        from repro.analysis.witness import (secret_ranges_of, synthesize,
                                            variant_name, witness_kind)
        kind_name, _, variant = witness_subject.partition("/")
        kind = witness_kind(kind_name)
        residual = variant != variant_name(kind, residual=False)
        witness = synthesize(kind, residual=residual)
        return (witness.attack.builder_program,
                list(secret_ranges_of(witness.attack)), witness.attack)
    program = assemble(job["source"])
    ranges = [tuple(r) for r in job.get("secret_ranges", [])]
    return program, ranges, None


def _dynamic_confirm(program, attack, defense: DefenseKind,
                     max_cycles: Optional[int],
                     heartbeat: Optional[Heartbeat]) -> dict:
    """Execute the subject under ``defense`` on the cycle-level simulator.

    Witness subjects carry full attack metadata, so the §4.3 leak decision
    applies verbatim; raw ``.s`` submissions are executed for behavioural
    evidence (cycles, faults, secret-dependent speculative activity from
    the core's leak log).
    """
    if attack is not None:
        from dataclasses import replace as dc_replace

        from repro.attacks.common import run_attack_program
        config = CORTEX_A76.with_defense(defense)
        if max_cycles is not None:
            attack = dc_replace(attack,
                                max_cycles=min(attack.max_cycles, max_cycles))
        outcome = run_attack_program(attack, defense, config)
        return {"kind": "attack", "defense": defense.value,
                "leaked": outcome.leaked,
                "recovered": list(outcome.recovered),
                "cycles": outcome.cycles, "faulted": outcome.faulted,
                "restricted": outcome.restricted}

    from dataclasses import replace

    from repro.system import build_system
    config = CORTEX_A76.with_defense(defense)
    if max_cycles is not None:
        config = replace(config,
                         core=replace(config.core, max_cycles=max_cycles))
    system = build_system(config)
    core = system.prepare(program)
    core.heartbeat = heartbeat
    core.run()
    result = system.result()
    return {"kind": "execution", "defense": defense.value,
            "cycles": result.cycles, "instructions": result.instructions,
            "halted": result.halted,
            "faulted": result.fault is not None,
            "fault": str(result.fault) if result.fault is not None else "",
            "leak_events": len(result.leak_log)}


def run_job(job: dict, heartbeat: Optional[Heartbeat] = None,
            allow_chaos: bool = False) -> dict:
    """Lint (and optionally dynamically confirm) one submitted program.

    Returns the row payload served to the client, or raises a typed
    :class:`~repro.errors.ReproError` (bad program, analysis failure).
    """
    if job.get("chaos") and allow_chaos:
        _chaos(job["chaos"])

    def beat(stage: int) -> None:
        if heartbeat is not None:
            heartbeat.beat(stage)

    beat(0)
    t_start = time.monotonic()
    program, secret_ranges, attack = _subject_program(job)
    beat(1)
    problems = build_cfg(program).check_well_formed()
    # Function-granular reuse beneath the server's whole-program verdict
    # cache: a job carrying ``summary_dir`` lints through the modular
    # engine against the persistent summary cache, so a resubmission that
    # edited one function re-analyzes only it and its transitive callers.
    summary: Optional[dict] = None
    if job.get("summary_dir"):
        from repro.analysis.modular import SummaryCache, modular_analysis
        from repro.analysis.options import AnalysisOptions
        cache = SummaryCache(os.path.join(job["summary_dir"],
                                          "summaries.jsonl"))
        options = AnalysisOptions.summary_backed(cache=cache)
        run = modular_analysis(program, secret_ranges, options=options)
        gadgets = find_gadgets(program, secret_ranges, taint=run.result,
                               options=options)
        cache.flush()
        # Cache totals cover both taint passes (the MDS stale re-run
        # included); the worker process is fresh per job, so they are
        # exactly this job's traffic.
        summary = {"hits": cache.hits, "misses": cache.misses,
                   "reanalyzed": list(run.reanalyzed),
                   "cached_regions": len(cache)}
    else:
        gadgets = find_gadgets(program, secret_ranges)
    beat(2)
    verdicts = {defense.value: any(leaks_under(g, defense) for g in gadgets)
                for defense in DefenseKind}
    analysis_ms = (time.monotonic() - t_start) * 1000.0
    row: dict = {
        "verdicts": verdicts,
        "gadgets": [{"kind": g.kind.value, "source": g.source,
                     "entry": g.entry,
                     "transmitters": list(g.transmitters),
                     "channels": [c.value for c in g.channels],
                     "sanitized": g.sanitized, "report": g.render()}
                    for g in gadgets],
        "gadget_count": len(gadgets),
        "sanitized": all(g.sanitized for g in gadgets),
        "cfg_problems": [f"{p.kind} @ {p.address:#x}" for p in problems],
    }
    if summary is not None:
        row["summary"] = summary
    confirm_ms = 0.0
    if job.get("confirm"):
        defense = DefenseKind(job.get("defense", "specasan"))
        t_confirm = time.monotonic()
        row["dynamic"] = _dynamic_confirm(program, attack, defense,
                                          job.get("max_cycles"), heartbeat)
        confirm_ms = (time.monotonic() - t_confirm) * 1000.0
    row["timings"] = {"analysis_ms": round(analysis_ms, 3),
                      "confirm_ms": round(confirm_ms, 3)}
    if job.get("trace"):
        row["trace"] = job["trace"]
    beat(3)
    return row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="Run one spec-lint service job (supervisor-internal).")
    parser.add_argument("--spec", required=True,
                        help="path to the job JSON")
    parser.add_argument("--out", required=True,
                        help="where to write the outcome JSON (atomic)")
    parser.add_argument("--heartbeat", required=True,
                        help="heartbeat file pulsed at each job stage")
    parser.add_argument("--heartbeat-cycles", type=int, default=2000)
    parser.add_argument("--allow-chaos", action="store_true",
                        help="honour chaos modes in the job spec "
                             "(smoke-drill fault injection)")
    args = parser.parse_args(argv)

    with open(args.spec, encoding="utf-8") as handle:
        job = json.load(handle)
    heartbeat = Heartbeat(args.heartbeat, interval=args.heartbeat_cycles)
    heartbeat.beat(0)   # prove liveness before any (possibly slow) stage

    try:
        row = run_job(job, heartbeat=heartbeat,
                      allow_chaos=args.allow_chaos)
    except ReproError as exc:
        atomic_write(args.out, json.dumps({
            "status": "failed",
            "error_type": type(exc).__name__, "error": str(exc)}))
        return EXIT_TYPED_FAILURE
    except Exception as exc:   # worker bug: report, don't mask as typed
        atomic_write(args.out, json.dumps({
            "status": "crashed",
            "error_type": type(exc).__name__, "error": str(exc),
            "traceback": traceback.format_exc()}))
        return 1
    atomic_write(args.out, json.dumps({"status": "ok", "row": row}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
