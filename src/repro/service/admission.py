"""Admission control: bounded queueing, load shedding, per-client fairness.

The service never buffers without bound.  Admission enforces two budgets
at the moment a request arrives — both violations are *typed rejections*
(the client hears why), never silent queue growth:

- a **global queue bound** (``max_queue``): more queued work than the
  pool can plausibly drain is shed with ``overloaded``;
- a **per-client outstanding bound** (``max_per_client``): one client
  pipelining requests cannot occupy the whole queue; past its cap it is
  rejected with ``client-over-limit`` while other clients still get in.

Dispatch order is round-robin *across clients* (each client's own
requests stay FIFO), so a burst from one client interleaves fairly with
everyone else's traffic instead of being drained front-to-back.

A slot is held from admission until the response is written
(:meth:`AdmissionController.done`), so cancellation/deadline paths must
refund it — the controller asserts conservation in :meth:`snapshot`.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional, Tuple

from repro.errors import ServiceError


class AdmissionController:
    """Bounded fair queue of (client_id, item) work units."""

    def __init__(self, *, max_queue: int = 8, max_per_client: int = 4):
        if max_queue < 1 or max_per_client < 1:
            raise ValueError("admission bounds must be >= 1")
        self.max_queue = max_queue
        self.max_per_client = max_per_client
        #: client -> FIFO of queued items; insertion order seeds round-robin.
        self._queues: "OrderedDict[str, Deque[object]]" = OrderedDict()
        #: client -> admitted-but-not-yet-answered count (queued + running).
        self._outstanding: Dict[str, int] = {}
        self._queued = 0
        self._ready = asyncio.Event()
        self._closed = False

    # -- intake --------------------------------------------------------------

    def admit(self, client_id: str, item: object) -> None:
        """Enqueue or raise a typed rejection (the backpressure edge)."""
        if self._closed:
            raise ServiceError("server is draining; admission stopped",
                               kind="draining")
        outstanding = self._outstanding.get(client_id, 0)
        if outstanding >= self.max_per_client:
            raise ServiceError(
                f"client has {outstanding} requests outstanding "
                f"(cap {self.max_per_client})", kind="client-over-limit")
        if self._queued >= self.max_queue:
            raise ServiceError(
                f"request queue full ({self._queued}/{self.max_queue}); "
                "shedding load", kind="overloaded")
        self._queues.setdefault(client_id, deque()).append(item)
        self._outstanding[client_id] = outstanding + 1
        self._queued += 1
        self._ready.set()

    def done(self, client_id: str) -> None:
        """Refund the outstanding slot once the response is written."""
        remaining = self._outstanding.get(client_id, 0) - 1
        if remaining > 0:
            self._outstanding[client_id] = remaining
        else:
            self._outstanding.pop(client_id, None)

    # -- dispatch ------------------------------------------------------------

    def _pop_round_robin(self) -> Optional[Tuple[str, object]]:
        if not self._queues:
            return None
        client_id, queue = next(iter(self._queues.items()))
        item = queue.popleft()
        # Rotate: the client goes to the back whether or not it has more
        # queued, so interleaving is per-request, not per-burst.
        del self._queues[client_id]
        if queue:
            self._queues[client_id] = queue
        self._queued -= 1
        return client_id, item

    async def next(self) -> Optional[Tuple[str, object]]:
        """The next (client, item) in fair order; ``None`` once closed
        and empty (dispatcher shutdown signal)."""
        while True:
            entry = self._pop_round_robin()
            if entry is not None:
                return entry
            if self._closed:
                return None
            self._ready.clear()
            await self._ready.wait()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop admission (drain): new requests get ``draining``; already
        queued items still dispatch."""
        self._closed = True
        self._ready.set()

    def flush(self) -> list:
        """Remove and return every still-queued item (drain-timeout cut)."""
        items = []
        while True:
            entry = self._pop_round_robin()
            if entry is None:
                return items
            items.append(entry)

    # -- observability -------------------------------------------------------

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def outstanding(self) -> int:
        return sum(self._outstanding.values())

    def snapshot(self) -> dict:
        return {"queued": self._queued,
                "outstanding": dict(sorted(self._outstanding.items())),
                "max_queue": self.max_queue,
                "max_per_client": self.max_per_client,
                "draining": self._closed}
