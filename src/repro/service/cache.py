"""Content-hash verdict cache: durable JSONL + in-flight single-flight.

Two layers with one key (:func:`repro.service.protocol.content_key`):

- :class:`VerdictCache` — completed verdicts, persisted through the same
  atomic-write + per-record-SHA-256 JSONL discipline as the campaign
  :class:`~repro.campaign.store.ResultStore`: a crash mid-append leaves
  the previous intact file, and a corrupted or truncated record is
  *skipped and counted* at warm-start, never trusted and never fatal.
  Restarting the service over the same state directory therefore
  warm-starts with every verdict that ever completed.
- :class:`SingleFlight` — the in-flight dedup: the first request for a
  key becomes the *leader* and computes; identical concurrent requests
  become followers awaiting the leader's future, so a thundering herd of
  the same program costs one worker slot, not N.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Dict, Optional, Tuple

from repro.campaign.store import atomic_write, checksum

#: Bump when the cached-record layout changes; stale records re-compute.
CACHE_SCHEMA = 1

_CHECKSUM_FIELD = "sha256"


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class VerdictCache:
    """Durable content-hash -> verdict-payload map, one JSONL file."""

    FILE = "verdicts.jsonl"

    def __init__(self, directory: str):
        self.directory = directory
        self.path = os.path.join(directory, self.FILE)
        self._entries: Dict[str, dict] = {}
        #: Records rejected at warm-start (corrupt/stale), for the report.
        self.rejected = 0
        os.makedirs(directory, exist_ok=True)
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.rejected += 1
                    continue
                if not isinstance(record, dict) \
                        or record.get(_CHECKSUM_FIELD) is None \
                        or checksum(record) != record[_CHECKSUM_FIELD] \
                        or record.get("schema") != CACHE_SCHEMA \
                        or not isinstance(record.get("key"), str):
                    self.rejected += 1
                    continue
                # Later records win: a re-computed verdict supersedes.
                self._entries[record["key"]] = record["row"]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        return self._entries.get(key)

    def put(self, key: str, row: dict) -> None:
        """Store and durably append one verdict payload.

        Same discipline as the campaign store: the whole file is rewritten
        through a same-directory tmp + ``os.replace`` with the new line
        appended — O(n) per put, atomic under any crash.
        """
        record = {"schema": CACHE_SCHEMA, "key": key, "row": row}
        record[_CHECKSUM_FIELD] = checksum(record)
        existing = ""
        if os.path.exists(self.path):
            with open(self.path, encoding="utf-8") as handle:
                existing = handle.read()
        if existing and not existing.endswith("\n"):
            existing += "\n"   # heal a torn tail; _load counted the line
        atomic_write(self.path, existing + _canonical(record) + "\n")
        self._entries[key] = row


class SingleFlight:
    """Coalesce concurrent identical computations onto one future."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}

    def begin(self, key: str) -> Tuple[asyncio.Future, bool]:
        """(future, is_leader): the leader computes and must
        :meth:`resolve`; followers just await the future."""
        future = self._inflight.get(key)
        if future is not None and not future.done():
            return future, False
        future = asyncio.get_running_loop().create_future()
        # A leader with no followers never awaits the future; retrieve any
        # exception eagerly so asyncio doesn't warn at GC time.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self._inflight[key] = future
        return future, True

    def resolve(self, key: str, result: Optional[dict] = None,
                error: Optional[BaseException] = None) -> None:
        """Deliver the leader's outcome to every follower."""
        future = self._inflight.pop(key, None)
        if future is None or future.done():
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    def abandon_all(self, error: BaseException) -> int:
        """Fail every in-flight future (drain-timeout cut); returns count."""
        cut = 0
        for key in list(self._inflight):
            future = self._inflight.pop(key)
            if not future.done():
                future.set_exception(error)
                cut += 1
        return cut

    @property
    def in_flight(self) -> int:
        return sum(1 for f in self._inflight.values() if not f.done())
