"""Circuit breakers: pool health and poison-program quarantine.

Two failure populations need different treatment:

- **The worker pool itself is sick** (toolchain broken, resource
  exhaustion, a bad deploy): *consecutive* deaths across unrelated
  requests.  :class:`CircuitBreaker` trips open after ``failure_threshold``
  of them, the ladder degrades past the pool (static-only / cache-only),
  and after ``reset_timeout_s`` a half-open probe request tests recovery —
  success closes the breaker, failure re-opens it.
- **One request is poison** (a program that reliably kills or wedges any
  worker that touches it): deaths keyed by content hash.
  :class:`Quarantine` trips per hash after ``death_threshold`` deaths; the
  hash is then rejected with a typed ``quarantined`` response instead of
  being allowed to chew through the pool again.  Quarantine holds for
  ``hold_s`` (``None`` = for the life of the process).

Both are plain synchronous state machines with an injectable clock — the
asyncio layer calls them, the unit tests drive them deterministically.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Dict, Optional


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open recovery probes."""

    def __init__(self, *, failure_threshold: int = 3,
                 reset_timeout_s: float = 5.0, half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 on_open: Optional[Callable[[], None]] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = max(1, half_open_probes)
        self._clock = clock
        self._on_open = on_open
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        #: Diagnostics: lifetime open transitions.
        self.opens = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """Current state; OPEN lazily decays to HALF_OPEN after the
        reset timeout (no background timer needed)."""
        if self._state is BreakerState.OPEN and \
                self._clock() - self._opened_at >= self.reset_timeout_s:
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0
        return self._state

    @property
    def healthy(self) -> bool:
        """Not hard-open: closed, or probing its way back."""
        return self.state is not BreakerState.OPEN

    # -- transitions ---------------------------------------------------------

    def allow(self) -> bool:
        """May one request pass right now?  Half-open admits at most
        ``half_open_probes`` concurrent probes."""
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        if self._probes_in_flight < self.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    def record_success(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        state = self.state
        self._consecutive_failures += 1
        if state is BreakerState.HALF_OPEN \
                or self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        if self._state is not BreakerState.OPEN:
            self.opens += 1
            if self._on_open is not None:
                self._on_open()
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0

    def snapshot(self) -> dict:
        return {"state": self.state.value,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens}


class Quarantine:
    """Per-content-hash death tracking: poison programs get benched.

    A hash whose workers die ``death_threshold`` times (not necessarily
    consecutively across the whole service — per hash they always are) is
    quarantined: :meth:`blocked` turns true and the admission ladder
    rejects it with a typed response.  A success for the hash (a retry
    that made it) clears its count.  ``hold_s=None`` quarantines for the
    process lifetime; otherwise the hash is released after ``hold_s`` and
    gets a fresh probation count.
    """

    def __init__(self, *, death_threshold: int = 2,
                 hold_s: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 on_quarantine: Optional[Callable[[str], None]] = None):
        if death_threshold < 1:
            raise ValueError("death_threshold must be >= 1")
        self.death_threshold = death_threshold
        self.hold_s = hold_s
        self._clock = clock
        self._on_quarantine = on_quarantine
        self._deaths: Dict[str, int] = {}
        self._held_since: Dict[str, float] = {}

    def record_death(self, key: str) -> bool:
        """Book one worker death for ``key``; True if it just tripped."""
        if self.blocked(key):
            return False
        count = self._deaths.get(key, 0) + 1
        self._deaths[key] = count
        if count >= self.death_threshold:
            self._held_since[key] = self._clock()
            if self._on_quarantine is not None:
                self._on_quarantine(key)
            return True
        return False

    def record_success(self, key: str) -> None:
        self._deaths.pop(key, None)
        self._held_since.pop(key, None)

    def blocked(self, key: str) -> bool:
        held = self._held_since.get(key)
        if held is None:
            return False
        if self.hold_s is not None \
                and self._clock() - held >= self.hold_s:
            # Release back to probation: one more death re-trips at once.
            del self._held_since[key]
            self._deaths[key] = self.death_threshold - 1
            return False
        return True

    @property
    def held(self) -> int:
        return sum(1 for key in list(self._held_since) if self.blocked(key))

    def snapshot(self) -> dict:
        return {"quarantined": sorted(
                    key for key in self._held_since if self.blocked(key)),
                "probation": {key: count
                              for key, count in sorted(self._deaths.items())
                              if key not in self._held_since}}
