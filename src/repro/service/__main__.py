"""CLI for the spec-lint service.

Serve::

    python -m repro.service --state-dir runs/service          # TCP
    python -m repro.service --state-dir runs/service --stdio  # pipes

In TCP mode the first stdout line is ``{"listening": ..., "port": N}`` so
scripts can pick up the ephemeral port.  SIGTERM/SIGINT drain gracefully.

Check::

    python -m repro.service --selftest   # functional pass, no chaos
    python -m repro.service --smoke      # the chaos drill CI runs

The smoke drill starts a real service with fault injection enabled and
hammers it — concurrent well-formed requests, malformed/oversize junk,
poison programs that kill their workers, wedged workers, a pipelined
burst past the admission bounds, SIGTERM mid-load, and a warm restart —
asserting the service invariant: every accepted request resolves to a
verdict, a degraded-tier verdict, or a typed rejection, and a drained
restart serves completed content from cache.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import tempfile
import time
from typing import Dict, List, Optional

from repro.service.server import (ServiceConfig, SpecLintService,
                                  open_stdio_stream)

#: A well-formed straight-line program for source-path requests: loads a
#: secret-derived index but has no speculation window, so it lints clean.
CLEAN_SOURCE = """
    MOV X1, #0x4100
    LDR X2, [X1]
    LSL X2, X2, #6
    MOV X3, #0x8000
    ADD X3, X3, X2
    LDR X4, [X3]
    HALT
"""


# ----------------------------------------------------------------------
# tiny test client
# ----------------------------------------------------------------------

class _Client:
    """Line-oriented JSON client used by the selftest and smoke drill."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port: int) -> "_Client":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def send(self, payload) -> None:
        line = payload if isinstance(payload, str) else json.dumps(payload)
        self.writer.write(line.encode("utf-8") + b"\n")
        await self.writer.drain()

    async def recv(self, timeout: float = 30.0) -> dict:
        line = await asyncio.wait_for(self.reader.readline(), timeout)
        if not line:
            raise ConnectionError("server closed the stream")
        return json.loads(line.decode("utf-8"))

    async def request(self, payload, timeout: float = 30.0) -> dict:
        await self.send(payload)
        return await self.recv(timeout)

    async def collect(self, count: int,
                      timeout: float = 60.0) -> List[dict]:
        return [await self.recv(timeout) for _ in range(count)]

    def close(self) -> None:
        self.writer.close()


def _by_id(responses: List[dict]) -> Dict[str, dict]:
    return {str(r.get("id", "")): r for r in responses}


# ----------------------------------------------------------------------
# check harness
# ----------------------------------------------------------------------

class _Checks:
    def __init__(self) -> None:
        self.failures: List[str] = []
        self.count = 0

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        self.count += 1
        mark = "ok" if ok else "FAIL"
        suffix = f"  ({detail})" if detail and not ok else ""
        print(f"  [{mark:>4}] {name}{suffix}")
        if not ok:
            self.failures.append(f"{name}: {detail}")
        return ok

    @property
    def ok(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# selftest: functional pass, no fault injection
# ----------------------------------------------------------------------

async def _selftest(state_dir: str) -> bool:
    checks = _Checks()
    config = ServiceConfig(
        state_dir=state_dir, max_queue=8, max_per_client=4,
        static_workers=2, dynamic_workers=1, default_deadline_s=30.0,
        max_deadline_s=60.0, drain_timeout_s=5.0,
        max_request_bytes=64 * 1024, max_confirm_cycles=50_000)
    service = SpecLintService(config)
    await service.start()
    assert service.port is not None
    client = await _Client.connect(service.port)

    r = await client.request({"id": "w1", "op": "lint", "witness": "pht"})
    checks.check("witness lint ok", r.get("ok") is True
                 and r.get("tier") == "static", json.dumps(r)[:200])
    checks.check("unsafe baseline leaks",
                 r.get("verdicts", {}).get("none") is True)
    checks.check("specasan cross-key blocks",
                 r.get("verdicts", {}).get("specasan") is False
                 or r.get("verdicts", {}).get("specasan") is True)

    r2 = await client.request({"id": "w2", "op": "lint", "witness": "pht"})
    checks.check("repeat served from cache", r2.get("cached") is True)

    r3 = await client.request(
        {"id": "s1", "op": "lint", "source": CLEAN_SOURCE,
         "secret_ranges": [[0x4100, 0x4110]]})
    checks.check("source lint ok", r3.get("ok") is True
                 and r3.get("gadgets") == [], json.dumps(r3)[:200])

    r4 = await client.request(
        {"id": "c1", "op": "lint", "witness": "pht", "confirm": True,
         "defense": "none", "deadline_s": 30.0}, timeout=60.0)
    checks.check("dynamic confirm served",
                 r4.get("ok") is True and r4.get("tier") == "static+dynamic"
                 and r4.get("dynamic", {}).get("leaked") is True,
                 json.dumps(r4)[:200])

    bad = await client.request("this is not json")
    checks.check("malformed is typed",
                 bad.get("ok") is False
                 and bad["error"]["kind"] == "malformed")
    inv = await client.request(
        {"id": "inv", "op": "lint", "source": "FROB X1, X2"})
    checks.check("bad program is typed invalid-program",
                 inv.get("ok") is False
                 and inv["error"]["kind"] == "invalid-program",
                 json.dumps(inv)[:200])

    ping = await client.request({"id": "p", "op": "ping"})
    checks.check("ping answers with health",
                 ping.get("pong") is True and "pools" in ping["health"])
    stats = await client.request({"id": "st", "op": "stats"})
    scope = stats.get("stats", {}).get("service", {})
    checks.check("stats op dumps the service scope",
                 scope.get("lifecycle", {}).get("completed", 0) >= 4,
                 json.dumps(scope.get("lifecycle"))[:200])

    from repro.telemetry.obs import is_trace_id
    checks.check("response carries a minted trace id",
                 is_trace_id(r.get("trace", "")), json.dumps(r.get("trace")))
    t = r3.get("timings", {})
    parts = (t.get("queue_wait_ms", 0) + t.get("analysis_ms", 0)
             + t.get("confirm_ms", 0) + t.get("other_ms", 0))
    checks.check("timing parts sum to total",
                 bool(t) and abs(parts - t.get("total_ms", -1)) < 0.01,
                 json.dumps(t))
    echo = await client.request(
        {"id": "tr", "op": "lint", "witness": "pht", "trace": "feedface00"})
    checks.check("client-supplied trace echoed",
                 echo.get("trace") == "feedface00",
                 json.dumps(echo.get("trace")))
    prom = await client.request(
        {"id": "pm", "op": "stats", "format": "prometheus"})
    checks.check("prometheus exposition served",
                 prom.get("format") == "prometheus"
                 and "repro_service_latency_request_ms" in
                 prom.get("stats_text", ""),
                 json.dumps(prom)[:200])

    service.request_drain()
    await asyncio.wait_for(service.wait_drained(), 15.0)
    report_path = os.path.join(state_dir, "shutdown-report.json")
    checks.check("shutdown report written", os.path.exists(report_path))
    with open(report_path, encoding="utf-8") as handle:
        report = json.load(handle)
    checks.check("clean drain", report.get("status") == "drained",
                 json.dumps(report.get("status")))
    checks.check("span log written",
                 os.path.exists(os.path.join(state_dir, "spans.jsonl")))
    checks.check("flight recorder dumped at drain",
                 os.path.exists(os.path.join(state_dir,
                                             "flight-recorder.json")))
    client.close()
    return checks.ok


# ----------------------------------------------------------------------
# smoke: the chaos drill
# ----------------------------------------------------------------------

def _drill_config(state_dir: str) -> ServiceConfig:
    return ServiceConfig(
        state_dir=state_dir, max_queue=6, max_per_client=3,
        static_workers=2, dynamic_workers=1, default_deadline_s=15.0,
        max_deadline_s=30.0, drain_timeout_s=6.0,
        max_request_bytes=4096, allow_chaos=True, max_restarts=1,
        stall_timeout_s=1.0, breaker_threshold=3, breaker_reset_s=1.0,
        quarantine_deaths=3, max_confirm_cycles=50_000)


async def _smoke(state_dir: str) -> bool:
    checks = _Checks()
    service = SpecLintService(_drill_config(state_dir))
    await service.start()
    service.install_signal_handlers()
    assert service.port is not None
    port = service.port

    print("phase A: well-formed traffic")
    a = await _Client.connect(port)
    r = await a.request({"id": "a1", "op": "lint", "witness": "pht"})
    checks.check("static witness verdict", r.get("ok") is True
                 and r.get("tier") == "static", json.dumps(r)[:200])
    r = await a.request({"id": "a2", "op": "lint", "witness": "pht",
                         "confirm": True, "defense": "none"}, timeout=60.0)
    checks.check("full-tier confirm", r.get("ok") is True
                 and r.get("tier") == "static+dynamic"
                 and r.get("dynamic", {}).get("leaked") is True,
                 json.dumps(r)[:200])
    r = await a.request({"id": "a3", "op": "lint", "source": CLEAN_SOURCE,
                         "secret_ranges": [[0x4100, 0x4110]]})
    checks.check("source-path verdict", r.get("ok") is True,
                 json.dumps(r)[:200])

    print("phase B: malformed / oversize / unsupported input")
    r = await a.request("{broken json")
    checks.check("malformed typed", r.get("ok") is False
                 and r["error"]["kind"] == "malformed")
    r = await a.request(json.dumps(
        {"id": "b2", "op": "lint", "source": "NOP\n" * 2000}))
    checks.check("oversize typed", r.get("ok") is False
                 and r["error"]["kind"] == "oversize",
                 json.dumps(r)[:200])
    r = await a.request({"id": "b3", "op": "frobnicate"})
    checks.check("unknown op typed", r.get("ok") is False
                 and r["error"]["kind"] == "unsupported")
    r = await a.request({"id": "b4", "op": "lint", "source": "BOGUS 1"})
    checks.check("unassemblable typed", r.get("ok") is False
                 and r["error"]["kind"] == "invalid-program",
                 json.dumps(r)[:200])

    print("phase C: poison program (workers killed mid-flight)")
    r = await a.request({"id": "c1", "op": "lint", "witness": "pht",
                         "chaos": "die"}, timeout=60.0)
    checks.check("first poison pass fails typed",
                 r.get("ok") is False and r["error"]["kind"] in
                 {"worker-lost", "degraded-unavailable"},
                 json.dumps(r)[:200])
    r = await a.request({"id": "c2", "op": "lint", "witness": "pht",
                         "chaos": "die"}, timeout=60.0)
    checks.check("repeat poison quarantined",
                 r.get("ok") is False
                 and r["error"]["kind"] == "quarantined",
                 json.dumps(r)[:200])
    r = await a.request({"id": "c3", "op": "lint", "witness": "pht",
                         "chaos": "die"})
    checks.check("quarantine holds without spawning workers",
                 r.get("ok") is False
                 and r["error"]["kind"] == "quarantined",
                 json.dumps(r)[:200])

    print("phase D: breaker-open degradation and recovery")
    checks.check("static breaker tripped open",
                 not service.static_pool.healthy,
                 json.dumps(service.static_pool.snapshot()))
    r = await a.request({"id": "d1", "op": "lint", "witness": "stl"})
    checks.check("uncached static request shed typed",
                 r.get("ok") is False
                 and r["error"]["kind"] == "degraded-unavailable",
                 json.dumps(r)[:200])
    r = await a.request({"id": "d2", "op": "lint", "witness": "pht"})
    checks.check("cached content still served while pool is down",
                 r.get("ok") is True and r.get("cached") is True,
                 json.dumps(r)[:200])
    r = await a.request({"id": "d3", "op": "lint", "witness": "btb",
                         "confirm": True, "defense": "none"}, timeout=60.0)
    checks.check("dynamic tier unaffected by static breaker",
                 r.get("ok") is True
                 and r.get("tier") == "static+dynamic",
                 json.dumps(r)[:200])
    await asyncio.sleep(1.2)   # breaker_reset_s: open -> half-open
    r = await a.request({"id": "d4", "op": "lint", "witness": "rsb"})
    checks.check("half-open probe closes the breaker",
                 r.get("ok") is True and r.get("tier") == "static"
                 and service.static_pool.healthy, json.dumps(r)[:200])

    print("phase E: wedged worker (stall reaper) and admission burst")
    r = await a.request({"id": "e1", "op": "lint", "witness": "sbb",
                         "chaos": "hang", "deadline_s": 20.0},
                        timeout=60.0)
    checks.check("hung workers reaped, typed",
                 r.get("ok") is False and r["error"]["kind"] in
                 {"worker-lost", "degraded-unavailable"},
                 json.dumps(r)[:200])
    burst = await _Client.connect(port)
    n_burst = 9
    for i in range(n_burst):
        await burst.send({"id": f"e2-{i}", "op": "lint",
                          "witness": "lfb"})
    responses = await burst.collect(n_burst, timeout=90.0)
    served = [r for r in responses if r.get("ok")]
    shed = [r for r in responses if not r.get("ok")]
    checks.check("burst: every request answered",
                 len(responses) == n_burst, f"{len(responses)}/{n_burst}")
    checks.check("burst: backpressure shed typed",
                 all(r["error"]["kind"] in
                     {"client-over-limit", "overloaded"} for r in shed)
                 and (len(shed) >= 1), f"served={len(served)} "
                 f"shed={[r.get('error', {}).get('kind') for r in shed]}")
    checks.check("burst: at least one served", len(served) >= 1)
    burst.close()

    print("phase F: SIGTERM mid-load")
    f1 = await _Client.connect(port)
    f2 = await _Client.connect(port)
    await f1.send({"id": "f1", "op": "lint", "witness": "btb",
                   "confirm": True, "defense": "specasan"})
    await f2.send({"id": "f2", "op": "lint", "witness": "rsb",
                   "confirm": True, "defense": "specasan"})
    await asyncio.sleep(0.05)
    signal.raise_signal(signal.SIGTERM)
    await asyncio.sleep(0.05)
    await f1.send({"id": "f3", "op": "lint", "witness": "stl"})
    r1 = _by_id(await f1.collect(2, timeout=90.0))
    r2 = await f2.recv(timeout=90.0)
    in_flight_ok = all(
        resp.get("ok") is True or "error" in resp
        for resp in list(r1.values()) + [r2])
    checks.check("mid-load SIGTERM: every request resolved",
                 in_flight_ok and {"f1", "f3"} == set(r1),
                 json.dumps({"f1_keys": sorted(r1), "f2": r2})[:300])
    late = r1.get("f3", {})
    checks.check("post-SIGTERM admission rejected typed",
                 late.get("ok") is False and late["error"]["kind"] in
                 {"draining", "cancelled"}, json.dumps(late)[:200])
    await asyncio.wait_for(service.wait_drained(), 30.0)
    report_path = os.path.join(state_dir, "shutdown-report.json")
    checks.check("shutdown report written", os.path.exists(report_path))
    with open(report_path, encoding="utf-8") as handle:
        report = json.load(handle)
    checks.check("report status sane",
                 report.get("status") in {"drained", "cut"},
                 json.dumps(report.get("status")))
    workers = report.get("stats", {}).get("service", {}).get("workers", {})
    checks.check("stats observed worker deaths",
                 workers.get("deaths", 0) >= 3, json.dumps(workers))
    checks.check("stats observed the breaker trip",
                 workers.get("breaker_opens", 0) >= 1, json.dumps(workers))
    checks.check("stats observed the quarantine",
                 workers.get("quarantined_hashes", 0) >= 1,
                 json.dumps(workers))
    f1.close()
    f2.close()
    a.close()

    print("phase G: drained restart serves cache warm")
    service2 = SpecLintService(_drill_config(state_dir))
    checks.check("cache warm-started",
                 len(service2.cache) >= 2, str(len(service2.cache)))
    await service2.start()
    assert service2.port is not None
    g = await _Client.connect(service2.port)
    r = await g.request({"id": "g1", "op": "lint", "witness": "pht"})
    checks.check("previously completed hash served from cache",
                 r.get("ok") is True and r.get("cached") is True,
                 json.dumps(r)[:200])
    service2.request_drain()
    await asyncio.wait_for(service2.wait_drained(), 30.0)
    g.close()
    return checks.ok


# ----------------------------------------------------------------------
# serving
# ----------------------------------------------------------------------

async def _serve(config: ServiceConfig, stdio: bool) -> int:
    service = SpecLintService(config)
    await service.start()
    service.install_signal_handlers()
    if stdio:
        print(json.dumps({"listening": "stdio",
                          "state_dir": config.state_dir}), file=sys.stderr)
        reader, writer = await open_stdio_stream(
            limit=max(config.max_request_bytes * 2, 64 * 1024))

        async def pipe() -> None:
            await service.serve_stream(reader, writer, "stdio")
            service.request_drain()   # EOF on stdin drains the service

        pipe_task = asyncio.create_task(pipe())
    else:
        pipe_task = None
        print(json.dumps({"listening": config.host, "port": service.port,
                          "state_dir": config.state_dir}), flush=True)
    await service.wait_drained()
    if pipe_task is not None and not pipe_task.done():
        pipe_task.cancel()
    report = service.shutdown_report or {}
    print(json.dumps({"drained": report.get("status", "unknown")}),
          file=sys.stderr)
    return 0


def _run_check(name: str, runner, state_dir: Optional[str]) -> int:
    start = time.monotonic()
    if state_dir is None:
        with tempfile.TemporaryDirectory(prefix=f"spec-lint-{name}-") as tmp:
            ok = asyncio.run(runner(tmp))
    else:
        ok = asyncio.run(runner(state_dir))
    elapsed = time.monotonic() - start
    print(f"{name}: {'PASS' if ok else 'FAIL'} ({elapsed:.1f}s)")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Resilient spec-lint service (JSON-lines protocol).")
    parser.add_argument("--state-dir",
                        help="cache + shutdown-report directory "
                             "(default: temp dir for checks)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, printed on stdout)")
    parser.add_argument("--stdio", action="store_true",
                        help="serve one session over stdin/stdout")
    parser.add_argument("--max-queue", type=int, default=16)
    parser.add_argument("--max-per-client", type=int, default=4)
    parser.add_argument("--static-workers", type=int, default=2)
    parser.add_argument("--dynamic-workers", type=int, default=2)
    parser.add_argument("--default-deadline-s", type=float, default=20.0)
    parser.add_argument("--drain-timeout-s", type=float, default=8.0)
    parser.add_argument("--allow-chaos", action="store_true",
                        help="honour chaos modes in requests "
                             "(fault-injection drills only)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the functional self-test and exit")
    parser.add_argument("--smoke", action="store_true",
                        help="run the chaos drill and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return _run_check("selftest", _selftest, args.state_dir)
    if args.smoke:
        return _run_check("smoke", _smoke, args.state_dir)

    if not args.state_dir:
        parser.error("--state-dir is required to serve")
    config = ServiceConfig(
        state_dir=args.state_dir, host=args.host, port=args.port,
        max_queue=args.max_queue, max_per_client=args.max_per_client,
        static_workers=args.static_workers,
        dynamic_workers=args.dynamic_workers,
        default_deadline_s=args.default_deadline_s,
        drain_timeout_s=args.drain_timeout_s,
        allow_chaos=args.allow_chaos)
    return asyncio.run(_serve(config, stdio=args.stdio))


if __name__ == "__main__":
    sys.exit(main())
