"""Exception hierarchy shared across the simulator.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch simulator problems without swallowing unrelated Python
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package.

    Attributes:
        failures: when a retrying harness (``run_resilient``, the campaign
            scheduler) exhausts its attempts, the *full* history of distinct
            per-attempt failure messages is attached here before the final
            error is re-raised — earlier failures are diagnostic signal, not
            noise, and campaign logs must show all of them.  Empty for errors
            raised outside a retry loop.
        flight: the tail of the process's
            :class:`~repro.telemetry.obs.FlightRecorder` — the last N
            spans/events before the failure — attached by the layer that
            owns the recorder (service front end, campaign scheduler) so a
            post-mortem carries recent history without verbose tracing
            enabled.  A tuple of plain event dicts; empty when no recorder
            was in scope.
    """

    #: Per-attempt failure messages accumulated by a retry harness.
    failures: tuple = ()
    #: Flight-recorder tail (recent event dicts) attached at raise time.
    flight: tuple = ()


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AssemblerError(ReproError):
    """The assembler could not parse or resolve a program.

    Attributes:
        line_no: 1-based source line where the problem was found, or ``None``
            when the error is not tied to a specific line (e.g. a missing
            label referenced from several places).
    """

    def __init__(self, message: str, line_no: int | None = None):
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The simulation reached an invalid state (simulator bug or bad program)."""


class MemoryFault(SimulationError):
    """An architectural access touched unmapped memory.

    Carries the faulting (untagged) physical address so test harnesses and
    attack detectors can report precisely what went wrong.
    """

    def __init__(self, address: int, message: str = ""):
        self.address = address
        detail = message or "access to unmapped memory"
        super().__init__(f"{detail} at {address:#x}")


class TagCheckFault(SimulationError):
    """An MTE tag check failed on the committed path.

    Mirrors the synchronous tag-check fault ARM MTE raises when a pointer's
    key does not match the allocation tag (lock) of the granule it touches.
    Under SpecASan a *speculative* mismatch is delayed rather than faulting;
    the fault is only raised once the access is bound to commit (§3.4).
    """

    def __init__(self, address: int, key: int, lock: int, pc: int | None = None):
        self.address = address
        self.key = key
        self.lock = lock
        self.pc = pc
        where = f" (pc={pc:#x})" if pc is not None else ""
        super().__init__(
            f"tag check fault at {address:#x}: key {key:#x} != lock {lock:#x}{where}"
        )


class DeadlockError(SimulationError):
    """The pipeline made no forward progress for too many consecutive cycles.

    Attributes:
        cycles: consecutive cycles without a commit when the core gave up.
        snapshot: structured pipeline state captured at detection time
            (see :func:`repro.resilience.snapshot.core_snapshot`); empty when
            the error was raised without a core in hand.
    """

    def __init__(self, cycles: int, detail: str = "",
                 snapshot: dict | None = None):
        self.cycles = cycles
        self.snapshot = snapshot or {}
        suffix = f": {detail}" if detail else ""
        super().__init__(f"no instruction committed for {cycles} cycles{suffix}")


class LivelockError(SimulationError):
    """Instructions commit but the architectural PC makes no forward progress.

    Distinct from :class:`DeadlockError`: the commit stage is busy (so the
    no-commit watchdog never fires), yet the same tiny set of PCs retires
    forever — e.g. a one-instruction ``B .`` spin or a squash/replay storm
    that keeps re-committing the same loop with no exit.

    Attributes:
        commits: committed instructions observed inside the stuck window.
        distinct_pcs: the PCs the stuck window kept revisiting.
        snapshot: structured pipeline state captured at detection time.
    """

    def __init__(self, commits: int, distinct_pcs: tuple = (),
                 snapshot: dict | None = None):
        self.commits = commits
        self.distinct_pcs = tuple(distinct_pcs)
        self.snapshot = snapshot or {}
        pcs = ", ".join(f"{pc:#x}" for pc in self.distinct_pcs)
        super().__init__(
            f"{commits} commits with no forward PC progress (pcs: {pcs})")


class InvariantViolation(ReproError):
    """A cycle-level microarchitectural invariant failed.

    Raised by :class:`repro.resilience.invariants.InvariantChecker` when the
    pipeline or memory-system state is internally inconsistent — either a
    simulator bug or the intended effect of injected faults.

    Attributes:
        invariant: machine-readable invariant name (e.g. ``"rob-commit-order"``).
        structure: the faulty structure (``"rob"``, ``"lq"``, ``"sq"``,
            ``"mshr"``, ``"lfb"``, ``"tag-storage"``, ...).
        snapshot: structured pipeline state captured at detection time.
    """

    def __init__(self, invariant: str, message: str, structure: str = "",
                 snapshot: dict | None = None):
        self.invariant = invariant
        self.structure = structure or invariant.split("-")[0]
        self.snapshot = snapshot or {}
        super().__init__(f"invariant '{invariant}' violated "
                         f"[structure={self.structure}]: {message}")


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or restored.

    Restore-side failures are *expected* events, not bugs: the campaign
    layer catches this error, walks back to an older checkpoint generation
    or degrades the cell to a straight-through run, and records the
    degradation in ``report.json``.  The structured attributes exist so
    that degradation records can name the fault class that was detected.

    Attributes:
        path: the checkpoint file involved.
        section: the section whose integrity check failed, or ``""`` when
            the failure is file-level (truncation, unparseable header).
        kind: machine-readable failure class — one of ``"truncated"``,
            ``"torn-header"``, ``"bad-magic"``, ``"schema-skew"``,
            ``"config-skew"``, ``"section-corrupt"``, ``"missing"``,
            ``"state-mismatch"``.
    """

    def __init__(self, message: str, *, path: str = "", section: str = "",
                 kind: str = "corrupt"):
        self.path = path
        self.section = section
        self.kind = kind
        where = f" [{path}]" if path else ""
        which = f" section={section!r}" if section else ""
        super().__init__(f"checkpoint {kind}{which}: {message}{where}")


class CampaignError(ReproError):
    """An experiment campaign could not be orchestrated.

    Cell-level *simulation* failures never raise this — they are retried and,
    at worst, surface as missing-cell markers in the rendered figures.
    ``CampaignError`` is reserved for harness-level problems: an unusable run
    directory, a manifest that does not match, a worker that died in a way
    the scheduler cannot interpret.
    """


class ManifestMismatch(CampaignError):
    """A resumed run directory was created by a different campaign config.

    Resuming under a changed configuration would silently mix rows measured
    under different parameters, so the mismatch is fail-stop.

    Attributes:
        expected: config hash recorded in the run directory's manifest.
        actual: config hash of the campaign requesting the resume.
    """

    def __init__(self, expected: str, actual: str, detail: str = ""):
        self.expected = expected
        self.actual = actual
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"run directory was created by a different campaign config: "
            f"manifest hash {expected} != requested {actual}{suffix}")


class ResultCorruption(CampaignError):
    """A result-store record failed its integrity check.

    Normally corruption is *handled*, not raised: ``ResultStore.load``
    reports corrupt records and the scheduler re-queues their cells.  The
    exception exists for callers that demand a fully-intact store
    (``ResultStore.load(strict=True)``).

    Attributes:
        line_no: 1-based line in ``results.jsonl``.
        reason: what failed (truncated JSON, checksum mismatch, ...).
    """

    def __init__(self, line_no: int, reason: str):
        self.line_no = line_no
        self.reason = reason
        super().__init__(f"results.jsonl line {line_no}: {reason}")


#: Machine-readable :class:`ServiceError` kinds, each mapped 1:1 to a
#: protocol error response by :mod:`repro.service.protocol`.
SERVICE_ERROR_KINDS = frozenset({
    "malformed",          # request line is not a valid protocol object
    "oversize",           # request exceeds the line-size budget
    "unsupported",        # unknown op / protocol version skew
    "invalid-program",    # the submitted program failed to assemble/link
    "overloaded",         # admission queue full: load shed
    "client-over-limit",  # per-client fairness cap exceeded
    "deadline",           # request budget expired (queued or running)
    "cancelled",          # cooperatively cancelled (client gone, drain cut)
    "quarantined",        # content hash tripped the poison-program breaker
    "draining",           # server is in SIGTERM drain; admission stopped
    "degraded-unavailable",  # ladder bottom: no tier can serve this request
    "worker-lost",        # worker died repeatedly; retries exhausted
})


class ServiceError(ReproError):
    """A spec-lint service request could not be served.

    Service failures are *protocol events*, not crashes: every kind maps to
    a typed error response the client can interpret (back off on
    ``overloaded``, re-submit later on ``draining``, give up on
    ``quarantined``).  The server never lets one of these take down the
    accept loop.

    Attributes:
        kind: machine-readable failure class, one of
            :data:`SERVICE_ERROR_KINDS`.
        retryable: hint to clients whether re-submitting the identical
            request later can succeed (load/lifecycle kinds) or is futile
            until the request itself changes (malformed, quarantined...).
    """

    #: Kinds a client may retry later without changing the request.
    RETRYABLE = frozenset({"overloaded", "client-over-limit", "deadline",
                           "cancelled", "draining",
                           "degraded-unavailable", "worker-lost"})

    def __init__(self, message: str, *, kind: str):
        if kind not in SERVICE_ERROR_KINDS:
            raise ValueError(f"unknown service error kind {kind!r}")
        self.kind = kind
        self.retryable = kind in self.RETRYABLE
        super().__init__(f"[{kind}] {message}")


class AnalysisError(ReproError):
    """The static-analysis toolchain could not complete a request.

    Raised by witness synthesis (a synthesized program failed its
    assemble/disassemble round-trip or does not exhibit the requested gadget
    class) and by automatic repair (no sufficient fix exists for a gadget,
    or a repaired program failed re-verification).
    """


class FuzzError(ReproError):
    """The differential fuzzer could not complete a request.

    Raised for harness-level failures — a generated candidate that fails
    its assemble/disassemble round-trip, a corpus directory whose manifest
    does not match the requested configuration, or a replay that diverges
    from its recorded corpus.  Analyzer/simulator *disagreements* are never
    exceptions: they are the fuzzer's product, triaged into minimized
    regression records.
    """
