"""Exception hierarchy shared across the simulator.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch simulator problems without swallowing unrelated Python
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AssemblerError(ReproError):
    """The assembler could not parse or resolve a program.

    Attributes:
        line_no: 1-based source line where the problem was found, or ``None``
            when the error is not tied to a specific line (e.g. a missing
            label referenced from several places).
    """

    def __init__(self, message: str, line_no: int | None = None):
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The simulation reached an invalid state (simulator bug or bad program)."""


class MemoryFault(SimulationError):
    """An architectural access touched unmapped memory.

    Carries the faulting (untagged) physical address so test harnesses and
    attack detectors can report precisely what went wrong.
    """

    def __init__(self, address: int, message: str = ""):
        self.address = address
        detail = message or "access to unmapped memory"
        super().__init__(f"{detail} at {address:#x}")


class TagCheckFault(SimulationError):
    """An MTE tag check failed on the committed path.

    Mirrors the synchronous tag-check fault ARM MTE raises when a pointer's
    key does not match the allocation tag (lock) of the granule it touches.
    Under SpecASan a *speculative* mismatch is delayed rather than faulting;
    the fault is only raised once the access is bound to commit (§3.4).
    """

    def __init__(self, address: int, key: int, lock: int, pc: int | None = None):
        self.address = address
        self.key = key
        self.lock = lock
        self.pc = pc
        where = f" (pc={pc:#x})" if pc is not None else ""
        super().__init__(
            f"tag check fault at {address:#x}: key {key:#x} != lock {lock:#x}{where}"
        )


class DeadlockError(SimulationError):
    """The pipeline made no forward progress for too many consecutive cycles."""

    def __init__(self, cycles: int, detail: str = ""):
        self.cycles = cycles
        suffix = f": {detail}" if detail else ""
        super().__init__(f"no instruction committed for {cycles} cycles{suffix}")
