"""Configuration dataclasses for the simulated system.

The default values reproduce Table 2 of the paper (an ARM Cortex-A76-like
core): 8-wide issue/commit, 32-entry issue queue, 40-entry ROB, 16-entry load
and store queues, 32KB 2-way L1 caches, a 1MB 16-way L2, and a 16-entry
Line-Fill Buffer.  ``CORTEX_A76`` is the ready-made instance used by the
evaluation harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


class DefenseKind(enum.Enum):
    """The mitigation mechanisms the paper evaluates (Figures 6-9, Table 1).

    ``NONE`` is the unsafe baseline every figure normalizes against.
    ``FENCE`` models the "Speculative Barriers" bars (delay-ACCESS class),
    ``STT`` Speculative Taint Tracking (delay-USE), ``GHOSTMINION`` the
    shadow-structure scheme (delay-TRANSMIT), ``SPECCFI`` control-flow-only
    protection, ``SPECASAN`` the paper's contribution, and ``SPECASAN_CFI``
    the SpecASan+SpecCFI composition of §4.2/Figure 9.
    """

    NONE = "none"
    FENCE = "fence"
    STT = "stt"
    GHOSTMINION = "ghostminion"
    SPECCFI = "speccfi"
    SPECASAN = "specasan"
    SPECASAN_CFI = "specasan+cfi"

    @property
    def uses_specasan(self) -> bool:
        """Whether this defense includes the SpecASan tag-check mechanism."""
        return self in (DefenseKind.SPECASAN, DefenseKind.SPECASAN_CFI)

    @property
    def uses_cfi(self) -> bool:
        """Whether this defense includes speculative CFI enforcement."""
        return self in (DefenseKind.SPECCFI, DefenseKind.SPECASAN_CFI)


class TagPolicy(enum.Enum):
    """How the tagging allocator assigns allocation tags (§6).

    ``RANDOM`` mimics IRG-style random tag generation (tags may collide,
    1/16 chance for unrelated allocations).  ``DETERMINISTIC`` cycles tags so
    that adjacent and reused allocations always differ, the policy the paper
    recommends for security-critical data since leaked tags then do not help
    the attacker.
    """

    RANDOM = "random"
    DETERMINISTIC = "deterministic"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    ``tagged`` selects whether the cache stores MTE allocation tags alongside
    each line and performs the tag check at lookup time (§3.3.1).
    """

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency: int = 2
    mshr_entries: int = 8
    tagged: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"{self.name}: sizes must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"assoc*line ({self.associativity}*{self.line_bytes})"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(f"{self.name}: line size must be a power of two")

    @property
    def num_sets(self) -> int:
        """Number of sets in this cache."""
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class MemoryConfig:
    """DRAM, memory-controller, and Line-Fill Buffer parameters.

    The memory controller issues a tag-storage read in parallel with each
    data read (§3.3.4); ``tag_fetch_extra_latency`` models the cases where
    the tag response is the critical path.
    """

    dram_latency: int = 80
    controller_latency: int = 4
    lfb_entries: int = 16
    lfb_hit_latency: int = 2
    tag_fetch_extra_latency: int = 2
    size_bytes: int = 1 << 24  # 16 MiB of simulated physical memory
    #: Whether LFB entries carry allocation tags (§3.3.3).  Disabling this
    #: is the "LFB tagging off" ablation: stale in-flight data is no longer
    #: gated by locks and the MDS protection collapses.
    lfb_tagged: bool = True
    #: Hardware prefetcher: "none" or "next-line" (§6 future work).
    prefetcher: str = "none"
    #: Whether the prefetcher checks allocation tags before installing a
    #: line (the SpecASan prefetcher extension §6 leaves to future work).
    prefetch_check_tags: bool = False

    def __post_init__(self) -> None:
        if self.dram_latency <= 0 or self.size_bytes <= 0:
            raise ConfigError("memory latencies and size must be positive")
        if self.size_bytes % 16:
            raise ConfigError("memory size must be a multiple of the 16B granule")


@dataclass(frozen=True)
class MTEConfig:
    """Memory Tagging Extension parameters (§2.3).

    ARM MTE fixes the granule at 16 bytes and the tag width at 4 bits; both
    are configurable here so the tag-collision ablation can explore wider
    tags.
    """

    granule_bytes: int = 16
    tag_bits: int = 4
    tag_policy: TagPolicy = TagPolicy.DETERMINISTIC
    seed: int = 0xA11C

    def __post_init__(self) -> None:
        if self.granule_bytes & (self.granule_bytes - 1):
            raise ConfigError("granule size must be a power of two")
        if not 1 <= self.tag_bits <= 8:
            raise ConfigError("tag width must be between 1 and 8 bits")

    @property
    def num_tags(self) -> int:
        """Number of distinct tag values (16 for ARM MTE)."""
        return 1 << self.tag_bits


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table 2)."""

    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    iq_entries: int = 32
    rob_entries: int = 40
    lq_entries: int = 16
    sq_entries: int = 16
    # Branch prediction structures exercised by Spectre v1/v2/v5/BHB.
    # (A76-class: multi-K-entry direction and target predictors.)
    pht_entries: int = 16384
    btb_entries: int = 4096
    rsb_entries: int = 16
    bhb_bits: int = 8
    # Memory-dependence predictor (MDU, §3.4) for Spectre-STL.
    mdp_entries: int = 256
    # Functional-unit latencies.  Branch resolution is deliberately deep
    # (condition evaluation + redirect sit many stages past fetch on an
    # A76-class pipeline); together with ``mispredict_penalty`` this sets
    # the speculation-window length every delay-based defense pays for.
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    branch_latency: int = 4
    agu_latency: int = 1
    mispredict_penalty: int = 6
    # Cycles the ROB takes to broadcast "unsafe" to dependents (§3.4 notes
    # a large ROB may need multiple cycles; ablated in the benchmarks).
    unsafe_broadcast_latency: int = 1
    # Consecutive cycles without a commit before the core declares deadlock.
    # Must comfortably exceed the worst legitimate stall (an MSHR-full chain
    # of DRAM fetches plus tag reads is still well under a thousand cycles).
    deadlock_threshold: int = 50_000
    # Cycle budget for one run: the core raises SimulationError when a
    # program has not halted after this many cycles.  Hoisted here (it used
    # to be a hard-coded ``Core.run`` default) so experiment campaigns can
    # budget cycles per workload the same way they budget wall-clock time.
    max_cycles: int = 2_000_000

    def __post_init__(self) -> None:
        for name in ("fetch_width", "issue_width", "commit_width", "iq_entries",
                     "rob_entries", "lq_entries", "sq_entries"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"core parameter {name} must be positive")
        if self.rsb_entries <= 0 or self.btb_entries <= 0 or self.pht_entries <= 0:
            raise ConfigError("predictor sizes must be positive")
        if self.deadlock_threshold <= 0:
            raise ConfigError("deadlock_threshold must be positive")
        if self.max_cycles <= 0:
            raise ConfigError("max_cycles must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated system: cores, caches, memory, MTE, and defense."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1I", size_bytes=32 * 1024, associativity=2, hit_latency=1,
        tagged=False))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1D", size_bytes=32 * 1024, associativity=2, hit_latency=2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L2", size_bytes=1024 * 1024, associativity=16, hit_latency=12,
        mshr_entries=16))
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    mte: MTEConfig = field(default_factory=MTEConfig)
    defense: DefenseKind = DefenseKind.NONE
    num_cores: int = 1

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")
        if self.l1d.line_bytes != self.l2.line_bytes:
            raise ConfigError("L1D and L2 must share a line size")

    def with_defense(self, defense: DefenseKind) -> "SystemConfig":
        """Return a copy of this config running under ``defense``."""
        return replace(self, defense=defense)

    def with_cores(self, num_cores: int) -> "SystemConfig":
        """Return a copy of this config with ``num_cores`` cores."""
        return replace(self, num_cores=num_cores)


#: The configuration of Table 2: an ARM Cortex-A76-like core.
CORTEX_A76 = SystemConfig()


def describe(config: SystemConfig) -> str:
    """Render ``config`` as the rows of Table 2 (used by the quickstart)."""
    c = config.core
    rows = [
        ("CPU", "ARM Cortex A76 (modelled)"),
        ("Issue/Commit", f"{c.issue_width}-way issue, {c.commit_width} micro-ops/cycle commit"),
        ("IQ/ROB", f"{c.iq_entries}-entry Issue Queue, {c.rob_entries}-entry Reorder Buffer"),
        ("Load/Store Queues", f"{c.lq_entries}-entry each"),
        ("L1 I-Cache", _cache_row(config.l1i)),
        ("L1 D-Cache", _cache_row(config.l1d)),
        ("L2 Cache", _cache_row(config.l2)),
        ("Line Fill Buffer", f"{config.memory.lfb_entries}-entry (cache line), "
                             f"{config.memory.lfb_hit_latency} cycle hit, tagged"),
        ("Defense", config.defense.value),
    ]
    width = max(len(k) for k, _ in rows)
    return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


def _cache_row(cache: CacheConfig) -> str:
    size_kb = cache.size_bytes // 1024
    size = f"{size_kb} KB" if size_kb < 1024 else f"{size_kb // 1024} MB"
    tagged = ", tagged" if cache.tagged else ""
    return (f"{size}, {cache.associativity}-way, {cache.line_bytes}B line, "
            f"{cache.hit_latency} cycle hit{tagged}")
