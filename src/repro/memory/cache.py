"""Set-associative caches with allocation-tag sidecars (§3.3.1, Figure 3).

Each 64-byte line carries four 4-bit allocation tags — one per 16-byte
granule — stored alongside the address tag.  "The two highest address offset
bits can be used to concurrently look up the allocation tag for each cache
line, alongside the regular cache tag lookup": :meth:`Cache.lock_for` indexes
the sidecar by those offset bits.

The cache tracks presence, recency, dirtiness, and locks.  Data itself lives
in :class:`repro.memory.dram.MainMemory` (the architectural truth); since
stores update memory only at commit, squashed stores never corrupt it, and
the cache only needs to answer *timing* and *tag-check* questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import CacheConfig
from repro.mte.tags import strip_tag


@dataclass
class CacheLine:
    """Metadata for one resident line."""

    line_address: int
    locks: Tuple[int, ...] = ()
    dirty: bool = False
    last_used: int = 0


class Cache:
    """One level of the hierarchy (presence + tags + LRU, no data copies)."""

    def __init__(self, config: CacheConfig, granule_bytes: int = 16):
        self.config = config
        self.granule_bytes = granule_bytes
        self.line_bytes = config.line_bytes
        self.num_sets = config.num_sets
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.tag_checks = 0
        self.tag_mismatches = 0

    # -- geometry -----------------------------------------------------------

    def line_address(self, address: int) -> int:
        """The aligned line address covering ``address`` (tag stripped)."""
        return strip_tag(address) & ~(self.line_bytes - 1)

    def set_index(self, line_address: int) -> int:
        return (line_address // self.line_bytes) % self.num_sets

    def granule_offset(self, address: int) -> int:
        """Which granule of its line ``address`` falls in (0..3 for 64B/16B)."""
        return (strip_tag(address) % self.line_bytes) // self.granule_bytes

    # -- lookup / insert -------------------------------------------------------

    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLine]:
        """The resident line covering ``address``, updating recency."""
        line_addr = self.line_address(address)
        line = self._sets[self.set_index(line_addr)].get(line_addr)
        if line is not None and touch:
            self._tick += 1
            line.last_used = self._tick
        return line

    def contains(self, address: int) -> bool:
        """Presence probe that does *not* perturb recency (attack probes)."""
        line_addr = self.line_address(address)
        return line_addr in self._sets[self.set_index(line_addr)]

    def insert(self, line_address: int, locks: Tuple[int, ...] = (),
               dirty: bool = False) -> Optional[CacheLine]:
        """Install a line; returns the evicted victim, if any."""
        index = self.set_index(line_address)
        cache_set = self._sets[index]
        victim = None
        if line_address not in cache_set and len(cache_set) >= self.config.associativity:
            lru_addr = min(cache_set, key=lambda a: cache_set[a].last_used)
            victim = cache_set.pop(lru_addr)
            self.evictions += 1
        self._tick += 1
        cache_set[line_address] = CacheLine(
            line_address, locks=locks, dirty=dirty, last_used=self._tick)
        return victim

    def invalidate(self, address: int) -> bool:
        """Coherence invalidation; True if the line was present."""
        line_addr = self.line_address(address)
        return self._sets[self.set_index(line_addr)].pop(line_addr, None) is not None

    def mark_dirty(self, address: int) -> None:
        line = self.lookup(address)
        if line is not None:
            line.dirty = True

    # -- tag sidecar -------------------------------------------------------------

    def lock_for(self, line: CacheLine, address: int) -> Optional[int]:
        """The allocation tag covering ``address`` within ``line``."""
        if not line.locks:
            return None
        return line.locks[self.granule_offset(address)]

    def check_tag(self, line: CacheLine, pointer: int, tag_bits: int = 4) -> bool:
        """Compare the pointer key against the resident lock (§3.3.1)."""
        self.tag_checks += 1
        lock = self.lock_for(line, pointer)
        key = (pointer >> 56) & ((1 << tag_bits) - 1)
        ok = lock is None or key == lock
        if not ok:
            self.tag_mismatches += 1
        return ok

    def update_lock(self, address: int, tag: int) -> None:
        """STG coherence: refresh the sidecar copy for one granule."""
        line = self.lookup(address, touch=False)
        if line is not None and line.locks:
            locks = list(line.locks)
            locks[self.granule_offset(address)] = tag
            line.locks = tuple(locks)

    # -- introspection -------------------------------------------------------------

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def iter_lines(self):
        """Yield every resident :class:`CacheLine` (invariant checking)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def flush(self) -> None:
        """Drop all lines (tests / context-switch baselines)."""
        for cache_set in self._sets:
            cache_set.clear()

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "tick": self._tick,
            "sets": [[[line.line_address, list(line.locks), line.dirty,
                       line.last_used]
                      for line in cache_set.values()]
                     for cache_set in self._sets],
            "hits": self.hits, "misses": self.misses,
            "evictions": self.evictions, "tag_checks": self.tag_checks,
            "tag_mismatches": self.tag_mismatches,
        }

    def load_state_dict(self, state: dict) -> None:
        self._tick = int(state["tick"])
        self._sets = [
            {addr: CacheLine(addr, locks=tuple(locks), dirty=dirty,
                             last_used=last_used)
             for addr, locks, dirty, last_used in lines}
            for lines in state["sets"]]
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.evictions = int(state["evictions"])
        self.tag_checks = int(state["tag_checks"])
        self.tag_mismatches = int(state["tag_mismatches"])
