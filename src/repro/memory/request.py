"""Request/response records exchanged between the core and the hierarchy.

The response deliberately mirrors the paper's plumbing: the data travels
with a *tag-check outcome* ("safe or unsafe", §3.3.1) computed at the
earliest level that could perform the check, and — for MDS modelling — an
optional *stale* value observable from a not-yet-filled LFB entry (§3.3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class AccessKind(enum.Enum):
    """What kind of memory operation is being performed."""

    LOAD = "load"
    STORE = "store"          # read-for-ownership probe at execute time
    COMMIT_STORE = "commit"  # the architectural write at commit
    TAG_LOAD = "ldg"         # LDG: read a granule's allocation tag
    TAG_STORE = "stg"        # STG: write a granule's allocation tag


class ServedFrom(enum.Enum):
    """The level that satisfied a request (for stats and attack probes)."""

    L1 = "L1"
    LFB = "LFB"
    MINION = "minion"
    L2 = "L2"
    DRAM = "DRAM"


@dataclass
class MemRequest:
    """One memory access from the LSQ.

    Attributes:
        address: the *tagged* pointer (key in the top byte).
        size: access width in bytes.
        kind: load/store/tag operation.
        cycle: cycle the request is issued to the hierarchy.
        check_tag: perform the MTE tag check (MTE-enabled configurations).
        block_fill_on_mismatch: SpecASan G3 — on a tag mismatch, the line is
            not installed anywhere and no data is returned (§3.3.4).
        fill_to_minion: GhostMinion — speculative fills are captured in the
            shadow MinionCache instead of L1.
        speculative: the requester was speculative at issue time (stats).
        core_id: issuing core, for coherence.
        write_data: payload for COMMIT_STORE / tag value for TAG_STORE.
    """

    address: int
    size: int
    kind: AccessKind
    cycle: int
    check_tag: bool = False
    block_fill_on_mismatch: bool = False
    fill_to_minion: bool = False
    speculative: bool = False
    core_id: int = 0
    write_data: Optional[bytes] = None
    tag_value: Optional[int] = None
    #: Sequence number of the requesting dynamic instruction (GhostMinion
    #: uses it to drop shadow fills belonging to squashed loads).
    seq: int = -1
    #: The access needs a microcode assist (line-crossing or faulting load).
    #: Only assisted loads can observe stale LFB data — the RIDL/ZombieLoad
    #: trigger; ordinary loads wait for the fill like real hardware.
    assist: bool = False


@dataclass
class MemResponse:
    """The hierarchy's answer.

    ``ready_cycle`` is when architecturally-correct data is available to the
    core.  ``stale_data``, when present, is the value an aggressive design
    would forward *immediately* from a pending LFB entry (the RIDL /
    ZombieLoad window); ``stale_ready_cycle`` is when that forward would
    arrive.  ``tag_ok`` is the tag-check outcome (``None`` when no check was
    requested); ``tag_known_cycle`` is when that outcome reaches the core —
    checks performed at lower levels take longer to report (§3.3.1).
    """

    ready_cycle: int
    data: bytes = b""
    served_from: ServedFrom = ServedFrom.L1
    tag_ok: Optional[bool] = None
    tag_known_cycle: int = 0
    lock: Optional[int] = None
    stale_data: Optional[bytes] = None
    stale_ready_cycle: int = 0
    #: Line whose (previous-occupant) bytes the stale forward exposes.
    stale_line_address: int = -1
    line_address: int = 0
    #: True when the response returned no data because the tag check failed
    #: and the request asked for fills to be blocked (SpecASan).
    data_withheld: bool = False
    #: The access touched unmapped memory.  Wrong-path accesses simply get
    #: dummy data; a committed access with this flag is an architectural
    #: memory fault.
    faulted: bool = False

    def state_dict(self) -> dict:
        return {
            "ready_cycle": self.ready_cycle,
            "data": self.data.hex(),
            "served_from": self.served_from.value,
            "tag_ok": self.tag_ok,
            "tag_known_cycle": self.tag_known_cycle,
            "lock": self.lock,
            "stale_data": (None if self.stale_data is None
                           else self.stale_data.hex()),
            "stale_ready_cycle": self.stale_ready_cycle,
            "stale_line_address": self.stale_line_address,
            "line_address": self.line_address,
            "data_withheld": self.data_withheld,
            "faulted": self.faulted,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "MemResponse":
        stale = state["stale_data"]
        return cls(
            ready_cycle=state["ready_cycle"],
            data=bytes.fromhex(state["data"]),
            served_from=ServedFrom(state["served_from"]),
            tag_ok=state["tag_ok"],
            tag_known_cycle=state["tag_known_cycle"],
            lock=state["lock"],
            stale_data=None if stale is None else bytes.fromhex(stale),
            stale_ready_cycle=state["stale_ready_cycle"],
            stale_line_address=state["stale_line_address"],
            line_address=state["line_address"],
            data_withheld=state["data_withheld"],
            faulted=state["faulted"],
        )
