"""The memory controller (§3.3.4).

"The memory controller handles the tag check operation by creating two
separate memory access requests to the data memory and the tag storage
simultaneously.  The fetched allocation tag ... is checked against the
address tag of the memory access operation to validate its safety."

On a mismatch with fill-blocking requested (SpecASan), "the data is not
returned to the upper memory levels or the core along with the memory
response" — the controller reports latency and the unsafe flag only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import MemoryConfig, MTEConfig
from repro.memory.dram import MainMemory
from repro.mte.tags import key_of


@dataclass
class ControllerResult:
    """Outcome of one line fetch from DRAM.

    ``tag_ok`` is ``None`` when no check was requested.  ``locks`` are the
    allocation tags covering the line (they travel upward with the fill so
    higher levels can check future requests locally).
    """

    ready_cycle: int
    locks: Tuple[int, ...]
    tag_ok: Optional[bool]
    deliver_data: bool


class MemoryController:
    """Front end of DRAM: paired data + tag-storage accesses."""

    def __init__(self, memory: MainMemory, config: Optional[MemoryConfig] = None,
                 mte: Optional[MTEConfig] = None):
        self.memory = memory
        self.config = config or memory.config
        self.mte = mte or memory.mte
        self.reads = 0
        self.tag_reads = 0
        self.tag_mismatches = 0
        self.blocked_fills = 0
        #: Fault-injection hook (``repro.resilience.faults.FaultInjector``):
        #: consulted on every tag-storage read to drop or delay the response.
        self.injector = None
        self.dropped_tag_responses = 0
        self.delayed_tag_responses = 0

    def line_latency(self, check_tag: bool) -> int:
        """Cycles for a line fetch; the parallel tag read adds a small tail
        when it is the critical path."""
        latency = self.config.controller_latency + self.config.dram_latency
        if check_tag:
            latency += self.config.tag_fetch_extra_latency
        return latency

    def _tag_response_penalty(self) -> int:
        """Extra cycles caused by an injected tag-response drop or delay.

        A *dropped* response is re-requested after a timeout of one full
        round trip (the fail-safe a real controller implements: data is never
        forwarded without its tag verdict, so the check is retried — the
        access is delayed, never unchecked).  A *delayed* response simply
        arrives late.  Either way the tag verdict still arrives, so safety
        degrades to extra latency — the paper's "delay, never leak" shape.
        """
        if self.injector is None:
            return 0
        drop, delay = self.injector.perturb_tag_response()
        penalty = 0
        if drop:
            self.dropped_tag_responses += 1
            penalty += self.config.controller_latency + self.config.dram_latency
        if delay:
            self.delayed_tag_responses += 1
            penalty += delay
        return penalty

    def fetch_line(self, pointer: int, line_address: int, line_bytes: int,
                   cycle: int, check_tag: bool,
                   block_fill_on_mismatch: bool) -> ControllerResult:
        """Fetch one line, performing the dual data+tag access.

        ``pointer`` is the original tagged request address: the check
        compares its key against the lock of the granule it targets.
        """
        self.reads += 1
        ready = cycle + self.line_latency(check_tag)
        locks = self.memory.line_locks(line_address, line_bytes)
        tag_ok: Optional[bool] = None
        deliver = True
        if check_tag:
            self.tag_reads += 1
            ready += self._tag_response_penalty()
            key = key_of(pointer, self.mte.tag_bits)
            lock = self.memory.lock_of(pointer)
            tag_ok = key == lock
            if not tag_ok:
                self.tag_mismatches += 1
                if block_fill_on_mismatch:
                    deliver = False
                    self.blocked_fills += 1
        return ControllerResult(ready, locks, tag_ok, deliver)

    def read_lock(self, pointer: int) -> int:
        """Direct tag-storage read (LDG path)."""
        self.tag_reads += 1
        return self.memory.lock_of(pointer)

    def write_lock(self, pointer: int, tag: int) -> None:
        """Direct tag-storage write (STG path)."""
        self.memory.set_lock(pointer, tag)

    def state_dict(self) -> dict:
        # ``injector`` is wiring (reattached by the fault harness), not state.
        return {"reads": self.reads, "tag_reads": self.tag_reads,
                "tag_mismatches": self.tag_mismatches,
                "blocked_fills": self.blocked_fills,
                "dropped_tag_responses": self.dropped_tag_responses,
                "delayed_tag_responses": self.delayed_tag_responses}

    def load_state_dict(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, int(value))
