"""The memory hierarchy façade the core(s) talk to.

One :class:`MemoryHierarchy` instance serves every core in the system: each
core owns a private L1D, LFB, and (for GhostMinion) MinionCache; the L2,
memory controller, DRAM, and coherence directory are shared.

The tag check is performed at the *earliest point possible* (§3.3.1):

- L1 hit → checked against the line's resident locks, result immediately;
- LFB hit (filled) → checked against the entry's locks;
- LFB hit (fill in flight) → the *stale* occupant's locks gate any stale
  forward; the final check arrives with the fill;
- L2 hit → checked at L2, outcome carried back via the MSHR unsafe bit;
- miss to DRAM → the controller's paired tag-storage read performs the
  check (§3.3.4).

When a request sets ``block_fill_on_mismatch`` (SpecASan, G3), a failed
check at any level prevents the line from being installed in any structure
above the check point and withholds the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import SystemConfig
from repro.errors import MemoryFault
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceDirectory
from repro.memory.controller import MemoryController
from repro.memory.dram import MainMemory
from repro.memory.lfb import LineFillBuffer
from repro.memory.minion import MinionCache
from repro.memory.mshr import MSHRFile
from repro.memory.request import AccessKind, MemRequest, MemResponse, ServedFrom
from repro.mte.tags import key_of, strip_tag


@dataclass
class HierarchyStats:
    """Aggregate counters the evaluation harness reads."""

    loads: int = 0
    store_probes: int = 0
    commit_stores: int = 0
    tag_checks: int = 0
    tag_mismatches: int = 0
    withheld_responses: int = 0
    stale_forward_windows: int = 0
    l1_hits: int = 0
    lfb_hits: int = 0
    l2_hits: int = 0
    dram_fetches: int = 0
    prefetches: int = 0
    cross_tag_prefetches: int = 0
    prefetches_suppressed: int = 0

    def registry(self, scope: str = "mem"):
        """A :class:`~repro.telemetry.registry.StatsRegistry` view of these
        counters plus the shared hit-rate formulas, scoped under ``scope``."""
        from repro.telemetry.registry import hierarchy_registry
        return hierarchy_registry(self, scope_name=scope)

    def state_dict(self) -> dict:
        from dataclasses import asdict
        return asdict(self)

    def load_state_dict(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, int(value))


class MemoryHierarchy:
    """Caches + LFB + controller + DRAM for ``config.num_cores`` cores."""

    def __init__(self, config: SystemConfig, memory: Optional[MainMemory] = None):
        self.config = config
        self.memory = memory or MainMemory(config.memory, config.mte)
        self.controller = MemoryController(self.memory, config.memory, config.mte)
        self.l2 = Cache(config.l2, config.mte.granule_bytes)
        self.l2_mshrs = MSHRFile(config.l2.mshr_entries)
        self.line_bytes = config.l1d.line_bytes
        self.directory = CoherenceDirectory(config.num_cores)
        self.l1ds: List[Cache] = []
        self.lfbs: List[LineFillBuffer] = []
        self.l1_mshrs: List[MSHRFile] = []
        self.minions: List[MinionCache] = []
        for _ in range(config.num_cores):
            self.l1ds.append(Cache(config.l1d, config.mte.granule_bytes))
            self.lfbs.append(LineFillBuffer(config.memory.lfb_entries, self.line_bytes))
            self.l1_mshrs.append(MSHRFile(config.l1d.mshr_entries))
            self.minions.append(MinionCache())
        self.directory.register_invalidator(self._invalidate_core_line)
        self.stats = HierarchyStats()
        #: Pending L1 installs: (ready_cycle, core_id, line_address, locks).
        self._pending_fills: List[Tuple[int, int, int, Tuple[int, ...]]] = []

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _line_addr(self, address: int) -> int:
        return strip_tag(address) & ~(self.line_bytes - 1)

    def _key(self, pointer: int) -> int:
        return key_of(pointer, self.config.mte.tag_bits)

    def _check(self, pointer: int, lock: Optional[int]) -> bool:
        self.stats.tag_checks += 1
        ok = lock is None or self._key(pointer) == lock
        if not ok:
            self.stats.tag_mismatches += 1
        return ok

    def _invalidate_core_line(self, core_id: int, line_address: int) -> None:
        self.l1ds[core_id].invalidate(line_address)
        self.lfbs[core_id].invalidate(line_address)
        self.minions[core_id].promote(line_address)  # drop silently

    def drain(self, cycle: int) -> None:
        """Complete fills that have arrived by ``cycle``.

        Installs arrived lines into their L1 (or leaves them in the
        MinionCache — minion fills never enter ``_pending_fills``) and marks
        LFB entries filled with the line's data and locks.
        """
        if self._pending_fills:
            remaining = []
            for ready, core_id, line_addr, locks in self._pending_fills:
                if ready <= cycle:
                    self._install_l1(core_id, line_addr, locks)
                else:
                    remaining.append((ready, core_id, line_addr, locks))
            self._pending_fills = remaining
        for core_id, lfb in enumerate(self.lfbs):
            for entry in lfb.drain(cycle):
                data = self.memory.read(entry.line_address, self.line_bytes)
                locks = (self.memory.line_locks(entry.line_address,
                                                self.line_bytes)
                         if self.config.memory.lfb_tagged else ())
                lfb.complete_fill(entry, data, locks)

    def quiesce(self) -> None:
        """Let every in-flight fill land and clear the miss machinery.

        Called between runs that share this hierarchy (the warm-up /
        fast-forward pattern): cores restart their cycle counters at zero,
        so pending state stamped in the old timebase must be settled first.
        Cache contents and tag state are preserved — that's the point of
        warming.
        """
        horizon = 1 << 60
        self.drain(horizon)
        for mshrs in self.l1_mshrs:
            mshrs.drain(horizon)
        self.l2_mshrs.drain(horizon)

    def _install_l1(self, core_id: int, line_addr: int,
                    locks: Tuple[int, ...]) -> None:
        if not self.config.l1d.tagged:
            locks = ()  # ablation: no lock sidecar at this level
        victim = self.l1ds[core_id].insert(line_addr, locks)
        self.directory.on_fill(core_id, line_addr)
        if victim is not None:
            self.directory.on_evict(core_id, victim.line_address)

    def _install_l2(self, line_addr: int, locks: Tuple[int, ...]) -> None:
        if not self.config.l2.tagged:
            locks = ()  # ablation: no lock sidecar at this level
        victim = self.l2.insert(line_addr, locks)
        if victim is not None:
            # Inclusive L2: back-invalidate every L1 copy of the victim.
            for core_id in sorted(self.directory.sharers_of(victim.line_address)):
                self._invalidate_core_line(core_id, victim.line_address)
                self.directory.on_evict(core_id, victim.line_address)

    # ------------------------------------------------------------------
    # the main access path
    # ------------------------------------------------------------------

    def access(self, req: MemRequest) -> MemResponse:
        """Serve a load or store-probe; see the module docstring for levels."""
        self.drain(req.cycle)
        if req.kind is AccessKind.LOAD:
            self.stats.loads += 1
        elif req.kind is AccessKind.STORE:
            self.stats.store_probes += 1
        core = req.core_id
        line_addr = self._line_addr(req.address)
        try:
            data = self.memory.read(req.address, req.size)
        except MemoryFault:
            # Wrong-path accesses may carry garbage addresses; hardware
            # returns junk and faults only if the access commits.  No cache
            # state changes (nothing to fill from).
            return MemResponse(
                ready_cycle=req.cycle + self.config.l1d.hit_latency,
                data=bytes(req.size), served_from=ServedFrom.DRAM,
                line_address=line_addr, faulted=True)

        # 1. L1 hit.
        line = self.l1ds[core].lookup(req.address)
        if line is not None:
            ready = req.cycle + self.config.l1d.hit_latency
            tag_ok = None
            if req.check_tag:
                tag_ok = self._check(req.address, self.l1ds[core].lock_for(line, req.address))
            self.stats.l1_hits += 1
            withheld = req.check_tag and tag_ok is False and req.block_fill_on_mismatch
            if withheld:
                self.stats.withheld_responses += 1
            return MemResponse(
                ready_cycle=ready, data=b"" if withheld else data,
                served_from=ServedFrom.L1, tag_ok=tag_ok, tag_known_cycle=ready,
                lock=self.l1ds[core].lock_for(line, req.address),
                line_address=line_addr, data_withheld=withheld)

        # 1b. GhostMinion shadow hit (speculative fills living outside L1).
        if req.fill_to_minion and self.minions[core].contains(line_addr):
            self.minions[core].lookup(line_addr)
            ready = req.cycle + self.config.l1d.hit_latency
            return MemResponse(
                ready_cycle=ready, data=data, served_from=ServedFrom.MINION,
                tag_ok=None, tag_known_cycle=ready, line_address=line_addr)

        # 2. LFB.
        lfb = self.lfbs[core]
        entry = lfb.lookup(line_addr)
        if entry is not None and not entry.filled:
            # Fill in flight: merge. Stale window until the fill arrives.
            lfb.hits += 1
            self.stats.lfb_hits += 1
            fill_ready = entry.fill_ready_cycle
            ready = max(fill_ready, req.cycle) + self.config.memory.lfb_hit_latency
            stale_ready = req.cycle + self.config.memory.lfb_hit_latency
            stale_data = None
            stale_ok = None
            if entry.data and stale_ready < fill_ready and req.assist:
                # Assisted (line-crossing / faulting) loads can sample the
                # previous occupant's bytes before the fill arrives — the
                # RIDL/ZombieLoad window.  Ordinary loads wait for the fill.
                # A crossing load samples whatever bytes the entry holds,
                # zero-padded — like the real partial forwards.
                offset = strip_tag(req.address) % self.line_bytes
                chunk = entry.data[offset:offset + req.size]
                if chunk:
                    stale_data = chunk + bytes(req.size - len(chunk))
                    self.stats.stale_forward_windows += 1
            if req.check_tag and self.config.memory.lfb_tagged:
                # SpecASan checks against the locks *stored in the LFB* —
                # pre-fill these are the stale occupant's locks (§3.3.3).
                stale_lock = (entry.locks[self._granule_offset(req.address)]
                              if entry.locks else None)
                stale_ok = self._check(req.address, stale_lock)
                if not stale_ok and req.block_fill_on_mismatch:
                    stale_data = None
            # The authoritative check outcome arrives with the fill.
            tag_ok = None
            if req.check_tag:
                lock = self.memory.lock_of(req.address)
                tag_ok = self._key(req.address) == lock
            withheld = req.check_tag and tag_ok is False and req.block_fill_on_mismatch
            if withheld:
                self.stats.withheld_responses += 1
            return MemResponse(
                ready_cycle=ready, data=b"" if withheld else data,
                served_from=ServedFrom.LFB, tag_ok=tag_ok,
                tag_known_cycle=max(fill_ready, req.cycle),
                lock=self.memory.lock_of(req.address),
                stale_data=stale_data, stale_ready_cycle=stale_ready,
                stale_line_address=entry.stale_line_address,
                line_address=line_addr, data_withheld=withheld)
        if entry is not None and entry.filled and entry.line_address == line_addr:
            # Arrived but the L1 install is racing; serve from the buffer.
            lfb.hits += 1
            self.stats.lfb_hits += 1
            ready = req.cycle + self.config.memory.lfb_hit_latency
            tag_ok = None
            lock = None
            if req.check_tag:
                lock = (entry.locks[self._granule_offset(req.address)]
                        if entry.locks else None)
                tag_ok = self._check(req.address, lock)
            withheld = req.check_tag and tag_ok is False and req.block_fill_on_mismatch
            if withheld:
                self.stats.withheld_responses += 1
            return MemResponse(
                ready_cycle=ready, data=b"" if withheld else data,
                served_from=ServedFrom.LFB, tag_ok=tag_ok, tag_known_cycle=ready,
                lock=lock, line_address=line_addr, data_withheld=withheld)

        # 3. L1 miss — consult L2.
        l1_mshrs = self.l1_mshrs[core]
        pending = l1_mshrs.lookup(line_addr)
        if pending is not None:
            l1_mshrs.merge(pending)
            ready = max(pending.ready_cycle, req.cycle) + self.config.l1d.hit_latency
            tag_ok = None
            if req.check_tag:
                tag_ok = self._key(req.address) == self.memory.lock_of(req.address)
                if not tag_ok:
                    self.stats.tag_checks += 1
                    self.stats.tag_mismatches += 1
            withheld = req.check_tag and tag_ok is False and req.block_fill_on_mismatch
            return MemResponse(
                ready_cycle=ready, data=b"" if withheld else data,
                served_from=ServedFrom.L2, tag_ok=tag_ok,
                tag_known_cycle=max(pending.ready_cycle, req.cycle),
                line_address=line_addr, data_withheld=withheld)

        stall = 0
        if l1_mshrs.full:
            stall = max(0, l1_mshrs.earliest_ready() - req.cycle)
            l1_mshrs.full_stalls += 1
            l1_mshrs.drain(req.cycle + stall)
        start = req.cycle + stall + self.config.l1d.hit_latency  # L1 lookup time

        l2_line = self.l2.lookup(req.address)
        if l2_line is not None:
            self.stats.l2_hits += 1
            fill_ready = start + self.config.l2.hit_latency
            tag_ok = None
            lock = None
            if req.check_tag:
                lock = self.l2.lock_for(l2_line, req.address)
                tag_ok = self._check(req.address, lock)
            blocked = req.check_tag and tag_ok is False and req.block_fill_on_mismatch
            if not blocked:
                self._schedule_fill(req, line_addr, fill_ready,
                                    l2_line.locks or self.memory.line_locks(
                                        line_addr, self.line_bytes))
            else:
                self.stats.withheld_responses += 1
            return MemResponse(
                ready_cycle=fill_ready + 1, data=b"" if blocked else data,
                served_from=ServedFrom.L2, tag_ok=tag_ok,
                tag_known_cycle=fill_ready, lock=lock,
                line_address=line_addr, data_withheld=blocked)

        # 4. L2 miss — DRAM via the controller.
        self.stats.dram_fetches += 1
        l2_pending = self.l2_mshrs.lookup(line_addr)
        if l2_pending is None:
            if self.l2_mshrs.full:
                extra = max(0, self.l2_mshrs.earliest_ready() - req.cycle)
                start += extra
                self.l2_mshrs.drain(req.cycle + extra)
            result = self.controller.fetch_line(
                req.address, line_addr, self.line_bytes,
                start + self.config.l2.hit_latency,
                req.check_tag, req.block_fill_on_mismatch)
            mshr = self.l2_mshrs.allocate(line_addr, result.ready_cycle)
            mshr.unsafe = result.tag_ok is False
        else:
            self.l2_mshrs.merge(l2_pending)
            result = self.controller.fetch_line(
                req.address, line_addr, self.line_bytes, req.cycle,
                req.check_tag, req.block_fill_on_mismatch)
            result = type(result)(
                ready_cycle=max(l2_pending.ready_cycle, req.cycle),
                locks=result.locks, tag_ok=result.tag_ok,
                deliver_data=result.deliver_data)
            self.controller.reads -= 1  # merged, not a second DRAM read
        self.l2_mshrs.drain(result.ready_cycle)

        tag_ok = result.tag_ok
        blocked = req.check_tag and tag_ok is False and req.block_fill_on_mismatch
        if not blocked:
            if not req.fill_to_minion:
                # GhostMinion: speculative fills stay confined to the shadow
                # structure — no level of the primary hierarchy changes.
                self._install_l2(line_addr, result.locks)
            self._schedule_fill(req, line_addr, result.ready_cycle, result.locks)
            self._maybe_prefetch(req, line_addr, result.locks,
                                 result.ready_cycle)
        else:
            self.stats.withheld_responses += 1
        return MemResponse(
            ready_cycle=result.ready_cycle + 1, data=b"" if blocked else data,
            served_from=ServedFrom.DRAM, tag_ok=tag_ok,
            tag_known_cycle=result.ready_cycle,
            lock=self.memory.lock_of(req.address) if req.check_tag else None,
            line_address=line_addr, data_withheld=blocked)

    def _granule_offset(self, address: int) -> int:
        return (strip_tag(address) % self.line_bytes) // self.config.mte.granule_bytes

    def _schedule_fill(self, req: MemRequest, line_addr: int, fill_ready: int,
                       locks: Tuple[int, ...]) -> None:
        """Route an incoming line to the MinionCache or L1 (via LFB + MSHR)."""
        if req.fill_to_minion:
            self.minions[req.core_id].fill(line_addr, locks, owner_seq=req.seq)
            return
        mshrs = self.l1_mshrs[req.core_id]
        if mshrs.lookup(line_addr) is None and not mshrs.full:
            mshrs.allocate(line_addr, fill_ready)
        self.lfbs[req.core_id].allocate(line_addr, fill_ready)
        self._pending_fills.append((fill_ready, req.core_id, line_addr, locks))
        mshrs.drain(fill_ready)

    def _maybe_prefetch(self, req: MemRequest, line_addr: int,
                        demand_locks: Tuple[int, ...],
                        fill_ready: int) -> None:
        """Next-line prefetch on a demand DRAM fetch (§6 future work).

        The baseline prefetcher installs the next line unconditionally —
        including lines past a protection boundary (counted as
        ``cross_tag_prefetches``, the gap §6 calls out).  With
        ``prefetch_check_tags`` the SpecASan-extended prefetcher compares
        the next line's allocation tags with the demand line's and
        suppresses boundary-crossing prefetches.
        """
        if self.config.memory.prefetcher != "next-line":
            return
        next_line = line_addr + self.line_bytes
        if next_line + self.line_bytes > self.memory.size:
            return
        if (self.l2.contains(next_line)
                or self.l1ds[req.core_id].contains(next_line)
                or self.lfbs[req.core_id].lookup(next_line) is not None):
            return
        locks = self.memory.line_locks(next_line, self.line_bytes)
        crosses = bool(demand_locks) and set(locks) != set(demand_locks)
        if crosses:
            if self.config.memory.prefetch_check_tags:
                self.stats.prefetches_suppressed += 1
                return
            self.stats.cross_tag_prefetches += 1
        self.stats.prefetches += 1
        self._install_l2(next_line, locks)
        self._schedule_fill(req, next_line, fill_ready + 4, locks)

    # ------------------------------------------------------------------
    # commit-time operations
    # ------------------------------------------------------------------

    def commit_store(self, address: int, data: bytes, core_id: int = 0,
                     cycle: int = 0) -> None:
        """The architectural write: update DRAM, presence, and coherence."""
        self.drain(cycle)
        self.stats.commit_stores += 1
        self.memory.write(address, data)
        line_addr = self._line_addr(address)
        self.directory.on_store(core_id, line_addr)
        l1 = self.l1ds[core_id]
        if l1.lookup(address) is None:
            locks = self.memory.line_locks(line_addr, self.line_bytes)
            self._install_l1(core_id, line_addr, locks)
        l1.mark_dirty(address)
        if self.l2.lookup(address) is None:
            self._install_l2(line_addr, self.memory.line_locks(
                line_addr, self.line_bytes))

    def store_tag(self, address: int, tag: int, core_id: int = 0,
                  cycle: int = 0) -> None:
        """STG at commit: write tag storage and keep every cached copy
        coherent (cache sidecars *and* LFB entries, §3.3.3)."""
        self.drain(cycle)
        self.controller.write_lock(address, tag)
        line_addr = self._line_addr(address)
        offset = self._granule_offset(address)
        self.l2.update_lock(address, tag)
        for other, (l1, lfb) in enumerate(zip(self.l1ds, self.lfbs)):
            if other == core_id:
                l1.update_lock(address, tag)
                lfb.update_lock(line_addr, offset, tag)
            else:
                # Remote copies are invalidated (clean-and-invalidate path).
                pass
        self.directory.on_tag_update(core_id, line_addr)

    def read_tag(self, address: int) -> int:
        """LDG: the allocation tag of the granule covering ``address``."""
        return self.controller.read_lock(address)

    # ------------------------------------------------------------------
    # GhostMinion hooks
    # ------------------------------------------------------------------

    def promote_minion(self, line_address: int, core_id: int) -> None:
        """A speculative load became visible: move its line into L1."""
        line = self.minions[core_id].promote(line_address)
        if line is not None:
            self._install_l1(core_id, line_address, line.locks)
            if self.l2.lookup(line_address) is None:
                self._install_l2(line_address, line.locks)

    def squash_minion(self, core_id: int, owner_seq: int) -> None:
        """Squash: drop shadow lines of squashed speculative loads."""
        self.minions[core_id].squash_younger(owner_seq)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serialize every mutable structure in the hierarchy.

        The coherence directory's invalidation hooks are excluded — they
        are re-registered by the constructor and survive a restore
        untouched.  The returned dict is JSON-serializable.
        """
        return {
            "memory": self.memory.state_dict(),
            "controller": self.controller.state_dict(),
            "l2": self.l2.state_dict(),
            "l2_mshrs": self.l2_mshrs.state_dict(),
            "directory": self.directory.state_dict(),
            "l1ds": [c.state_dict() for c in self.l1ds],
            "lfbs": [b.state_dict() for b in self.lfbs],
            "l1_mshrs": [m.state_dict() for m in self.l1_mshrs],
            "minions": [m.state_dict() for m in self.minions],
            "stats": self.stats.state_dict(),
            "pending_fills": [[ready, core_id, line, list(locks)]
                              for ready, core_id, line, locks
                              in self._pending_fills],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a hierarchy serialized by :meth:`state_dict`.

        The hierarchy must have been built from the same configuration
        (same core count, cache geometry, and memory size); structural
        mismatches raise :class:`~repro.errors.CheckpointError`.
        """
        if (len(state["l1ds"]) != len(self.l1ds)
                or len(state["lfbs"]) != len(self.lfbs)):
            from repro.errors import CheckpointError
            raise CheckpointError(
                f"hierarchy has {len(self.l1ds)} cores, checkpoint has "
                f"{len(state['l1ds'])}", kind="state-mismatch")
        self.memory.load_state_dict(state["memory"])
        self.controller.load_state_dict(state["controller"])
        self.l2.load_state_dict(state["l2"])
        self.l2_mshrs.load_state_dict(state["l2_mshrs"])
        self.directory.load_state_dict(state["directory"])
        for cache, sub in zip(self.l1ds, state["l1ds"]):
            cache.load_state_dict(sub)
        for lfb, sub in zip(self.lfbs, state["lfbs"]):
            lfb.load_state_dict(sub)
        for mshrs, sub in zip(self.l1_mshrs, state["l1_mshrs"]):
            mshrs.load_state_dict(sub)
        for minion, sub in zip(self.minions, state["minions"]):
            minion.load_state_dict(sub)
        self.stats.load_state_dict(state["stats"])
        self._pending_fills = [
            (ready, core_id, line, tuple(locks))
            for ready, core_id, line, locks in state["pending_fills"]]

    # ------------------------------------------------------------------
    # attack probes (no state perturbation)
    # ------------------------------------------------------------------

    def is_cached(self, address: int, core_id: int = 0) -> bool:
        """Presence in core-visible structures (L1 or filled LFB or L2)."""
        line_addr = self._line_addr(address)
        if self.l1ds[core_id].contains(address):
            return True
        entry = self.lfbs[core_id].lookup(line_addr)
        if entry is not None and entry.filled and entry.line_address == line_addr:
            return True
        return self.l2.contains(address)

    def probe_latency(self, address: int, core_id: int = 0) -> int:
        """The latency a timing probe would observe, without side effects."""
        if self.l1ds[core_id].contains(address):
            return self.config.l1d.hit_latency
        line_addr = self._line_addr(address)
        entry = self.lfbs[core_id].lookup(line_addr)
        if entry is not None and entry.line_address == line_addr:
            return self.config.memory.lfb_hit_latency
        if self.l2.contains(address):
            return self.config.l1d.hit_latency + self.config.l2.hit_latency
        return (self.config.l1d.hit_latency + self.config.l2.hit_latency
                + self.controller.line_latency(check_tag=False))
