"""Main memory: a flat physical byte array plus MTE tag storage.

The data array is the architectural truth the caches index into (the
simulator's caches track presence, timing, and allocation tags, not copies of
the bytes).  Tag storage is the separate address space of §3.3.4; the memory
controller reads both in parallel.
"""

from __future__ import annotations

import struct
from repro.config import MemoryConfig, MTEConfig
from repro.errors import MemoryFault
from repro.mte.tags import strip_tag
from repro.mte.tagstore import TagStorage


class MainMemory:
    """Physical memory with a dense backing store and per-granule tags."""

    def __init__(self, mem_config: MemoryConfig = None, mte_config: MTEConfig = None):
        self.config = mem_config or MemoryConfig()
        self.mte = mte_config or MTEConfig()
        self._data = bytearray(self.config.size_bytes)
        self.tags = TagStorage(self.config.size_bytes,
                               self.mte.granule_bytes, self.mte.tag_bits)

    @property
    def size(self) -> int:
        return self.config.size_bytes

    def _span(self, address: int, size: int) -> int:
        physical = strip_tag(address)
        if physical < 0 or physical + size > self.size:
            raise MemoryFault(physical)
        return physical

    # -- data ------------------------------------------------------------------

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes (address may be tagged; the key is ignored)."""
        physical = self._span(address, size)
        return bytes(self._data[physical:physical + size])

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` at ``address`` (tag in the address is ignored)."""
        physical = self._span(address, len(data))
        self._data[physical:physical + len(data)] = data

    def read_word(self, address: int) -> int:
        """Read a little-endian 64-bit word."""
        return struct.unpack("<Q", self.read(address, 8))[0]

    def write_word(self, address: int, value: int) -> None:
        """Write a little-endian 64-bit word."""
        self.write(address, struct.pack("<Q", value & (2**64 - 1)))

    def load_image(self, address: int, data: bytes) -> None:
        """Loader entry point: place an initial data segment."""
        self.write(address, data)

    # -- tags -------------------------------------------------------------------

    def lock_of(self, address: int) -> int:
        """The allocation tag (lock) covering ``address``."""
        return self.tags.get(address)

    def set_lock(self, address: int, tag: int) -> None:
        """Set the allocation tag of the granule covering ``address``."""
        self.tags.set(address, tag)

    def tag_range(self, address: int, size: int, tag: int) -> None:
        """Tag a whole region (loader / allocator replay)."""
        self.tags.set_range(address, size, tag)

    def line_locks(self, line_address: int, line_bytes: int) -> tuple:
        """All locks covering one cache line (travel with fills, Fig. 3)."""
        return self.tags.line_tags(line_address, line_bytes)

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> dict:
        # The backing store is large (16 MiB default) but overwhelmingly
        # zero; compress it so the checkpoint section stays small.
        import base64
        import zlib
        return {
            "size": self.size,
            "data": base64.b64encode(
                zlib.compress(bytes(self._data), 6)).decode("ascii"),
            "tags": self.tags.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        import base64
        import zlib
        data = bytearray(zlib.decompress(base64.b64decode(state["data"])))
        if len(data) != int(state["size"]) or len(data) != self.size:
            from repro.errors import CheckpointError
            raise CheckpointError(
                f"memory image size {len(data)} != configured {self.size}",
                kind="state-mismatch")
        self._data = data
        self.tags.load_state_dict(state["tags"])
