"""The tagged memory subsystem (§3.3).

Components, mirroring Figure 3:

- :mod:`repro.memory.dram` — main memory plus the separate tag storage the
  memory controller reads in parallel with data (§3.3.4);
- :mod:`repro.memory.cache` — set-associative caches whose lines carry four
  4-bit allocation tags (one per 16B granule of a 64B line, §3.3.1);
- :mod:`repro.memory.mshr` — miss-status holding registers with the
  single-bit unsafe flag SpecASan adds;
- :mod:`repro.memory.lfb` — the Line-Fill Buffer, including the stale-data
  window MDS attacks exploit and the allocation tags SpecASan adds (§3.3.3);
- :mod:`repro.memory.minion` — the shadow fill buffer used to model
  GhostMinion;
- :mod:`repro.memory.coherence` — an invalidation directory for multicore;
- :mod:`repro.memory.hierarchy` — the façade the core talks to.
"""

from repro.memory.request import AccessKind, MemRequest, MemResponse, ServedFrom
from repro.memory.dram import MainMemory
from repro.memory.cache import Cache, CacheLine
from repro.memory.mshr import MSHR, MSHRFile
from repro.memory.lfb import LFBEntry, LineFillBuffer
from repro.memory.minion import MinionCache
from repro.memory.coherence import CoherenceDirectory
from repro.memory.hierarchy import MemoryHierarchy

__all__ = [
    "AccessKind",
    "Cache",
    "CacheLine",
    "CoherenceDirectory",
    "LFBEntry",
    "LineFillBuffer",
    "MainMemory",
    "MemoryHierarchy",
    "MemRequest",
    "MemResponse",
    "MinionCache",
    "MSHR",
    "MSHRFile",
    "ServedFrom",
]
