"""The shadow fill buffer used to model GhostMinion.

GhostMinion (MICRO'21) redirects the cache fills of *speculative* loads into
a small strictness-ordered "MinionCache"; only when the load becomes
non-speculative is the line promoted into the real L1.  Squashed loads leave
no trace in the primary hierarchy.  The performance cost comes from the
shadow structure's limited capacity: a line evicted from the MinionCache
before its load commits must be refetched.

We model the MinionCache as a tiny fully-associative structure with LRU
eviction and explicit promotion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class MinionLine:
    """One shadow line awaiting promotion."""

    line_address: int
    locks: Tuple[int, ...]
    last_used: int
    #: Sequence number of the youngest speculative load that filled it.
    owner_seq: int


class MinionCache:
    """Small fully-associative shadow structure for speculative fills."""

    def __init__(self, entries: int = 32):
        self.capacity = entries
        self._lines: Dict[int, MinionLine] = {}
        self._tick = 0
        self.fills = 0
        self.hits = 0
        self.promotions = 0
        self.capacity_evictions = 0
        self.squash_drops = 0

    def lookup(self, line_address: int) -> Optional[MinionLine]:
        line = self._lines.get(line_address)
        if line is not None:
            self._tick += 1
            line.last_used = self._tick
            self.hits += 1
        return line

    def contains(self, line_address: int) -> bool:
        """Presence probe without recency update."""
        return line_address in self._lines

    def fill(self, line_address: int, locks: Tuple[int, ...], owner_seq: int) -> None:
        """Capture a speculative fill, evicting LRU if full."""
        if line_address in self._lines:
            self._lines[line_address].owner_seq = max(
                self._lines[line_address].owner_seq, owner_seq)
            return
        if len(self._lines) >= self.capacity:
            lru = min(self._lines, key=lambda a: self._lines[a].last_used)
            del self._lines[lru]
            self.capacity_evictions += 1
        self._tick += 1
        self._lines[line_address] = MinionLine(line_address, locks, self._tick, owner_seq)
        self.fills += 1

    def promote(self, line_address: int) -> Optional[MinionLine]:
        """Remove and return a line that is becoming architecturally visible."""
        line = self._lines.pop(line_address, None)
        if line is not None:
            self.promotions += 1
        return line

    def squash_younger(self, seq: int) -> int:
        """Drop lines owned by squashed loads (no trace remains); returns count."""
        doomed = [a for a, line in self._lines.items() if line.owner_seq >= seq]
        for address in doomed:
            del self._lines[address]
        self.squash_drops += len(doomed)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._lines)

    def state_dict(self) -> dict:
        return {
            "tick": self._tick,
            "lines": [[l.line_address, list(l.locks), l.last_used,
                       l.owner_seq] for l in self._lines.values()],
            "fills": self.fills, "hits": self.hits,
            "promotions": self.promotions,
            "capacity_evictions": self.capacity_evictions,
            "squash_drops": self.squash_drops,
        }

    def load_state_dict(self, state: dict) -> None:
        self._tick = int(state["tick"])
        self._lines = {
            addr: MinionLine(addr, tuple(locks), last_used, owner_seq)
            for addr, locks, last_used, owner_seq in state["lines"]}
        self.fills = int(state["fills"])
        self.hits = int(state["hits"])
        self.promotions = int(state["promotions"])
        self.capacity_evictions = int(state["capacity_evictions"])
        self.squash_drops = int(state["squash_drops"])
