"""The Line-Fill Buffer (LFB, §3.3.3).

The LFB holds cache lines in transit between the L2/memory and the L1.  Its
security-relevant property is that an entry *retains the data of its previous
occupant* until the new fill arrives; aggressive designs may forward that
stale data to speculative loads that hit the entry — which is exactly what
RIDL and ZombieLoad sample.

SpecASan extends each entry with the allocation tags of the line it holds,
and the tag-check performed on an LFB hit uses those locks; cache-maintenance
operations (e.g. STG) update LFB copies too, keeping tag state coherent
(§3.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class LFBEntry:
    """One line-fill buffer slot.

    Before ``fill_ready_cycle`` the slot still exposes ``data``/``locks``
    from its *previous* occupant (``stale_line_address``); at fill time the
    hierarchy overwrites them with the new line's content.
    """

    index: int
    line_address: int = -1
    fill_ready_cycle: int = -1
    filled: bool = True
    #: Line whose (stale) data currently sits in the buffer.
    stale_line_address: int = -1
    data: bytes = b""
    locks: Tuple[int, ...] = ()
    #: Whether the fill in flight was flagged unsafe by a lower level.
    unsafe: bool = False
    #: Fault injection: the slot is held hostage by the injector (counts
    #: against capacity, never matches a lookup, never fills).
    phantom: bool = False


class LineFillBuffer:
    """A small fully-associative buffer of in-transit lines."""

    def __init__(self, entries: int, line_bytes: int = 64):
        self.capacity = entries
        self.line_bytes = line_bytes
        self.entries: List[LFBEntry] = [LFBEntry(i) for i in range(entries)]
        self._victim = 0
        self.allocations = 0
        self.hits = 0
        self.stale_hits = 0

    def lookup(self, line_address: int) -> Optional[LFBEntry]:
        """The entry tracking ``line_address``, filled or in flight."""
        for entry in self.entries:
            if entry.line_address == line_address and not entry.phantom:
                return entry
        return None

    def allocate(self, line_address: int, fill_ready_cycle: int,
                 unsafe: bool = False) -> LFBEntry:
        """Claim a slot for a new fill.

        The victim keeps its previous data/locks as the stale content until
        the fill arrives — the MDS window.
        """
        entry = self._pick_victim()
        entry.stale_line_address = entry.line_address
        entry.line_address = line_address
        entry.fill_ready_cycle = fill_ready_cycle
        entry.filled = False
        entry.unsafe = unsafe
        entry.phantom = False
        self.allocations += 1
        return entry

    def _pick_victim(self) -> LFBEntry:
        # Round-robin over slots, skipping in-flight fills when possible —
        # uniform reuse, like a real free-list.
        for _ in range(self.capacity):
            candidate = self.entries[self._victim]
            self._victim = (self._victim + 1) % self.capacity
            if candidate.filled:
                return candidate
        candidate = self.entries[self._victim]
        self._victim = (self._victim + 1) % self.capacity
        return candidate

    def complete_fill(self, entry: LFBEntry, data: bytes,
                      locks: Tuple[int, ...]) -> None:
        """Deliver the fill payload into ``entry``."""
        entry.data = data
        entry.locks = locks
        entry.filled = True

    def drain(self, cycle: int) -> List[LFBEntry]:
        """Entries whose fills have arrived by ``cycle`` but aren't marked filled."""
        return [e for e in self.entries
                if not e.filled and not e.phantom
                and 0 <= e.fill_ready_cycle <= cycle]

    def reserve(self, count: int, until_cycle: int) -> int:
        """Fault-injection hook: hold ``count`` free slots hostage.

        Phantom slots look like fills in flight to the victim picker (so
        real allocations crowd into the remaining slots) but never match a
        lookup and never deliver data.  Returns the number reserved.
        """
        taken = 0
        for entry in self.entries:
            if taken >= count:
                break
            if entry.filled and not entry.phantom:
                entry.phantom = True
                entry.filled = False
                entry.line_address = -1
                entry.stale_line_address = -1
                entry.fill_ready_cycle = until_cycle
                entry.data = b""
                entry.locks = ()
                taken += 1
        return taken

    def release_reserved(self) -> None:
        """Free every injector-held phantom slot."""
        for entry in self.entries:
            if entry.phantom:
                entry.phantom = False
                entry.filled = True
                entry.line_address = -1
                entry.fill_ready_cycle = -1

    def update_lock(self, line_address: int, granule_offset: int, tag: int) -> None:
        """STG coherence: update a lock held in a (filled) LFB entry."""
        entry = self.lookup(line_address)
        if entry is not None and entry.locks:
            locks = list(entry.locks)
            locks[granule_offset] = tag
            entry.locks = tuple(locks)

    def invalidate(self, line_address: int) -> None:
        """Coherence invalidation of a line held in the LFB."""
        entry = self.lookup(line_address)
        if entry is not None:
            entry.line_address = -1
            entry.filled = True

    def flush(self) -> None:
        """Clear all entries (MDS mitigation baselines flush on switch)."""
        for index in range(self.capacity):
            self.entries[index] = LFBEntry(index)

    def state_dict(self) -> dict:
        return {
            "victim": self._victim,
            "entries": [{
                "index": e.index, "line_address": e.line_address,
                "fill_ready_cycle": e.fill_ready_cycle, "filled": e.filled,
                "stale_line_address": e.stale_line_address,
                "data": e.data.hex(), "locks": list(e.locks),
                "unsafe": e.unsafe, "phantom": e.phantom,
            } for e in self.entries],
            "allocations": self.allocations, "hits": self.hits,
            "stale_hits": self.stale_hits,
        }

    def load_state_dict(self, state: dict) -> None:
        self._victim = int(state["victim"])
        self.entries = [
            LFBEntry(index=s["index"], line_address=s["line_address"],
                     fill_ready_cycle=s["fill_ready_cycle"],
                     filled=s["filled"],
                     stale_line_address=s["stale_line_address"],
                     data=bytes.fromhex(s["data"]), locks=tuple(s["locks"]),
                     unsafe=s["unsafe"], phantom=s["phantom"])
            for s in state["entries"]]
        self.allocations = int(state["allocations"])
        self.hits = int(state["hits"])
        self.stale_hits = int(state["stale_hits"])
