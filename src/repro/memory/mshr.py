"""Miss Status Holding Registers.

Each outstanding line fill occupies one MSHR; requests to the same line
merge into the existing entry instead of issuing twice.  SpecASan adds a
single-bit ``unsafe`` flag to each entry, "which is also included in the
memory access response to indicate the tag check outcome" (§3.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class MSHR:
    """One outstanding miss."""

    line_address: int
    ready_cycle: int
    #: SpecASan's single-bit flag: the tag check at the lower level failed.
    unsafe: bool = False
    #: Number of requests merged into this entry (stats).
    merged: int = 0


class MSHRFile:
    """A small fully-associative file of MSHRs.

    When the file is full, new misses stall; the hierarchy models that as
    added latency equal to the earliest completion among current entries.
    """

    def __init__(self, entries: int):
        self.capacity = entries
        self._by_line: Dict[int, MSHR] = {}
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0
        # Fault injection: entries held hostage by the injector.  Reserved
        # slots count against capacity but never hold a real miss, modelling
        # a structure whose free list has been (transiently) exhausted.
        self.reserved = 0
        self.reserved_until = 0

    def __len__(self) -> int:
        return len(self._by_line)

    @property
    def full(self) -> bool:
        return len(self._by_line) + self.reserved >= self.capacity

    def reserve(self, count: int, until_cycle: int) -> int:
        """Fault-injection hook: occupy ``count`` free slots until released.

        Returns the number actually reserved (never more than the free
        slots, so real in-flight misses are not evicted).
        """
        free = max(0, self.capacity - len(self._by_line) - self.reserved)
        taken = min(count, free)
        self.reserved += taken
        self.reserved_until = max(self.reserved_until, until_cycle)
        return taken

    def release_reserved(self) -> None:
        """Return every injector-held slot to the free pool."""
        self.reserved = 0
        self.reserved_until = 0

    def lookup(self, line_address: int) -> Optional[MSHR]:
        """The in-flight entry for ``line_address``, if any."""
        return self._by_line.get(line_address)

    def allocate(self, line_address: int, ready_cycle: int) -> MSHR:
        """Allocate an entry (caller must have checked :attr:`full`)."""
        entry = MSHR(line_address, ready_cycle)
        self._by_line[line_address] = entry
        self.allocations += 1
        return entry

    def merge(self, entry: MSHR) -> MSHR:
        """Record a second request merging into ``entry``."""
        entry.merged += 1
        self.merges += 1
        return entry

    def earliest_ready(self) -> int:
        """Completion cycle of the oldest outstanding miss (for full stalls).

        When the file is full purely because of injector reservations, the
        stall lasts until the reservation lifts.
        """
        if not self._by_line:
            return self.reserved_until
        return min(e.ready_cycle for e in self._by_line.values())

    def drain(self, cycle: int) -> list:
        """Remove and return entries whose fills completed by ``cycle``."""
        done = [e for e in self._by_line.values() if e.ready_cycle <= cycle]
        for entry in done:
            del self._by_line[entry.line_address]
        return done

    def flush(self) -> None:
        """Drop all entries (used by tests and reset)."""
        self._by_line.clear()

    def state_dict(self) -> dict:
        return {
            "entries": [[e.line_address, e.ready_cycle, e.unsafe, e.merged]
                        for e in self._by_line.values()],
            "allocations": self.allocations, "merges": self.merges,
            "full_stalls": self.full_stalls,
            "reserved": self.reserved,
            "reserved_until": self.reserved_until,
        }

    def load_state_dict(self, state: dict) -> None:
        self._by_line = {
            line: MSHR(line, ready, unsafe=unsafe, merged=merged)
            for line, ready, unsafe, merged in state["entries"]}
        self.allocations = int(state["allocations"])
        self.merges = int(state["merges"])
        self.full_stalls = int(state["full_stalls"])
        self.reserved = int(state["reserved"])
        self.reserved_until = int(state["reserved_until"])
