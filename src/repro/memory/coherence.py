"""A small invalidation-based coherence directory for multicore runs.

The PARSEC experiments (Figure 7) run four cores with private L1Ds over a
shared L2.  We model MESI-lite: the directory tracks which cores hold each
line; a committed store by one core invalidates the copies (and LFB entries)
of every other sharer.  "Dedicated cache maintenance operations ... ensure
the coherence of the stored allocation tags in the cache with the tags stored
for the same address in other caches within the system" (§3.3.1) — tag
updates (STG) ride the same invalidation path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Set


class CoherenceDirectory:
    """Tracks sharers per line and broadcasts invalidations."""

    def __init__(self, num_cores: int):
        self.num_cores = num_cores
        self._sharers: Dict[int, Set[int]] = defaultdict(set)
        self._invalidate_hooks: List[Callable[[int, int], None]] = []
        self.invalidations = 0
        self.tag_update_broadcasts = 0

    def register_invalidator(self, hook: Callable[[int, int], None]) -> None:
        """Register ``hook(core_id, line_address)`` called on invalidation."""
        self._invalidate_hooks.append(hook)

    def on_fill(self, core_id: int, line_address: int) -> None:
        """Record that ``core_id`` now holds ``line_address``."""
        self._sharers[line_address].add(core_id)

    def on_evict(self, core_id: int, line_address: int) -> None:
        """Record that ``core_id`` dropped ``line_address``."""
        self._sharers[line_address].discard(core_id)

    def sharers_of(self, line_address: int) -> Set[int]:
        return set(self._sharers[line_address])

    def on_store(self, core_id: int, line_address: int) -> int:
        """A committed store: invalidate all other sharers; returns count."""
        others = [c for c in self._sharers[line_address] if c != core_id]
        for other in others:
            for hook in self._invalidate_hooks:
                hook(other, line_address)
            self._sharers[line_address].discard(other)
        self._sharers[line_address].add(core_id)
        self.invalidations += len(others)
        return len(others)

    def on_tag_update(self, core_id: int, line_address: int) -> int:
        """STG by one core: other sharers must refresh/drop their tag copies.

        We conservatively invalidate remote copies, matching the paper's
        "clean and invalidate" maintenance description.
        """
        self.tag_update_broadcasts += 1
        return self.on_store(core_id, line_address)

    def state_dict(self) -> dict:
        # Invalidation hooks are wiring, not state: the hierarchy
        # re-registers them at construction, so only sharer sets and
        # counters are serialized.
        return {
            "sharers": [[line, sorted(cores)]
                        for line, cores in self._sharers.items() if cores],
            "invalidations": self.invalidations,
            "tag_update_broadcasts": self.tag_update_broadcasts,
        }

    def load_state_dict(self, state: dict) -> None:
        self._sharers = defaultdict(set)
        for line, cores in state["sharers"]:
            self._sharers[line] = set(cores)
        self.invalidations = int(state["invalidations"])
        self.tag_update_broadcasts = int(state["tag_update_broadcasts"])
