"""Livelock watchdog and the graceful-degradation policy.

Two halves of the "what happens when things go wrong" story:

- :class:`Watchdog` — detects *livelock*, which the deadlock threshold in
  :meth:`~repro.pipeline.core.Core.run` cannot see: instructions keep
  committing (so the no-commit counter keeps resetting) but the committed
  PCs never move forward — a ``B .`` spin, or a squash/replay storm stuck
  re-retiring the same loop.  Raises :class:`~repro.errors.LivelockError`
  with a state snapshot.

- :class:`GracefulDegradation` — when the invariant checker detects a
  *tag-storage fault* (an injected bit flip, or cached locks drifting from
  DRAM), SpecASan's tag verdicts can no longer be trusted.  Rather than
  crashing (or worse, silently mis-judging safety), the core falls back to
  fence semantics: speculation is fully serialized, which needs no tag state
  at all, so the security property (no speculative leak) is preserved at a
  performance cost — degrade, never leak.  The in-flight window is squashed
  and replayed under the new policy so no access judged under corrupted
  tags survives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Set

from repro.errors import LivelockError
from repro.resilience.snapshot import core_snapshot


class Watchdog:
    """Commit-stage livelock detector.

    Attach with :meth:`attach`; the core's retire path then feeds it every
    committed instruction.  A livelock is declared after ``commit_limit``
    consecutive commits confined to at most ``distinct_pc_limit`` distinct
    PCs with the core not halting — loose enough that real loop nests (whose
    bodies span more PCs) reset the window constantly, tight enough to catch
    single-instruction spins and replay storms long before ``max_cycles``.
    """

    def __init__(self, commit_limit: int = 20_000,
                 distinct_pc_limit: int = 2):
        self.commit_limit = commit_limit
        self.distinct_pc_limit = distinct_pc_limit
        self._window_pcs: Set[int] = set()
        self._commits_in_window = 0
        #: Total commits observed (diagnostics).
        self.commits_seen = 0

    def attach(self, core) -> "Watchdog":
        core.watchdog = self
        return self

    def on_commit(self, core, dyn) -> None:
        """Feed one retired instruction; raises LivelockError when stuck."""
        self.commits_seen += 1
        pc = dyn.pc
        if pc not in self._window_pcs:
            if len(self._window_pcs) >= self.distinct_pc_limit:
                # Forward progress: a fresh PC appeared — restart the window.
                self._window_pcs = {pc}
                self._commits_in_window = 1
                return
            self._window_pcs.add(pc)
        self._commits_in_window += 1
        if self._commits_in_window > self.commit_limit and not core.halted:
            raise LivelockError(self._commits_in_window,
                                sorted(self._window_pcs),
                                snapshot=core_snapshot(core, restorable=True))


class DegradationMode(enum.Enum):
    """What to do when a tag-storage fault is detected."""

    #: Raise :class:`~repro.errors.InvariantViolation` (fail-stop).
    RAISE = "raise"
    #: Swap the core's policy for fence semantics and replay (fail-safe).
    FENCE_FALLBACK = "fence-fallback"


@dataclass
class DegradationEvent:
    """One recorded fallback."""

    cycle: int
    invariant: str
    detail: str
    policy_before: str
    policy_after: str


@dataclass
class GracefulDegradation:
    """Fence-on-tag-storage-fault fallback policy.

    ``max_events`` bounds how many times a run may degrade (one is the
    norm: after the fence swap no tag state is consulted, so tag-storage
    invariants are moot and the checker stops testing them).
    """

    mode: DegradationMode = DegradationMode.FENCE_FALLBACK
    max_events: int = 4
    events: List[DegradationEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.events)

    def absorb(self, core, invariant: str, structure: str,
               message: str) -> bool:
        """Try to absorb a violation; True when the run may continue.

        Only tag-storage faults are absorbable — SpecASan has a sound
        tag-free fallback (fences) for them.  Pipeline-structure corruption
        (ROB order, LSQ ages, MSHR/LFB leaks) has no safe continuation and
        is never absorbed.
        """
        if self.mode is not DegradationMode.FENCE_FALLBACK:
            return False
        if structure != "tag-storage":
            return False
        if len(self.events) >= self.max_events:
            return False
        from repro.defenses.fence import FencePolicy  # avoid import cycles
        before = core.policy.name
        policy = FencePolicy()
        # Preserve the restricted-instruction log across the swap so Fig-8
        # style accounting still covers the pre-degradation phase.
        policy.restricted_seqs = core.policy.restricted_seqs
        core.policy = policy
        policy.attach(core)
        if core.rob:
            # Replay the whole in-flight window under the new policy: any
            # access whose safety was judged with corrupted tag state (e.g.
            # a withheld load that would otherwise fault at the ROB head)
            # is re-executed fence-style instead.
            head = core.rob[0]
            core.squash_from(head.seq, head.pc, reason="degrade-fence")
        self.events.append(DegradationEvent(
            cycle=core.cycle, invariant=invariant, detail=message,
            policy_before=before, policy_after=policy.name))
        return True
