"""Microarchitectural fault injection.

The injector perturbs the simulator's *own* state — allocation tags in DRAM
tag storage, memory-controller tag responses, MSHR/LFB free lists, predictor
state — under a seeded, reproducible schedule, so the resilience matrix can
answer the question SpecASan's threat model raises (and TikTag makes
concrete): when the machinery the defense relies on is itself perturbed,
does protection degrade *safely* (delays, replays, typed faults) rather
than silently leaking?

Fault classes and their hook points:

===================  =====================================================
``TAG_BIT_FLIP``     :meth:`repro.mte.tagstore.TagStorage.flip_bit`
``TAG_RESPONSE_DROP``/``_DELAY``
                     :attr:`repro.memory.controller.MemoryController.injector`
``MSHR_EXHAUST``     :meth:`repro.memory.mshr.MSHRFile.reserve`
``LFB_EXHAUST``      :meth:`repro.memory.lfb.LineFillBuffer.reserve`
``PREDICTOR_CORRUPT``
                     ``corrupt()`` on PHT/BTB/RSB/BHB/MDP
===================  =====================================================

Usage::

    schedule = FaultSchedule.generate(seed=7, kinds=[FaultKind.TAG_BIT_FLIP])
    injector = FaultInjector(schedule)
    injector.attach(core)          # core.run() now drives it each cycle
    core.run()
    print(injector.injected)       # the faults that actually fired
"""

from __future__ import annotations

import enum
import os
import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


class FaultKind(enum.Enum):
    """The fault classes the resilience matrix sweeps."""

    TAG_BIT_FLIP = "tag-bit-flip"
    TAG_RESPONSE_DROP = "tag-response-drop"
    TAG_RESPONSE_DELAY = "tag-response-delay"
    MSHR_EXHAUST = "mshr-exhaust"
    LFB_EXHAUST = "lfb-exhaust"
    PREDICTOR_CORRUPT = "predictor-corrupt"
    # Durable-state faults: damage the run's newest checkpoint generation
    # (set :attr:`FaultInjector.checkpoint_target`) in each of the ways the
    # checkpoint reader must detect (:mod:`repro.checkpoint.corrupt`).
    CHECKPOINT_TRUNCATE = "checkpoint-truncate"
    CHECKPOINT_BIT_FLIP = "checkpoint-bit-flip"
    CHECKPOINT_HEADER_SKEW = "checkpoint-header-skew"
    CHECKPOINT_TORN_WRITE = "checkpoint-torn-write"


ALL_FAULT_KINDS: Tuple[FaultKind, ...] = tuple(FaultKind)

#: The subset that targets checkpoint files rather than live core state.
CHECKPOINT_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.CHECKPOINT_TRUNCATE,
    FaultKind.CHECKPOINT_BIT_FLIP,
    FaultKind.CHECKPOINT_HEADER_SKEW,
    FaultKind.CHECKPOINT_TORN_WRITE,
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``address``/``bit`` apply to tag flips; ``count``/``duration`` to
    structure exhaustion; ``delay`` to tag-response perturbation; ``target``
    names the predictor for ``PREDICTOR_CORRUPT`` (``"pht"``, ``"btb"``,
    ``"rsb"``, ``"bhb"``, ``"mdp"`` or ``"all"``).
    """

    cycle: int
    kind: FaultKind
    address: int = 0
    bit: int = 0
    count: int = 0
    duration: int = 0
    delay: int = 0
    target: str = "all"

    def describe(self) -> str:
        extra = {
            FaultKind.TAG_BIT_FLIP: f"addr={self.address:#x} bit={self.bit}",
            FaultKind.TAG_RESPONSE_DROP: f"count={self.count}",
            FaultKind.TAG_RESPONSE_DELAY: f"count={self.count} delay={self.delay}",
            FaultKind.MSHR_EXHAUST: f"count={self.count} for={self.duration}",
            FaultKind.LFB_EXHAUST: f"count={self.count} for={self.duration}",
            FaultKind.PREDICTOR_CORRUPT: f"target={self.target}",
            FaultKind.CHECKPOINT_TRUNCATE: "target=checkpoint",
            FaultKind.CHECKPOINT_BIT_FLIP: f"section={self.target}",
            FaultKind.CHECKPOINT_HEADER_SKEW: f"field={self.target}",
            FaultKind.CHECKPOINT_TORN_WRITE: "target=checkpoint",
        }[self.kind]
        return f"@{self.cycle} {self.kind.value} {extra}"


@dataclass
class FaultSchedule:
    """A seeded, ordered list of fault events."""

    seed: int
    events: List[FaultEvent] = field(default_factory=list)

    @classmethod
    def generate(cls, seed: int, kinds: Sequence[FaultKind],
                 *, count: int = 4, start_cycle: int = 200,
                 window: int = 20_000,
                 address_range: Tuple[int, int] = (0x04000, 0x08000),
                 tag_bits: int = 4, exhaust_count: int = 64,
                 exhaust_duration: int = 2_000,
                 response_delay: int = 400) -> "FaultSchedule":
        """Build a reproducible schedule of ``count`` events per kind.

        ``address_range`` bounds tag-flip targets (defaults cover the attack
        gadgets' victim/secret region so flips actually land somewhere that
        matters); ``exhaust_count`` intentionally exceeds any real structure
        so reservations saturate whatever capacity the config gives.
        """
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        lo, hi = address_range
        for kind in kinds:
            for _ in range(count):
                cycle = start_cycle + rng.randrange(max(1, window))
                if kind is FaultKind.TAG_BIT_FLIP:
                    granule = rng.randrange(lo // 16, hi // 16)
                    events.append(FaultEvent(
                        cycle, kind, address=granule * 16,
                        bit=rng.randrange(tag_bits)))
                elif kind is FaultKind.TAG_RESPONSE_DROP:
                    events.append(FaultEvent(cycle, kind,
                                             count=1 + rng.randrange(4)))
                elif kind is FaultKind.TAG_RESPONSE_DELAY:
                    events.append(FaultEvent(
                        cycle, kind, count=1 + rng.randrange(4),
                        delay=1 + rng.randrange(response_delay)))
                elif kind in (FaultKind.MSHR_EXHAUST, FaultKind.LFB_EXHAUST):
                    events.append(FaultEvent(
                        cycle, kind, count=exhaust_count,
                        duration=1 + rng.randrange(exhaust_duration)))
                elif kind is FaultKind.PREDICTOR_CORRUPT:
                    target = rng.choice(
                        ["pht", "btb", "rsb", "bhb", "mdp", "all"])
                    events.append(FaultEvent(cycle, kind, target=target))
                elif kind is FaultKind.CHECKPOINT_BIT_FLIP:
                    events.append(FaultEvent(
                        cycle, kind,
                        target=rng.choice(["hierarchy", "cores", ""]),
                        bit=rng.randrange(1 << 16)))
                elif kind is FaultKind.CHECKPOINT_HEADER_SKEW:
                    events.append(FaultEvent(
                        cycle, kind,
                        target=rng.choice(["schema", "config", "program"])))
                else:  # CHECKPOINT_TRUNCATE / CHECKPOINT_TORN_WRITE
                    events.append(FaultEvent(cycle, kind))
        events.sort(key=lambda e: e.cycle)
        return cls(seed=seed, events=events)


class FaultInjector:
    """Applies a :class:`FaultSchedule` to a running core.

    Attach with :meth:`attach`; :meth:`repro.pipeline.core.Core.run` then
    calls :meth:`tick` once per cycle.  All randomness is derived from the
    schedule's seed, so a run is exactly reproducible given (program, config,
    schedule).
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self._rng = random.Random(schedule.seed ^ 0x5EED)
        self._pending = sorted(schedule.events, key=lambda e: e.cycle)
        self._next = 0
        #: Events that have fired, as (cycle-applied, FaultEvent).
        self.injected: List[Tuple[int, FaultEvent]] = []
        # Armed tag-response perturbations, consumed by the controller.
        self._drops_armed = 0
        self._delays_armed = 0
        self._delay_cycles = 0
        # Outstanding structure reservations: (release_cycle, release_fn).
        self._releases: List[Tuple[int, object]] = []
        self.core = None
        #: Where the CHECKPOINT_* fault kinds aim: a checkpoint file path,
        #: or a zero-argument callable returning one (e.g. the newest
        #: generation of a :class:`repro.checkpoint.manager.CheckpointManager`).
        #: Left ``None``, those kinds are no-ops — there is no durable state
        #: to damage.
        self.checkpoint_target = None

    # -- wiring ------------------------------------------------------------

    def attach(self, core) -> "FaultInjector":
        """Bind to ``core`` (and its hierarchy's controller); returns self."""
        self.core = core
        core.fault_injector = self
        core.hierarchy.controller.injector = self
        return self

    # -- controller-facing hook -------------------------------------------

    def perturb_tag_response(self) -> Tuple[bool, int]:
        """Consume one armed drop/delay, if any: (dropped, delay_cycles)."""
        dropped = False
        delay = 0
        if self._drops_armed > 0:
            self._drops_armed -= 1
            dropped = True
        if self._delays_armed > 0:
            self._delays_armed -= 1
            delay = self._delay_cycles
        return dropped, delay

    # -- per-cycle driver --------------------------------------------------

    def tick(self, core) -> None:
        """Apply every event scheduled at or before ``core.cycle``."""
        cycle = core.cycle
        if self._releases:
            due = [r for r in self._releases if r[0] <= cycle]
            if due:
                self._releases = [r for r in self._releases if r[0] > cycle]
                for _, release in due:
                    release()
        while (self._next < len(self._pending)
               and self._pending[self._next].cycle <= cycle):
            event = self._pending[self._next]
            self._next += 1
            self._apply(core, event)
            self.injected.append((cycle, event))

    def _apply(self, core, event: FaultEvent) -> None:
        hierarchy = core.hierarchy
        kind = event.kind
        if kind is FaultKind.TAG_BIT_FLIP:
            hierarchy.memory.tags.flip_bit(event.address, event.bit)
        elif kind is FaultKind.TAG_RESPONSE_DROP:
            self._drops_armed += event.count
        elif kind is FaultKind.TAG_RESPONSE_DELAY:
            self._delays_armed += event.count
            self._delay_cycles = event.delay
        elif kind is FaultKind.MSHR_EXHAUST:
            release_at = core.cycle + event.duration
            for mshrs in list(hierarchy.l1_mshrs) + [hierarchy.l2_mshrs]:
                if mshrs.reserve(event.count, release_at):
                    self._releases.append((release_at, mshrs.release_reserved))
        elif kind is FaultKind.LFB_EXHAUST:
            release_at = core.cycle + event.duration
            lfb = hierarchy.lfbs[core.core_id]
            if lfb.reserve(event.count, release_at):
                self._releases.append((release_at, lfb.release_reserved))
        elif kind is FaultKind.PREDICTOR_CORRUPT:
            self._corrupt_predictors(core, event.target)
        elif kind in CHECKPOINT_FAULT_KINDS:
            self._damage_checkpoint(event)

    def _damage_checkpoint(self, event: FaultEvent) -> None:
        target = self.checkpoint_target
        path = target() if callable(target) else target
        if not path or not os.path.exists(path):
            return  # no durable state exists yet to damage
        from repro.checkpoint import corrupt
        from repro.errors import CheckpointError
        kind = event.kind
        try:
            if kind is FaultKind.CHECKPOINT_TRUNCATE:
                corrupt.truncate(path, 0.5)
            elif kind is FaultKind.CHECKPOINT_BIT_FLIP:
                try:
                    corrupt.flip_bit(path, section=event.target,
                                     seed=event.bit)
                except ValueError:  # section absent in this file
                    corrupt.flip_bit(path, seed=event.bit)
            elif kind is FaultKind.CHECKPOINT_HEADER_SKEW:
                corrupt.skew_header(path, event.target or "schema")
            else:  # CHECKPOINT_TORN_WRITE
                corrupt.tear_write(path)
        except CheckpointError:
            pass  # file already unreadable: damage is moot

    def _corrupt_predictors(self, core, target: str) -> None:
        structures = {
            "pht": core.pht, "btb": core.btb, "rsb": core.rsb,
            "bhb": core.bhb, "mdp": core.mdp,
        }
        if target == "all":
            for structure in structures.values():
                structure.corrupt(self._rng)
        else:
            structures[target].corrupt(self._rng)

    # -- reporting ---------------------------------------------------------

    @property
    def injected_kinds(self) -> set:
        return {event.kind for _, event in self.injected}

    def report(self) -> str:
        """Human-readable log of the faults that fired."""
        if not self.injected:
            return "no faults injected"
        return "\n".join(event.describe() for _, event in self.injected)
