"""Resilience subsystem: fault injection, invariant checking, watchdogs.

Answers the robustness question the paper's threat model leaves open: when
the machinery SpecASan relies on (tag storage, tag responses, miss-tracking
structures, predictors) is itself perturbed, does protection fail *safe* —
delays, replays, fence fallback, typed faults — rather than silently leak?

Quick start::

    from repro.resilience import (FaultKind, FaultSchedule, FaultInjector,
                                  InvariantChecker, Watchdog,
                                  GracefulDegradation)

    checker = InvariantChecker(degradation=GracefulDegradation()).attach(core)
    Watchdog().attach(core)
    FaultInjector(FaultSchedule.generate(7, [FaultKind.TAG_BIT_FLIP])).attach(core)
    core.run()

``python -m repro.resilience --selftest`` runs the built-in smoke sweep.
"""

from repro.resilience.faults import (ALL_FAULT_KINDS,
                                     CHECKPOINT_FAULT_KINDS, FaultEvent,
                                     FaultInjector, FaultKind, FaultSchedule)
from repro.resilience.harness import (DEFAULT_DEFENSES, ResilienceCell,
                                      evaluate_resilience_matrix,
                                      render_resilience_matrix,
                                      run_resilient_attack)
from repro.resilience.invariants import INVARIANTS, InvariantChecker
from repro.resilience.snapshot import core_snapshot, rebuild_core, summarize
from repro.resilience.watchdog import (DegradationEvent, DegradationMode,
                                       GracefulDegradation, Watchdog)

__all__ = [
    "ALL_FAULT_KINDS", "CHECKPOINT_FAULT_KINDS", "FaultEvent",
    "FaultInjector", "FaultKind",
    "FaultSchedule", "DEFAULT_DEFENSES", "ResilienceCell",
    "evaluate_resilience_matrix", "render_resilience_matrix",
    "run_resilient_attack", "INVARIANTS", "InvariantChecker",
    "core_snapshot", "rebuild_core", "summarize", "DegradationEvent",
    "DegradationMode",
    "GracefulDegradation", "Watchdog",
]
