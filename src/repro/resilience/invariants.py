"""Cycle-level invariant checking over the pipeline and memory system.

An :class:`InvariantChecker` attached to a core is consulted by
:meth:`~repro.pipeline.core.Core.run` every ``interval`` cycles and
validates that the machine's bookkeeping is internally consistent:

- **rob-commit-order** — ROB sequence numbers strictly increase, no
  squashed or already-committed entry lingers in the window;
- **lq-age-order / sq-age-order** — LQ/SQ entries are age-ordered, within
  capacity, and every entry is still in the ROB (a squashed load/store left
  behind in an LSQ is exactly the kind of leak that turns into a wrong
  forward later);
- **mshr-leak-freedom / lfb-leak-freedom** — miss-tracking structures stay
  within capacity and no entry's completion stamp sits impossibly far in
  the future (a corrupted stamp is a permanently leaked slot);
- **tag-storage-integrity** — the ECC/parity scrub: DRAM tag storage
  reports no unscrubbed corrupted granules;
- **tag-coherence** — every allocation-tag sidecar copy (L1/L2 lines,
  filled LFB entries) matches DRAM tag storage, the ground truth SpecASan's
  soundness argument rests on (§3.3.3's coherence obligation).

A failed invariant raises :class:`~repro.errors.InvariantViolation` carrying
a structured snapshot that names the faulty structure — unless a
:class:`~repro.resilience.watchdog.GracefulDegradation` policy absorbs a
*tag-storage* fault by falling back to fence semantics (see watchdog.py).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import InvariantViolation
from repro.pipeline.dyninstr import InstrState
from repro.resilience.snapshot import core_snapshot
from repro.resilience.watchdog import GracefulDegradation

#: (invariant name, structure) pairs the checker validates, in order.
INVARIANTS = (
    ("rob-commit-order", "rob"),
    ("lq-age-order", "lq"),
    ("sq-age-order", "sq"),
    ("mshr-leak-freedom", "mshr"),
    ("lfb-leak-freedom", "lfb"),
    ("tag-storage-integrity", "tag-storage"),
    ("tag-coherence", "tag-storage"),
)


class InvariantChecker:
    """Pluggable cycle-level invariant validation.

    Args:
        interval: cycles between checks (power of two keeps the modulo cheap).
        degradation: optional fence-fallback policy for tag-storage faults.
        future_slack: how far in the future a miss-completion stamp may
            legitimately sit (covers worst-case DRAM + injected delays).
    """

    def __init__(self, interval: int = 256,
                 degradation: Optional[GracefulDegradation] = None,
                 future_slack: int = 50_000):
        self.interval = interval
        self.degradation = degradation
        self.future_slack = future_slack
        self.checks_run = 0
        #: Violations raised (or absorbed), as (cycle, invariant, message).
        self.log: List[Tuple[int, str, str]] = []
        self._tag_checks_enabled = True

    def attach(self, core) -> "InvariantChecker":
        core.invariant_checker = self
        return self

    # ------------------------------------------------------------------

    def check(self, core) -> None:
        """Validate every invariant; raise or degrade on the first failure."""
        self.checks_run += 1
        problem = (self._check_rob(core)
                   or self._check_lsq(core)
                   or self._check_mshrs(core)
                   or self._check_lfb(core))
        if problem is None and self._tag_checks_enabled:
            problem = (self._check_tag_integrity(core)
                       or self._check_tag_coherence(core))
        if problem is None:
            return
        invariant, structure, message = problem
        self.log.append((core.cycle, invariant, message))
        if (self.degradation is not None
                and self.degradation.absorb(core, invariant, structure,
                                            message)):
            # Fenced from here on: tag state is no longer consulted, so
            # tag-storage invariants are moot for the rest of the run.
            self._tag_checks_enabled = False
            return
        raise InvariantViolation(invariant, message, structure=structure,
                                 snapshot=core_snapshot(core))

    # -- pipeline ------------------------------------------------------

    def _check_rob(self, core):
        last_seq = -1
        for dyn in core.rob:
            if dyn.seq <= last_seq:
                return ("rob-commit-order", "rob",
                        f"ROB out of age order: #{dyn.seq} after #{last_seq}")
            last_seq = dyn.seq
            if dyn.squashed:
                return ("rob-commit-order", "rob",
                        f"squashed #{dyn.seq} still occupies the ROB")
            if dyn.state is InstrState.COMMITTED:
                return ("rob-commit-order", "rob",
                        f"committed #{dyn.seq} still occupies the ROB")
        if len(core.rob) > core.config.core.rob_entries:
            return ("rob-commit-order", "rob",
                    f"ROB over capacity: {len(core.rob)}")
        return None

    def _check_lsq(self, core):
        rob_ids = {id(d) for d in core.rob}
        for name, queue, capacity, want_load in (
                ("lq-age-order", core.lsq.lq, core.lsq.lq_capacity, True),
                ("sq-age-order", core.lsq.sq, core.lsq.sq_capacity, False)):
            structure = "lq" if want_load else "sq"
            if len(queue) > capacity:
                return (name, structure,
                        f"{structure.upper()} over capacity: {len(queue)}")
            last_seq = -1
            for dyn in queue:
                if dyn.seq <= last_seq:
                    return (name, structure,
                            f"{structure.upper()} out of age order: "
                            f"#{dyn.seq} after #{last_seq}")
                last_seq = dyn.seq
                if (dyn.is_load if want_load else dyn.is_store) is False:
                    return (name, structure,
                            f"#{dyn.seq} ({dyn.static.op.value}) does not "
                            f"belong in the {structure.upper()}")
                if id(dyn) not in rob_ids:
                    return (name, structure,
                            f"#{dyn.seq} sits in the {structure.upper()} "
                            f"but not in the ROB (leaked entry)")
        return None

    # -- memory machinery ----------------------------------------------

    def _check_mshrs(self, core):
        hierarchy = core.hierarchy
        files = [(f"l1[{i}]", f) for i, f in enumerate(hierarchy.l1_mshrs)]
        files.append(("l2", hierarchy.l2_mshrs))
        for label, mshrs in files:
            # Lazy structures: settle anything already ripe, exactly as the
            # next access would, then judge what remains.
            mshrs.drain(core.cycle)
            occupied = len(mshrs) + mshrs.reserved
            if occupied > mshrs.capacity:
                return ("mshr-leak-freedom", "mshr",
                        f"{label} MSHRs over capacity: {occupied}"
                        f"/{mshrs.capacity}")
            for entry in mshrs._by_line.values():
                if entry.ready_cycle > core.cycle + self.future_slack:
                    return ("mshr-leak-freedom", "mshr",
                            f"{label} MSHR for line {entry.line_address:#x} "
                            f"ready at {entry.ready_cycle}, "
                            f"{entry.ready_cycle - core.cycle} cycles out "
                            f"(leaked entry)")
        return None

    def _check_lfb(self, core):
        hierarchy = core.hierarchy
        hierarchy.drain(core.cycle)  # settle ripe fills first
        lfb = hierarchy.lfbs[core.core_id]
        if len(lfb.entries) > lfb.capacity:
            return ("lfb-leak-freedom", "lfb",
                    f"LFB over capacity: {len(lfb.entries)}")
        for entry in lfb.entries:
            if entry.phantom or entry.filled:
                continue
            if entry.fill_ready_cycle < 0:
                return ("lfb-leak-freedom", "lfb",
                        f"LFB slot {entry.index} in flight with no fill "
                        f"stamp (leaked entry)")
            if entry.fill_ready_cycle > core.cycle + self.future_slack:
                return ("lfb-leak-freedom", "lfb",
                        f"LFB slot {entry.index} fill at "
                        f"{entry.fill_ready_cycle}, "
                        f"{entry.fill_ready_cycle - core.cycle} cycles out "
                        f"(leaked entry)")
        return None

    # -- tag state ------------------------------------------------------

    def _check_tag_integrity(self, core):
        tags = core.hierarchy.memory.tags
        corrupted = getattr(tags, "corrupted_granules", None)
        if corrupted:
            granule = next(iter(corrupted))
            return ("tag-storage-integrity", "tag-storage",
                    f"{len(corrupted)} corrupted granule(s) in DRAM tag "
                    f"storage (e.g. granule {granule}, "
                    f"address {granule * tags.granule_bytes:#x})")
        return None

    def _check_tag_coherence(self, core):
        hierarchy = core.hierarchy
        memory = hierarchy.memory
        line_bytes = hierarchy.line_bytes
        caches = [(f"L1[{i}]", c) for i, c in enumerate(hierarchy.l1ds)]
        caches.append(("L2", hierarchy.l2))
        for label, cache in caches:
            for line in cache.iter_lines():
                if not line.locks:
                    continue  # untagged level (ablation) keeps no sidecar
                truth = memory.line_locks(line.line_address, line_bytes)
                if tuple(line.locks) != tuple(truth):
                    return ("tag-coherence", "tag-storage",
                            f"{label} line {line.line_address:#x} holds "
                            f"locks {tuple(line.locks)} but DRAM tag "
                            f"storage says {tuple(truth)}")
        for core_id, lfb in enumerate(hierarchy.lfbs):
            for entry in lfb.entries:
                if (entry.phantom or not entry.filled or not entry.locks
                        or entry.line_address < 0):
                    continue
                truth = memory.line_locks(entry.line_address, line_bytes)
                if tuple(entry.locks) != tuple(truth):
                    return ("tag-coherence", "tag-storage",
                            f"LFB[{core_id}] slot {entry.index} line "
                            f"{entry.line_address:#x} holds locks "
                            f"{tuple(entry.locks)} but DRAM tag storage "
                            f"says {tuple(truth)}")
        return None
