"""Fault × defense resilience evaluation (the Table-1-style matrix).

:func:`run_resilient_attack` executes one attack PoC under one defense with
the full resilience stack attached — fault injector, invariant checker with
fence-fallback degradation, livelock watchdog — and reports a
:class:`ResilienceCell` describing how the run ended and whether the secret
leaked.  :func:`evaluate_resilience_matrix` sweeps fault kinds against
defenses; :func:`render_resilience_matrix` prints the grid.

The property under test is the acceptance criterion: every injected fault is
either *absorbed* (the run completes, possibly degraded to fence semantics,
with the no-leak property intact) or surfaces as a *typed* error
(:class:`~repro.errors.InvariantViolation`, DeadlockError, LivelockError)
whose snapshot names the faulty structure — never a bare Python exception,
never a silent wrong result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.common import AttackProgram
from repro.config import CORTEX_A76, DefenseKind, SystemConfig
from repro.errors import (DeadlockError, InvariantViolation, LivelockError,
                          ReproError)
from repro.resilience.faults import (ALL_FAULT_KINDS, FaultInjector,
                                     FaultKind, FaultSchedule)
from repro.resilience.invariants import InvariantChecker
from repro.resilience.watchdog import GracefulDegradation, Watchdog
from repro.system import build_system

#: Defense columns the matrix sweeps by default (baseline + cheap + paper).
DEFAULT_DEFENSES = (DefenseKind.NONE, DefenseKind.FENCE, DefenseKind.SPECASAN)


@dataclass
class ResilienceCell:
    """One (fault kind, defense) cell of the matrix."""

    fault: Optional[FaultKind]
    defense: DefenseKind
    #: "completed" | "degraded" | "invariant-violation" | "deadlock"
    #: | "livelock" | "error"
    outcome: str
    leaked: bool
    recovered: List[int] = field(default_factory=list)
    cycles: int = 0
    injected: int = 0
    #: The typed error's message, when one was raised.
    error: str = ""
    #: The structure a raised InvariantViolation blamed.
    structure: str = ""

    @property
    def safe(self) -> bool:
        """The acceptance predicate: absorbed-or-typed, and no leak."""
        return not self.leaked and self.outcome in (
            "completed", "degraded", "invariant-violation", "deadlock",
            "livelock")

    def __str__(self) -> str:  # pragma: no cover - convenience
        fault = self.fault.value if self.fault else "baseline"
        verdict = "LEAKED" if self.leaked else "no-leak"
        return (f"{fault} × {self.defense.value}: {self.outcome} "
                f"({verdict}, {self.injected} faults, {self.cycles} cycles)")


def run_resilient_attack(attack: AttackProgram, defense: DefenseKind,
                         fault: Optional[FaultKind] = None, *,
                         seed: int = 0xFA17, fault_count: int = 4,
                         config: Optional[SystemConfig] = None,
                         degrade: bool = True,
                         checker_interval: int = 64,
                         fault_start_cycle: int = 100,
                         fault_window: int = 300) -> ResilienceCell:
    """Run ``attack`` under ``defense`` with the resilience stack attached.

    ``fault=None`` runs the baseline cell: invariant checking and the
    watchdog are still active (they must stay silent on a benign-faulted
    machine), but nothing is injected.
    """
    system = build_system((config or CORTEX_A76).with_defense(defense))
    core = system.prepare(attack.builder_program)
    core.secret_ranges = [(attack.secret_address,
                           attack.secret_address + attack.secret_size)]

    degradation = GracefulDegradation() if degrade else None
    checker = InvariantChecker(interval=checker_interval,
                               degradation=degradation).attach(core)
    Watchdog().attach(core)
    injector = None
    if fault is not None:
        # The PoCs finish in a few hundred cycles, so the window defaults
        # tight enough that every scheduled event actually lands mid-run.
        schedule = FaultSchedule.generate(
            seed, [fault], count=fault_count,
            start_cycle=fault_start_cycle, window=fault_window,
            tag_bits=system.config.mte.tag_bits)
        injector = FaultInjector(schedule).attach(core)

    outcome, error, structure = "completed", "", ""
    try:
        core.run(max_cycles=attack.max_cycles)
    except InvariantViolation as exc:
        outcome, error, structure = "invariant-violation", str(exc), exc.structure
    except LivelockError as exc:
        outcome, error = "livelock", str(exc)
    except DeadlockError as exc:
        outcome, error = "deadlock", str(exc)
    except ReproError as exc:  # e.g. max_cycles timeout
        outcome, error = "error", str(exc)
    if outcome == "completed" and degradation is not None and degradation.degraded:
        outcome = "degraded"

    # Evaluate leakage exactly like run_attack_program (§4.3): let fills
    # land, then inspect probe-array presence / contention events.
    system.hierarchy.drain(core.cycle + 10_000)
    recovered = [
        value for value in range(attack.candidates)
        if value not in attack.benign_values
        and system.hierarchy.is_cached(
            attack.probe_base + value * attack.probe_stride)
    ]
    if attack.channel == "cache":
        leaked = attack.secret_value in recovered
    else:
        leaked = any(event["kind"] == "contention" for event in core.leak_log)

    return ResilienceCell(
        fault=fault, defense=defense, outcome=outcome, leaked=leaked,
        recovered=recovered, cycles=core.cycle,
        injected=len(injector.injected) if injector else 0,
        error=error, structure=structure)


def evaluate_resilience_matrix(
        attack: AttackProgram,
        defenses: Sequence[DefenseKind] = DEFAULT_DEFENSES,
        faults: Sequence[Optional[FaultKind]] = (None,) + ALL_FAULT_KINDS,
        *, seed: int = 0xFA17, degrade: bool = True,
        config: Optional[SystemConfig] = None,
) -> Dict[Tuple[Optional[FaultKind], DefenseKind], ResilienceCell]:
    """Sweep ``faults`` × ``defenses`` for one attack program."""
    cells = {}
    for fault in faults:
        for defense in defenses:
            cells[(fault, defense)] = run_resilient_attack(
                attack, defense, fault, seed=seed, degrade=degrade,
                config=config)
    return cells


def render_resilience_matrix(cells: Dict) -> str:
    """ASCII grid: rows = fault kinds, columns = defenses."""
    faults = list(dict.fromkeys(f for f, _ in cells))
    defenses = list(dict.fromkeys(d for _, d in cells))
    label = lambda f: f.value if f is not None else "baseline"

    def cell_text(cell: ResilienceCell) -> str:
        verdict = "LEAK" if cell.leaked else "ok"
        return f"{cell.outcome}/{verdict}"

    width = max([len(label(f)) for f in faults] + [len("fault")]) + 2
    col = max([len(cell_text(c)) for c in cells.values()]
              + [len(d.value) for d in defenses]) + 2
    lines = ["fault".ljust(width)
             + "".join(d.value.ljust(col) for d in defenses)]
    lines.append("-" * (width + col * len(defenses)))
    for fault in faults:
        row = label(fault).ljust(width)
        for defense in defenses:
            row += cell_text(cells[(fault, defense)]).ljust(col)
        lines.append(row)
    return "\n".join(lines)
