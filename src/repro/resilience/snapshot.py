"""Structured pipeline-state snapshots for diagnostics.

Every resilience-layer error (:class:`~repro.errors.DeadlockError`,
:class:`~repro.errors.LivelockError`,
:class:`~repro.errors.InvariantViolation`) carries a snapshot produced here,
so a failed run names the faulty structure and its occupancy instead of a
bare message.  The functions are deliberately read-only and duck-typed over
:class:`~repro.pipeline.core.Core`: taking a snapshot never perturbs the
simulation, and this module imports nothing from the pipeline (keeping the
dependency arrow pointing resilience → pipeline only at call sites).
"""

from __future__ import annotations

from typing import Dict, Optional


def _instr_summary(dyn) -> Dict:
    """A compact dict describing one in-flight instruction.

    Tolerant of partially-formed entries: the snapshot is taken while
    reporting a failure, and must never raise a second error of its own.
    """
    static = getattr(dyn, "static", None)
    op = getattr(getattr(static, "op", None), "value", "?")
    summary = {
        "seq": getattr(dyn, "seq", -1),
        "pc": getattr(dyn, "pc", 0),
        "op": op,
        "state": getattr(getattr(dyn, "state", None), "value", "?"),
        "tcs": getattr(getattr(dyn, "tcs", None), "name", "?"),
        "squashed": getattr(dyn, "squashed", False),
    }
    if getattr(dyn, "addr", None) is not None:
        summary["addr"] = dyn.addr
    response = getattr(dyn, "response", None)
    if response is not None:
        summary["response_ready"] = response.ready_cycle
        summary["data_withheld"] = response.data_withheld
    return summary


def core_snapshot(core, restorable: bool = False) -> Dict:
    """Capture the diagnostic state of ``core`` as a plain dict.

    Includes the ROB head instruction, LQ/SQ/IQ occupancies, the last
    committed PC, unresolved-branch count, and (via the shared hierarchy)
    MSHR/LFB occupancy for this core — everything the acceptance criterion
    "snapshot names the faulty structure" needs.

    With ``restorable=True`` the snapshot additionally embeds the core's
    full ``state_dict()`` under ``"state"``, so a deadlock/livelock error
    carries a snapshot :func:`rebuild_core` can bring back to life for
    post-mortem stepping — not just a summary.
    """
    config = core.config.core
    head: Optional[Dict] = _instr_summary(core.rob[0]) if core.rob else None
    hierarchy = core.hierarchy
    lfb = hierarchy.lfbs[core.core_id]
    snapshot = {
        "cycle": core.cycle,
        "core_id": core.core_id,
        "halted": core.halted,
        "fetch_pc": core.fetch_pc,
        "last_commit_pc": getattr(core, "last_commit_pc", None),
        "last_commit_cycle": core._last_commit_cycle,
        "committed": core.stats.committed,
        "policy": core.policy.name,
        "rob": {"occupancy": len(core.rob), "capacity": config.rob_entries,
                "head": head},
        "iq_occupancy": len(core.iq),
        "fetch_queue": len(core.fetch_queue),
        "lq": {"occupancy": len(core.lsq.lq), "capacity": config.lq_entries},
        "sq": {"occupancy": len(core.lsq.sq), "capacity": config.sq_entries},
        "unresolved_branches": len(core._unresolved_branches),
        "mshr": {"l1": len(hierarchy.l1_mshrs[core.core_id]),
                 "l2": len(hierarchy.l2_mshrs)},
        "lfb_inflight": sum(1 for e in lfb.entries if not e.filled),
        "fault": str(core.fault) if core.fault is not None else None,
    }
    trace = getattr(core, "trace", None)
    tail = getattr(trace, "tail", None)
    if callable(tail):
        # Tracing active: attach the last pipeline events so a wedged run
        # shows what it was doing when it stopped (duck-typed, read-only).
        try:
            snapshot["trace_tail"] = tail()
        except Exception:  # never let diagnostics raise a second error
            pass
    if restorable:
        try:
            snapshot["state"] = core.state_dict()
        except Exception:  # diagnostics must not raise a second error
            pass
    return snapshot


def rebuild_core(snapshot: Dict, config, hierarchy, program):
    """Reconstruct a live :class:`~repro.pipeline.core.Core` from a
    restorable snapshot (one taken with ``restorable=True``).

    The caller supplies the config, hierarchy, and program the wedged run
    used (typically a freshly prepared system); the returned core is left
    exactly at the cycle the error fired, ready for single-stepping.
    """
    state = snapshot.get("state")
    if state is None:
        raise ValueError(
            "snapshot carries no restorable state (taken with "
            "restorable=False)")
    # Imported lazily: snapshot *capture* stays import-free of the pipeline.
    from repro.config import DefenseKind
    from repro.defenses import make_policy
    from repro.pipeline.core import Core
    try:
        policy = make_policy(DefenseKind(snapshot.get("policy", "none")))
    except ValueError:
        policy = None
    core = Core(config, hierarchy, program, policy=policy,
                core_id=snapshot.get("core_id", 0))
    core.load_state_dict(state)
    return core


def summarize(snapshot: Dict) -> str:
    """One-line rendering of a snapshot for exception messages."""
    head = snapshot.get("rob", {}).get("head")
    if head is None:
        head_text = "rob-head=<empty>"
    else:
        head_text = (f"rob-head=#{head['seq']} {head['op']}@{head['pc']:#x} "
                     f"state={head['state']} tcs={head['tcs']}")
    last_pc = snapshot.get("last_commit_pc")
    last_pc_text = f"{last_pc:#x}" if isinstance(last_pc, int) else "<none>"
    lq = snapshot.get("lq", {})
    sq = snapshot.get("sq", {})
    mshr = snapshot.get("mshr", {})
    return (f"{head_text} lq={lq.get('occupancy')}/{lq.get('capacity')} "
            f"sq={sq.get('occupancy')}/{sq.get('capacity')} "
            f"mshr(l1={mshr.get('l1')},l2={mshr.get('l2')}) "
            f"lfb-inflight={snapshot.get('lfb_inflight')} "
            f"last-commit-pc={last_pc_text} "
            f"fetch-pc={snapshot.get('fetch_pc', 0):#x}")
