"""Resilience self-test: ``python -m repro.resilience --selftest``.

Two phases, both bounded to stay inside a CI smoke budget (~1 minute):

1. **Benign run under full checking** — a spectre-v1 PoC under SpecASan with
   the invariant checker and watchdog attached but *no* faults injected must
   complete with zero violations (the checker must not cry wolf).
2. **Fault sweep** — every fault kind against SpecASan; each cell must be
   *safe*: absorbed (completed/degraded, no leak) or a typed error naming
   the faulty structure.

Exit code 0 on success, 1 on any violated expectation.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.attacks import spectre_v1
from repro.config import DefenseKind
from repro.resilience.faults import ALL_FAULT_KINDS
from repro.resilience.harness import (render_resilience_matrix,
                                      run_resilient_attack)


def selftest(verbose: bool = True) -> int:
    started = time.time()
    failures = []
    attack = spectre_v1.build()

    # Phase 1: benign-fault baseline — checker and watchdog stay silent.
    baseline = run_resilient_attack(attack, DefenseKind.SPECASAN, None)
    if baseline.outcome != "completed":
        failures.append(f"baseline did not complete cleanly: {baseline}")
    if baseline.leaked:
        failures.append(f"baseline leaked under SPECASAN: {baseline}")

    # The attack itself must work when undefended, or the sweep proves
    # nothing.
    undefended = run_resilient_attack(attack, DefenseKind.NONE, None)
    if not undefended.leaked:
        failures.append(f"undefended baseline did not leak: {undefended}")

    # Phase 2: every fault kind against SpecASan must stay safe.
    cells = {(None, DefenseKind.SPECASAN): baseline}
    for kind in ALL_FAULT_KINDS:
        cell = run_resilient_attack(attack, DefenseKind.SPECASAN, kind)
        cells[(kind, DefenseKind.SPECASAN)] = cell
        if not cell.safe:
            failures.append(f"unsafe cell: {cell} ({cell.error})")
        if cell.injected == 0:
            failures.append(f"{kind.value}: no fault actually fired")
        if cell.outcome == "invariant-violation" and not cell.structure:
            failures.append(f"{kind.value}: violation names no structure")

    if verbose:
        print(render_resilience_matrix(cells))
        print(f"\nselftest: {len(ALL_FAULT_KINDS)} fault kinds + baseline "
              f"in {time.time() - started:.1f}s")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if verbose:
        print("selftest: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Resilience subsystem smoke test.")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in fault-sweep self-test")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the matrix printout")
    args = parser.parse_args(argv)
    if not args.selftest:
        parser.print_help()
        return 2
    return selftest(verbose=not args.quiet)


if __name__ == "__main__":
    sys.exit(main())
