"""Control-flow graph construction for linked :class:`~repro.isa.program.Program`s.

Blocks split at branch targets and after control transfers; edges model the
*architectural* successor relation:

- ``fall`` — straight-line flow (including the not-taken side of a
  conditional branch and the return site after a call);
- ``taken`` — the target of a direct or conditional branch;
- ``call`` — the callee entry of ``BL``/``BLR``;
- ``indirect`` — a possible target of ``BR``/``BLR``, drawn from the
  program's *address-taken* set (instruction addresses that appear as
  immediates or as words in initial data segments — the function-pointer
  and branch-target tables attack PoCs and workloads use).

``RET`` has no static successors: returning to the caller is modelled by
the ``fall`` edge out of the call site, the standard intraprocedural
approximation.  Speculative (wrong-path) successors are deliberately *not*
CFG edges; :mod:`repro.analysis.windows` derives them separately.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.errors import AnalysisError
from repro.isa.instructions import INSTR_BYTES, Instruction, Opcode
from repro.isa.program import Program
from repro.mte.tags import strip_tag

#: Edge kinds, in rendering order.
EDGE_KINDS = ("fall", "taken", "call", "indirect")


def address_taken(program: Program) -> FrozenSet[int]:
    """Instruction addresses whose value escapes into data or immediates.

    Scans every instruction immediate and every aligned 64-bit word of every
    data segment for values that (after stripping the MTE key byte) land on
    an instruction of ``program`` — the static over-approximation of "may be
    an indirect-branch target".
    """
    program.link()
    taken = set()

    def note(value: int) -> None:
        address = strip_tag(value & (2**64 - 1))
        if program.fetch(address) is not None:
            taken.add(address)

    for instr in program.instructions:
        if instr.imm is not None:
            note(instr.imm)
    for segment in program.data_segments:
        data = segment.data
        usable = len(data) - len(data) % 8
        for (word,) in struct.iter_unpack("<Q", data[:usable]):
            note(word)
    return frozenset(taken)


def successors(program: Program, instr: Instruction,
               indirect_targets: Iterable[int] = (),
               per_branch_targets: Optional[Mapping[int, Iterable[int]]]
               = None) -> List[Tuple[int, str]]:
    """Architectural successor addresses of ``instr`` with edge kinds.

    ``per_branch_targets`` maps an individual ``BR``/``BLR`` instruction
    address to *its* resolved target set; branches absent from the map fall
    back to the global ``indirect_targets`` over-approximation.
    """
    next_addr = instr.address + INSTR_BYTES
    has_next = program.fetch(next_addr) is not None
    out: List[Tuple[int, str]] = []
    op = instr.op
    if op is Opcode.HALT:
        return out
    if instr.is_return:
        return out
    if op is Opcode.B:
        if instr.target_addr is not None:
            out.append((instr.target_addr, "taken"))
        return out
    if instr.is_conditional_branch:
        if instr.target_addr is not None:
            out.append((instr.target_addr, "taken"))
        if has_next:
            out.append((next_addr, "fall"))
        return out
    if op is Opcode.BL:
        if instr.target_addr is not None:
            out.append((instr.target_addr, "call"))
        if has_next:
            out.append((next_addr, "fall"))
        return out
    if op in (Opcode.BLR, Opcode.BR):
        targets = indirect_targets
        if per_branch_targets is not None \
                and instr.address in per_branch_targets:
            targets = per_branch_targets[instr.address]
        out.extend((t, "indirect") for t in sorted(targets))
        if op is Opcode.BLR and has_next:
            out.append((next_addr, "fall"))
        return out
    if has_next:
        out.append((next_addr, "fall"))
    return out


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    index: int
    instructions: List[Instruction]
    #: Outgoing edges as (block index, kind).
    successors: List[Tuple[int, str]] = field(default_factory=list)
    #: Incoming edges as (block index, kind).
    predecessors: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def start(self) -> int:
        return self.instructions[0].address

    @property
    def end(self) -> int:
        """First address past this block."""
        return self.instructions[-1].address + INSTR_BYTES

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock(#{self.index} @{self.start:#x}..{self.end:#x})"


@dataclass
class CFGProblem:
    """One well-formedness finding (lint severity, not an exception)."""

    kind: str       # "unreachable-block" | "fall-off-end"
    address: int
    message: str

    def __str__(self) -> str:
        return f"{self.address:#x}: [{self.kind}] {self.message}"


@dataclass
class CFG:
    """The control-flow graph of one linked program."""

    program: Program
    blocks: List[BasicBlock]
    #: Possible targets of ``BR``/``BLR`` (address-taken instructions).
    indirect_targets: FrozenSet[int]
    #: Instruction address -> owning block index.
    block_of_addr: Dict[int, int]
    #: Block indices reachable from the entry point.
    reachable: FrozenSet[int]

    @property
    def entry_block(self) -> BasicBlock:
        return self.blocks[self.block_of_addr[self.program.entry_address]]

    def block_at(self, address: int) -> BasicBlock:
        """The block containing the instruction at ``address``."""
        return self.blocks[self.block_of_addr[address]]

    def check_well_formed(self) -> List[CFGProblem]:
        """Unreachable blocks and fall-through off the end of the text."""
        problems = []
        for block in self.blocks:
            if block.index not in self.reachable:
                problems.append(CFGProblem(
                    "unreachable-block", block.start,
                    f"block #{block.index} is unreachable from the entry "
                    f"({self.program.entry_address:#x})"))
        for block in self.blocks:
            term = block.terminator
            falls = not (term.op in (Opcode.B, Opcode.HALT)
                         or term.is_return
                         or term.op is Opcode.BR)
            if falls and self.program.fetch(block.end) is None:
                problems.append(CFGProblem(
                    "fall-off-end", term.address,
                    f"{term.render()} falls through past the end of the "
                    f"text segment"))
        return problems


def require_well_formed(program: Program) -> CFG:
    """Build the CFG and *demand* well-formedness (the CLI-facing gate).

    :meth:`CFG.check_well_formed` is lint-severity — callers that can
    produce a partial answer keep going.  Entry points that report to a
    human (``--report FILE.s``, the service) must instead refuse: a
    gadget report over a degenerate program ("no gadgets found" because
    the victim code was unreachable, or because execution falls off the
    end of the text) is indistinguishable from a clean bill of health.
    Raises :class:`~repro.errors.AnalysisError` naming every problem
    block address; the empty program (a ``.s`` file with only
    directives) is converted from :func:`build_cfg`'s ``ValueError``
    into the same typed error.
    """
    try:
        cfg = build_cfg(program)
    except ValueError as err:
        raise AnalysisError(f"degenerate program: {err}")
    problems = cfg.check_well_formed()
    if problems:
        detail = "; ".join(str(problem) for problem in problems)
        raise AnalysisError(
            f"degenerate program: {len(problems)} CFG problem(s): {detail}")
    return cfg


def build_cfg(program: Program,
              indirect_targets: Optional[Iterable[int]] = None,
              per_branch_targets: Optional[Mapping[int, Iterable[int]]]
              = None) -> CFG:
    """Construct the CFG of ``program`` (linked in place if needed).

    ``indirect_targets`` defaults to :func:`address_taken`; pass an explicit
    set to narrow ``BR``/``BLR`` edges (e.g. from taint-resolved constants).

    ``per_branch_targets`` narrows *individual* indirect branches: a map
    from ``BR``/``BLR`` instruction address to the target set whose
    MTE-key-stripped literals actually reach that branch's register
    (:func:`repro.analysis.modular.resolved_indirect_targets`).  Branches
    not in the map keep the global over-approximation, so a widened
    constant set degrades gracefully instead of dropping edges.
    """
    program.link()
    if not program.instructions:
        raise ValueError("cannot build a CFG for an empty program")
    targets = (frozenset(indirect_targets) if indirect_targets is not None
               else address_taken(program))
    per_branch: Optional[Dict[int, Tuple[int, ...]]] = None
    if per_branch_targets is not None:
        per_branch = {addr: tuple(sorted(set(t)))
                      for addr, t in per_branch_targets.items()}

    # Leaders: entry, branch targets, instructions after control transfers.
    leaders = {program.entry_address, program.base_address}
    for instr in program.instructions:
        if instr.target_addr is not None:
            leaders.add(instr.target_addr)
        if instr.is_branch or instr.op is Opcode.HALT:
            leaders.add(instr.address + INSTR_BYTES)
    leaders.update(targets)
    if per_branch is not None:
        for branch_targets in per_branch.values():
            leaders.update(branch_targets)

    blocks: List[BasicBlock] = []
    block_of_addr: Dict[int, int] = {}
    current: List[Instruction] = []
    for instr in program.instructions:
        if instr.address in leaders and current:
            blocks.append(BasicBlock(len(blocks), current))
            current = []
        current.append(instr)
    if current:
        blocks.append(BasicBlock(len(blocks), current))
    for block in blocks:
        for instr in block.instructions:
            block_of_addr[instr.address] = block.index

    for block in blocks:
        for address, kind in successors(program, block.terminator, targets,
                                        per_branch):
            succ = block_of_addr.get(address)
            if succ is None:
                continue
            block.successors.append((succ, kind))
            blocks[succ].predecessors.append((block.index, kind))

    # Reachability roots: the entry plus every address-taken block — a
    # function whose address escapes into a table may be called even if no
    # indirect branch happens to target it in this build (the usual
    # dead-code convention for exported/address-taken symbols).
    roots = {block_of_addr[program.entry_address]}
    roots.update(block_of_addr[t] for t in targets if t in block_of_addr)
    reachable = _reach(roots, blocks)
    return CFG(program=program, blocks=blocks, indirect_targets=targets,
               block_of_addr=block_of_addr, reachable=frozenset(reachable))


def _reach(roots: Iterable[int], blocks: List[BasicBlock]) -> set:
    seen = set(roots)
    work = list(seen)
    while work:
        index = work.pop()
        for succ, _ in blocks[index].successors:
            if succ not in seen:
                seen.add(succ)
                work.append(succ)
    return seen
