"""Forward taint and bounded-constant dataflow over a program's CFG.

The analysis walks the CFG to a fixed point propagating one :class:`Value`
per architectural register.  A value is a *bounded constant set* (collapsed
to "unknown" past :data:`CONST_CAP` members) plus taint flags:

- ``attacker`` — may be influenced by memory contents (every load result);
- ``secret`` — may carry bytes of a configured secret range;
- ``loaded`` — derived from a load result, i.e. resolves late.  A branch
  whose condition is ``loaded`` is a *delayed* branch (its window is long
  enough to matter); a store whose address is ``loaded`` is the Spectre-STL
  shape;
- ``stale`` — derived from an MDS sampling load (pass-2 only; see
  :mod:`repro.analysis.gadgets`).

Loads resolve through the program's *initial* data segments — the index,
pointer, and branch-target tables attack PoCs drive their gadgets with.  A
load whose full address is constant reads the segment bytes exactly; a load
with a constant base but unknown offset is summarized by the distinct words
of the containing segment (skipped past :data:`SUMMARY_CAP` bytes).  Stores
do not update this memory image: a speculative bypassing load reading the
*stale* initial contents (Spectre-v4) is therefore modelled for free, at the
cost of ignoring architectural read-after-write through memory — a precision
limit DESIGN.md documents.

The analysis is interprocedural but context-insensitive: ``BL``/``BLR``
flow into callees through the CFG's call/indirect edges, and every ``RET``
flows to every return site.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field, replace
from typing import (
    Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple)

from repro.analysis import hooks
from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.isa.instructions import FLAGS_REG, INSTR_BYTES, Instruction, Opcode
from repro.isa.program import DataSegment, Program
from repro.isa.registers import XZR
from repro.mte.tags import key_of, strip_tag, with_key

MASK64 = (1 << 64) - 1
#: Constant sets larger than this collapse to "unknown" (widening).
CONST_CAP = 16
#: Pairwise constant evaluation is skipped past this operand product.
PAIR_CAP = 256
#: Segments larger than this are not summarized for unknown-offset loads.
SUMMARY_CAP = 64 * 1024


@dataclass(frozen=True)
class Value:
    """One abstract register value: bounded constants plus taint flags."""

    consts: Optional[Tuple[int, ...]] = None
    attacker: bool = False
    secret: bool = False
    loaded: bool = False
    stale: bool = False

    def join(self, other: "Value") -> "Value":
        """Least upper bound of two values."""
        if self == other:
            return self
        consts: Optional[Tuple[int, ...]]
        if self.consts is None or other.consts is None:
            consts = None
        else:
            merged = set(self.consts) | set(other.consts)
            consts = tuple(sorted(merged)) if len(merged) <= CONST_CAP else None
        return Value(consts,
                     self.attacker or other.attacker,
                     self.secret or other.secret,
                     self.loaded or other.loaded,
                     self.stale or other.stale)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(name[0] for name in
                        ("attacker", "secret", "loaded", "stale")
                        if getattr(self, name))
        if self.consts is None:
            return f"Value(?{',' + flags if flags else ''})"
        shown = ",".join(f"{c:#x}" for c in self.consts[:4])
        more = "…" if len(self.consts) > 4 else ""
        return f"Value({{{shown}{more}}}{',' + flags if flags else ''})"


#: The no-information value (arbitrary, untainted).
UNKNOWN = Value()


def const_value(*values: int) -> Value:
    """An exact constant value (or small constant set)."""
    return Value(tuple(sorted({v & MASK64 for v in values})))


def _tainted(consts: Optional[Tuple[int, ...]], *sources: Value) -> Value:
    return Value(consts,
                 any(s.attacker for s in sources),
                 any(s.secret for s in sources),
                 any(s.loaded for s in sources),
                 any(s.stale for s in sources))


def _to_signed(v: int) -> int:
    return v - (1 << 64) if v >> 63 else v


_EVAL = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.ORR: lambda a, b: a | b,
    Opcode.EOR: lambda a, b: a ^ b,
    Opcode.LSL: lambda a, b: a << (b & 63),
    Opcode.LSR: lambda a, b: a >> (b & 63),
    Opcode.ASR: lambda a, b: _to_signed(a) >> (b & 63),
    Opcode.MUL: lambda a, b: a * b,
    Opcode.UDIV: lambda a, b: 0 if b == 0 else a // b,  # AArch64: x/0 == 0
}

_ALU_OPS = frozenset(_EVAL)


def _binop(op: Opcode, a: Value, b: Value) -> Value:
    """Abstract binary ALU transfer (with absorbing zero for AND/MUL)."""
    if op in (Opcode.AND, Opcode.MUL) and ((0,) in (a.consts, b.consts)):
        # The result is exactly zero no matter the other operand; the
        # dependency is purely microarchitectural, so taint drops too
        # (needed for the RIDL delay chain's AND-with-XZR collapse).
        return const_value(0)
    consts: Optional[Tuple[int, ...]] = None
    if (a.consts is not None and b.consts is not None
            and len(a.consts) * len(b.consts) <= PAIR_CAP):
        fn = _EVAL[op]
        vals = {fn(x, y) & MASK64 for x in a.consts for y in b.consts}
        if len(vals) <= CONST_CAP:
            consts = tuple(sorted(vals))
    return _tainted(consts, a, b)


# -- per-instruction facts ----------------------------------------------------


@dataclass
class LoadFact:
    """What the analysis knows about one load instruction (joined state)."""

    instr: Instruction
    address: Value
    result: Value
    width: int
    #: Every constant address resolved into a data segment exactly.
    resolved: bool
    #: (tagged pointer, pointer key, allocation lock) for every access that
    #: may touch a secret range — the inputs to the SpecASan verdict.
    secret_accesses: Tuple[Tuple[int, int, int], ...]
    #: A constant address straddles a cache-line boundary (assist trigger).
    line_crossing: bool


@dataclass
class StoreFact:
    """What the analysis knows about one store instruction."""

    instr: Instruction
    address: Value
    data: Value
    width: int
    #: Resolved constant (tagged) store addresses, or () when unknown.
    pointers: Tuple[int, ...]


@dataclass
class BranchFact:
    """Condition/target values observed at a branch."""

    instr: Instruction
    #: Condition value for B.cond (the FLAGS value) and CBZ/CBNZ (the
    #: tested register); ``None`` for unconditional branches.
    condition: Optional[Value] = None
    #: Target register value for BR/BLR; ``None`` otherwise.
    target: Optional[Value] = None

    @property
    def delayed(self) -> bool:
        """The condition resolves late (depends on a load)."""
        return self.condition is not None and self.condition.loaded


@dataclass
class TaintResult:
    """The full dataflow result for one program."""

    program: Program
    cfg: CFG
    secret_ranges: Tuple[Tuple[int, int], ...]
    loads: Dict[int, LoadFact] = field(default_factory=dict)
    stores: Dict[int, StoreFact] = field(default_factory=dict)
    branches: Dict[int, BranchFact] = field(default_factory=dict)
    #: MUL/UDIV instruction address -> joined source-operand value (the
    #: contention-channel transmitter candidates).
    contention: Dict[int, Value] = field(default_factory=dict)
    #: (block start address, register) -> number of join-widening events:
    #: both incoming constant sets were bounded but their union exceeded
    #: :data:`CONST_CAP` and collapsed to "unknown".  This is the explicit
    #: record of the bounded-iteration cutoff that makes recursion (mutual
    #: ``BL`` cycles, unbounded loop counters) terminate — surfaced in the
    #: ``--report`` output instead of silently converging.
    widenings: Dict[Tuple[int, int], int] = field(default_factory=dict)


# -- the analysis -------------------------------------------------------------


class _Context:
    """Shared lookups for one analyze() run."""

    def __init__(self, program: Program, cfg: CFG,
                 secret_ranges: Tuple[Tuple[int, int], ...],
                 stale_loads: FrozenSet[int]):
        self.program = program
        self.cfg = cfg
        self.secret_ranges = secret_ranges
        self.stale_loads = stale_loads
        self._summaries: Dict[Tuple[str, int], FrozenSet[int]] = {}

    def segment_at(self, address: int, width: int = 1) -> Optional[DataSegment]:
        for seg in self.program.data_segments:
            if seg.address <= address and address + width <= seg.end:
                return seg
        return None

    def overlaps_secret(self, address: int, width: int) -> bool:
        return any(lo < address + width and address < hi
                   for lo, hi in self.secret_ranges)

    def segment_overlaps_secret(self, seg: DataSegment) -> bool:
        return any(lo < seg.end and seg.address < hi
                   for lo, hi in self.secret_ranges)

    def summary(self, seg: DataSegment, width: int) -> FrozenSet[int]:
        """Distinct width-byte values stored anywhere in ``seg``."""
        cache_key = (seg.name, width)
        if cache_key not in self._summaries:
            if width == 1:
                vals = frozenset(seg.data)
            else:
                usable = len(seg.data) - len(seg.data) % width
                fmt = "<Q" if width == 8 else "<B"
                vals = frozenset(w for (w,) in
                                 struct.iter_unpack(fmt, seg.data[:usable]))
            self._summaries[cache_key] = vals
        return self._summaries[cache_key]


State = Dict[int, Value]


def _read(state: State, reg: Optional[int]) -> Value:
    if reg is None:
        return UNKNOWN
    if reg == XZR:
        return const_value(0)
    return state.get(reg, UNKNOWN)


def _write(state: State, reg: Optional[int], value: Value) -> None:
    if reg is not None and reg != XZR:
        state[reg] = value


def _join_states(a: Optional[State], b: State,
                 widened: Optional[Callable[[int], None]] = None) -> State:
    """Pointwise join; ``widened(reg)`` fires on every constant-set collapse
    (both sides bounded, union past :data:`CONST_CAP`)."""
    if a is None:
        return dict(b)
    out = dict(a)
    for reg, value in b.items():
        if reg in out:
            joined = value.join(out[reg])
            if (widened is not None and joined.consts is None
                    and value.consts is not None
                    and out[reg].consts is not None):
                widened(reg)
            out[reg] = joined
        else:
            out[reg] = UNKNOWN.join(value)
    for reg in a:
        if reg not in b:
            out[reg] = out[reg].join(UNKNOWN)
    return out


def _resolve_load(ctx: _Context, instr: Instruction, addr_val: Value,
                  base_candidates: Sequence[Value],
                  width: int) -> Tuple[Value, LoadFact]:
    """Model a load: exact segment read, segment summary, or unknown."""
    secret_accesses: List[Tuple[int, int, int]] = []
    crossing = False
    consts: Optional[Tuple[int, ...]] = None
    resolved = False

    if addr_val.consts is not None:
        vals: Set[int] = set()
        all_resolved = True
        for pointer in addr_val.consts:
            address = strip_tag(pointer)
            if address % 64 + width > 64:
                crossing = True
            seg = ctx.segment_at(address, width)
            if ctx.overlaps_secret(address, width):
                lock = seg.tag if seg is not None and seg.tag is not None else 0
                secret_accesses.append((pointer, key_of(pointer), lock))
            if seg is None:
                all_resolved = False
                continue
            offset = address - seg.address
            raw = seg.data[offset:offset + width]
            vals.add(int.from_bytes(raw, "little"))
        if all_resolved and len(vals) <= CONST_CAP:
            consts = tuple(sorted(vals))
            resolved = True
    if not resolved:
        # Unknown (or partially out-of-segment) offset: summarize the
        # segment(s) the base points into.  Also taken when the exact path
        # fails transiently mid-fixpoint (a widening loop counter briefly
        # holds in- and out-of-range offsets) — without the fallback that
        # transient "unknown" would poison every downstream join forever.
        bases = next((v.consts for v in base_candidates
                      if v.consts is not None), None)
        if bases:
            vals = set()
            summarized = True
            for pointer in bases:
                seg = ctx.segment_at(strip_tag(pointer))
                if seg is None or seg.size > SUMMARY_CAP:
                    summarized = False
                    break
                vals |= ctx.summary(seg, width)
                if ctx.segment_overlaps_secret(seg):
                    key = key_of(pointer)
                    lock = seg.tag if seg.tag is not None else 0
                    secret_accesses.append(
                        (with_key(seg.address, key), key, lock))
            if summarized and len(vals) <= CONST_CAP:
                consts = tuple(sorted(vals))

    result = Value(consts=consts, attacker=True,
                   secret=bool(secret_accesses), loaded=True,
                   stale=instr.address in ctx.stale_loads)
    fact = LoadFact(instr=instr, address=addr_val, result=result, width=width,
                    resolved=resolved,
                    secret_accesses=tuple(secret_accesses),
                    line_crossing=crossing)
    return result, fact


def _address_value(state: State, instr: Instruction) -> Tuple[Value, Value, Value]:
    base = _read(state, instr.rn)
    if instr.rm is not None:
        offset = _read(state, instr.rm)
    else:
        offset = const_value(instr.imm or 0)
    return _binop(Opcode.ADD, base, offset), base, offset


def _step(ctx: _Context, instr: Instruction, state: State,
          facts: Optional[TaintResult]) -> None:
    """Transfer function for one instruction (mutates ``state``)."""
    op = instr.op
    addr = instr.address
    if op is Opcode.MOV:
        if instr.rn is None:
            _write(state, instr.rd, const_value(instr.imm or 0))
        else:
            _write(state, instr.rd, _read(state, instr.rn))
    elif op in _ALU_OPS:
        rhs = (_read(state, instr.rm) if instr.rm is not None
               else const_value(instr.imm or 0))
        lhs = _read(state, instr.rn)
        _write(state, instr.rd, _binop(op, lhs, rhs))
        if facts is not None and op in (Opcode.MUL, Opcode.UDIV):
            facts.contention[addr] = _tainted(None, lhs, rhs)
    elif op is Opcode.CMP:
        rhs = (_read(state, instr.rm) if instr.rm is not None
               else const_value(instr.imm or 0))
        state[FLAGS_REG] = _tainted(None, _read(state, instr.rn), rhs)
    elif op in (Opcode.BL, Opcode.BLR):
        if facts is not None and op is Opcode.BLR:
            facts.branches[addr] = BranchFact(instr,
                                              target=_read(state, instr.rn))
        state[30] = const_value(addr + INSTR_BYTES)
    elif op is Opcode.BR:
        if facts is not None:
            facts.branches[addr] = BranchFact(instr,
                                              target=_read(state, instr.rn))
    elif op is Opcode.B_COND:
        if facts is not None:
            facts.branches[addr] = BranchFact(
                instr, condition=state.get(FLAGS_REG, UNKNOWN))
    elif op in (Opcode.CBZ, Opcode.CBNZ):
        if facts is not None:
            facts.branches[addr] = BranchFact(
                instr, condition=_read(state, instr.rn))
    elif instr.is_return:
        # No dataflow effect, but the RSB windows key off this fact.
        if facts is not None:
            facts.branches[addr] = BranchFact(instr)
    elif op in (Opcode.LDR, Opcode.LDRB):
        addr_val, base, offset = _address_value(state, instr)
        result, fact = _resolve_load(ctx, instr, addr_val, (base, offset),
                                     instr.memory_bytes)
        _write(state, instr.rd, result)
        if facts is not None:
            facts.loads[addr] = fact
    elif op is Opcode.LDG:
        # The loaded allocation tag is data-dependent on memory but never a
        # pointer/secret; model it as an unknown loaded value.
        _write(state, instr.rd,
               replace(_tainted(None, _read(state, instr.rn)), loaded=True))
    elif op in (Opcode.STR, Opcode.STRB):
        addr_val, _, _ = _address_value(state, instr)
        if facts is not None:
            facts.stores[addr] = StoreFact(
                instr=instr, address=addr_val,
                data=_read(state, instr.rd), width=instr.memory_bytes,
                pointers=addr_val.consts or ())
    elif op is Opcode.IRG:
        _write(state, instr.rd, replace(_read(state, instr.rn), consts=None))
    elif op in (Opcode.ADDG, Opcode.SUBG):
        src = _read(state, instr.rn)
        sign = 1 if op is Opcode.ADDG else -1
        consts = None
        if src.consts is not None:
            moved = set()
            for pointer in src.consts:
                base_addr = (pointer + sign * (instr.imm or 0)) & MASK64
                key = (key_of(pointer) + sign * (instr.tag_imm or 0)) & 0xF
                moved.add(with_key(base_addr, key))
            if len(moved) <= CONST_CAP:
                consts = tuple(sorted(moved))
        _write(state, instr.rd, replace(src, consts=consts))
    # STG, B, RET, NOP, BTI, SB, HALT: no register dataflow effect.


def _run_block(ctx: _Context, block: BasicBlock, state: State,
               facts: Optional[TaintResult]) -> State:
    for instr in block.instructions:
        _step(ctx, instr, state, facts)
    return state


def analyze(program: Program,
            secret_ranges: Sequence[Tuple[int, int]] = (),
            cfg: Optional[CFG] = None,
            stale_loads: Iterable[int] = ()) -> TaintResult:
    """Run the dataflow to a fixed point and return the recorded facts.

    ``secret_ranges`` are untagged [start, end) byte ranges holding planted
    secrets (for attack PoCs, the :class:`~repro.attacks.common
    .AttackProgram`'s secret); ``stale_loads`` marks load addresses whose
    results should carry the ``stale`` flag (the MDS pass-2 re-run).
    """
    program.link()
    if cfg is None:
        cfg = build_cfg(program)
    ctx = _Context(program, cfg, tuple(secret_ranges), frozenset(stale_loads))

    # Return sites: every RET's out-state flows to the block after each call.
    ret_targets = []
    for instr in program.instructions:
        if instr.is_call:
            site = instr.address + INSTR_BYTES
            if site in cfg.block_of_addr:
                ret_targets.append(cfg.block_of_addr[site])

    entry = cfg.entry_block.index
    in_states: Dict[int, State] = {entry: {}}
    widenings: Dict[Tuple[int, int], int] = {}
    work = deque([entry])
    while work:
        index = work.popleft()
        block = cfg.blocks[index]
        out = _run_block(ctx, block, dict(in_states[index]), None)
        # The fall edge out of a call is the *return site*: caller state
        # reaches it through the callee (call edge -> ... -> RET below),
        # not directly — flowing the pre-call state across would wipe the
        # callee's effects at every join.  Keep the direct edge only when
        # the call has no resolvable callee at all.
        term = block.terminator
        callee_known = term.is_call and any(
            kind in ("call", "indirect") for _, kind in block.successors)
        succs = [succ for succ, kind in block.successors
                 if not (callee_known and kind == "fall")]
        if term.is_return:
            succs.extend(ret_targets)
        for succ in succs:
            start = cfg.blocks[succ].start

            def note(reg: int, _start: int = start) -> None:
                key = (_start, reg)
                widenings[key] = widenings.get(key, 0) + 1

            joined = _join_states(in_states.get(succ), out, note)
            if succ not in in_states or joined != in_states[succ]:
                in_states[succ] = joined
                if succ not in work:
                    work.append(succ)

    facts = TaintResult(program=program, cfg=cfg,
                        secret_ranges=ctx.secret_ranges,
                        widenings=widenings)
    for index, state in in_states.items():
        _run_block(ctx, cfg.blocks[index], dict(state), facts)
    sink = hooks.coverage_sink()
    if sink is not None:
        _emit_taint_coverage(facts, sink)
    return facts


def _provenance(value: Value) -> str:
    """A value's taint provenance label (``const`` when untainted)."""
    flags = [name for name in ("attacker", "secret", "loaded", "stale")
             if getattr(value, name)]
    return "+".join(flags) if flags else "const"


def _emit_taint_coverage(facts: TaintResult, sink) -> None:
    """One ``taint:<provenance>:<transmitter>`` edge per tainted fact.

    Emitted only from the final fact-recording pass (never inside the
    fixpoint), and only when a sink is installed — the fuzzer's coverage
    signal for "the dataflow moved taint somewhere new".
    """
    for fact in facts.loads.values():
        if fact.address.secret or fact.address.stale:
            sink(hooks.taint_feature(_provenance(fact.address), "cache"))
    for store in facts.stores.values():
        if store.data.secret or store.data.stale:
            sink(hooks.taint_feature(_provenance(store.data), "store"))
    for value in facts.contention.values():
        if value.secret or value.stale:
            sink(hooks.taint_feature(_provenance(value), "contention"))
    for branch in facts.branches.values():
        condition = branch.condition
        if condition is not None and (condition.secret or condition.stale):
            sink(hooks.taint_feature(_provenance(condition), "branch"))
