"""Counterexample-guided gadget witnesses.

For every gadget class spec-lint can report (:class:`~repro.analysis
.windows.EntryKind`: PHT/BTB/RSB/STL window gadgets, SBB loosenet, LFB
line-crossing), :func:`synthesize` builds a concrete, self-contained
``repro.isa`` program — training loop, secret placement via the MTE
allocator (:class:`~repro.mte.allocator.TaggedHeap`), transmitter, and a
cache-probe receiver — from the same building blocks the hand-written PoC
suite uses (:mod:`repro.attacks.blocks`).

Each witness is *round-tripped through text* before anything else touches
it: the program is disassembled to a ``.s`` source
(:func:`repro.isa.disasm.disassemble`), re-assembled, and the re-assembled
program is what both the static analyzer and the simulator see — so a
dumped witness file IS the witness, byte for byte.

:func:`confirm` closes the loop of the differential methodology: for each
:class:`~repro.config.DefenseKind` it compares the static verdict
(:func:`~repro.analysis.gadgets.program_leaks`) against a live simulator
run (:func:`~repro.attacks.common.run_attack_program`).  A leaked bit must
be recovered exactly when the static analysis says the gadget survives;
any divergence becomes a structured :class:`WitnessDisagreement` record —
never a silent pass.

Every kind has two variants (§4.3's full-vs-partial distinction):

- the **sanitized** variant, where SpecASan's tag machinery stops the leak
  (cross-allocation keys; for STL a tagged bypassing load);
- the **residual** variant — the TikTag-style same-key gadget (for STL: an
  untagged, outside-the-protection-boundary load) that even SpecASan
  misses, which is what the repair pass must fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.gadgets import Gadget, find_gadgets, program_leaks
from repro.analysis.windows import EntryKind
from repro.attacks import spectre_v2, spectre_v5
from repro.attacks.blocks import (
    emit_bounds_check_gadget,
    emit_training_loop,
    emit_victim_warmup,
    heap_array,
    heap_secret,
    TrainingTable,
)
from repro.attacks.common import (
    ARRAY1_BASE,
    AttackProgram,
    emit_transmit,
    make_probe_array,
    PROBE_BASE,
    run_attack_program,
    SECRET_BASE,
    SIZE_CELL_A,
    SIZE_CELL_B,
    slow_cell_segment,
    SLOW_CELLS,
    TABLES_BASE,
    TAG_SECRET,
)
from repro.attacks.matrix import TABLE1_DEFENSES
from repro.config import CORTEX_A76, CoreConfig, DefenseKind
from repro.errors import AnalysisError
from repro.isa.assembler import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.disasm import disassemble, signature
from repro.mte.allocator import TaggedHeap
from repro.mte.tags import with_key

#: Defenses a witness is confirmed under (Table 1 plus the unsafe baseline).
#: Mirrors ``differential.STATIC_DEFENSES``; redefined here so
#: ``differential`` can import :class:`WitnessDisagreement` without a cycle.
CONFIRM_DEFENSES: List[DefenseKind] = [DefenseKind.NONE] + list(TABLE1_DEFENSES)

#: Every gadget class spec-lint can emit, in report order.
WITNESS_KINDS: Tuple[EntryKind, ...] = (
    EntryKind.PHT, EntryKind.BTB, EntryKind.RSB,
    EntryKind.STL, EntryKind.SBB, EntryKind.LFB,
)

SECRET_VALUE = 11
TRAIN_VALUE = 1
TRAIN_ITERS = 7
ARRAY1_SIZE = 16
#: Fallout witness layout (same page-offset geometry as the PoC).
VICTIM_SLOT = 0x08040
ALIASED_ADDR = 0x09040
#: LFB witness layout.
SAMPLE_LINE = 0x0C0000
DUMMY_BASE = 0x0E0000
SECRET_LINE_OFFSET = 60


def variant_name(kind: EntryKind, residual: bool) -> str:
    """The witness variant label for a gadget class."""
    if kind is EntryKind.STL:
        return "untagged" if residual else "tagged"
    return "same-key" if residual else "cross-key"


@dataclass
class Witness:
    """One synthesized, text-round-tripped, statically-analyzed witness."""

    kind: EntryKind
    variant: str
    #: The runnable program (re-assembled from ``source_text``) plus secret
    #: placement metadata for the leak detector.
    attack: AttackProgram
    #: The ``.s`` dump — disassembling and re-assembling this text is how
    #: ``attack.builder_program`` was produced.
    source_text: str
    #: Static findings over the re-assembled program.
    gadgets: List[Gadget] = field(default_factory=list)

    @property
    def subject(self) -> str:
        return f"{self.kind.value}/{self.variant}"

    def static_leaks(self, defense: DefenseKind) -> bool:
        return program_leaks(self.gadgets, defense)


@dataclass(frozen=True)
class WitnessCheck:
    """One (witness, defense) static-vs-dynamic agreement datum."""

    subject: str
    kind: str
    defense: DefenseKind
    static_leaks: bool
    dynamic_leaked: bool
    faulted: bool
    recovered: Tuple[int, ...] = ()

    @property
    def agree(self) -> bool:
        return self.static_leaks == self.dynamic_leaked


@dataclass(frozen=True)
class WitnessDisagreement:
    """A structured static-vs-dynamic divergence — never a silent pass."""

    subject: str
    kind: str
    defense: DefenseKind
    static_leaks: bool
    dynamic_leaked: bool
    detail: str = ""

    def __str__(self) -> str:
        static = "leaks" if self.static_leaks else "blocked"
        dynamic = "LEAKED" if self.dynamic_leaked else "blocked"
        note = f" ({self.detail})" if self.detail else ""
        return (f"{self.subject} under {self.defense.value}: static says "
                f"{static}, simulator says {dynamic}{note}")


# -- per-kind builders --------------------------------------------------------


def _build_pht(residual: bool) -> AttackProgram:
    """Bounds-check-bypass witness with allocator-placed secret.

    The victim array and the secret are consecutive :class:`TaggedHeap`
    allocations, so the out-of-bounds index 16 walks off the array into the
    secret granule.  The deterministic tag policy gives them different tags
    (cross-key, sanitized); the residual variant forces the secret onto the
    array's tag — the TikTag same-key case SpecASan cannot distinguish.
    """
    b = ProgramBuilder()
    heap = TaggedHeap(ARRAY1_BASE, 0x1000, CORTEX_A76.mte)
    array = heap_array(b, heap, "array1", bytes([TRAIN_VALUE] * ARRAY1_SIZE))
    secret = heap_secret(b, heap, SECRET_VALUE,
                         tag=array.tag if residual else None)
    make_probe_array(b)
    b.words_segment("size_a", SIZE_CELL_A, [ARRAY1_SIZE])
    b.words_segment("size_b", SIZE_CELL_B, [ARRAY1_SIZE])
    oob_index = secret.address - array.address
    tables = [
        TrainingTable(
            "idx_table", TABLES_BASE, ptr_reg="X22", dest_reg="X0",
            values=[1 + (i % 3) for i in range(TRAIN_ITERS)] + [oob_index],
            note="index for this run"),
        TrainingTable(
            "ptr_table", TABLES_BASE + 0x200, ptr_reg="X23", dest_reg="X10",
            values=[SIZE_CELL_A] * TRAIN_ITERS + [SIZE_CELL_B],
            note="which ARRAY1_SIZE cell to read"),
    ]
    for table in tables:
        table.emit_segment(b)
    emit_victim_warmup(b, secret.pointer)
    b.li("X2", array.pointer, note="ARRAY1 (malloc-tagged)")
    b.li("X3", PROBE_BASE, note="ARRAY2 / probe")
    emit_training_loop(b, "gadget", tables, TRAIN_ITERS + 1)
    emit_bounds_check_gadget(b)
    return AttackProgram(
        name="witness-pht", variant=variant_name(EntryKind.PHT, residual),
        builder_program=b.build(),
        secret_value=SECRET_VALUE, secret_address=secret.address,
        benign_values=[TRAIN_VALUE],
        description="synthesized bounds-check-bypass witness")


def _build_btb(residual: bool) -> AttackProgram:
    attack = spectre_v2.build("matched-tag" if residual else "mismatched-tag")
    attack.name = "witness-btb"
    attack.variant = variant_name(EntryKind.BTB, residual)
    return attack


def _build_rsb(residual: bool) -> AttackProgram:
    attack = spectre_v5.build("matched-tag" if residual else "mismatched-tag")
    attack.name = "witness-rsb"
    attack.variant = variant_name(EntryKind.RSB, residual)
    return attack


def _build_stl(residual: bool) -> AttackProgram:
    """Store-bypass witness.

    The sanitized variant is the PoC shape: a *tagged* bypassing load,
    whose data SpecASan holds until the store queue disambiguates.  The
    residual variant reads through an untagged (key-0) pointer into
    untagged memory — outside the declared protection boundary, so the
    load proceeds as on the baseline.
    """
    b = ProgramBuilder()
    safe_value = 2
    if residual:
        victim_ptr = SECRET_BASE
        secret_tag = None
    else:
        victim_ptr = with_key(SECRET_BASE, TAG_SECRET)
        secret_tag = TAG_SECRET
    b.bytes_segment("secret", SECRET_BASE,
                    bytes([SECRET_VALUE] + [0] * 15), tag=secret_tag)
    make_probe_array(b)
    slow_cell_segment(b, values=[victim_ptr])
    b.li("X20", victim_ptr)
    b.ldrb("X21", "X20", note="victim warms its slot")
    b.sb(note="wait for the warm-up fill")
    b.li("X3", PROBE_BASE)
    b.li("X12", safe_value, note="the value the store will write")
    b.li("X2", victim_ptr)
    b.li("X15", SLOW_CELLS)
    b.ldr("X11", "X15", note="store address arrives late (DRAM round trip)")
    b.str_("X12", "X11", note="victim store: overwrite the secret")
    b.ldr("X5", "X2", note="bypassing load: reads the STALE secret")
    emit_transmit(b, "X5", "X3")
    b.halt()
    return AttackProgram(
        name="witness-stl", variant=variant_name(EntryKind.STL, residual),
        builder_program=b.build(),
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[safe_value],
        description="synthesized speculative-store-bypass witness")


def _build_sbb(residual: bool) -> AttackProgram:
    """Fallout witness: loosenet store-buffer sampling.

    SpecASan gates forwarding on matching address keys; the residual
    variant samples through a pointer carrying the victim store's own key,
    so the forward is allowed.
    """
    b = ProgramBuilder()
    line = bytearray(16)
    line[0] = SECRET_VALUE
    b.bytes_segment("secret", SECRET_BASE, bytes(line), tag=TAG_SECRET)
    b.zero_segment("victim_slot", VICTIM_SLOT, 16, tag=TAG_SECRET)
    b.zero_segment("aliased", ALIASED_ADDR, 16)
    make_probe_array(b)
    slow_cell_segment(b)
    b.li("X20", with_key(SECRET_BASE, TAG_SECRET))
    b.ldrb("X21", "X20", note="victim holds the secret in a register")
    b.sb(note="wait for the warm-up fill")
    b.li("X3", PROBE_BASE)
    b.li("X15", SLOW_CELLS)
    b.ldr("X19", "X15", note="commit blocker (DRAM round trip)")
    b.li("X23", with_key(VICTIM_SLOT, TAG_SECRET))
    b.strb("X21", "X23", note="victim store: secret enters the store queue")
    sampler_ptr = (with_key(ALIASED_ADDR, TAG_SECRET) if residual
                   else ALIASED_ADDR)
    b.li("X22", sampler_ptr, note="attacker address: same page offset")
    b.ldrb("X5", "X22", note="loosenet match forwards the victim's data")
    emit_transmit(b, "X5", "X3")
    b.halt()
    return AttackProgram(
        name="witness-sbb", variant=variant_name(EntryKind.SBB, residual),
        builder_program=b.build(),
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[0],
        description="synthesized store-buffer-sampling witness")


def _build_lfb(residual: bool) -> AttackProgram:
    """RIDL-style witness: stale line-fill-buffer sampling.

    The stale entry keeps the victim line's allocation tags; hits are
    checked against them.  The residual variant samples through a pointer
    keyed with the victim's tag (its own sample line is tagged to match, so
    the access also commits cleanly).
    """
    b = ProgramBuilder()
    line = bytearray(64)
    line[SECRET_LINE_OFFSET] = SECRET_VALUE
    b.bytes_segment("secret", SECRET_BASE, bytes(line), tag=TAG_SECRET)
    make_probe_array(b)
    benign = 1
    if residual:
        # The sample line is tagged with the victim's own tag and the
        # sampler pointer carries it: the stale-entry tag check passes (the
        # same-key residual) and the committed access is architecturally
        # clean.  Backed with *nonzero* benign bytes: a zero-filled segment
        # would let the constant-folder collapse the sampled value to the
        # exact constant 0, dropping the stale taint the static pattern
        # needs (the AND-with-zero absorbing rule).
        b.bytes_segment("sample_line", SAMPLE_LINE, bytes([benign] * 128),
                        tag=TAG_SECRET)
        sampler_ptr = with_key(SAMPLE_LINE + SECRET_LINE_OFFSET, TAG_SECRET)
    else:
        sampler_ptr = SAMPLE_LINE + SECRET_LINE_OFFSET
    b.li("X3", PROBE_BASE)
    b.li("X20", with_key(SECRET_BASE, TAG_SECRET))
    b.ldrb("X21", "X20", note="victim load: secret line transits the LFB")
    for index in range(15):
        b.li("X16", DUMMY_BASE + index * 4096)
        b.ldr("X17", "X16", note="LFB-walking dummy miss")
    b.udiv("X13", "X21", "X21", note="delay chain (waits for the fill)")
    b.udiv("X13", "X13", "X13")
    b.and_("X13", "X13", "XZR", note="collapse to zero, keep the dependency")
    b.li("X22", sampler_ptr)
    b.add("X22", "X22", "X13")
    b.ldr("X18", "X22", note="allocate the (stale) LFB entry")
    b.ldr("X5", "X22", note="SAMPLE: crossing load reads stale LFB bytes")
    b.and_("X5", "X5", imm=0xFF)
    emit_transmit(b, "X5", "X3")
    b.halt()
    return AttackProgram(
        name="witness-lfb", variant=variant_name(EntryKind.LFB, residual),
        builder_program=b.build(),
        secret_value=SECRET_VALUE, secret_address=SECRET_BASE,
        benign_values=[0, benign],
        description="synthesized line-fill-buffer-sampling witness")


_BUILDERS = {
    EntryKind.PHT: _build_pht,
    EntryKind.BTB: _build_btb,
    EntryKind.RSB: _build_rsb,
    EntryKind.STL: _build_stl,
    EntryKind.SBB: _build_sbb,
    EntryKind.LFB: _build_lfb,
}


def build_witness_attack(kind: EntryKind, residual: bool) -> AttackProgram:
    """The raw witness :class:`AttackProgram` for one (kind, variant).

    Public entry for callers that want the builder output without the
    synthesis pipeline's round-trip/analysis steps — the fuzz generator
    uses the timing-fragile BTB/RSB/LFB builders as singleton templates.
    """
    return _BUILDERS[kind](residual)


# -- synthesis pipeline -------------------------------------------------------


def secret_ranges_of(attack: AttackProgram) -> List[Tuple[int, int]]:
    return [(attack.secret_address,
             attack.secret_address + attack.secret_size)]


def synthesize(kind: EntryKind, residual: bool = False,
               core: Optional[CoreConfig] = None) -> Witness:
    """Build, text-round-trip, and statically analyze one witness.

    Raises :class:`~repro.errors.AnalysisError` if the round trip changes
    the program or if the analyzer does not report a gadget of ``kind`` on
    the re-assembled program — a witness must witness its own class.
    """
    core = core or CORTEX_A76.core
    attack = _BUILDERS[kind](residual)
    built = attack.builder_program
    source_text = disassemble(built)
    reassembled = assemble(source_text)
    if signature(reassembled) != signature(built):
        raise AnalysisError(
            f"witness {kind.value} failed its assemble round-trip")
    attack = replace(attack, builder_program=reassembled)
    gadgets = find_gadgets(reassembled, secret_ranges_of(attack), core)
    if kind not in {g.kind for g in gadgets}:
        raise AnalysisError(
            f"synthesized {kind.value} witness exhibits no {kind.value} "
            f"gadget (found: {sorted({g.kind.value for g in gadgets})})")
    return Witness(kind=kind, variant=attack.variant, attack=attack,
                   source_text=source_text, gadgets=gadgets)


def synthesize_all(kinds: Optional[Sequence[EntryKind]] = None,
                   core: Optional[CoreConfig] = None) -> List[Witness]:
    """Both variants (sanitized + residual) of every requested kind."""
    witnesses = []
    for kind in kinds or WITNESS_KINDS:
        for residual in (False, True):
            witnesses.append(synthesize(kind, residual, core))
    return witnesses


def confirm(witness: Witness,
            defenses: Optional[Sequence[DefenseKind]] = None,
            ) -> Tuple[List[WitnessCheck], List[WitnessDisagreement]]:
    """Run the witness under each defense; diff dynamic vs static verdicts."""
    checks: List[WitnessCheck] = []
    disagreements: List[WitnessDisagreement] = []
    for defense in defenses if defenses is not None else CONFIRM_DEFENSES:
        static = witness.static_leaks(defense)
        outcome = run_attack_program(witness.attack, defense)
        checks.append(WitnessCheck(
            subject=witness.subject, kind=witness.kind.value, defense=defense,
            static_leaks=static, dynamic_leaked=outcome.leaked,
            faulted=outcome.faulted, recovered=tuple(outcome.recovered)))
        if static != outcome.leaked:
            disagreements.append(WitnessDisagreement(
                subject=witness.subject, kind=witness.kind.value,
                defense=defense, static_leaks=static,
                dynamic_leaked=outcome.leaked,
                detail=f"recovered={list(outcome.recovered)}"
                       f"{', faulted' if outcome.faulted else ''}"))
    return checks, disagreements


def render_confirmation(witness: Witness, checks: Sequence[WitnessCheck],
                        disagreements: Sequence[WitnessDisagreement]) -> str:
    """A lint-style per-witness confirmation report."""
    lines = [f"witness {witness.subject}:"]
    for gadget in witness.gadgets:
        lines.append(f"  {gadget.render()}")
    for check in checks:
        static = "leaks" if check.static_leaks else "blocked"
        dynamic = "LEAKED" if check.dynamic_leaked else "blocked"
        mark = "ok" if check.agree else "MISMATCH"
        lines.append(f"  {check.defense.value:>14s}: static {static:7s} "
                     f"simulator {dynamic:7s} [{mark}]")
    if disagreements:
        lines.append(f"  {len(disagreements)} disagreement(s):")
        lines.extend(f"    {d}" for d in disagreements)
    return "\n".join(lines)


# -- keyed lookup used by the CLI / repair entry points -----------------------


def witness_kind(name: str) -> EntryKind:
    """Parse a gadget-class name (``"pht"``) into an :class:`EntryKind`."""
    try:
        return EntryKind(name.lower())
    except ValueError:
        raise AnalysisError(
            f"unknown gadget class {name!r}; "
            f"have {[k.value for k in WITNESS_KINDS]}") from None
