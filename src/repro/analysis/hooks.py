"""Coverage and fault-injection hooks inside the static analyzer.

The fuzzer (:mod:`repro.fuzz`) needs two kinds of visibility into
spec-lint that ordinary callers must not pay for:

- **Coverage** — a sink receiving one feature string per novel analysis
  shape: speculation-window shapes from :mod:`repro.analysis.windows`
  (source kind × length bucket × barrier cut), taint-flow edges from
  :mod:`repro.analysis.taint` (value provenance → transmitter kind), and
  gadget-class × defense-verdict pairs from :mod:`repro.analysis.gadgets`.
  The pattern mirrors the simulator's trace sinks: a module-level slot
  that is ``None`` by default, guarded by one ``is None`` check at each
  emit site, so the fixpoint loops pay nothing when disabled.
- **Bug injection** — named, test-only analyzer defects behind the same
  kind of slot (a frozen set, empty by default).  The fuzz smoke drill
  injects one (e.g. dropping the ``SB``-barrier window cut) and asserts
  the differential fuzzer catches it as a minimized regression; unit
  tests use them to prove each emit/verdict site is actually load-bearing.

Both slots are process-global and restored by context managers, so a
worker process fuzzing with an injected bug never leaks state into a
subsequent clean run in the same process.
"""

from __future__ import annotations

import contextlib
from typing import Callable, FrozenSet, Iterator, Optional

#: A coverage sink: called once per observed feature string.
CoverageSink = Callable[[str], None]

#: Analyzer defects :func:`inject` accepts.
#:
#: - ``drop-sb-cut`` — ``_window_body`` ignores ``SB`` barriers, so windows
#:   run to the ROB bound straight through a speculation fence (a
#:   *precision* bug: static says leak where the simulator is clean).
#: - ``drop-contention-transmitter`` — window gadgets ignore ``MUL``/
#:   ``UDIV`` contention transmitters (a *soundness* bug: static says safe
#:   where the simulator leaks via the contention channel).
KNOWN_BUGS: FrozenSet[str] = frozenset({
    "drop-sb-cut",
    "drop-contention-transmitter",
})

_sink: Optional[CoverageSink] = None
_injected: FrozenSet[str] = frozenset()


def coverage_sink() -> Optional[CoverageSink]:
    """The active coverage sink, or ``None`` (the zero-overhead default)."""
    return _sink


def injected(bug: str) -> bool:
    """Is the named analyzer defect currently injected?"""
    return bug in _injected


def any_injected() -> bool:
    return bool(_injected)


@contextlib.contextmanager
def coverage(sink: CoverageSink) -> Iterator[CoverageSink]:
    """Route analyzer coverage features into ``sink`` within the block."""
    global _sink
    previous = _sink
    _sink = sink
    try:
        yield sink
    finally:
        _sink = previous


@contextlib.contextmanager
def inject(*bugs: str) -> Iterator[None]:
    """Inject named analyzer defects (:data:`KNOWN_BUGS`) within the block."""
    unknown = sorted(set(bugs) - KNOWN_BUGS)
    if unknown:
        raise ValueError(f"unknown injected bug(s) {unknown}; "
                         f"have {sorted(KNOWN_BUGS)}")
    global _injected
    previous = _injected
    _injected = _injected | frozenset(bugs)
    try:
        yield
    finally:
        _injected = previous


# -- feature formatting -------------------------------------------------------
#
# The feature vocabulary lives here (not in repro.fuzz) so the analysis
# layer never imports the fuzzer; repro.fuzz.coverage consumes these
# strings as opaque keys.

#: Window-length bucket upper bounds (instructions); lengths past the last
#: bound share one ``N+`` bucket.  Chosen so stretching a window across the
#: ROB boundary is always a bucket change.
LENGTH_BUCKETS = (1, 4, 8, 16, 32, 64)


def length_bucket(length: int) -> str:
    for bound in LENGTH_BUCKETS:
        if length <= bound:
            return f"le{bound}"
    return f"gt{LENGTH_BUCKETS[-1]}"


def window_feature(kind: str, body_length: int, barrier_cut: bool) -> str:
    """``win:<kind>:<length bucket>:<cut|nocut>``."""
    return (f"win:{kind}:{length_bucket(body_length)}:"
            f"{'cut' if barrier_cut else 'nocut'}")


def taint_feature(provenance: str, transmitter: str) -> str:
    """``taint:<value provenance>:<transmitter kind>``."""
    return f"taint:{provenance}:{transmitter}"


def verdict_feature(kind: str, defense: str, leaks: bool) -> str:
    """``verdict:<gadget class>:<defense>:<leak|safe>``."""
    return f"verdict:{kind}:{defense}:{'leak' if leaks else 'safe'}"
