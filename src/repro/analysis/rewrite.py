"""Binary rewriting with relocation, for the automatic repair pass.

:class:`ProgramRewriter` stages edits against a linked
:class:`~repro.isa.program.Program` — instruction insertion (barriers,
masking sequences), data-segment retagging, and pointer-literal rewrites —
and :meth:`ProgramRewriter.apply` materializes a fresh linked program with
every address reference relocated:

- label-carrying branches re-resolve through the (moved) label map;
- ``target_addr``-only branches are remapped directly;
- instruction immediates and aligned 64-bit data words whose *untagged*
  value lands on an original instruction are treated as code pointers and
  remapped, preserving the MTE key byte.  This mirrors exactly the
  over-approximation :func:`repro.analysis.cfg.address_taken` uses to find
  indirect-branch targets, so anything the analysis believes may be a code
  pointer survives rewriting.

Code pointers (and labels) referring to an instruction that had material
inserted before it land on the *first inserted instruction*: a jump to a
load that gained a preceding barrier must execute the barrier.

The original program is never mutated; :class:`RewriteResult.addr_map`
translates original instruction addresses to their new locations so gadget
identities computed before the rewrite can be compared after it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.isa.instructions import INSTR_BYTES, Instruction
from repro.isa.program import DataSegment, Program
from repro.mte.tags import key_of, strip_tag, with_key


def _clone(instr: Instruction) -> Instruction:
    """A fresh, unlinked copy (address and dependency caches reset)."""
    return replace(instr, address=0, _srcs=None, _dsts=None)


@dataclass
class RewriteResult:
    """The rewritten program plus the address translation maps."""

    program: Program
    #: Original instruction address -> that same instruction's new address.
    addr_map: Dict[int, int]
    #: Original address -> where a *code pointer* to it now points (the
    #: first instruction inserted before it, if any; else the instruction's
    #: own new address).  Includes the end-of-text address.
    target_map: Dict[int, int]

    def translate(self, address: int) -> int:
        """Translate an original instruction address (identity mapping for
        addresses outside the original text, e.g. data)."""
        return self.addr_map.get(address, address)


@dataclass
class ProgramRewriter:
    """Staged, relocating edits over one linked program."""

    original: Program
    _insertions: Dict[int, List[Instruction]] = field(default_factory=dict)
    _retags: Dict[str, Optional[int]] = field(default_factory=dict)
    _value_rewrites: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.original.link()

    # -- staging ---------------------------------------------------------------

    def insert_before(self, address: int,
                      instructions: List[Instruction]) -> None:
        """Insert ``instructions`` immediately before the instruction at
        ``address`` (or at the end of the text for ``end_address``)."""
        if (self.original.fetch(address) is None
                and address != self.original.end_address):
            raise AssemblerError(
                f"cannot insert at {address:#x}: not an instruction address")
        self._insertions.setdefault(address, []).extend(
            _clone(instr) for instr in instructions)

    def retag_segment(self, name: str, tag: Optional[int]) -> None:
        """Change the MTE allocation tag of data segment ``name``."""
        self.original.segment(name)  # raises on unknown name
        self._retags[name] = tag

    def rewrite_value(self, old: int, new: int) -> None:
        """Rewrite every instruction immediate and aligned 64-bit data word
        exactly equal to ``old`` (tag byte included) into ``new``.

        Used to re-key pointer literals: explicit rewrites are applied
        before (and instead of) automatic code-pointer relocation.
        """
        self._value_rewrites[old & (2 ** 64 - 1)] = new & (2 ** 64 - 1)

    # -- application -----------------------------------------------------------

    def _relocate_value(self, value: int, target_map: Dict[int, int]) -> int:
        value &= (2 ** 64 - 1)
        if value in self._value_rewrites:
            return self._value_rewrites[value]
        address = strip_tag(value)
        if address in target_map and self.original.fetch(address) is not None:
            return with_key(target_map[address], key_of(value))
        return value

    def apply(self) -> RewriteResult:
        """Materialize the staged edits into a fresh linked program."""
        old = self.original
        new_instrs: List[Instruction] = []
        addr_map: Dict[int, int] = {}
        target_map: Dict[int, int] = {}
        index_map: Dict[int, int] = {}  # old instr index -> new instr index
        target_index: Dict[int, int] = {}

        for index, instr in enumerate(old.instructions):
            address = old.base_address + index * INSTR_BYTES
            target_index[index] = len(new_instrs)
            new_instrs.extend(self._insertions.get(address, ()))
            index_map[index] = len(new_instrs)
            new_instrs.append(_clone(instr))
        target_index[len(old.instructions)] = len(new_instrs)
        new_instrs.extend(self._insertions.get(old.end_address, ()))

        def new_addr(new_index: int) -> int:
            return old.base_address + new_index * INSTR_BYTES

        for old_index, new_index in index_map.items():
            addr_map[old.base_address + old_index * INSTR_BYTES] = (
                new_addr(new_index))
        for old_index, new_index in target_index.items():
            target_map[old.base_address + old_index * INSTR_BYTES] = (
                new_addr(new_index))

        # Labels move with their instruction, landing before any insertion.
        labels = {name: target_index[idx] for name, idx in old.labels.items()}

        for instr in new_instrs:
            if instr.target is not None:
                instr.target_addr = None  # re-resolved by link()
            elif instr.target_addr is not None:
                instr.target_addr = target_map.get(
                    strip_tag(instr.target_addr), instr.target_addr)
            if instr.imm is not None and instr.imm >= 0:
                instr.imm = self._relocate_value(instr.imm, target_map)

        segments = []
        for seg in old.data_segments:
            data = bytearray(seg.data)
            usable = len(data) - len(data) % 8
            for offset in range(0, usable, 8):
                (word,) = struct.unpack_from("<Q", data, offset)
                relocated = self._relocate_value(word, target_map)
                if relocated != word:
                    struct.pack_into("<Q", data, offset, relocated)
            tag = self._retags.get(seg.name, seg.tag)
            segments.append(DataSegment(seg.name, seg.address,
                                        bytes(data), tag))

        program = Program(
            instructions=new_instrs, labels=labels, data_segments=segments,
            base_address=old.base_address, entry_label=old.entry_label)
        return RewriteResult(program=program.link(), addr_map=addr_map,
                             target_map=target_map)


def barrier_of(note: str = "") -> Instruction:
    """A fresh SB speculation-barrier instruction (repair building block)."""
    from repro.isa.instructions import Opcode
    return Instruction(Opcode.SB, note=note)


def mask_of(reg: int, mask: int, note: str = "") -> Instruction:
    """``AND reg, reg, #mask`` — the ``array_index_nospec`` hardening."""
    from repro.isa.instructions import Opcode
    return Instruction(Opcode.AND, rd=reg, rn=reg, imm=mask, note=note)


def translate_addresses(addresses: Tuple[int, ...],
                        result: RewriteResult) -> Tuple[int, ...]:
    """Translate a tuple of original addresses through ``result``."""
    return tuple(result.translate(address) for address in addresses)
