"""Gadget detection and per-defense static verdicts.

A *gadget* is a speculative entry (a :class:`~repro.analysis.windows
.Window` or an MDS pattern) plus at least one *transmitter* it reaches:

- a **cache** transmitter — a load whose address is secret-tainted (the
  ``ARRAY2[secret * 4096]`` touch);
- a **contention** transmitter — a ``MUL``/``UDIV`` with a secret-tainted
  operand (the SMoTHERSpectre/SpectreRewind resource channel).

The MDS patterns need no window:

- **SBB** (Fallout) — an uncommitted store with secret data and a younger
  load at the same page offset but a different granule (loosenet aliasing
  forwards the store's data), within one ROB of each other;
- **LFB** (RIDL/ZombieLoad) — a line-crossing constant-address load (the
  microcode-assist trigger) issued after a secret line transited the fill
  buffers.

For MDS gadgets the taint runs a second pass with the sampling loads marked
*stale* so the sampled value's path to a transmitter is tracked separately
from architectural secret use (the victim's own legitimate loads must not
count as transmitters).

``sanitized`` is the static SpecASan call (§3.3, §4.1):

- PHT/BTB/RSB — every access in the window that can touch a secret range
  carries a pointer key different from the allocation lock (cross-allocation
  access ⇒ the tag check fails and the ACCESS is delayed).  A same-key
  access is the TikTag-style residual of §4.3 and is **not** sanitized.
- STL — the bypassing load is *tagged* (key != 0), so its data is held
  until the store queue disambiguates.
- SBB — forwarding requires matching address keys: load key != store key
  ⇒ blocked.
- LFB — the entry's stored allocation tags gate hits: sampler key != the
  stale line's lock ⇒ blocked.

:func:`leaks_under` folds a gadget into one boolean per
:class:`~repro.config.DefenseKind`, mirroring the simulator's Table-1
behaviour; :mod:`repro.analysis.differential` cross-checks the two.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis import hooks
from repro.analysis.options import AnalysisOptions
from repro.analysis.taint import TaintResult, analyze
from repro.analysis.windows import EntryKind, Window, compute_windows
from repro.config import CoreConfig, DefenseKind
from repro.isa.instructions import INSTR_BYTES
from repro.isa.program import Program
from repro.mte.tags import key_of, strip_tag

#: Page size used by the loosenet partial-address match.
PAGE = 4096
#: MTE granule size used by the full-address disambiguation.
GRANULE = 16
#: Cache line size used by the line-crossing (assist) check.
LINE = 64


class Channel(enum.Enum):
    """How a gadget's transmitter is observed."""

    CACHE = "cache"
    CONTENTION = "contention"


@dataclass(frozen=True)
class Gadget:
    """One statically-found transient leak: entry, transmitters, verdicts."""

    kind: EntryKind
    #: Address of the branch/store/pattern source opening the window.
    source: int
    #: Speculative entry address (for MDS: the sampling load).
    entry: int
    #: Transmitter instruction addresses inside the window.
    transmitters: Tuple[int, ...]
    channels: Tuple[Channel, ...]
    #: (tagged pointer, key, lock) of every secret-range access involved.
    secret_accesses: Tuple[Tuple[int, int, int], ...]
    #: SpecASan's tag check stops this gadget (see module docstring).
    sanitized: bool
    entry_is_bti: bool = False
    description: str = ""

    def render(self) -> str:
        """One lint-style report line."""
        channels = "+".join(c.value for c in self.channels)
        transmit = ",".join(f"{t:#x}" for t in self.transmitters)
        verdict = "sanitized" if self.sanitized else "RESIDUAL"
        return (f"{self.source:#x}: [{self.kind.value}] entry {self.entry:#x}"
                f"{' (bti)' if self.entry_is_bti else ''} "
                f"transmit[{channels}] @ {transmit} — specasan: {verdict}"
                f"{' — ' + self.description if self.description else ''}")


def leaks_under(gadget: Gadget, defense: DefenseKind) -> bool:
    """Does ``gadget`` still leak when the core runs ``defense``?"""
    kind = gadget.kind
    mds = kind in (EntryKind.SBB, EntryKind.LFB)
    if defense is DefenseKind.NONE:
        return True
    if defense is DefenseKind.FENCE:
        # Barriers serialize speculation but the MDS loads are bound to
        # commit — no misprediction to fence off.
        return mds
    if defense in (DefenseKind.STT, DefenseKind.GHOSTMINION):
        # Delay-USE / hide-TRANSMIT: kills the cache channel of genuinely
        # speculative gadgets, but neither delays arithmetic (contention
        # still observable) nor helps against bound-to-commit MDS loads.
        return mds or Channel.CONTENTION in gadget.channels
    if defense is DefenseKind.SPECCFI:
        # Control-flow enforcement only: refuses speculative control
        # transfers to non-landing-pad targets and keeps a shadow stack.
        blocked = kind in (EntryKind.BTB, EntryKind.RSB) \
            and not gadget.entry_is_bti
        return not blocked
    if defense is DefenseKind.SPECASAN:
        return not gadget.sanitized
    if defense is DefenseKind.SPECASAN_CFI:
        return (leaks_under(gadget, DefenseKind.SPECASAN)
                and leaks_under(gadget, DefenseKind.SPECCFI))
    raise ValueError(f"unknown defense {defense!r}")


def program_leaks(gadgets: Sequence[Gadget], defense: DefenseKind) -> bool:
    """A program leaks if *any* of its gadgets survives the defense."""
    return any(leaks_under(gadget, defense) for gadget in gadgets)


# -- window gadgets -----------------------------------------------------------


def _window_gadget(taint: TaintResult, window: Window) -> Optional[Gadget]:
    transmitters: List[int] = []
    channels: Set[Channel] = set()
    accesses: List[Tuple[int, int, int]] = []
    for address in window.body:
        load = taint.loads.get(address)
        if load is not None:
            if load.address.secret:
                transmitters.append(address)
                channels.add(Channel.CACHE)
            accesses.extend(load.secret_accesses)
        value = taint.contention.get(address)
        if value is not None and value.secret \
                and not hooks.injected("drop-contention-transmitter"):
            transmitters.append(address)
            channels.add(Channel.CONTENTION)
    if not transmitters:
        return None
    if window.kind is EntryKind.STL:
        # §4.1: a tagged bypassing load is held until disambiguation.
        sanitized = bool(accesses) and all(key != 0 for _, key, _ in accesses)
    else:
        sanitized = bool(accesses) and all(key != lock
                                           for _, key, lock in accesses)
    return Gadget(kind=window.kind, source=window.source, entry=window.entry,
                  transmitters=tuple(sorted(set(transmitters))),
                  channels=tuple(sorted(channels, key=lambda c: c.value)),
                  secret_accesses=tuple(accesses), sanitized=sanitized,
                  entry_is_bti=window.entry_is_bti)


# -- MDS patterns -------------------------------------------------------------


@dataclass(frozen=True)
class _Pattern:
    kind: EntryKind
    source: int        # victim store (SBB) / victim secret load (LFB)
    sampler: int       # the attacker load that receives in-flight data
    sanitized: bool


def _find_loosenet(taint: TaintResult, rob: int) -> List[_Pattern]:
    """Fallout: secret store + younger page-offset-aliased load."""
    patterns = []
    for store_addr, store in taint.stores.items():
        if not store.data.secret or not store.pointers:
            continue
        for load_addr, load in taint.loads.items():
            distance = (load_addr - store_addr) // INSTR_BYTES
            if not 0 < distance <= rob:
                continue
            if load.address.consts is None:
                continue
            for sp in store.pointers:
                for lp in load.address.consts:
                    sa, la = strip_tag(sp), strip_tag(lp)
                    if sa % PAGE != la % PAGE or sa // GRANULE == la // GRANULE:
                        continue
                    patterns.append(_Pattern(
                        EntryKind.SBB, store_addr, load_addr,
                        sanitized=key_of(lp) != key_of(sp)))
    return patterns


def _find_lfb(taint: TaintResult) -> List[_Pattern]:
    """RIDL/ZombieLoad: line-crossing load after a secret line was in
    flight.  Not ROB-bounded: the stale fill-buffer entry outlives the
    victim load's ROB residency."""
    secret_loads = [(addr, load) for addr, load in taint.loads.items()
                    if load.secret_accesses]
    patterns = []
    for load_addr, load in taint.loads.items():
        if not load.line_crossing or load.address.consts is None:
            continue
        for victim_addr, victim in secret_loads:
            if victim_addr >= load_addr:
                continue
            locks = {lock for _, _, lock in victim.secret_accesses}
            keys = {key_of(p) for p in load.address.consts}
            patterns.append(_Pattern(
                EntryKind.LFB, victim_addr, load_addr,
                sanitized=all(key != lock for key in keys for lock in locks)))
    return patterns


def _analyze(program: Program, secret_ranges, cfg, stale_loads,
             options: Optional[AnalysisOptions]) -> TaintResult:
    """Dispatch one dataflow run per ``options`` (whole-program default).

    Modular mode routes through the summary engine; the pass-2 stale
    re-run reuses every cached region that contains no sampler load (the
    stale set only enters a region's cache key where it intersects it).
    """
    if options is not None and options.modular:
        from repro.analysis.modular import analyze_modular
        return analyze_modular(program, secret_ranges, cfg=cfg,
                               stale_loads=stale_loads, options=options)
    return analyze(program, secret_ranges, cfg=cfg, stale_loads=stale_loads)


def _pattern_gadgets(program: Program, taint: TaintResult,
                     patterns: List[_Pattern],
                     options: Optional[AnalysisOptions] = None) -> List[Gadget]:
    """Pass 2: re-run taint with the samplers stale, find what the sampled
    value reaches."""
    stale = _analyze(program, taint.secret_ranges, taint.cfg,
                     {p.sampler for p in patterns}, options)
    gadgets = []
    for pattern in patterns:
        transmitters: List[int] = []
        channels: Set[Channel] = set()
        for address, load in stale.loads.items():
            if address > pattern.sampler and load.address.stale:
                transmitters.append(address)
                channels.add(Channel.CACHE)
        for address, value in stale.contention.items():
            if address > pattern.sampler and value.stale:
                transmitters.append(address)
                channels.add(Channel.CONTENTION)
        if not transmitters:
            continue
        sampler = taint.loads[pattern.sampler]
        accesses = taint.loads.get(pattern.source)
        gadgets.append(Gadget(
            kind=pattern.kind, source=pattern.source, entry=pattern.sampler,
            transmitters=tuple(sorted(set(transmitters))),
            channels=tuple(sorted(channels, key=lambda c: c.value)),
            secret_accesses=(accesses.secret_accesses
                             if accesses is not None else
                             (taint.stores[pattern.source].pointers and ())
                             or ()),
            sanitized=pattern.sanitized,
            description=f"samples in-flight data via load {pattern.sampler:#x}"
                        f" (width {sampler.width})"))
    return gadgets


# -- entry point --------------------------------------------------------------


def find_gadgets(program: Program,
                 secret_ranges: Sequence[Tuple[int, int]] = (),
                 core: Optional[CoreConfig] = None,
                 taint: Optional[TaintResult] = None,
                 options: Optional[AnalysisOptions] = None) -> List[Gadget]:
    """All transient-leak gadgets of ``program`` (windows + MDS patterns).

    ``options`` selects the dataflow engine (whole-program by default;
    :meth:`AnalysisOptions.summary_backed` for the modular mode — verdicts
    are byte-identical by the ``--modular-differential`` contract).
    """
    core = core or CoreConfig()
    if taint is None:
        taint = _analyze(program, secret_ranges, None, (), options)
    gadgets: List[Gadget] = []
    for window in compute_windows(taint, core):
        gadget = _window_gadget(taint, window)
        if gadget is not None:
            gadgets.append(gadget)
    patterns = _find_loosenet(taint, core.rob_entries) + _find_lfb(taint)
    if patterns:
        gadgets.extend(_pattern_gadgets(program, taint, patterns, options))
    # Deterministic report order: window source, gadget class, entry block,
    # transmitter addresses.  Two runs over the same program (and re-runs in
    # CI) produce byte-identical reports.
    gadgets.sort(key=lambda g: (g.source, g.kind.value, g.entry,
                                g.transmitters))
    sink = hooks.coverage_sink()
    if sink is not None:
        for gadget in gadgets:
            for defense in DefenseKind:
                sink(hooks.verdict_feature(gadget.kind.value, defense.value,
                                           leaks_under(gadget, defense)))
    return gadgets
