"""Differential validation: static spec-lint verdicts vs the live simulator.

:func:`static_matrix` rebuilds every Table-1 PoC, runs the static analyzer
over each variant, and folds :func:`~repro.analysis.gadgets.leaks_under`
into the same :class:`~repro.attacks.matrix.Mitigation` classification the
dynamic harness produces.  :func:`compare_matrices` diffs the two cell by
cell; :func:`render_differential` prints a lint-style report that names the
gadget instruction addresses behind each static verdict.

A mismatch means either the analyzer lost precision (record it in
``ALLOWLIST`` with the reason) or one of the two sides has a bug — the
whole point of the harness.  The allowlist ships empty: the current
analyzer agrees with the simulator on every (attack, defense) cell,
including the implicit all-leak ``NONE`` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.gadgets import Gadget, find_gadgets, program_leaks
from repro.analysis.options import AnalysisOptions
from repro.attacks import REGISTRY, TABLE1_ROWS, build_variants
from repro.attacks.common import AttackProgram
from repro.attacks.matrix import (
    EXPECTED,
    TABLE1_DEFENSES,
    MatrixCell,
    Mitigation,
)
from repro.config import CORTEX_A76, CoreConfig, DefenseKind

#: Columns the static matrix evaluates: Table 1 plus the unsafe baseline.
STATIC_DEFENSES: List[DefenseKind] = [DefenseKind.NONE] + list(TABLE1_DEFENSES)

#: (attack, defense) cells where static and dynamic verdicts are *known* to
#: disagree, mapped to the documented precision-loss reason.  Empty: the
#: analyzer currently reproduces every cell.
ALLOWLIST: Dict[Tuple[str, DefenseKind], str] = {}


@dataclass
class VariantAnalysis:
    """Static findings for one PoC variant."""

    attack: str
    variant: str
    program: AttackProgram
    gadgets: List[Gadget]

    def leaks(self, defense: DefenseKind) -> bool:
        return program_leaks(self.gadgets, defense)


@dataclass
class StaticCell:
    """One statically-derived Table-1 cell."""

    attack: str
    defense: DefenseKind
    mitigation: Mitigation
    #: Per-variant leak verdicts, in REGISTRY order.
    leaks: List[bool] = field(default_factory=list)


@dataclass(frozen=True)
class Mismatch:
    """A (attack, defense) cell where the two matrices disagree."""

    attack: str
    defense: DefenseKind
    static: Mitigation
    dynamic: Mitigation
    allowlisted: Optional[str] = None

    def __str__(self) -> str:
        note = f" (allowlisted: {self.allowlisted})" if self.allowlisted else ""
        return (f"{self.attack} under {self.defense.value}: static says "
                f"{self.static.value}, simulator says {self.dynamic.value}"
                f"{note}")


def analyze_attack(attack: str,
                   core: Optional[CoreConfig] = None,
                   options: Optional[AnalysisOptions] = None,
                   ) -> List[VariantAnalysis]:
    """Run the static analyzer over every variant of ``attack``."""
    core = core or CORTEX_A76.core
    analyses = []
    for (variant, _), program in zip(REGISTRY[attack], build_variants(attack)):
        secret_ranges = [(program.secret_address,
                          program.secret_address + program.secret_size)]
        gadgets = find_gadgets(program.builder_program, secret_ranges, core,
                               options=options)
        analyses.append(VariantAnalysis(attack, variant, program, gadgets))
    return analyses


def _classify(leaks: Sequence[bool]) -> Mitigation:
    if not any(leaks):
        return Mitigation.FULL
    if all(leaks):
        return Mitigation.NONE
    return Mitigation.PARTIAL


def static_matrix(attacks: Optional[List[str]] = None,
                  defenses: Optional[List[DefenseKind]] = None,
                  core: Optional[CoreConfig] = None,
                  options: Optional[AnalysisOptions] = None,
                  ) -> Dict[str, Dict[DefenseKind, StaticCell]]:
    """The Table-1 matrix as the static analyzer predicts it."""
    attacks = attacks or TABLE1_ROWS
    defenses = defenses or STATIC_DEFENSES
    matrix: Dict[str, Dict[DefenseKind, StaticCell]] = {}
    for attack in attacks:
        analyses = analyze_attack(attack, core, options)
        matrix[attack] = {}
        for defense in defenses:
            leaks = [analysis.leaks(defense) for analysis in analyses]
            matrix[attack][defense] = StaticCell(
                attack, defense, _classify(leaks), leaks)
    return matrix


def compare_matrices(static: Dict[str, Dict[DefenseKind, StaticCell]],
                     dynamic: Dict[str, Dict[DefenseKind, MatrixCell]],
                     allowlist: Optional[Dict[Tuple[str, DefenseKind], str]]
                     = None) -> List[Mismatch]:
    """Cell-by-cell diff over the cells both matrices cover."""
    allowlist = ALLOWLIST if allowlist is None else allowlist
    mismatches = []
    for attack, static_row in static.items():
        dynamic_row = dynamic.get(attack, {})
        for defense, cell in static_row.items():
            lived = dynamic_row.get(defense)
            if lived is None or cell.mitigation is lived.mitigation:
                continue
            mismatches.append(Mismatch(
                attack, defense, cell.mitigation, lived.mitigation,
                allowlisted=allowlist.get((attack, defense))))
    return mismatches


def unexpected(mismatches: Sequence[Mismatch]) -> List[Mismatch]:
    """Mismatches not covered by the allowlist (a failing differential)."""
    return [m for m in mismatches if m.allowlisted is None]


def compare_to_expected(static: Dict[str, Dict[DefenseKind, StaticCell]],
                        ) -> List[Mismatch]:
    """Diff static verdicts against the paper's hard-coded Table 1.

    Cheap cross-check that needs no simulation: ``EXPECTED`` covers the
    Table-1 defenses; the ``NONE`` baseline must be all-leak.
    """
    mismatches = []
    for attack, row in static.items():
        for defense, cell in row.items():
            if defense is DefenseKind.NONE:
                want = Mitigation.NONE
            elif defense in TABLE1_DEFENSES and attack in EXPECTED:
                want = EXPECTED[attack][TABLE1_DEFENSES.index(defense)]
            else:
                continue
            if cell.mitigation is not want:
                mismatches.append(Mismatch(attack, defense,
                                           cell.mitigation, want))
    return mismatches


def confirm_mismatches(mismatches: Sequence[Mismatch],
                       core: Optional[CoreConfig] = None,
                       ) -> List["WitnessDisagreement"]:
    """Dynamically execute every disagreeing cell, variant by variant.

    The matrix diff compares *classifications* (full/partial/none); this
    re-runs each variant of each mismatched cell individually on the
    simulator and diffs it against its own static verdict, so a table-level
    disagreement decomposes into structured per-variant
    :class:`~repro.analysis.witness.WitnessDisagreement` records — the same
    shape the witness confirmation loop emits, never a silent pass.
    """
    from repro.analysis.witness import WitnessDisagreement
    from repro.attacks.common import run_attack_program

    records: List[WitnessDisagreement] = []
    for mismatch in mismatches:
        for analysis in analyze_attack(mismatch.attack, core):
            static = analysis.leaks(mismatch.defense)
            outcome = run_attack_program(analysis.program, mismatch.defense)
            if static == outcome.leaked:
                continue
            records.append(WitnessDisagreement(
                subject=f"{analysis.attack}/{analysis.variant}",
                kind=analysis.gadgets[0].kind.value
                if analysis.gadgets else "?",
                defense=mismatch.defense, static_leaks=static,
                dynamic_leaked=outcome.leaked,
                detail=f"recovered={list(outcome.recovered)}"
                       f"{', faulted' if outcome.faulted else ''}"))
    return records


def render_static(matrix: Dict[str, Dict[DefenseKind, StaticCell]]) -> str:
    """Format the static matrix like the paper's Table 1."""
    defenses = [d for d in next(iter(matrix.values()))
                if d is not DefenseKind.NONE]
    header = f"{'Attack':16s}" + "".join(
        f"{d.value:>14s}" for d in defenses)
    lines = [header, "-" * len(header)]
    for attack, row in matrix.items():
        marks = "".join(f"{row[d].mitigation.symbol:>14s}" for d in defenses)
        lines.append(f"{attack:16s}{marks}")
    return "\n".join(lines)


def render_report(attacks: Optional[List[str]] = None,
                  core: Optional[CoreConfig] = None) -> str:
    """The lint report: every gadget of every PoC, with addresses."""
    lines = []
    for attack in attacks or TABLE1_ROWS:
        for analysis in analyze_attack(attack, core):
            lines.append(f"{analysis.attack}/{analysis.variant}:")
            if not analysis.gadgets:
                lines.append("  (no gadgets found)")
            for gadget in analysis.gadgets:
                lines.append(f"  {gadget.render()}")
    return "\n".join(lines)


def render_differential(static: Dict[str, Dict[DefenseKind, StaticCell]],
                        dynamic: Dict[str, Dict[DefenseKind, MatrixCell]],
                        mismatches: Sequence[Mismatch]) -> str:
    """Human-readable verdict of a static-vs-dynamic comparison."""
    lines = [render_static(static), ""]
    cells = sum(1 for row in static.values()
                for d in row if d in next(iter(dynamic.values()), {}))
    if not mismatches:
        lines.append(f"differential: all {cells} cells agree "
                     f"with the simulator")
    else:
        lines.append(f"differential: {len(mismatches)} of {cells} cells "
                     f"disagree:")
        lines.extend(f"  {m}" for m in mismatches)
        bad = unexpected(mismatches)
        lines.append("FAIL: non-allowlisted mismatches remain"
                     if bad else "ok: every mismatch is allowlisted")
    return "\n".join(lines)
