"""Static speculative-leakage analysis (spec-lint) over ``repro.isa`` programs.

The dynamic side of the repo discovers transient leaks by *running* a PoC on
the cycle-level pipeline and checking the Table-1 matrix; this package finds
the same gadgets *without simulating a single cycle*:

- :mod:`repro.analysis.cfg` — basic blocks, direct/conditional/indirect/call
  edges, address-taken targets, reachability, and well-formedness checks;
- :mod:`repro.analysis.taint` — forward def-use dataflow with bounded
  constant sets: resolves pointer keys, reads initial data segments (the
  pointer/index tables attacker PoCs drive their gadgets with), and tracks
  which values may carry the planted secret;
- :mod:`repro.analysis.windows` — the transient windows opened by delayed
  conditional branches, indirect branches/returns, and bypassable stores,
  bounded by the ROB size from :class:`~repro.config.CoreConfig` and cut at
  ``SB`` barriers;
- :mod:`repro.analysis.gadgets` — Spectre v1/v2/v4/v5/BHB and MDS gadget
  classification plus per-:class:`~repro.config.DefenseKind` verdicts,
  including the tag-aware SpecASan call: a cross-allocation (mismatched-key)
  access is sanitized, a same-tag access is the TikTag-style residual the
  paper's §4.3 matrix encodes;
- :mod:`repro.analysis.differential` — the lint-vs-simulator harness that
  cross-checks static verdicts against
  :func:`repro.attacks.matrix.evaluate_matrix` cell by cell;
- :mod:`repro.analysis.modular` — summary-based modular analysis over the
  call graph (:class:`AnalysisOptions` selects it), with an incremental
  summary cache and its own ``--modular-differential`` byte-identity gate.

``python -m repro.analysis`` exposes the lint report, the differential
check, a CI ``--selftest``, and the ``--modular-differential`` gate.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG, BasicBlock, CFGProblem, address_taken, build_cfg
from repro.analysis.differential import (
    compare_matrices,
    render_differential,
    static_matrix,
)
from repro.analysis.gadgets import Channel, EntryKind, Gadget, find_gadgets
from repro.analysis.options import AnalysisOptions
from repro.analysis.taint import Value, analyze
from repro.analysis.windows import Window, compute_windows

__all__ = [
    "address_taken",
    "analyze",
    "AnalysisOptions",
    "BasicBlock",
    "build_cfg",
    "CFG",
    "CFGProblem",
    "Channel",
    "compare_matrices",
    "compute_windows",
    "EntryKind",
    "find_gadgets",
    "Gadget",
    "render_differential",
    "static_matrix",
    "Value",
    "Window",
]
