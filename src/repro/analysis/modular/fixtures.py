"""The incremental re-lint bench fixture: a many-function program whose
single-function edits are address-stable.

:func:`bench_program` builds ``functions`` worker functions plus one
Spectre-PHT-shaped gadget function, all called from ``main``.  Every
function zeroes its temporaries before ``RET``, so its contribution to
the global return join is independent of its *internal* constants —
editing one function's constant (:func:`bench_program` with ``edits``)
changes that function's content digest and nothing else's interface,
which is exactly the case the summary cache is built for: the warm
re-lint re-analyzes one function, everything else hits.

Edits substitute an ``ADD`` immediate, so the instruction count — and
with the fixed-width encoding, every address — is unchanged; all other
functions' content digests stay byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import INSTR_BYTES
from repro.isa.program import Program

#: Data-segment layout (well clear of the text at the default base).
_TABLE_BASE = 0x40000
_TABLE_STRIDE = 0x100
_ARRAY_BASE = 0x60000
_ARRAY_SIZE = 16
_SECRET_ADDR = _ARRAY_BASE + _ARRAY_SIZE
_PROBE_BASE = 0x70000
_IDX_TABLE = 0x50000

#: Default fixture size (functions beyond the gadget).
BENCH_FUNCTIONS = 16


def bench_program(functions: int = BENCH_FUNCTIONS,
                  edits: Optional[Dict[int, int]] = None,
                  ) -> Tuple[Program, List[Tuple[int, int]]]:
    """Build the fixture; ``edits`` maps function index -> constant delta.

    Returns ``(program, secret_ranges)``.  ``bench_program(edits={3: 7})``
    differs from the unedited build only inside ``fn3`` (same instruction
    count, same addresses everywhere).
    """
    edits = edits or {}
    b = ProgramBuilder()
    b.zero_segment("scratch", _TABLE_BASE - 0x1000, 0x100)
    for index in range(functions):
        b.words_segment(f"table{index}", _TABLE_BASE + index * _TABLE_STRIDE,
                        [(index + k) % 13 for k in range(16)])
    # In-bounds training indices plus the out-of-bounds one that walks off
    # the array into the adjacent secret granule.
    b.words_segment("idx_table", _IDX_TABLE, [1, 2, 3, _ARRAY_SIZE])
    b.bytes_segment("array", _ARRAY_BASE, bytes([7] * _ARRAY_SIZE), tag=0x3)
    b.bytes_segment("secret", _SECRET_ADDR, bytes([42]), tag=0x5)
    b.zero_segment("probe", _PROBE_BASE, 0x4000)

    b.entry(b.label("main"))
    for index in range(functions):
        b.bl(f"fn{index}")
    b.bl("fn_gadget")
    b.halt()

    # Worker bodies are deliberately dataflow-heavy: a 12-trip loop whose
    # table loads accumulate multi-constant sets each fixpoint iteration,
    # so the whole-program cost is dominated by work the summary cache can
    # skip on a warm re-lint.
    for index in range(functions):
        b.label(f"fn{index}")
        b.li("X1", _TABLE_BASE + index * _TABLE_STRIDE)
        b.li("X5", 0)
        b.li("X4", 12)
        loop = b.label(f"fn{index}_loop")
        b.lsl("X6", "X4", imm=3)
        b.ldr("X2", "X1", rm="X6")
        b.add("X5", "X5", rm="X2")
        b.ldr("X3", "X1", rm="X2")
        b.add("X5", "X5", rm="X3")
        b.ldr("X2", "X1", rm="X3")
        b.add("X5", "X5", rm="X2")
        b.ldr("X3", "X1", rm="X2")
        b.add("X5", "X5", rm="X3")
        b.ldr("X2", "X1", rm="X3")
        b.add("X5", "X5", rm="X2")
        b.ldr("X3", "X1", rm="X2")
        b.add("X5", "X5", rm="X3")
        b.sub("X4", "X4", imm=1)
        b.cbnz("X4", loop)
        b.add("X5", "X5", imm=index + edits.get(index, 0),
              note="the editable constant")
        for reg in ("X1", "X2", "X3", "X4", "X5", "X6"):
            b.li(reg, 0)
        # All workers funnel through one shared RET (below): return windows
        # are emitted per (RET, return-target) pair, so one RET block keeps
        # the shared window pass linear in the function count.
        b.b("bench_ret")
    b.label("bench_ret")
    # Publishing the funnel's address in a data segment makes it
    # address-taken, hence a call-graph root: each worker stays its own
    # function (and cache region) despite branching into the shared RET.
    b.words_segment("bench_ret_ptr", 0x48000, [b.current_address()])
    b.ret()

    # The gadget: delayed bounds check, in-window OOB load, probe touch.
    b.label("fn_gadget")
    b.li("X1", _IDX_TABLE)
    b.ldr("X2", "X1", imm=24, note="attacker index (resolves late)")
    b.cmp("X2", imm=_ARRAY_SIZE)
    b.b_cond("HS", "fn_gadget_skip")
    b.li("X3", _ARRAY_BASE)
    b.ldrb("X4", "X3", rm="X2", note="may walk into the secret")
    b.lsl("X4", "X4", imm=6)
    b.li("X5", _PROBE_BASE)
    b.ldrb("X5", "X5", rm="X4", note="probe-array transmitter")
    b.label("fn_gadget_skip")
    for reg in ("X1", "X2", "X3", "X4", "X5"):
        b.li(reg, 0)
    b.ret()

    return b.build(), [(_SECRET_ADDR, _SECRET_ADDR + 1)]


def bench_boundaries(program: Program) -> List[int]:
    """Label addresses as region boundaries (the fuzz executor's idiom).

    The shared ``bench_ret`` funnel is reached by plain branches, so it is
    not a call-graph root on its own; handing every label to
    :class:`~repro.analysis.options.AnalysisOptions` keeps each worker its
    own cacheable region.
    """
    return sorted(program.base_address + index * INSTR_BYTES
                  for index in program.labels.values())

