"""Summary-based modular taint analysis: the whole-program fixpoint,
decomposed over the function partition.

The monolithic :func:`repro.analysis.taint.analyze` runs one worklist over
every block.  This engine runs the *same* transfer functions and the same
join, but region-at-a-time:

- Each function (optionally split further at caller-supplied boundary
  addresses) is a *region*.  An inner fixpoint analyzes a region given its
  *interface seeds* — the joined states arriving at its entry blocks from
  other regions' call/indirect/fall exports, the program entry
  (:data:`ENTRY_SRC`), and the global RET join (:data:`RET_SRC`).
- A region's answer (:class:`~repro.analysis.modular.incremental
  .RegionOutputs`) is its cross-edge exports, its joined RET out-state,
  and the per-instruction facts it contributes to the final
  :class:`~repro.analysis.taint.TaintResult`.  Answers are memoized in a
  :class:`~repro.analysis.modular.incremental.SummaryCache` keyed by
  content × edges × environment × region-local stale loads × seeds, so a
  re-lint after editing one function re-analyzes only the functions whose
  *inputs* changed — the edited one and (transitively) whatever its new
  outputs reach.
- The outer loop propagates exports between regions until nothing
  changes.  Each (source region → destination block) contribution *joins
  monotonically* with its predecessor, so recursive SCCs — where a
  region's exports feed back into its own seeds — iterate under
  join-widening (:data:`~repro.analysis.taint.CONST_CAP` collapses) and
  always terminate, mirroring the bounded iteration of the monolithic
  worklist.

Parity contract: verdicts derived from the merged facts are byte-identical
to whole-program analysis.  :data:`~repro.analysis.taint.Value.join` is
not associative at the constant cap, so identical fact *values* are an
empirical property, not a theorem — the ``--modular-differential`` gate
(:mod:`repro.analysis.modular.differential`) enforces it over every
Table-1 cell, the witness suite, and the drill corpus.  Widening *counts*
are order-dependent diagnostics and are excluded from parity.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple)

from repro.analysis import hooks
from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.modular.callgraph import (
    CALL_KINDS, INTRA_KINDS, CallGraph, build_callgraph, partition_blocks)
from repro.analysis.modular.incremental import (
    RegionFacts, RegionOutputs, SummaryCache, environment_fingerprint,
    region_content_digest, region_edges_digest, region_key, seeds_digest)
from repro.analysis.options import AnalysisOptions
from repro.analysis.taint import (
    State, TaintResult, _Context, _emit_taint_coverage, _join_states,
    _run_block)
from repro.isa.instructions import FLAGS_REG, INSTR_BYTES
from repro.isa.program import Program
from repro.isa.registers import XZR
from repro.mte.tags import key_of

#: Pseudo-source ids for interface contributions (real sources are region
#: root-block indices, which are never negative).
ENTRY_SRC = -1
RET_SRC = -2


@dataclass(frozen=True)
class _Region:
    """One unit of modular analysis (a function, or a boundary slice)."""

    rid: int                      # representative root block index
    blocks: Tuple[int, ...]       # CFG block indices, sorted
    block_set: FrozenSet[int]
    name: str                     # owning function's name (diagnostics)
    content: str                  # content digest
    edges: str                    # edges digest
    stale: Tuple[int, ...]        # stale loads ∩ region addresses


@dataclass(frozen=True)
class FunctionSummary:
    """The descriptive per-function interface summary.

    Derived on demand from a finished :class:`ModularAnalysis` — the
    engine itself exchanges only :class:`RegionOutputs`; this is the
    human- and test-facing view the ISSUE's summary vocabulary names.
    """

    name: str
    entry: int
    #: Parameter registers: read before any write, in address order.
    params: Tuple[int, ...]
    #: Params whose caller-provided value is attacker- or secret-tainted.
    tainted_params: Tuple[int, ...]
    #: (address, channel) transmitter obligations inside this function.
    transmitters: Tuple[Tuple[int, str], ...]
    #: Transmitters that only fire given caller-tainted inputs — absent
    #: when the function is analyzed in isolation (empty seeds).
    conditional_transmitters: Tuple[Tuple[int, str], ...]
    #: MTE key facts at entry: (reg, sorted pointer keys) for registers
    #: holding tagged constants when the function is entered.
    entry_keys: Tuple[Tuple[int, Tuple[int, ...]], ...]
    #: Same at exit (the joined RET out-state).
    exit_keys: Tuple[Tuple[int, Tuple[int, ...]], ...]
    #: BL/RET boundary addresses where a late-resolving (loaded) value is
    #: live — a speculation window can straddle the call/return there.
    window_continuations: Tuple[int, ...]
    has_ret: bool
    #: Size of the function's SCC in the call graph (>1 or self-recursive
    #: means the summary iterated under join-widening).
    scc_size: int
    #: Any constant-set collapse was recorded while analyzing this
    #: function (the explicit bounded-iteration cutoff).
    widened: bool


@dataclass
class ModularAnalysis:
    """A finished modular run: the merged result plus the reuse ledger."""

    program: Program
    cfg: CFG
    callgraph: CallGraph
    result: TaintResult
    cache: SummaryCache
    #: Summary-cache hits/misses booked by *this* run.
    hits: int
    misses: int
    #: Function names analyzed live (cache miss) this run, sorted.
    reanalyzed: Tuple[str, ...]
    #: Total regions the run visited.
    regions: int
    _engine: "_Engine" = field(repr=False, default=None)  # type: ignore

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self, name: str) -> FunctionSummary:
        """Compute the descriptive summary of function ``name``."""
        return self._engine.function_summary(name)


class _Engine:
    """One modular analysis run over one linked program."""

    def __init__(self, program: Program,
                 secret_ranges: Sequence[Tuple[int, int]],
                 cfg: Optional[CFG],
                 stale_loads: Iterable[int],
                 options: AnalysisOptions):
        program.link()
        self.program = program
        self.cfg = cfg if cfg is not None else build_cfg(program)
        self.secret_ranges = tuple(secret_ranges)
        self.stale_loads = frozenset(stale_loads)
        self.options = options
        self.cache = options.cache if options.cache is not None \
            else SummaryCache()
        self.ctx = _Context(program, self.cfg, self.secret_ranges,
                            self.stale_loads)
        self.callgraph = build_callgraph(program, self.cfg)
        self.regions: Dict[int, _Region] = {}
        self.region_of_block: Dict[int, int] = {}
        self.topo_index: Dict[int, int] = {}
        self._build_regions()
        # Return sites, exactly as the monolithic analyze() derives them.
        self.ret_targets: List[int] = []
        for instr in program.instructions:
            if instr.is_call:
                site = instr.address + INSTR_BYTES
                if site in self.cfg.block_of_addr:
                    self.ret_targets.append(self.cfg.block_of_addr[site])
        # Interface state: per-destination-block contributions by source.
        self.incoming: Dict[int, Dict[int, State]] = {}
        self.ret_contrib: Dict[int, State] = {}
        self.global_ret: Optional[State] = None
        self.outputs: Dict[int, RegionOutputs] = {}
        self.engine_widenings: Dict[Tuple[int, int], int] = {}
        self.reanalyzed_regions: Set[int] = set()

    # -- region construction --------------------------------------------------

    def _build_regions(self) -> None:
        cfg = self.cfg
        roots = {cfg.block_of_addr[entry]
                 for entry in self.callgraph.functions}
        for node in self.callgraph.functions.values():
            for entry in node.entries:
                roots.add(cfg.block_of_addr[entry])
        for address in self.options.boundaries:
            block = cfg.block_of_addr.get(address)
            if block is not None and cfg.blocks[block].start == address:
                roots.add(block)
        region_of = partition_blocks(cfg, roots)
        groups: Dict[int, List[int]] = {}
        for index in range(len(cfg.blocks)):
            groups.setdefault(region_of[index], []).append(index)
            self.region_of_block[index] = region_of[index]
        for rid, blocks in groups.items():
            blocks.sort()
            fn_entry = self.callgraph.function_of_block[blocks[0]]
            stale = tuple(sorted(
                addr for addr in self.stale_loads
                if self.cfg.block_of_addr.get(addr) in blocks))
            self.regions[rid] = _Region(
                rid=rid, blocks=tuple(blocks), block_set=frozenset(blocks),
                name=self.callgraph.functions[fn_entry].name,
                content=region_content_digest(cfg, blocks),
                edges=region_edges_digest(cfg, blocks),
                stale=stale)
        self._order_regions()

    def _order_regions(self) -> None:
        """Forward topological order of the region digraph (heuristic)."""
        edges: Dict[int, Set[int]] = {rid: set() for rid in self.regions}
        for region in self.regions.values():
            for index in region.blocks:
                for succ, kind in self.cfg.blocks[index].successors:
                    dst = self.region_of_block[succ]
                    if dst != region.rid or kind in CALL_KINDS:
                        edges[region.rid].add(dst)
        from repro.analysis.modular.callgraph import _tarjan
        sorted_edges = {rid: tuple(sorted(dsts))
                        for rid, dsts in edges.items()}
        components = _tarjan(sorted(self.regions), sorted_edges)
        # Tarjan pops sinks first; reverse for a sources-first schedule.
        position = 0
        for component in reversed(components):
            for rid in component:
                self.topo_index[rid] = position
            position += 1

    # -- interface plumbing ---------------------------------------------------

    def _effective_succs(self, block: BasicBlock) -> List[Tuple[int, str]]:
        """Successors minus the suppressed call fall edge (parity with
        the monolithic worklist's return-site handling)."""
        term = block.terminator
        callee_known = term.is_call and any(
            kind in CALL_KINDS for _, kind in block.successors)
        return [(succ, kind) for succ, kind in block.successors
                if not (callee_known and kind == "fall")]

    def _seeds(self, region: _Region) -> Dict[int, State]:
        """Joined interface states per seeded block of ``region``."""
        seeds: Dict[int, State] = {}
        for index in region.blocks:
            start = self.cfg.blocks[index].start
            contributions = self.incoming.get(start)
            if not contributions:
                continue
            folded: Optional[State] = None
            for src in sorted(contributions):
                folded = _join_states(folded, contributions[src])
            seeds[index] = folded if folded is not None else {}
        return seeds

    def _seeds_payload(self, region: _Region,
                       seeds: Dict[int, State]) -> Dict[int, State]:
        return {self.cfg.blocks[index].start: state
                for index, state in seeds.items()}

    # -- the inner (per-region) fixpoint --------------------------------------

    def _region_fixpoint(self, region: _Region, seeds: Dict[int, State],
                         ) -> Tuple[Dict[int, State],
                                    Dict[Tuple[int, int], int]]:
        cfg = self.cfg
        in_states: Dict[int, State] = {
            index: _join_states(None, state)
            for index, state in seeds.items()}
        widenings: Dict[Tuple[int, int], int] = {}
        work = deque(sorted(in_states))
        while work:
            index = work.popleft()
            block = cfg.blocks[index]
            out = _run_block(self.ctx, block, dict(in_states[index]), None)
            for succ, kind in self._effective_succs(block):
                if succ not in region.block_set or kind not in INTRA_KINDS:
                    continue
                start = cfg.blocks[succ].start

                def note(reg: int, _start: int = start) -> None:
                    key = (_start, reg)
                    widenings[key] = widenings.get(key, 0) + 1

                joined = _join_states(in_states.get(succ), out, note)
                if succ not in in_states or joined != in_states[succ]:
                    in_states[succ] = joined
                    if succ not in work:
                        work.append(succ)
        return in_states, widenings

    def _run_region(self, region: _Region,
                    seeds: Dict[int, State]) -> RegionOutputs:
        cfg = self.cfg
        in_states, widenings = self._region_fixpoint(region, seeds)
        cross: Dict[int, State] = {}
        ret_state: Optional[State] = None
        for index in sorted(in_states):
            block = cfg.blocks[index]
            out = _run_block(self.ctx, block, dict(in_states[index]), None)
            for succ, kind in self._effective_succs(block):
                if succ in region.block_set and kind in INTRA_KINDS:
                    continue
                start = cfg.blocks[succ].start
                cross[start] = _join_states(cross.get(start), out)
            if block.terminator.is_return:
                ret_state = _join_states(ret_state, out)
        facts = TaintResult(program=self.program, cfg=cfg,
                            secret_ranges=self.secret_ranges)
        for index in sorted(in_states):
            _run_block(self.ctx, cfg.blocks[index],
                       dict(in_states[index]), facts)
        return RegionOutputs(
            cross=cross, ret=ret_state,
            facts=RegionFacts(loads=facts.loads, stores=facts.stores,
                              branches=facts.branches,
                              contention=facts.contention,
                              widenings=widenings))

    def _region_outputs(self, region: _Region,
                        seeds: Dict[int, State]) -> RegionOutputs:
        """Memoized region analysis (the incremental hot path)."""
        key = region_key(region.content, region.edges, self.env,
                         region.stale,
                         seeds_digest(self._seeds_payload(region, seeds)))
        payload = self.cache.get(key)
        if payload is not None:
            outputs = RegionOutputs.from_json(payload, self.program)
            if outputs is not None:
                return outputs
            self.cache.unbook_hit()
        outputs = self._run_region(region, seeds)
        self.cache.put(key, outputs.to_json())
        self.reanalyzed_regions.add(region.rid)
        return outputs

    # -- the outer (interface) fixpoint ---------------------------------------

    def _accumulate(self, dst_start: int, src: int, state: State) -> bool:
        """Join ``state`` into the (src → dst) contribution; True on change."""
        contributions = self.incoming.setdefault(dst_start, {})
        previous = contributions.get(src)

        def note(reg: int, _start: int = dst_start) -> None:
            key = (_start, reg)
            self.engine_widenings[key] = \
                self.engine_widenings.get(key, 0) + 1

        joined = _join_states(previous, state, note)
        if previous is not None and joined == previous:
            return False
        contributions[src] = joined
        return True

    def run(self) -> ModularAnalysis:
        cfg = self.cfg
        self.env = environment_fingerprint(self.program, self.secret_ranges)
        hits0, misses0 = self.cache.hits, self.cache.misses

        entry_start = cfg.entry_block.start
        self.incoming[entry_start] = {ENTRY_SRC: {}}
        entry_region = self.region_of_block[cfg.entry_block.index]

        heap: List[Tuple[int, int]] = []
        pending: Set[int] = set()

        def enqueue(rid: int) -> None:
            if rid not in pending:
                pending.add(rid)
                heapq.heappush(heap, (self.topo_index[rid], rid))

        enqueue(entry_region)
        while heap:
            _, rid = heapq.heappop(heap)
            pending.discard(rid)
            region = self.regions[rid]
            seeds = self._seeds(region)
            outputs = self._region_outputs(region, seeds)
            self.outputs[rid] = outputs
            for dst_start in sorted(outputs.cross):
                if self._accumulate(dst_start, rid, outputs.cross[dst_start]):
                    dst_block = cfg.block_of_addr[dst_start]
                    enqueue(self.region_of_block[dst_block])
            if outputs.ret is not None:
                previous = self.ret_contrib.get(rid)
                joined = _join_states(previous, outputs.ret)
                if previous is None or joined != previous:
                    self.ret_contrib[rid] = joined
                    self._refresh_global_ret(enqueue)

        return self._assemble(hits0, misses0)

    def _refresh_global_ret(self, enqueue) -> None:
        folded: Optional[State] = None
        for rid in sorted(self.ret_contrib):
            folded = _join_states(folded, self.ret_contrib[rid])
        if folded == self.global_ret:
            return
        self.global_ret = folded
        assert folded is not None
        for index in self.ret_targets:
            start = self.cfg.blocks[index].start
            if self._accumulate(start, RET_SRC, folded):
                enqueue(self.region_of_block[index])

    def _assemble(self, hits0: int, misses0: int) -> ModularAnalysis:
        result = TaintResult(program=self.program, cfg=self.cfg,
                             secret_ranges=self.secret_ranges)
        widenings: Dict[Tuple[int, int], int] = dict(self.engine_widenings)
        for rid in sorted(self.outputs):
            facts = self.outputs[rid].facts
            result.loads.update(facts.loads)
            result.stores.update(facts.stores)
            result.branches.update(facts.branches)
            result.contention.update(facts.contention)
            for key, count in facts.widenings.items():
                widenings[key] = widenings.get(key, 0) + count
        result.widenings = widenings
        sink = hooks.coverage_sink()
        if sink is not None:
            _emit_taint_coverage(result, sink)

        reanalyzed = tuple(sorted({self.regions[rid].name
                                   for rid in self.reanalyzed_regions}))
        hits = self.cache.hits - hits0
        misses = self.cache.misses - misses0
        if self.options.stats is not None:
            self.options.stats.book_run(
                hits=hits, misses=misses,
                reanalyzed=len(self.reanalyzed_regions),
                regions=len(self.outputs),
                scc_sizes=self.callgraph.scc_sizes())
        return ModularAnalysis(
            program=self.program, cfg=self.cfg, callgraph=self.callgraph,
            result=result, cache=self.cache, hits=hits, misses=misses,
            reanalyzed=reanalyzed, regions=len(self.outputs), _engine=self)

    # -- descriptive summaries ------------------------------------------------

    def function_summary(self, name: str) -> FunctionSummary:
        node = self.callgraph.function_named(name)
        cfg = self.cfg
        addr_set = {instr.address
                    for index in node.blocks
                    for instr in cfg.blocks[index].instructions}
        fn_region = _Region(
            rid=cfg.block_of_addr[node.entry] if node.entries
            else node.blocks[0],
            blocks=node.blocks, block_set=frozenset(node.blocks),
            name=node.name, content="", edges="", stale=())

        # Contextual run: interface seeds as the real analysis saw them.
        seeds: Dict[int, State] = {}
        for index in node.blocks:
            start = cfg.blocks[index].start
            contributions = self.incoming.get(start)
            if not contributions:
                continue
            folded: Optional[State] = None
            for src in sorted(contributions):
                folded = _join_states(folded, contributions[src])
            if folded is not None:
                seeds[index] = folded
        in_states, _ = self._region_fixpoint(fn_region, seeds)
        contextual = self._function_facts(fn_region, in_states)

        # Isolated run: empty seeds at the entry — what the function does
        # with *untainted* caller inputs.
        entry_block = cfg.block_of_addr.get(node.entry)
        isolated_seeds: Dict[int, State] = {}
        if entry_block is not None and entry_block in fn_region.block_set:
            isolated_seeds[entry_block] = {}
        iso_states, _ = self._region_fixpoint(fn_region, isolated_seeds)
        isolated = self._function_facts(fn_region, iso_states)

        transmitters = _transmitters(contextual, addr_set)
        unconditional = set(_transmitters(isolated, addr_set))
        conditional = tuple(t for t in transmitters
                            if t not in unconditional)

        params = _params(cfg, node.blocks)
        entry_seed = seeds.get(entry_block, {}) if entry_block is not None \
            else {}
        tainted = tuple(sorted(
            reg for reg in params
            if entry_seed.get(reg) is not None
            and (entry_seed[reg].attacker or entry_seed[reg].secret)))

        ret_state: Optional[State] = None
        continuations: List[int] = []
        boundary = set(addr for addr, _ in node.call_sites)
        boundary.update(node.return_addrs)
        for index in sorted(in_states):
            block = cfg.blocks[index]
            out = _run_block(self.ctx, block, dict(in_states[index]), None)
            if block.terminator.address in boundary and any(
                    value.loaded for value in out.values()):
                continuations.append(block.terminator.address)
            if block.terminator.is_return:
                ret_state = _join_states(ret_state, out)

        widened = any(
            cfg.block_of_addr.get(start) in fn_region.block_set
            for (start, _reg) in self.outputs.get(
                self.region_of_block.get(node.blocks[0], -1),
                RegionOutputs({}, None, RegionFacts())).facts.widenings)
        widened = widened or any(
            cfg.block_of_addr.get(start) in fn_region.block_set
            for (start, _reg) in self.engine_widenings)

        return FunctionSummary(
            name=node.name, entry=node.entry, params=params,
            tainted_params=tainted, transmitters=transmitters,
            conditional_transmitters=conditional,
            entry_keys=_key_facts(entry_seed),
            exit_keys=_key_facts(ret_state or {}),
            window_continuations=tuple(sorted(continuations)),
            has_ret=node.has_ret,
            scc_size=len(self.callgraph.sccs[
                self.callgraph.component_of[node.entry]]),
            widened=widened)

    def _function_facts(self, region: _Region,
                        in_states: Dict[int, State]) -> TaintResult:
        facts = TaintResult(program=self.program, cfg=self.cfg,
                            secret_ranges=self.secret_ranges)
        for index in sorted(in_states):
            _run_block(self.ctx, self.cfg.blocks[index],
                       dict(in_states[index]), facts)
        return facts


def _params(cfg: CFG, blocks: Tuple[int, ...]) -> Tuple[int, ...]:
    """Registers read before any write, scanning blocks in address order."""
    written: Set[int] = set()
    params: Set[int] = set()
    order = sorted(blocks, key=lambda index: cfg.blocks[index].start)
    for index in order:
        for instr in cfg.blocks[index].instructions:
            for reg in instr.src_regs:
                if reg not in written and reg not in (XZR, FLAGS_REG, 30):
                    params.add(reg)
            written.update(instr.dst_regs)
    return tuple(sorted(params))


def _transmitters(facts: TaintResult,
                  addr_set: Set[int]) -> Tuple[Tuple[int, str], ...]:
    """Secret-dependent transmitter obligations within ``addr_set``."""
    out: List[Tuple[int, str]] = []
    for addr, load in facts.loads.items():
        if addr in addr_set and (load.address.secret or load.address.stale):
            out.append((addr, "cache"))
    for addr, store in facts.stores.items():
        if addr in addr_set and (store.data.secret or store.data.stale):
            out.append((addr, "store"))
    for addr, value in facts.contention.items():
        if addr in addr_set and (value.secret or value.stale):
            out.append((addr, "contention"))
    for addr, branch in facts.branches.items():
        condition = branch.condition
        if (addr in addr_set and condition is not None
                and (condition.secret or condition.stale)):
            out.append((addr, "branch"))
    return tuple(sorted(out))


def _key_facts(state: State) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
    """(reg, pointer keys) for registers holding tagged constants."""
    out: List[Tuple[int, Tuple[int, ...]]] = []
    for reg in sorted(state):
        value = state[reg]
        if value.consts is None:
            continue
        keys = tuple(sorted({key_of(c) for c in value.consts}))
        if any(keys):
            out.append((reg, keys))
    return tuple(out)


def modular_analysis(program: Program,
                     secret_ranges: Sequence[Tuple[int, int]] = (),
                     cfg: Optional[CFG] = None,
                     stale_loads: Iterable[int] = (),
                     options: Optional[AnalysisOptions] = None,
                     ) -> ModularAnalysis:
    """Run the modular engine and return the full run object."""
    if options is None:
        options = AnalysisOptions.summary_backed()
    engine = _Engine(program, tuple(secret_ranges), cfg, stale_loads, options)
    return engine.run()


def analyze_modular(program: Program,
                    secret_ranges: Sequence[Tuple[int, int]] = (),
                    cfg: Optional[CFG] = None,
                    stale_loads: Iterable[int] = (),
                    options: Optional[AnalysisOptions] = None) -> TaintResult:
    """Drop-in for :func:`repro.analysis.taint.analyze`, summary-backed."""
    return modular_analysis(program, secret_ranges, cfg, stale_loads,
                            options).result
