"""Call-graph construction and function partitioning over linked programs.

A *function* is a maximal group of basic blocks connected by intra-edges
(``fall``/``taken``) that does not cross a declared entry: the program
entry, every direct ``BL`` target, and every address-taken instruction
(MTE-key-stripped literals appearing in immediates or data words — the
same set :func:`~repro.analysis.cfg.address_taken` feeds the CFG's
indirect edges).  Two entries whose intra-edge regions collide (shared
tail blocks, direct tail-call ``B`` into another function's body) merge
into one function with multiple entries, the conservative choice that
keeps the partition a true partition.

Call edges follow the CFG's truth: the ``call`` edge of each ``BL`` plus
every ``indirect`` edge of ``BR``/``BLR`` (address-taken targets, or the
per-branch narrowed sets when a refined CFG is supplied).  Recursion —
direct or mutual — shows up as a non-trivial SCC of this graph;
:func:`build_callgraph` condenses with Tarjan so summary computation can
run bottom-up over an acyclic condensation and apply join-widening inside
each recursive component.

:func:`resolved_indirect_targets` is the precision lever the satellite
fix threads back into :func:`~repro.analysis.cfg.build_cfg`: per-branch
target sets recovered from taint-resolved constants, so a two-table
program no longer cross-links every indirect branch to every table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.taint import TaintResult
from repro.isa.instructions import INSTR_BYTES, Opcode
from repro.isa.program import Program
from repro.mte.tags import strip_tag

#: Edge kinds that stay inside one function.
INTRA_KINDS = frozenset({"fall", "taken"})
#: Edge kinds that transfer control to another function's entry.
CALL_KINDS = frozenset({"call", "indirect"})


@dataclass(frozen=True)
class FunctionNode:
    """One function of the partition."""

    #: Label at the representative entry, or ``fn_0x...`` when unlabeled.
    name: str
    #: Representative (lowest) entry address; block start for orphans.
    entry: int
    #: Every declared entry address claimed by this function (empty for
    #: orphan regions no entry reaches intra-procedurally).
    entries: Tuple[int, ...]
    #: CFG block indices, sorted.
    blocks: Tuple[int, ...]
    #: (call-site address, callee representative entry) per direct ``BL``.
    call_sites: Tuple[Tuple[int, int], ...]
    #: ``BR``/``BLR`` instruction addresses.
    indirect_sites: Tuple[int, ...]
    #: ``RET`` instruction addresses.
    return_addrs: Tuple[int, ...]
    #: Instruction count.
    instructions: int

    @property
    def has_ret(self) -> bool:
        return bool(self.return_addrs)


@dataclass
class CallGraph:
    """Functions, call edges, and the Tarjan SCC condensation."""

    program: Program
    cfg: CFG
    #: Representative entry address -> node.
    functions: Dict[int, FunctionNode]
    #: CFG block index -> owning function's representative entry.
    function_of_block: Dict[int, int]
    #: Caller entry -> sorted callee entries (CFG call/indirect truth).
    edges: Dict[int, Tuple[int, ...]]
    #: SCCs in bottom-up order (every callee component before its callers).
    sccs: Tuple[Tuple[int, ...], ...]
    #: Function entry -> index into :attr:`sccs`.
    component_of: Dict[int, int]

    def function_at(self, address: int) -> Optional[FunctionNode]:
        """The function containing the instruction at ``address``."""
        block = self.cfg.block_of_addr.get(address)
        if block is None:
            return None
        return self.functions[self.function_of_block[block]]

    def function_named(self, name: str) -> FunctionNode:
        for node in self.functions.values():
            if node.name == name:
                return node
        raise KeyError(name)

    def reverse_edges(self) -> Dict[int, Tuple[int, ...]]:
        """Callee entry -> sorted caller entries (the dirtying relation)."""
        reverse: Dict[int, set] = {entry: set() for entry in self.functions}
        for caller, callees in self.edges.items():
            for callee in callees:
                reverse[callee].add(caller)
        return {entry: tuple(sorted(callers))
                for entry, callers in reverse.items()}

    def transitive_callers(self, entries: Iterable[int]) -> FrozenSet[int]:
        """``entries`` plus every function that can reach one of them."""
        reverse = self.reverse_edges()
        seen = set(entry for entry in entries if entry in self.functions)
        work = list(seen)
        while work:
            entry = work.pop()
            for caller in reverse.get(entry, ()):
                if caller not in seen:
                    seen.add(caller)
                    work.append(caller)
        return frozenset(seen)

    def recursive_components(self) -> Tuple[Tuple[int, ...], ...]:
        """SCCs that contain a cycle (size > 1, or a self-calling entry)."""
        out = []
        for component in self.sccs:
            if len(component) > 1:
                out.append(component)
            elif component[0] in self.edges.get(component[0], ()):
                out.append(component)
        return tuple(out)

    def scc_sizes(self) -> Tuple[int, ...]:
        return tuple(len(component) for component in self.sccs)


def entry_addresses(program: Program, cfg: CFG) -> FrozenSet[int]:
    """Declared function entries: program entry + BL targets + address-taken."""
    entries = {program.entry_address}
    for instr in program.instructions:
        if instr.op is Opcode.BL and instr.target_addr is not None:
            entries.add(instr.target_addr)
    entries.update(cfg.indirect_targets)
    return frozenset(
        address for address in entries
        if address in cfg.block_of_addr
        and cfg.blocks[cfg.block_of_addr[address]].start == address)


def partition_blocks(cfg: CFG, roots: Iterable[int]) -> Dict[int, int]:
    """Partition blocks into regions along intra edges.

    Blocks are unioned across every ``fall``/``taken`` edge whose target is
    not itself a root, so each root starts its own region and two roots
    merge exactly when their regions collide on a shared non-root block.
    Returns block index -> region representative (smallest member index).
    """
    count = len(cfg.blocks)
    parent = list(range(count))

    def find(index: int) -> int:
        root = index
        while parent[root] != root:
            root = parent[root]
        while parent[index] != root:
            parent[index], index = root, parent[index]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra == rb:
            return
        if rb < ra:
            ra, rb = rb, ra
        parent[rb] = ra

    root_set = set(roots)
    for block in cfg.blocks:
        for succ, kind in block.successors:
            if kind in INTRA_KINDS and succ not in root_set:
                union(block.index, succ)
    return {index: find(index) for index in range(count)}


def _label_map(program: Program) -> Dict[int, str]:
    """Address -> first (alphabetically) label defined there."""
    labels: Dict[int, str] = {}
    for name in sorted(program.labels):
        address = program.base_address + program.labels[name] * INSTR_BYTES
        labels.setdefault(address, name)
    return labels


def _tarjan(nodes: List[int],
            edges: Mapping[int, Tuple[int, ...]]) -> List[List[int]]:
    """Iterative Tarjan; components pop in bottom-up (callee-first) order."""
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    components: List[List[int]] = []
    counter = [0]

    for start in nodes:
        if start in index_of:
            continue
        work: List[Tuple[int, int]] = [(start, 0)]
        while work:
            node, edge_index = work.pop()
            if edge_index == 0:
                index_of[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            successors = edges.get(node, ())
            for position in range(edge_index, len(successors)):
                succ = successors[position]
                if succ not in index_of:
                    work.append((node, position + 1))
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def build_callgraph(program: Program, cfg: Optional[CFG] = None) -> CallGraph:
    """Discover the function partition and its call edges."""
    program.link()
    if cfg is None:
        cfg = build_cfg(program)
    entries = entry_addresses(program, cfg)
    entry_blocks = {cfg.block_of_addr[address] for address in entries}
    region_of = partition_blocks(cfg, entry_blocks)

    groups: Dict[int, List[int]] = {}
    for index in range(len(cfg.blocks)):
        groups.setdefault(region_of[index], []).append(index)
    entries_of_region: Dict[int, List[int]] = {}
    for address in entries:
        entries_of_region.setdefault(
            region_of[cfg.block_of_addr[address]], []).append(address)

    labels = _label_map(program)
    representative: Dict[int, int] = {}  # region root block -> entry address
    functions: Dict[int, FunctionNode] = {}
    function_of_block: Dict[int, int] = {}
    for root, block_indices in groups.items():
        block_indices.sort()
        fn_entries = tuple(sorted(entries_of_region.get(root, ())))
        entry = fn_entries[0] if fn_entries \
            else cfg.blocks[block_indices[0]].start
        representative[root] = entry
        for index in block_indices:
            function_of_block[index] = entry

    edges: Dict[int, set] = {entry: set() for entry in representative.values()}
    for root, block_indices in groups.items():
        entry = representative[root]
        call_sites: List[Tuple[int, int]] = []
        indirect_sites: List[int] = []
        return_addrs: List[int] = []
        instructions = 0
        for index in block_indices:
            block = cfg.blocks[index]
            instructions += len(block.instructions)
            term = block.terminator
            if term.op in (Opcode.BR, Opcode.BLR):
                indirect_sites.append(term.address)
            if term.is_return:
                return_addrs.append(term.address)
            for succ, kind in block.successors:
                if kind not in CALL_KINDS:
                    continue
                callee = function_of_block[succ]
                edges[entry].add(callee)
                if kind == "call":
                    call_sites.append((term.address, callee))
        fn_entries = tuple(sorted(entries_of_region.get(root, ())))
        functions[entry] = FunctionNode(
            name=labels.get(entry, f"fn_{entry:#x}"),
            entry=entry, entries=fn_entries,
            blocks=tuple(block_indices),
            call_sites=tuple(sorted(call_sites)),
            indirect_sites=tuple(sorted(indirect_sites)),
            return_addrs=tuple(sorted(return_addrs)),
            instructions=instructions)

    sorted_edges = {entry: tuple(sorted(callees))
                    for entry, callees in edges.items()}
    components = _tarjan(sorted(functions), sorted_edges)
    component_of = {entry: index
                    for index, component in enumerate(components)
                    for entry in component}
    return CallGraph(program=program, cfg=cfg, functions=functions,
                     function_of_block=function_of_block,
                     edges=sorted_edges,
                     sccs=tuple(tuple(c) for c in components),
                     component_of=component_of)


def resolved_indirect_targets(taint: TaintResult) -> Dict[int, Tuple[int, ...]]:
    """Per-indirect-branch target sets from taint-resolved constants.

    A ``BR``/``BLR`` whose target register resolved to a bounded constant
    set maps to the MTE-key-stripped members that land on an instruction.
    Branches whose constant set widened (or never resolved) are absent —
    callers fall back to the global address-taken over-approximation.
    """
    program = taint.program
    out: Dict[int, Tuple[int, ...]] = {}
    for address, fact in taint.branches.items():
        target = fact.target
        if target is None or target.consts is None:
            continue
        stripped = sorted({strip_tag(value) for value in target.consts})
        candidates = tuple(t for t in stripped
                           if program.fetch(t) is not None)
        if candidates:
            out[address] = candidates
    return out


def refine_cfg(program: Program,
               taint: Optional[TaintResult] = None,
               secret_ranges: Tuple[Tuple[int, int], ...] = ()) -> CFG:
    """A CFG whose indirect edges are pruned per-branch by the taint facts.

    Runs the (over-approximate) default analysis first when no ``taint``
    result is supplied, then rebuilds with the per-branch target sets —
    the two-table fix: each ``BR`` links only to the table its register
    actually loads from.
    """
    from repro.analysis.taint import analyze
    program.link()
    if taint is None:
        taint = analyze(program, secret_ranges)
    return build_cfg(program,
                     per_branch_targets=resolved_indirect_targets(taint))
