"""Summary-based modular spec-lint: call graph, per-function summaries,
and the incremental summary cache.

Public surface:

- :func:`~repro.analysis.modular.callgraph.build_callgraph` /
  :class:`~repro.analysis.modular.callgraph.CallGraph` — function
  partition, call edges, Tarjan SCC condensation;
- :func:`~repro.analysis.modular.callgraph.resolved_indirect_targets` /
  :func:`~repro.analysis.modular.callgraph.refine_cfg` — per-branch
  indirect-edge pruning fed back into the CFG;
- :func:`~repro.analysis.modular.summaries.analyze_modular` /
  :func:`~repro.analysis.modular.summaries.modular_analysis` — the
  summary-backed drop-in for whole-program ``analyze``;
- :class:`~repro.analysis.modular.incremental.SummaryCache` — the
  persistent content-keyed memo, plus the digest/dirtying helpers;
- :func:`~repro.analysis.modular.differential.modular_differential` —
  the byte-identity gate and precision ledger.
"""

from repro.analysis.modular.callgraph import (
    CallGraph, FunctionNode, build_callgraph, entry_addresses,
    refine_cfg, resolved_indirect_targets)
from repro.analysis.modular.incremental import (
    SUMMARY_SCHEMA, RegionFacts, RegionOutputs, SummaryCache,
    dirty_functions, function_digests)
from repro.analysis.modular.summaries import (
    FunctionSummary, ModularAnalysis, analyze_modular, modular_analysis)

__all__ = [
    "CallGraph", "FunctionNode", "build_callgraph", "entry_addresses",
    "refine_cfg", "resolved_indirect_targets",
    "SUMMARY_SCHEMA", "RegionFacts", "RegionOutputs", "SummaryCache",
    "dirty_functions", "function_digests",
    "FunctionSummary", "ModularAnalysis", "analyze_modular",
    "modular_analysis",
]
