"""Summary persistence: content-keyed cache, digests, and dirtying.

The modular engine (:mod:`repro.analysis.modular.summaries`) memoizes one
:class:`RegionOutputs` record per (function region × interface inputs).
The cache key is a SHA-256 over everything the region's answer can depend
on:

- the region *content digest* — its instructions' semantic fields keyed
  by address (fixed-width :data:`~repro.isa.instructions.INSTR_BYTES`
  encoding makes same-instruction-count edits address-stable, so editing
  one function leaves every other function's digest untouched);
- the region *edges digest* — its blocks' successor sets, because the
  address-taken table can grow from an edit *elsewhere* and add indirect
  edges to an unchanged region;
- the *environment fingerprint* — data-segment images (loads resolve
  through them), secret ranges, the analysis caps, and the schema
  version (the defense-config axis: Table-1 defenses vary data tags and
  secret placement, both captured here);
- the region-local *stale-load set* — the MDS pass-2 re-run marks
  sampler loads program-wide, but :class:`~repro.analysis.taint._Context`
  only consults the set at each load's own address, so only the
  intersection with the region belongs in the key (pass 2 reuses every
  sampler-free region);
- the *seeds digest* — the joined interface states injected at the
  region's entry blocks, including the global RET-join contribution.

Records persist as JSONL in the house durability style: whole-file
rewrite through :func:`repro.campaign.store.atomic_write` (same-dir tmp +
fsync + ``os.replace``) with a per-record :func:`~repro.campaign.store
.checksum`; loads are corruption-tolerant (torn lines, bad checksums, and
foreign schemas are skipped and counted, never fatal).

:func:`function_digests` / :func:`dirty_functions` expose the
reverse-call-graph dirtying relation by *name*: editing one function
dirties it plus its transitive callers, and everything else re-lints from
cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple)

from repro.analysis.cfg import CFG
from repro.analysis.taint import (
    BranchFact, LoadFact, State, StoreFact, Value)
from repro.analysis.modular.callgraph import CallGraph
from repro.campaign.store import atomic_write, checksum
from repro.isa.program import Program

#: Persistent record schema; bump on any layout or semantics change.
SUMMARY_SCHEMA = "repro-summary/1"


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- value / state / fact (de)serialization -----------------------------------


def value_to_json(value: Value) -> list:
    consts = list(value.consts) if value.consts is not None else None
    return [consts, value.attacker, value.secret, value.loaded, value.stale]


def value_from_json(data: Sequence) -> Value:
    consts, attacker, secret, loaded, stale = data
    return Value(tuple(consts) if consts is not None else None,
                 bool(attacker), bool(secret), bool(loaded), bool(stale))


def state_to_json(state: State) -> Dict[str, list]:
    return {str(reg): value_to_json(value) for reg, value in state.items()}


def state_from_json(data: Mapping[str, Sequence]) -> State:
    return {int(reg): value_from_json(value) for reg, value in data.items()}


def _opt_value_to_json(value: Optional[Value]) -> Optional[list]:
    return value_to_json(value) if value is not None else None


def _opt_value_from_json(data: Optional[Sequence]) -> Optional[Value]:
    return value_from_json(data) if data is not None else None


@dataclass
class RegionFacts:
    """The per-instruction facts one region contributes to a TaintResult."""

    loads: Dict[int, LoadFact] = field(default_factory=dict)
    stores: Dict[int, StoreFact] = field(default_factory=dict)
    branches: Dict[int, BranchFact] = field(default_factory=dict)
    contention: Dict[int, Value] = field(default_factory=dict)
    widenings: Dict[Tuple[int, int], int] = field(default_factory=dict)


@dataclass
class RegionOutputs:
    """Everything downstream consumers need from one analyzed region.

    Keyed by block *start addresses* (not indices — indices shift when a
    different function changes length... they don't under the fixed-width
    same-count rule, but addresses are the invariant worth keeping).
    """

    #: Cross-edge exports: destination block start address -> the joined
    #: out-state this region sends there (call/indirect edges, and intra
    #: edges that leave the region through a shared boundary).
    cross: Dict[int, State]
    #: Join of every RET block's out-state, or ``None`` if no RET ran.
    ret: Optional[State]
    facts: RegionFacts

    def to_json(self) -> dict:
        facts = self.facts
        return {
            "cross": {str(addr): state_to_json(state)
                      for addr, state in self.cross.items()},
            "ret": state_to_json(self.ret) if self.ret is not None else None,
            "loads": {str(a): [value_to_json(f.address),
                               value_to_json(f.result), f.width,
                               f.resolved,
                               [list(acc) for acc in f.secret_accesses],
                               f.line_crossing]
                      for a, f in facts.loads.items()},
            "stores": {str(a): [value_to_json(f.address),
                                value_to_json(f.data), f.width,
                                list(f.pointers)]
                       for a, f in facts.stores.items()},
            "branches": {str(a): [_opt_value_to_json(f.condition),
                                  _opt_value_to_json(f.target)]
                         for a, f in facts.branches.items()},
            "contention": {str(a): value_to_json(v)
                           for a, v in facts.contention.items()},
            "widenings": [[start, reg, count] for (start, reg), count
                          in sorted(facts.widenings.items())],
        }

    @classmethod
    def from_json(cls, data: Mapping,
                  program: Program) -> Optional["RegionOutputs"]:
        """Rehydrate; ``None`` when any fact address no longer fetches an
        instruction (a stale record — treated as a miss, never an error)."""
        loads: Dict[int, LoadFact] = {}
        stores: Dict[int, StoreFact] = {}
        branches: Dict[int, BranchFact] = {}
        for key, row in data["loads"].items():
            addr = int(key)
            instr = program.fetch(addr)
            if instr is None:
                return None
            loads[addr] = LoadFact(
                instr=instr, address=value_from_json(row[0]),
                result=value_from_json(row[1]), width=row[2],
                resolved=row[3],
                secret_accesses=tuple(tuple(acc) for acc in row[4]),
                line_crossing=row[5])
        for key, row in data["stores"].items():
            addr = int(key)
            instr = program.fetch(addr)
            if instr is None:
                return None
            stores[addr] = StoreFact(
                instr=instr, address=value_from_json(row[0]),
                data=value_from_json(row[1]), width=row[2],
                pointers=tuple(row[3]))
        for key, row in data["branches"].items():
            addr = int(key)
            instr = program.fetch(addr)
            if instr is None:
                return None
            branches[addr] = BranchFact(
                instr=instr, condition=_opt_value_from_json(row[0]),
                target=_opt_value_from_json(row[1]))
        facts = RegionFacts(
            loads=loads, stores=stores, branches=branches,
            contention={int(a): value_from_json(v)
                        for a, v in data["contention"].items()},
            widenings={(start, reg): count
                       for start, reg, count in data["widenings"]})
        return cls(
            cross={int(a): state_from_json(s)
                   for a, s in data["cross"].items()},
            ret=(state_from_json(data["ret"])
                 if data["ret"] is not None else None),
            facts=facts)


# -- digests ------------------------------------------------------------------


def _instr_fields(instr) -> list:
    cond = instr.cond.name if instr.cond is not None else None
    return [instr.address, instr.op.name, instr.rd, instr.rn, instr.rm,
            instr.imm, instr.tag_imm, cond, instr.target_addr]


def region_content_digest(cfg: CFG, blocks: Iterable[int]) -> str:
    """SHA over the region's instructions (semantic fields, address-keyed)."""
    rows: List[list] = []
    for index in sorted(blocks):
        block = cfg.blocks[index]
        rows.append([block.start,
                     [_instr_fields(instr) for instr in block.instructions]])
    return _sha(_canonical(rows))


def region_edges_digest(cfg: CFG, blocks: Iterable[int]) -> str:
    """SHA over the region's successor sets (as target addresses + kinds)."""
    rows: List[list] = []
    for index in sorted(blocks):
        block = cfg.blocks[index]
        succs = sorted((cfg.blocks[succ].start, kind)
                       for succ, kind in block.successors)
        rows.append([block.start, [[addr, kind] for addr, kind in succs]])
    return _sha(_canonical(rows))


def environment_fingerprint(
        program: Program,
        secret_ranges: Sequence[Tuple[int, int]]) -> str:
    """The defense-config axis of the cache key.

    Data segment images (loads resolve through them; MTE allocation tags
    live here), secret ranges, entry address, and the analysis caps.
    """
    from repro.analysis.taint import CONST_CAP, PAIR_CAP, SUMMARY_CAP
    segments = [[seg.name, seg.address, seg.tag,
                 hashlib.sha256(seg.data).hexdigest()]
                for seg in sorted(program.data_segments,
                                  key=lambda s: (s.address, s.name))]
    payload = {
        "schema": SUMMARY_SCHEMA,
        "entry": program.entry_address,
        "segments": segments,
        "secret_ranges": [list(r) for r in sorted(secret_ranges)],
        "caps": [CONST_CAP, PAIR_CAP, SUMMARY_CAP],
    }
    return _sha(_canonical(payload))


def seeds_digest(seeds: Mapping[int, State]) -> str:
    return _sha(_canonical({str(addr): state_to_json(state)
                            for addr, state in seeds.items()}))


def region_key(content: str, edges: str, env: str,
               stale: Iterable[int], seeds: str) -> str:
    """The full cache key for one (region × interface inputs) record."""
    return _sha(_canonical([SUMMARY_SCHEMA, content, edges, env,
                            sorted(stale), seeds]))


# -- function-level digests: the dirtying relation ----------------------------


def function_digests(callgraph: CallGraph) -> Dict[str, str]:
    """Function name -> content digest (the incremental baseline record)."""
    return {node.name: region_content_digest(callgraph.cfg, node.blocks)
            for node in callgraph.functions.values()}


def dirty_functions(callgraph: CallGraph,
                    baseline: Mapping[str, str]) -> FrozenSet[str]:
    """Functions needing re-analysis after an edit, per the reverse graph.

    A function is dirty when its content digest changed (or it is new),
    or when it can reach a dirty function — callers absorb callee
    summaries, so dirtiness propagates along *reverse* call edges from
    each changed callee to its transitive callers.
    """
    current = function_digests(callgraph)
    changed = [name for name, digest in current.items()
               if baseline.get(name) != digest]
    by_name = {node.name: entry
               for entry, node in callgraph.functions.items()}
    entries = callgraph.transitive_callers(
        by_name[name] for name in changed)
    return frozenset(callgraph.functions[entry].name for entry in entries)


# -- the persistent cache -----------------------------------------------------


class SummaryCache:
    """Content-keyed summary memo with an optional JSONL backing file.

    Keys are :func:`region_key` digests; dirtying is *implicit* — an
    edited function's content digest changes, so its old records simply
    never match again (they linger until :meth:`flush` rewrites the
    file, which drops records not touched this session only when
    ``compact=True``).
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.hits = 0
        self.misses = 0
        self.rejected = 0
        self._records: Dict[str, dict] = {}
        self._touched: set = set()
        self._dirty = False
        if path is not None:
            self._load(path)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _load(self, path: str) -> None:
        if not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.rejected += 1
                continue
            if (not isinstance(record, dict)
                    or record.get("schema") != SUMMARY_SCHEMA
                    or "key" not in record or "payload" not in record):
                self.rejected += 1
                continue
            stated = record.get("sha256")
            if stated != checksum(record):
                self.rejected += 1
                continue
            self._records[record["key"]] = record["payload"]

    def get(self, key: str) -> Optional[dict]:
        """The raw payload for ``key``; books a hit/miss either way."""
        payload = self._records.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touched.add(key)
        return payload

    def unbook_hit(self) -> None:
        """Demote the last hit to a miss (rehydration rejected the record)."""
        self.hits -= 1
        self.misses += 1

    def put(self, key: str, payload: dict) -> None:
        self._records[key] = payload
        self._touched.add(key)
        self._dirty = True

    def flush(self, compact: bool = False) -> None:
        """Rewrite the backing file atomically (no-op without a path).

        ``compact=True`` keeps only records read or written this session,
        shedding entries orphaned by edits.
        """
        if self.path is None or not (self._dirty or compact):
            return
        keys = sorted(self._touched if compact else self._records)
        lines = []
        for key in keys:
            record = {"schema": SUMMARY_SCHEMA, "key": key,
                      "payload": self._records[key]}
            record["sha256"] = checksum(record)
            lines.append(_canonical(record))
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        atomic_write(self.path, "\n".join(lines) + ("\n" if lines else ""))
        self._dirty = False
