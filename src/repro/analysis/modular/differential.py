"""The modular-vs-whole-program byte-identity gate and precision ledger.

:func:`modular_differential` runs both engines over three suites —

- all 66 Table-1 cells (11 attacks × ``NONE`` + the five defenses),
- the synthesized witness suite (every gadget class, both variants),
- the committed fuzz drill corpus (when present),

and demands *byte identity*: per-variant gadget report lines and
per-defense leak verdicts must match exactly.  Any disagreement is a
:class:`~repro.errors.AnalysisError` (strict mode, the CI default), and
every disagreement is additionally classified for the *precision ledger*:
a cell where the modular engine claims a leak the whole-program engine
does not (or a strictly worse mitigation classification) is
``less-precise`` — the regression class the ledger exists to catch.  The
ledger ships empty; CI fails the ``analysis-modular`` job on any entry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.differential import (
    STATIC_DEFENSES, VariantAnalysis, analyze_attack)
from repro.analysis.gadgets import find_gadgets
from repro.analysis.options import AnalysisOptions
from repro.analysis.modular.incremental import SummaryCache
from repro.attacks import TABLE1_ROWS
from repro.attacks.matrix import Mitigation
from repro.config import CORTEX_A76, CoreConfig, DefenseKind
from repro.errors import AnalysisError

#: The committed drill corpus (relative to the repo root, where CI runs).
DEFAULT_CORPUS = os.path.join("tests", "fuzz", "data", "drill-corpus")

#: Mitigation precision rank: higher mitigates more (= fewer leak claims).
_RANK = {Mitigation.NONE: 0, Mitigation.PARTIAL: 1, Mitigation.FULL: 2}


@dataclass(frozen=True)
class ModularMismatch:
    """One subject where the two engines disagree."""

    suite: str          # "table1" | "witness" | "corpus"
    subject: str        # e.g. "spectre-v1 under specasan", "pht/cross-key"
    detail: str
    #: The modular engine claimed a leak (or worse mitigation) that the
    #: whole-program engine did not — a precision-ledger entry.
    less_precise: bool = False

    def __str__(self) -> str:
        tag = " [LESS-PRECISE]" if self.less_precise else ""
        return f"{self.suite}: {self.subject}{tag} — {self.detail}"


@dataclass
class ModularReport:
    """The full differential outcome (render with :func:`render_modular`)."""

    cells: int = 0
    witnesses: int = 0
    corpus: int = 0
    corpus_skipped: Optional[str] = None
    mismatches: List[ModularMismatch] = field(default_factory=list)
    #: Summary-cache traffic across the whole run (reuse evidence).
    hits: int = 0
    misses: int = 0

    @property
    def ledger(self) -> List[ModularMismatch]:
        """The precision ledger: strictly-less-precise disagreements."""
        return [m for m in self.mismatches if m.less_precise]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _gadget_lines(analysis: VariantAnalysis) -> List[str]:
    return [gadget.render() for gadget in analysis.gadgets]


def _verdicts(analysis: VariantAnalysis,
              defenses: Sequence[DefenseKind]) -> Dict[DefenseKind, bool]:
    return {defense: analysis.leaks(defense) for defense in defenses}


def _compare_variant(suite: str, subject: str,
                     whole_lines: List[str], mod_lines: List[str],
                     whole_verdicts: Dict[DefenseKind, bool],
                     mod_verdicts: Dict[DefenseKind, bool],
                     out: List[ModularMismatch]) -> None:
    if whole_lines != mod_lines:
        out.append(ModularMismatch(
            suite, subject,
            f"gadget reports differ: whole-program {len(whole_lines)} "
            f"line(s) vs modular {len(mod_lines)} line(s); first "
            f"divergence: "
            f"{_first_divergence(whole_lines, mod_lines)}",
            less_precise=len(mod_lines) > len(whole_lines)))
    for defense, whole_leaks in whole_verdicts.items():
        mod_leaks = mod_verdicts[defense]
        if mod_leaks != whole_leaks:
            out.append(ModularMismatch(
                suite, f"{subject} under {defense.value}",
                f"whole-program leaks={whole_leaks}, "
                f"modular leaks={mod_leaks}",
                less_precise=mod_leaks and not whole_leaks))


def _first_divergence(a: List[str], b: List[str]) -> str:
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            return f"line {index}: {left!r} != {right!r}"
    return f"length {len(a)} vs {len(b)}"


def _table1(core: CoreConfig, options: AnalysisOptions,
            report: ModularReport) -> None:
    for attack in TABLE1_ROWS:
        whole = analyze_attack(attack, core)
        modular = analyze_attack(attack, core, options)
        for w, m in zip(whole, modular):
            subject = f"{attack}/{w.variant}"
            _compare_variant("table1", subject,
                             _gadget_lines(w), _gadget_lines(m),
                             _verdicts(w, STATIC_DEFENSES),
                             _verdicts(m, STATIC_DEFENSES),
                             report.mismatches)
        # Cell-level classification diff (the Table-1 surface itself).
        for defense in STATIC_DEFENSES:
            report.cells += 1
            whole_cls = _classify([w.leaks(defense) for w in whole])
            mod_cls = _classify([m.leaks(defense) for m in modular])
            if whole_cls is not mod_cls:
                report.mismatches.append(ModularMismatch(
                    "table1", f"{attack} under {defense.value}",
                    f"cell classification: whole-program "
                    f"{whole_cls.value} vs modular {mod_cls.value}",
                    less_precise=_RANK[mod_cls] < _RANK[whole_cls]))


def _classify(leaks: Sequence[bool]) -> Mitigation:
    if not any(leaks):
        return Mitigation.FULL
    if all(leaks):
        return Mitigation.NONE
    return Mitigation.PARTIAL


def _witnesses(core: CoreConfig, options: AnalysisOptions,
               report: ModularReport) -> None:
    from repro.analysis.witness import secret_ranges_of, synthesize_all
    for witness in synthesize_all(core=core):
        report.witnesses += 1
        program = witness.attack.builder_program
        ranges = secret_ranges_of(witness.attack)
        whole = find_gadgets(program, ranges, core)
        modular = find_gadgets(program, ranges, core, options=options)
        whole_lines = [g.render() for g in whole]
        mod_lines = [g.render() for g in modular]
        if whole_lines != mod_lines:
            report.mismatches.append(ModularMismatch(
                "witness", witness.subject,
                f"gadget reports differ; first divergence: "
                f"{_first_divergence(whole_lines, mod_lines)}",
                less_precise=len(mod_lines) > len(whole_lines)))


def _corpus(directory: Optional[str], core: CoreConfig,
            options: AnalysisOptions, report: ModularReport) -> None:
    if directory is None:
        directory = DEFAULT_CORPUS
    if not os.path.isdir(directory):
        report.corpus_skipped = f"no corpus at {directory}"
        return
    from repro.fuzz.corpus import load_run
    from repro.fuzz.generator import build
    run = load_run(directory)
    for index, spec in enumerate(run.specs):
        report.corpus += 1
        candidate = build(spec)
        program = candidate.attack.builder_program
        ranges = candidate.secret_ranges
        whole = find_gadgets(program, ranges, core)
        modular = find_gadgets(program, ranges, core, options=options)
        whole_lines = [g.render() for g in whole]
        mod_lines = [g.render() for g in modular]
        if whole_lines != mod_lines:
            report.mismatches.append(ModularMismatch(
                "corpus", f"candidate {index} ({spec.label})",
                f"gadget reports differ; first divergence: "
                f"{_first_divergence(whole_lines, mod_lines)}",
                less_precise=len(mod_lines) > len(whole_lines)))


def modular_differential(corpus_dir: Optional[str] = None,
                         core: Optional[CoreConfig] = None,
                         cache: Optional[SummaryCache] = None,
                         strict: bool = True) -> ModularReport:
    """Run the full byte-identity differential.

    One shared summary cache serves the whole run (cross-suite reuse is
    part of what the gate exercises).  With ``strict`` (the default) any
    disagreement raises :class:`~repro.errors.AnalysisError` naming every
    mismatch — CI surfaces the precision ledger the same way.
    """
    core = core or CORTEX_A76.core
    cache = cache if cache is not None else SummaryCache()
    options = AnalysisOptions.summary_backed(cache=cache)
    report = ModularReport()
    hits0, misses0 = cache.hits, cache.misses
    _table1(core, options, report)
    _witnesses(core, options, report)
    _corpus(corpus_dir, core, options, report)
    report.hits = cache.hits - hits0
    report.misses = cache.misses - misses0
    if strict and report.mismatches:
        ledger = len(report.ledger)
        detail = "; ".join(str(m) for m in report.mismatches[:10])
        raise AnalysisError(
            f"modular differential failed: {len(report.mismatches)} "
            f"disagreement(s), {ledger} precision-ledger entr"
            f"{'y' if ledger == 1 else 'ies'}: {detail}")
    return report


def render_modular(report: ModularReport) -> str:
    """Human-readable differential summary (the CLI output)."""
    lines = ["modular differential: summary-based vs whole-program"]
    lines.append(f"  table-1 cells compared : {report.cells}")
    lines.append(f"  witnesses compared     : {report.witnesses}")
    if report.corpus_skipped:
        lines.append(f"  corpus                 : skipped "
                     f"({report.corpus_skipped})")
    else:
        lines.append(f"  corpus candidates      : {report.corpus}")
    total = report.hits + report.misses
    rate = report.hits / total if total else 0.0
    lines.append(f"  summary cache          : {report.hits} hit(s) / "
                 f"{report.misses} miss(es) ({rate:.1%} hit rate)")
    if report.ok:
        lines.append("  verdicts               : byte-identical")
        lines.append("  precision ledger       : empty")
    else:
        lines.append(f"  DISAGREEMENTS ({len(report.mismatches)}):")
        for mismatch in report.mismatches:
            lines.append(f"    {mismatch}")
        ledger = report.ledger
        lines.append(f"  precision ledger       : {len(ledger)} entr"
                     f"{'y' if len(ledger) == 1 else 'ies'}")
    return "\n".join(lines)
