"""Automatic minimal repair of statically-found transient-leak gadgets.

Janus-style consumption of the spec-lint findings: for every gadget that
still leaks under the target :class:`~repro.config.DefenseKind`, pick the
*cheapest sufficient* fix, apply it through the relocating rewriter
(:mod:`repro.analysis.rewrite`), and re-verify.  Three fix kinds, in cost
order:

- **RETAG** — MTE re-tagging to force a cross-allocation access: move the
  victim allocation onto a fresh tag and re-key every *legitimate* pointer
  literal into it.  Zero inserted instructions; flips the static
  ``sanitized`` verdict, so it is sufficient only when the target defense
  actually checks tags (SpecASan / SpecASan+CFI).  It is also the only fix
  that reaches the MDS gadgets (SBB/LFB), whose leaking loads are bound to
  commit and therefore uncuttable by barriers.
- **MASK** — load hardening (``array_index_nospec``): an ``AND`` of the
  access's index register with a power-of-two bound of the victim array,
  inserted right before the ACCESS, so the speculative address can no
  longer reach the secret.  One ALU instruction; clobbers the index
  register, which is fine for the bounds-check shape (the index is dead
  after the access) and is caught by re-verification otherwise.
- **BARRIER** — an ``SB`` speculation barrier at a min-cut of the gadget's
  speculation-window CFG: the latest single point that dominates every
  transmitter, so exactly one barrier severs every entry-to-transmitter
  path while serializing as late as possible.

Selection is counterexample-guided rather than trusted: each candidate is
*trial-applied* and the whole program re-linted; a fix is accepted only if
the gadget no longer leaks under the target defense **and** no new gadget
appeared (identities compared through the rewrite's address translation).
Already-sanitized gadgets are never touched.  If no candidate survives the
trial, :class:`~repro.errors.AnalysisError` is raised — a repair the
analysis cannot re-verify is not a repair.

:func:`measure_overhead` closes the performance half of the loop: the
original program and each incremental repair stage run on the simulator
under the target defense, and the per-fix cycle deltas land in a
:class:`~repro.telemetry.registry.StatsRegistry` scope
(``repair.<subject>.fix<N>.*``) so the CLI's overhead table and the
campaign's repair-overhead cells share one accounting path.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import successors
from repro.analysis.gadgets import Gadget, find_gadgets, leaks_under
from repro.analysis.rewrite import ProgramRewriter, RewriteResult, \
    barrier_of, mask_of
from repro.analysis.taint import TaintResult, analyze
from repro.analysis.windows import EntryKind, Window, compute_windows
from repro.config import CORTEX_A76, CoreConfig, DefenseKind, MTEConfig
from repro.errors import AnalysisError
from repro.isa.instructions import Opcode
from repro.isa.program import DataSegment, Program
from repro.mte.tags import key_of, strip_tag, with_key
from repro.telemetry.registry import StatsRegistry, ratio

#: Safety valve: more rounds than any sane program needs (each round
#: repairs at least one gadget or raises).
MAX_ROUNDS = 64

#: The gadget classes whose leak rides a speculation window (cuttable).
WINDOW_KINDS = (EntryKind.PHT, EntryKind.BTB, EntryKind.RSB, EntryKind.STL)


class FixKind(enum.Enum):
    """The repair primitives, cheapest first."""

    RETAG = "retag"      # re-tag the victim allocation (0 instructions)
    MASK = "mask"        # index masking before the ACCESS (1 ALU op)
    BARRIER = "barrier"  # SB at a window min-cut (serializes)


#: Trial order; ``plan`` walks this list and keeps the first sufficient fix.
FIX_ORDER = (FixKind.RETAG, FixKind.MASK, FixKind.BARRIER)


@dataclass(frozen=True)
class GadgetId:
    """Rewrite-stable gadget identity (addresses in *current* coordinates)."""

    kind: str
    source: int
    entry: int

    @staticmethod
    def of(gadget: Gadget) -> "GadgetId":
        return GadgetId(gadget.kind.value, gadget.source, gadget.entry)

    def translated(self, rewrite: RewriteResult) -> "GadgetId":
        return GadgetId(self.kind, rewrite.translate(self.source),
                        rewrite.translate(self.entry))


@dataclass
class Fix:
    """One accepted repair step."""

    kind: FixKind
    #: The repaired gadget, in the coordinates of the program *before* this
    #: fix was applied.
    gadget: Gadget
    detail: str
    #: Program state after this fix (fixes chain: each applies on top of
    #: the previous one's program).
    program: Program
    #: New-program addresses of any inserted instructions.
    inserted: Tuple[int, ...] = ()

    def render(self) -> str:
        return (f"[{self.kind.value}] {self.gadget.kind.value} gadget "
                f"@ {self.gadget.source:#x}: {self.detail}")


@dataclass
class RepairResult:
    """The full analyze -> fix -> re-verify outcome for one program."""

    original: Program
    repaired: Program
    defense: DefenseKind
    fixes: List[Fix]
    gadgets_before: List[Gadget]
    gadgets_after: List[Gadget]

    @property
    def leaking_before(self) -> List[Gadget]:
        return [g for g in self.gadgets_before
                if leaks_under(g, self.defense)]

    @property
    def leaking_after(self) -> List[Gadget]:
        return [g for g in self.gadgets_after
                if leaks_under(g, self.defense)]

    @property
    def verified(self) -> bool:
        """Static verdict flipped: nothing leaks under the target defense."""
        return not self.leaking_after

    def render(self) -> str:
        lines = [f"repair target: {self.defense.value} — "
                 f"{len(self.leaking_before)} leaking gadget(s), "
                 f"{len(self.fixes)} fix(es)"]
        lines.extend(f"  {fix.render()}" for fix in self.fixes)
        verdict = ("all gadgets sanitized" if self.verified
                   else f"{len(self.leaking_after)} STILL LEAKING")
        lines.append(f"  re-lint: {verdict}")
        return "\n".join(lines)


# -- candidate construction ---------------------------------------------------


def _segment_of(program: Program, address: int) -> Optional[DataSegment]:
    for seg in program.data_segments:
        if seg.address <= address < seg.address + len(seg.data):
            return seg
    return None


def _pointer_literals(program: Program, seg: DataSegment) -> Set[int]:
    """Every immediate / aligned 64-bit data word pointing into ``seg``."""
    found: Set[int] = set()

    def probe(value: int) -> None:
        value &= (1 << 64) - 1
        if seg.address <= strip_tag(value) < seg.address + len(seg.data):
            found.add(value)

    for instr in program.instructions:
        if instr.imm is not None and instr.imm >= 0:
            probe(instr.imm)
    for other in program.data_segments:
        data = other.data
        for offset in range(0, len(data) - len(data) % 8, 8):
            (word,) = struct.unpack_from("<Q", data, offset)
            probe(word)
    return found


def _victim_pointers(taint: TaintResult, gadget: Gadget) -> Tuple[int, ...]:
    """The tagged pointers identifying the allocation a RETAG must move."""
    if gadget.kind is EntryKind.SBB:
        store = taint.stores.get(gadget.source)
        return store.pointers if store is not None else ()
    return tuple(p for p, _, _ in gadget.secret_accesses)


def _retag_candidate(program: Program, taint: TaintResult, gadget: Gadget,
                     mte: MTEConfig) -> Optional[Tuple[ProgramRewriter, str]]:
    """Move the victim allocation to a fresh tag; re-key its literals.

    Every pointer literal into the retagged segment follows the move (the
    victim's own accesses stay architecturally clean); anything reaching
    the segment through *another* allocation's pointer — the out-of-bounds
    or aliased attacker access — is left behind on the old key, turning
    the same-key residual into a cross-allocation mismatch.
    """
    pointers = _victim_pointers(taint, gadget)
    if not pointers:
        return None
    segments: List[DataSegment] = []
    for pointer in pointers:
        seg = _segment_of(program, strip_tag(pointer))
        if seg is not None and seg not in segments:
            segments.append(seg)
    if not segments:
        return None
    used = {seg.tag for seg in program.data_segments if seg.tag is not None}
    used.update(key_of(p) for p in pointers)
    fresh = next((t for t in range(1, mte.num_tags) if t not in used), None)
    if fresh is None:
        return None
    rewriter = ProgramRewriter(program)
    rekeyed = 0
    for seg in segments:
        rewriter.retag_segment(seg.name, fresh)
        for value in sorted(_pointer_literals(program, seg)):
            if key_of(value) != fresh:
                rewriter.rewrite_value(value, with_key(value, fresh))
                rekeyed += 1
    names = "+".join(seg.name for seg in segments)
    detail = (f"retag {names} -> tag {fresh}, "
              f"{rekeyed} pointer literal(s) re-keyed")
    return rewriter, detail


def _next_pow2(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


def _mask_candidate(program: Program, taint: TaintResult,
                    gadget: Gadget) -> Optional[Tuple[ProgramRewriter, str]]:
    """``AND index, index, #mask`` before the ACCESS load."""
    if gadget.kind not in WINDOW_KINDS:
        return None
    for address, load in sorted(taint.loads.items()):
        if not load.secret_accesses or load.instr.rm is None:
            continue
        if address not in set(gadget.transmitters) \
                and not _in_window(taint, gadget, address):
            continue
        if load.address.consts is None:
            continue
        in_bounds = [strip_tag(c) for c in load.address.consts
                     if not _in_secret(taint, strip_tag(c))]
        if not in_bounds:
            continue
        seg = _segment_of(program, min(in_bounds))
        if seg is None:
            continue
        mask = _next_pow2(len(seg.data)) - 1
        # The mask must preserve every in-bounds offset (no committed-path
        # behaviour change for resolved accesses).
        if any((c - seg.address) & mask != (c - seg.address)
               for c in in_bounds
               if seg.address <= c < seg.address + len(seg.data)):
            continue
        rewriter = ProgramRewriter(program)
        rewriter.insert_before(address, [mask_of(
            load.instr.rm, mask, note=f"repair: index &= {mask:#x}")])
        detail = (f"mask X{load.instr.rm} &= {mask:#x} "
                  f"before ACCESS @ {address:#x}")
        return rewriter, detail
    return None


def _in_secret(taint: TaintResult, address: int) -> bool:
    return any(lo <= address < hi for lo, hi in taint.secret_ranges)


def _in_window(taint: TaintResult, gadget: Gadget, address: int) -> bool:
    window = _gadget_window(taint, gadget)
    return window is not None and address in window.body


def _gadget_window(taint: TaintResult, gadget: Gadget,
                   core: Optional[CoreConfig] = None) -> Optional[Window]:
    for window in compute_windows(taint, core or CORTEX_A76.core):
        if (window.kind is gadget.kind and window.source == gadget.source
                and window.entry == gadget.entry):
            return window
    return None


def _window_cut_point(program: Program, window: Window,
                      transmitters: Sequence[int]) -> int:
    """The latest single address dominating every transmitter.

    A vertex min-cut with unit costs over the window's CFG: the common
    dominators of the transmitter set form a chain from the entry, and the
    deepest element is the single insertion point that severs every
    entry-to-transmitter path while keeping the barrier as late (cheap) as
    possible.  The entry itself always qualifies, so a cut always exists.
    """
    body = list(window.body)
    body_set = set(body)
    edges: Dict[int, List[int]] = {a: [] for a in body}
    preds: Dict[int, List[int]] = {a: [] for a in body}
    for address in body:
        instr = program.fetch(address)
        if instr is None or instr.is_barrier or instr.is_return \
                or instr.op in (Opcode.BR, Opcode.BLR):
            continue
        for succ, kind in successors(program, instr):
            if kind != "indirect" and succ in body_set:
                edges[address].append(succ)
                preds[succ].append(address)

    entry = window.entry
    full: Set[int] = set(body)
    dom: Dict[int, Set[int]] = {a: ({a} if a == entry else set(full))
                                for a in body}
    changed = True
    while changed:
        changed = False
        for address in body:
            if address == entry:
                continue
            incoming = [dom[p] for p in preds[address]]
            new = ({address} | set.intersection(*incoming)
                   if incoming else {address})
            if new != dom[address]:
                dom[address] = new
                changed = True

    inside = [t for t in transmitters if t in body_set] or [entry]
    common = set.intersection(*(dom[t] for t in inside))
    # Common dominators of a set are totally ordered by their own dominator
    # sets; the largest set is the deepest (latest) point.
    return max(sorted(common), key=lambda a: (len(dom[a]), -a))


def _barrier_candidate(program: Program, taint: TaintResult, gadget: Gadget,
                       core: CoreConfig
                       ) -> Optional[Tuple[ProgramRewriter, str]]:
    if gadget.kind not in WINDOW_KINDS:
        return None
    window = _gadget_window(taint, gadget, core)
    rewriter = ProgramRewriter(program)
    if window is None:  # pragma: no cover - defensive
        cuts = list(gadget.transmitters)
    else:
        cuts = [_window_cut_point(program, window, gadget.transmitters)]
    for cut in cuts:
        rewriter.insert_before(cut, [barrier_of(
            note=f"repair: cut {gadget.kind.value} window")])
    where = ",".join(f"{c:#x}" for c in cuts)
    detail = (f"SB before {where} (cuts {len(gadget.transmitters)} "
              f"transmitter(s))")
    return rewriter, detail


# -- the planning loop --------------------------------------------------------


def _candidates(defense: DefenseKind,
                kind: EntryKind) -> Tuple[FixKind, ...]:
    """Which fix kinds can possibly help ``kind`` under ``defense``."""
    tag_checked = defense in (DefenseKind.SPECASAN, DefenseKind.SPECASAN_CFI)
    if kind in WINDOW_KINDS:
        order = [f for f in FIX_ORDER
                 if f is not FixKind.RETAG or tag_checked]
        return tuple(order)
    # MDS gadgets (SBB/LFB) are bound to commit: no window to cut, no index
    # to mask — only the tag machinery can stop them.
    return (FixKind.RETAG,) if tag_checked else ()


def _trial(program: Program, rewriter: ProgramRewriter, target: GadgetId,
           before: Sequence[Gadget], secret_ranges: Sequence[Tuple[int, int]],
           core: CoreConfig, defense: DefenseKind
           ) -> Optional[Tuple[Program, List[Gadget], Tuple[int, ...]]]:
    """Apply one staged candidate and re-lint; ``None`` if insufficient."""
    result = rewriter.apply()
    repaired = result.program
    after = find_gadgets(repaired, secret_ranges, core)
    after_ids = {GadgetId.of(g): g for g in after}
    translated = {GadgetId.of(g).translated(result) for g in before}
    if set(after_ids) - translated:
        return None  # the fix manufactured a new gadget
    survivor = after_ids.get(target.translated(result))
    if survivor is not None and leaks_under(survivor, defense):
        return None  # the gadget still leaks
    inserted = tuple(sorted(
        instr.address for instr in repaired.instructions
        if instr.address not in
        {result.translate(i.address) for i in program.instructions}))
    return repaired, after, inserted


def plan(program: Program, secret_ranges: Sequence[Tuple[int, int]] = (),
         core: Optional[CoreConfig] = None,
         mte: Optional[MTEConfig] = None,
         defense: DefenseKind = DefenseKind.SPECASAN) -> RepairResult:
    """Repair every gadget that leaks under ``defense``; verify statically.

    Raises :class:`~repro.errors.AnalysisError` when some leaking gadget
    has no sufficient fix (e.g. an MDS gadget repaired for a target
    defense without tag checks).
    """
    core = core or CORTEX_A76.core
    mte = mte or CORTEX_A76.mte
    program.link()
    gadgets_before = find_gadgets(program, secret_ranges, core)
    current = program
    gadgets = gadgets_before
    fixes: List[Fix] = []
    for _ in range(MAX_ROUNDS):
        leaking = [g for g in gadgets if leaks_under(g, defense)]
        if not leaking:
            break
        gadget = leaking[0]
        taint = analyze(current, tuple(secret_ranges))
        accepted = None
        for fix_kind in _candidates(defense, gadget.kind):
            if fix_kind is FixKind.RETAG:
                candidate = _retag_candidate(current, taint, gadget, mte)
            elif fix_kind is FixKind.MASK:
                candidate = _mask_candidate(current, taint, gadget)
            else:
                candidate = _barrier_candidate(current, taint, gadget, core)
            if candidate is None:
                continue
            rewriter, detail = candidate
            trial = _trial(current, rewriter, GadgetId.of(gadget), gadgets,
                           secret_ranges, core, defense)
            if trial is None:
                continue
            repaired, after, inserted = trial
            accepted = Fix(kind=fix_kind, gadget=gadget, detail=detail,
                           program=repaired, inserted=inserted)
            gadgets = after
            current = repaired
            break
        if accepted is None:
            raise AnalysisError(
                f"no sufficient fix for {gadget.kind.value} gadget @ "
                f"{gadget.source:#x} under {defense.value} "
                f"(tried: {[f.value for f in _candidates(defense, gadget.kind)]})")
        fixes.append(accepted)
    else:  # pragma: no cover - MAX_ROUNDS is far beyond any real program
        raise AnalysisError("repair did not converge")
    return RepairResult(original=program, repaired=current, defense=defense,
                        fixes=fixes, gadgets_before=gadgets_before,
                        gadgets_after=gadgets)


# -- overhead accounting ------------------------------------------------------


def _run_cycles(program: Program, defense: DefenseKind,
                config=None, max_cycles: int = 200_000) -> int:
    """Cycles to completion on the simulator under ``defense``."""
    from repro.errors import DeadlockError, SimulationError
    from repro.system import build_system

    system = build_system((config or CORTEX_A76).with_defense(defense))
    core = system.prepare(program)
    try:
        core.run(max_cycles=max_cycles)
    except (DeadlockError, SimulationError):
        pass
    return core.cycle


def measure_overhead(result: RepairResult, subject: str = "program",
                     config=None, max_cycles: int = 200_000) -> StatsRegistry:
    """Run the unrepaired program and every incremental repair stage under
    the target defense; return the per-fix overhead registry."""
    baseline = _run_cycles(result.original, result.defense, config,
                           max_cycles)
    stages = []
    for fix in result.fixes:
        cycles = _run_cycles(fix.program, result.defense, config, max_cycles)
        stages.append((f"{fix.kind.value} @ {fix.gadget.source:#x}", cycles))
    return overhead_registry(subject.replace("/", "-"), baseline, stages)


def overhead_registry(subject: str, baseline_cycles: int,
                      stage_cycles: Sequence[Tuple[str, int]]
                      ) -> StatsRegistry:
    """Per-fix cycle-overhead accounting in a telemetry registry.

    ``stage_cycles`` holds ``(fix label, cycles)`` for the program after
    each incremental fix; the registry exposes, per fix, the incremental
    cycle delta and the cumulative overhead relative to the unrepaired
    baseline — the numbers the ``--repair`` table prints.
    """
    registry = StatsRegistry()
    scope = registry.scope(f"repair.{subject}")
    scope.scalar("baseline_cycles",
                 "unrepaired program, target defense").value = baseline_cycles
    previous = baseline_cycles
    for index, (label, cycles) in enumerate(stage_cycles, start=1):
        fix_scope = scope.scope(f"fix{index}")
        stat = fix_scope.scalar("cycles", f"after {label}")
        stat.value = cycles
        delta = cycles - previous
        fix_scope.scalar("delta_cycles",
                         "cycles added by this fix").value = delta
        fix_scope.formula(
            "overhead",
            (lambda c=cycles, b=baseline_cycles: ratio(c - b, b)),
            "cumulative overhead vs baseline")
        previous = cycles
    if stage_cycles:
        scope.scalar("repaired_cycles",
                     "fully repaired program").value = stage_cycles[-1][1]
        scope.formula(
            "overhead",
            (lambda c=stage_cycles[-1][1], b=baseline_cycles:
             ratio(c - b, b)),
            "total repair overhead vs baseline")
    return registry
