"""Transient-execution windows: where wrong-path execution can roam.

A *window* is the set of instructions a core may execute speculatively from
one mispredicted (or bypassed) entry point, bounded by the ROB capacity from
:class:`~repro.config.CoreConfig` and cut at ``SB`` speculation barriers.
One :class:`Window` is emitted per (source instruction, speculative entry):

- ``PHT`` — a conditional branch whose condition is *delayed* (depends on a
  load, per :class:`~repro.analysis.taint.BranchFact`); both the taken and
  the fall-through side are speculative entries, since either direction can
  be the mispredicted one.
- ``BTB`` — an indirect ``BR``/``BLR``; entries are the taint-resolved
  constant targets when known, otherwise the program's address-taken set
  (any of which the attacker may have trained into the BTB).  Each entry
  records whether it starts with a ``BTI`` landing pad (SpecCFI's check).
- ``RSB`` — a ``RET``; entries are every return site in the program (the
  instruction after each call), since a wrapped/poisoned RSB can predict
  any stale slot.
- ``STL`` — a store whose *address* is delayed; the window starts right
  after it (the younger load that bypasses it).

Window bodies follow fall/taken/call edges only.  Nested ``BR``/``BLR``/
``RET`` stop the walk — their speculative continuations are modelled by
their own windows — and ``SB`` cuts it (``barrier_cut``).

``SBB``/``LFB`` (the MDS entry kinds) carry no window: the leaking load is
bound to commit.  :mod:`repro.analysis.gadgets` detects those by pattern.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.analysis import hooks
from repro.analysis.cfg import successors
from repro.analysis.taint import TaintResult
from repro.config import CoreConfig
from repro.isa.instructions import INSTR_BYTES, Opcode
from repro.isa.program import Program
from repro.mte.tags import strip_tag


class EntryKind(enum.Enum):
    """How speculative (or in-flight) execution reaches a gadget."""

    PHT = "pht"    # mistrained conditional branch (Spectre v1)
    BTB = "btb"    # injected indirect-branch target (v2 / BHB)
    RSB = "rsb"    # poisoned/wrapped return prediction (v5)
    STL = "stl"    # store-to-load bypass (v4)
    SBB = "sbb"    # store-buffer sampling (Fallout)
    LFB = "lfb"    # line-fill-buffer sampling (RIDL / ZombieLoad)


@dataclass(frozen=True)
class Window:
    """One speculative entry and the instructions reachable inside it."""

    kind: EntryKind
    #: Address of the branch/store that opens the window.
    source: int
    #: Address speculative execution enters at.
    entry: int
    #: Addresses of the instructions inside the window (BFS order).
    body: Tuple[int, ...]
    #: The entry instruction is a BTI landing pad (SpecCFI admits it).
    entry_is_bti: bool = False
    #: An ``SB`` barrier bounded the window before the ROB limit did.
    barrier_cut: bool = False


def _window_body(program: Program, entry: int,
                 limit: int) -> Tuple[Tuple[int, ...], bool]:
    """BFS from ``entry`` over fall/taken/call edges, up to ``limit``."""
    body: List[int] = []
    visited: Set[int] = set()
    frontier = [entry]
    cut = False
    while frontier and len(body) < limit:
        address = frontier.pop(0)
        if address in visited:
            continue
        instr = program.fetch(address)
        if instr is None:
            continue
        visited.add(address)
        body.append(instr.address)
        if instr.is_barrier and not hooks.injected("drop-sb-cut"):
            cut = True
            continue
        if instr.op in (Opcode.BR, Opcode.BLR) or instr.is_return:
            continue  # covered by that instruction's own windows
        for succ, kind in successors(program, instr):
            if kind != "indirect":
                frontier.append(succ)
    return tuple(body), cut


def compute_windows(taint: TaintResult,
                    core: Optional[CoreConfig] = None) -> List[Window]:
    """Every speculation window the taint facts imply for this program."""
    core = core or CoreConfig()
    program = taint.program
    limit = core.rob_entries
    windows: List[Window] = []

    return_sites = [instr.address + INSTR_BYTES
                    for instr in program.instructions
                    if instr.is_call
                    and program.fetch(instr.address + INSTR_BYTES) is not None]

    sink = hooks.coverage_sink()

    def emit(kind: EntryKind, source: int, entry: int) -> None:
        target = program.fetch(entry)
        if target is None:
            return
        body, cut = _window_body(program, entry, limit)
        if sink is not None:
            sink(hooks.window_feature(kind.value, len(body), cut))
        windows.append(Window(kind=kind, source=source, entry=entry,
                              body=body,
                              entry_is_bti=target.op is Opcode.BTI,
                              barrier_cut=cut))

    for address, fact in sorted(taint.branches.items()):
        instr = fact.instr
        if instr.is_conditional_branch and fact.delayed:
            for succ, _ in successors(program, instr):
                emit(EntryKind.PHT, address, succ)
        elif instr.op in (Opcode.BR, Opcode.BLR):
            targets: List[int] = []
            if fact.target is not None and fact.target.consts is not None:
                targets = [strip_tag(t) for t in fact.target.consts
                           if program.fetch(strip_tag(t)) is not None]
            if not targets:
                targets = sorted(taint.cfg.indirect_targets)
            for target in targets:
                emit(EntryKind.BTB, address, target)
        elif instr.is_return:
            for site in return_sites:
                emit(EntryKind.RSB, address, site)

    for address, store in sorted(taint.stores.items()):
        if store.address.loaded:
            emit(EntryKind.STL, address, address + INSTR_BYTES)

    return windows
