"""Command-line spec-lint: report, differential, witnesses, repair, CI gate.

- ``python -m repro.analysis`` (or ``--report``) — static gadget report for
  every Table-1 PoC plus the predicted matrix; no simulation.
- ``python -m repro.analysis --differential`` — additionally run the live
  simulator matrix and diff cell by cell; exits nonzero on any mismatch not
  covered by :data:`repro.analysis.differential.ALLOWLIST`.  With
  ``--confirm``, every disagreeing cell is re-executed variant by variant
  and reported as structured ``WitnessDisagreement`` records.
- ``python -m repro.analysis --witness`` — synthesize the per-gadget-class
  counterexample witnesses (both variants), confirm each against the
  simulator under every defense, and report any static-vs-dynamic
  divergence.  ``--emit DIR`` dumps the ``.s`` sources.
- ``python -m repro.analysis --repair SUBJECT`` — the full
  analyze -> witness -> repair -> re-verify pipeline for one subject
  (a witness like ``pht`` / ``stl/untagged``, or a ``.s`` file), printing
  the fixes, the flipped verdicts, and the per-fix cycle-overhead table
  from the telemetry registry.
- ``python -m repro.analysis --selftest`` — the CI gate: CFG
  well-formedness over generated workloads, static-vs-EXPECTED agreement,
  the full live differential, one witness-confirm cell, and one
  repair-verify cell.
- ``python -m repro.analysis --modular-differential`` — prove the
  summary-based modular engine byte-identical to the whole-program
  fixpoint over all 66 Table-1 cells, the witness suite, and the
  committed drill corpus (``--corpus DIR`` overrides), and print the
  precision ledger; any disagreement exits 2.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import List, Optional, Tuple

from repro.analysis import repair as repair_mod
from repro.analysis.cfg import build_cfg, require_well_formed
from repro.analysis.differential import (
    compare_matrices,
    compare_to_expected,
    confirm_mismatches,
    render_differential,
    render_report,
    render_static,
    static_matrix,
    unexpected,
)
from repro.analysis.gadgets import find_gadgets, leaks_under
from repro.analysis.witness import (
    Witness,
    confirm,
    render_confirmation,
    secret_ranges_of,
    synthesize,
    synthesize_all,
    variant_name,
    witness_kind,
    WITNESS_KINDS,
)
from repro.attacks import TABLE1_ROWS
from repro.attacks.common import run_attack_program
from repro.config import DefenseKind
from repro.errors import AnalysisError
from repro.isa.disasm import disassemble

#: Defense names accepted by ``--defense``.
DEFENSE_NAMES = {d.value: d for d in DefenseKind}


def _report(attacks: Optional[List[str]]) -> int:
    print(render_report(attacks))
    print()
    print(render_static(static_matrix(attacks)))
    return 0


def _report_file(path: str, secrets: List[str]) -> int:
    """Static gadget report for one ``.s`` file (``--report FILE.s``).

    Degenerate inputs — an empty program, unreachable victim code, flow
    that falls off the end of the text — are refused with the CFG
    diagnostics rather than reported as "no gadgets"
    (:func:`~repro.analysis.cfg.require_well_formed`).
    """
    from repro.errors import AssemblerError
    from repro.isa.assembler import assemble
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as err:
        raise AnalysisError(f"cannot read {path}: {err}")
    try:
        program = assemble(source)
    except AssemblerError as err:
        raise AnalysisError(f"{path} does not assemble: {err}")
    require_well_formed(program)
    secret_ranges = [_parse_secret(s) for s in secrets]
    from repro.analysis.taint import analyze
    taint = analyze(program, secret_ranges)
    gadgets = find_gadgets(program, secret_ranges, taint=taint)
    print(f"{path}: {len(program.instructions)} instruction(s), "
          f"{len(gadgets)} gadget(s)")
    for gadget in gadgets:
        print(f"  {gadget.render()}")
        verdicts = ", ".join(
            f"{d.value}={'leak' if leaks_under(gadget, d) else 'safe'}"
            for d in DefenseKind)
        print(f"    {verdicts}")
    _report_widenings(program, taint)
    return 0


def _report_widenings(program, taint) -> None:
    """Surface the bounded-iteration cutoff as explicit widening events.

    Mutually-recursive ``BL`` cycles (and unbounded loop counters) only
    converge because the constant-set join collapses past ``CONST_CAP``;
    silent convergence would hide that the analysis widened.  Print the
    event count and the functions it affected.
    """
    if not taint.widenings:
        return
    from repro.analysis.modular.callgraph import build_callgraph
    callgraph = build_callgraph(program, taint.cfg)
    total = sum(taint.widenings.values())
    functions = sorted({
        node.name for (start, _reg) in taint.widenings
        for node in (callgraph.function_at(start),) if node is not None})
    print(f"widening: {total} constant-set collapse event(s) at "
          f"{len(taint.widenings)} join point(s) — the bounded-iteration "
          f"cutoff converged the fixpoint")
    print(f"  affected function(s): {', '.join(functions)}")


def _differential(attacks: Optional[List[str]],
                  confirm_cells: bool = False) -> int:
    from repro.attacks.matrix import evaluate_matrix

    static = static_matrix(attacks)
    dynamic = evaluate_matrix(attacks)
    mismatches = compare_matrices(static, dynamic)
    print(render_differential(static, dynamic, mismatches))
    if confirm_cells:
        if not mismatches:
            print("confirm: no disagreeing cells to execute")
        else:
            records = confirm_mismatches(mismatches)
            print(f"confirm: {len(mismatches)} cell(s) re-executed, "
                  f"{len(records)} per-variant disagreement(s)")
            for record in records:
                print(f"  {record}")
    return 1 if unexpected(mismatches) else 0


def _witness(kinds: Optional[List[str]], emit: Optional[str]) -> int:
    """Synthesize and confirm witnesses; nonzero on any disagreement."""
    selected = [witness_kind(k) for k in kinds] if kinds else None
    failures = 0
    for witness in synthesize_all(selected):
        checks, disagreements = confirm(witness)
        print(render_confirmation(witness, checks, disagreements))
        failures += len(disagreements)
        if emit:
            os.makedirs(emit, exist_ok=True)
            path = os.path.join(
                emit, f"witness-{witness.subject.replace('/', '-')}.s")
            with open(path, "w") as handle:
                handle.write(witness.source_text)
            print(f"  wrote {path}")
    print(f"witness: {'PASS' if not failures else 'FAIL'} "
          f"({failures} disagreement(s))")
    return 1 if failures else 0


def _parse_secret(spec: str) -> Tuple[int, int]:
    try:
        lo, hi = (int(part, 0) for part in spec.split(":"))
        return lo, hi
    except ValueError:
        raise AnalysisError(
            f"bad --secret range {spec!r}; want LO:HI (e.g. 0x4100:0x4110)")


def _repair_subject(subject: str, secrets: List[str]
                    ) -> Tuple[object, List[Tuple[int, int]],
                               Optional[Witness]]:
    """Resolve a ``--repair`` subject into (program, secret ranges, witness).

    A subject naming a gadget class (``pht``, optionally ``pht/same-key``)
    synthesizes that witness — the residual variant by default, since the
    sanitized one has nothing to repair; a path assembles a ``.s`` file
    whose secret ranges come from ``--secret``.
    """
    if os.path.exists(subject) or subject.endswith(".s"):
        from repro.isa.assembler import assemble
        with open(subject) as handle:
            program = assemble(handle.read())
        return program, [_parse_secret(s) for s in secrets], None
    kind_name, _, variant = subject.partition("/")
    kind = witness_kind(kind_name)
    residual = variant != variant_name(kind, residual=False)
    witness = synthesize(kind, residual=residual)
    if variant and witness.variant != variant:
        raise AnalysisError(
            f"unknown variant {variant!r} for {kind.value}; have "
            f"{[variant_name(kind, r) for r in (False, True)]}")
    return (witness.attack.builder_program, secret_ranges_of(witness.attack),
            witness)


def _repair(subject: str, defense: DefenseKind, secrets: List[str],
            emit: Optional[str]) -> int:
    program, secret_ranges, witness = _repair_subject(subject, secrets)
    label = witness.subject if witness is not None else \
        os.path.basename(subject)
    print(f"subject: {label}  (target defense: {defense.value})")
    for gadget in find_gadgets(program, secret_ranges):
        print(f"  {gadget.render()}")

    if witness is not None:
        baseline = run_attack_program(witness.attack, DefenseKind.NONE)
        target = run_attack_program(witness.attack, defense)
        print(f"dynamic before: baseline {'LEAKS' if baseline.leaked else 'blocked'}"
              f" ({baseline.cycles} cycles), {defense.value} "
              f"{'LEAKS' if target.leaked else 'blocked'} "
              f"({target.cycles} cycles)")

    result = repair_mod.plan(program, secret_ranges, defense=defense)
    print(result.render())
    if not result.fixes:
        print("nothing to repair: no gadget leaks under "
              f"{defense.value}")
        return 0 if result.verified else 1

    failures = 0 if result.verified else 1
    if witness is not None:
        repaired_attack = replace(witness.attack,
                                  builder_program=result.repaired)
        after = run_attack_program(repaired_attack, defense)
        verdict = "LEAKS" if after.leaked else "blocked"
        fault = " (attacker load faults on the tag check)" \
            if after.faulted else ""
        print(f"dynamic after: {defense.value} {verdict}{fault}")
        failures += int(after.leaked)

    registry = repair_mod.measure_overhead(result, subject=label)
    print()
    print(registry.render(title=f"repair overhead: {label}"))

    if emit:
        os.makedirs(emit, exist_ok=True)
        path = os.path.join(emit,
                            f"repaired-{label.replace('/', '-')}.s")
        with open(path, "w") as handle:
            handle.write(disassemble(result.repaired))
        print(f"wrote {path}")
    print(f"repair: {'PASS' if not failures else 'FAIL'}")
    return 1 if failures else 0


def _selftest(attacks: Optional[List[str]]) -> int:
    failures = 0

    # 1. Every generated workload yields a well-formed CFG.
    from repro.workloads.generator import generate
    from repro.workloads.spec import SPEC_PROFILES
    for profile in SPEC_PROFILES[:4]:
        for seed in (0, 1):
            workload = generate(profile, seed=seed, target_instructions=1500)
            problems = build_cfg(workload.program).check_well_formed()
            status = "ok" if not problems else "FAIL"
            print(f"cfg {profile.name}/seed{seed}: {status}")
            for problem in problems:
                print(f"  {problem}")
            failures += len(problems)

    # 2. Static verdicts reproduce the paper's Table 1 (incl. the implicit
    #    all-leak NONE baseline) without running the simulator.
    static = static_matrix(attacks)
    for mismatch in compare_to_expected(static):
        print(f"expected-table: {mismatch}")
        failures += 1
    print(f"static vs paper Table 1: "
          f"{'ok' if not compare_to_expected(static) else 'FAIL'}")

    # 3. Full live differential.
    code = _differential(attacks)
    failures += code

    # 4. One witness-confirm cell: the PHT residual must leak on the
    #    baseline AND under SpecASan, exactly as the static verdict says.
    witness = synthesize(WITNESS_KINDS[0], residual=True)
    checks, disagreements = confirm(
        witness, [DefenseKind.NONE, DefenseKind.SPECASAN])
    ok = not disagreements and all(c.dynamic_leaked for c in checks)
    print(f"witness-confirm {witness.subject}: {'ok' if ok else 'FAIL'}")
    for disagreement in disagreements:
        print(f"  {disagreement}")
    failures += 0 if ok else 1

    # 5. One repair-verify cell: repairing that witness must flip the
    #    static verdict, kill the simulated leak, and account the cycle
    #    overhead in the telemetry registry.
    result = repair_mod.plan(witness.attack.builder_program,
                             secret_ranges_of(witness.attack))
    after = run_attack_program(
        replace(witness.attack, builder_program=result.repaired),
        DefenseKind.SPECASAN)
    registry = repair_mod.measure_overhead(result, subject=witness.subject)
    accounted = f"repair.{witness.subject.replace('/', '-')}.overhead" \
        in registry
    ok = result.verified and bool(result.fixes) and not after.leaked \
        and accounted
    print(f"repair-verify {witness.subject}: {'ok' if ok else 'FAIL'} "
          f"({len(result.fixes)} fix(es), static "
          f"{'sanitized' if result.verified else 'LEAKS'}, simulator "
          f"{'blocked' if not after.leaked else 'LEAKS'})")
    failures += 0 if ok else 1

    print(f"selftest: {'PASS' if not failures else 'FAIL'}")
    return 1 if failures else 0


def _modular_differential(corpus: Optional[str]) -> int:
    """Byte-identity gate + precision ledger (``--modular-differential``).

    Raises :class:`~repro.errors.AnalysisError` (exit 2) on any
    disagreement, so CI fails loudly; the rendered report carries the
    ledger either way.
    """
    from repro.analysis.modular.differential import (
        modular_differential, render_modular)
    report = modular_differential(corpus_dir=corpus, strict=False)
    print(render_modular(report))
    if not report.ok:
        raise AnalysisError(
            f"modular differential failed: {len(report.mismatches)} "
            f"disagreement(s), {len(report.ledger)} precision-ledger "
            f"entr{'y' if len(report.ledger) == 1 else 'ies'}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static speculative-leakage analysis (spec-lint).")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--report", nargs="?", const="", default=None,
                      metavar="FILE.s",
                      help="print the gadget report and static matrix "
                           "(default); with FILE.s, lint that source "
                           "file instead (use --secret for its secret "
                           "ranges); degenerate programs are refused "
                           "with CFG diagnostics (exit 2)")
    mode.add_argument("--differential", action="store_true",
                      help="also run the simulator and diff the matrices")
    mode.add_argument("--witness", action="store_true",
                      help="synthesize per-gadget-class witnesses and "
                           "confirm them against the simulator")
    mode.add_argument("--repair", metavar="SUBJECT",
                      help="repair a witness (e.g. pht, stl/untagged) or a "
                           ".s file; print fixes and the overhead table")
    mode.add_argument("--selftest", action="store_true",
                      help="CI gate: CFG property + expected-table + "
                           "differential + witness-confirm + repair-verify")
    mode.add_argument("--modular-differential", action="store_true",
                      dest="modular_differential",
                      help="prove modular summary-based verdicts "
                           "byte-identical to whole-program over Table 1, "
                           "the witness suite, and the drill corpus; "
                           "print the precision ledger (exit 2 on any "
                           "disagreement)")
    parser.add_argument("--attack", action="append", choices=TABLE1_ROWS,
                        help="restrict to one attack (repeatable)")
    parser.add_argument("--kind", action="append",
                        choices=[k.value for k in WITNESS_KINDS],
                        help="restrict --witness to one gadget class "
                             "(repeatable)")
    parser.add_argument("--confirm", action="store_true",
                        help="with --differential: dynamically execute "
                             "every disagreeing cell")
    parser.add_argument("--defense", default=DefenseKind.SPECASAN.value,
                        choices=sorted(DEFENSE_NAMES),
                        help="target defense for --repair "
                             "(default: specasan)")
    parser.add_argument("--secret", action="append", default=[],
                        metavar="LO:HI",
                        help="secret address range for --repair on a .s "
                             "file (repeatable)")
    parser.add_argument("--emit", metavar="DIR",
                        help="write witness / repaired .s files to DIR")
    parser.add_argument("--corpus", metavar="DIR", default=None,
                        help="drill-corpus directory for "
                             "--modular-differential (default: the "
                             "committed tests/fuzz/data/drill-corpus)")
    args = parser.parse_args(argv)

    try:
        if args.modular_differential:
            return _modular_differential(args.corpus)
        if args.selftest:
            return _selftest(args.attack)
        if args.differential:
            return _differential(args.attack, confirm_cells=args.confirm)
        if args.witness:
            return _witness(args.kind, args.emit)
        if args.repair:
            return _repair(args.repair, DEFENSE_NAMES[args.defense],
                           args.secret, args.emit)
        if args.report:
            return _report_file(args.report, args.secret)
        return _report(args.attack)
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
