"""Command-line spec-lint: report, differential check, CI selftest.

- ``python -m repro.analysis`` (or ``--report``) — static gadget report for
  every Table-1 PoC plus the predicted matrix; no simulation.
- ``python -m repro.analysis --differential`` — additionally run the live
  simulator matrix and diff cell by cell; exits nonzero on any mismatch not
  covered by :data:`repro.analysis.differential.ALLOWLIST`.
- ``python -m repro.analysis --selftest`` — the CI gate: CFG well-formedness
  over generated workloads, static-vs-EXPECTED agreement, and the full live
  differential.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.cfg import build_cfg
from repro.analysis.differential import (
    compare_matrices,
    compare_to_expected,
    render_differential,
    render_report,
    render_static,
    static_matrix,
    unexpected,
)
from repro.attacks import TABLE1_ROWS


def _report(attacks: Optional[List[str]]) -> int:
    print(render_report(attacks))
    print()
    print(render_static(static_matrix(attacks)))
    return 0


def _differential(attacks: Optional[List[str]]) -> int:
    from repro.attacks.matrix import evaluate_matrix

    static = static_matrix(attacks)
    dynamic = evaluate_matrix(attacks)
    mismatches = compare_matrices(static, dynamic)
    print(render_differential(static, dynamic, mismatches))
    return 1 if unexpected(mismatches) else 0


def _selftest(attacks: Optional[List[str]]) -> int:
    failures = 0

    # 1. Every generated workload yields a well-formed CFG.
    from repro.workloads.generator import generate
    from repro.workloads.spec import SPEC_PROFILES
    for profile in SPEC_PROFILES[:4]:
        for seed in (0, 1):
            workload = generate(profile, seed=seed, target_instructions=1500)
            problems = build_cfg(workload.program).check_well_formed()
            status = "ok" if not problems else "FAIL"
            print(f"cfg {profile.name}/seed{seed}: {status}")
            for problem in problems:
                print(f"  {problem}")
            failures += len(problems)

    # 2. Static verdicts reproduce the paper's Table 1 (incl. the implicit
    #    all-leak NONE baseline) without running the simulator.
    static = static_matrix(attacks)
    for mismatch in compare_to_expected(static):
        print(f"expected-table: {mismatch}")
        failures += 1
    print(f"static vs paper Table 1: "
          f"{'ok' if not compare_to_expected(static) else 'FAIL'}")

    # 3. Full live differential.
    code = _differential(attacks)
    failures += code
    print(f"selftest: {'PASS' if not failures else 'FAIL'}")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static speculative-leakage analysis (spec-lint).")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--report", action="store_true",
                      help="print the gadget report and static matrix "
                           "(default)")
    mode.add_argument("--differential", action="store_true",
                      help="also run the simulator and diff the matrices")
    mode.add_argument("--selftest", action="store_true",
                      help="CI gate: CFG property + expected-table + "
                           "differential")
    parser.add_argument("--attack", action="append", choices=TABLE1_ROWS,
                        help="restrict to one attack (repeatable)")
    args = parser.parse_args(argv)

    if args.selftest:
        return _selftest(args.attack)
    if args.differential:
        return _differential(args.attack)
    return _report(args.attack)


if __name__ == "__main__":
    sys.exit(main())
