"""Analysis entry-point options: whole-program vs. summary-backed modular.

:class:`AnalysisOptions` selects how :func:`~repro.analysis.gadgets
.find_gadgets` (and everything above it — the differential matrix, the
service worker, the fuzz executor) runs the taint dataflow.  The default
is the classic whole-program fixpoint of :func:`~repro.analysis.taint
.analyze`; ``modular=True`` routes through
:func:`repro.analysis.modular.analyze_modular` — the same fixpoint
equations decomposed over the function partition, with per-function
summaries memoized in a :class:`~repro.analysis.modular.incremental
.SummaryCache` so re-linting an edited program only re-analyzes the
functions whose bodies (or interface inputs) changed.

This module is deliberately dependency-light: it imports nothing from the
modular package at runtime so :mod:`repro.analysis.gadgets` can take an
``options`` parameter without a circular import.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.analysis.modular.incremental import SummaryCache
    from repro.telemetry.analysis import ModularStats


@dataclass
class AnalysisOptions:
    """How the gadget finder runs the dataflow.

    Attributes:
        modular: run the summary-backed modular fixpoint instead of the
            whole-program one.  Verdicts are byte-identical by contract
            (the ``--modular-differential`` CI gate enforces it).
        cache: summary memo shared across runs; ``None`` means a private
            in-memory cache per :func:`analyze_modular` call (no reuse).
        boundaries: extra instruction addresses where the function
            partition must split — e.g. fuzz-candidate section starts,
            which otherwise form one inline function and would defeat
            function-granular reuse.
        stats: optional :class:`~repro.telemetry.analysis.ModularStats`
            handle; every modular run books its summary hit/miss/SCC
            counters there.
    """

    modular: bool = False
    cache: Optional["SummaryCache"] = None
    boundaries: Tuple[int, ...] = ()
    stats: Optional["ModularStats"] = None

    @classmethod
    def whole_program(cls) -> "AnalysisOptions":
        """The default: the classic monolithic fixpoint."""
        return cls()

    @classmethod
    def summary_backed(cls, cache: Optional["SummaryCache"] = None,
                       boundaries: Iterable[int] = (),
                       stats: Optional["ModularStats"] = None,
                       ) -> "AnalysisOptions":
        """Modular mode with a (fresh in-memory, unless given) cache."""
        if cache is None:
            from repro.analysis.modular.incremental import SummaryCache
            cache = SummaryCache()
        return cls(modular=True, cache=cache,
                   boundaries=tuple(sorted(boundaries)), stats=stats)
