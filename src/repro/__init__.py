"""SpecASan reproduction: speculative address sanitization on a Python OoO CPU simulator.

This package reproduces *SpecASan: Mitigating Transient Execution Attacks
Using Speculative Address Sanitization* (ISCA 2025).  It contains, built from
scratch:

- ``repro.isa`` -- an ARM-flavoured RISC instruction set with a two-pass
  assembler and a programmatic builder.
- ``repro.mte`` -- a model of ARM's Memory Tagging Extension: 4-bit locks per
  16-byte granule, pointer keys in the top byte, and a tagging heap allocator.
- ``repro.memory`` -- a tagged cache hierarchy (L1/L2), MSHRs, a Line-Fill
  Buffer, a memory controller that issues paired data+tag requests, and DRAM
  with separate tag storage.
- ``repro.pipeline`` -- a cycle-level out-of-order core: branch-predicting
  front end, rename/ROB, issue queue, split load/store queues with
  store-to-load forwarding and memory-dependence prediction, and in-order
  commit with squash recovery.
- ``repro.core`` -- SpecASan itself: the per-entry tag-check status (``tcs``),
  the Tag-check Status Handler (TSH), safe-speculative-access (SSA) bits in
  the ROB, and the selective-delay mechanism.
- ``repro.defenses`` -- the baselines the paper compares against: speculative
  barriers, STT, GhostMinion, SpecCFI, and the SpecASan+CFI composition.
- ``repro.attacks`` -- gadget programs and a leak detector for the Table-1
  attack variants (Spectre v1/v2/v4/v5/BHB, Fallout/RIDL/ZombieLoad, SCC).
- ``repro.workloads`` -- deterministic synthetic stand-ins for the SPEC
  CPU2017 and PARSEC workloads the paper measures.
- ``repro.multicore`` -- a 4-core system for the PARSEC experiments.
- ``repro.hwcost`` -- an analytical area/power/energy model for Table 3.
- ``repro.eval`` -- the experiment harness that regenerates every table and
  figure of the paper's evaluation.
- ``repro.resilience`` -- fault injection, cycle-level invariant checking,
  and watchdog diagnostics for single simulations.
- ``repro.campaign`` -- crash-safe experiment campaigns: process-isolated
  workers, a durable resumable result store, and straggler recovery
  (``python -m repro.campaign``).
"""

from repro.config import (
    CacheConfig,
    CoreConfig,
    CORTEX_A76,
    DefenseKind,
    MemoryConfig,
    MTEConfig,
    SystemConfig,
)
from repro.errors import (
    AssemblerError,
    ConfigError,
    ReproError,
    SimulationError,
    TagCheckFault,
)
from repro.system import build_system, SimulatedSystem, RunResult

__all__ = [
    "AssemblerError",
    "CacheConfig",
    "ConfigError",
    "CoreConfig",
    "CORTEX_A76",
    "DefenseKind",
    "MemoryConfig",
    "MTEConfig",
    "ReproError",
    "RunResult",
    "SimulatedSystem",
    "SimulationError",
    "SystemConfig",
    "TagCheckFault",
    "build_system",
]

__version__ = "1.0.0"
