"""Pointer-key arithmetic and granule geometry for MTE.

Pointers are 64-bit values whose top byte is ignored by address translation
(ARM Top-Byte Ignore).  MTE stores the 4-bit *key* in bits 56..59.  The
functions here convert between tagged pointers, untagged addresses, and
granule indices; they are pure and shared by the allocator, the caches, the
memory controller, and the pipeline's MTE instruction semantics.
"""

from __future__ import annotations

#: Bit position of the address tag (key) within a 64-bit pointer.
TAG_SHIFT = 56
#: Pointers are 64-bit values.
POINTER_MASK = (1 << 64) - 1
#: Mask that clears the whole top byte (TBI region).
_ADDRESS_MASK = (1 << TAG_SHIFT) - 1


def key_of(pointer: int, tag_bits: int = 4) -> int:
    """The address tag (key) carried in ``pointer``'s top byte."""
    return (pointer >> TAG_SHIFT) & ((1 << tag_bits) - 1)


def with_key(address: int, key: int, tag_bits: int = 4) -> int:
    """Return ``address`` with its key replaced by ``key``."""
    key &= (1 << tag_bits) - 1
    return (address & _ADDRESS_MASK) | (key << TAG_SHIFT)


def strip_tag(pointer: int) -> int:
    """The untagged (physical) address of ``pointer`` (TBI semantics)."""
    return pointer & _ADDRESS_MASK


def granule_index(address: int, granule_bytes: int = 16) -> int:
    """The granule number covering ``address`` (which may be tagged)."""
    return strip_tag(address) // granule_bytes


def granule_count(size: int, granule_bytes: int = 16) -> int:
    """Number of granules needed to cover ``size`` bytes."""
    return (size + granule_bytes - 1) // granule_bytes


def granule_align(size: int, granule_bytes: int = 16) -> int:
    """``size`` rounded up to a whole number of granules."""
    return granule_count(size, granule_bytes) * granule_bytes
