"""A tagging heap allocator in the style of Scudo / glibc MTE support.

§2.3: "The malloc() call assigns a tag to both the allocated memory block
(in 16-byte chunks) and the returned pointer. ... By assigning unique tags
to different memory regions, MTE can detect out-of-bounds accesses, and by
updating the tag of a memory region after it is freed, MTE can detect
use-after-free errors."

The allocator is used at *program-build* time by the workload generators and
attack gadgets: it hands out tagged pointers and records the allocation-tag
assignments, which the system loader then applies to DRAM tag storage before
simulation starts.  This mirrors how the paper relies on the existing MTE
software toolchain to instrument stack/heap (§5.2).

Two tag policies (§6):

- ``RANDOM`` — IRG-style random tags; adjacent allocations may collide with
  probability 1/16.
- ``DETERMINISTIC`` — tags cycle so that consecutive and neighbouring
  allocations always differ (the policy recommended against tag-leak
  attacks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.config import MTEConfig, TagPolicy
from repro.errors import SimulationError
from repro.mte.tags import granule_align, with_key


@dataclass(frozen=True)
class Allocation:
    """One live or freed heap allocation.

    ``pointer`` is the tagged pointer malloc returned; ``address`` the
    untagged base; ``size`` the requested size (the tagged extent is rounded
    up to whole granules).
    """

    address: int
    size: int
    tag: int
    pointer: int
    freed: bool = False

    @property
    def end(self) -> int:
        """Untagged end of the *tagged* extent (granule-aligned)."""
        return self.address + granule_align(self.size)


@dataclass
class TagAssignment:
    """A (range -> tag) record the loader replays into DRAM tag storage."""

    address: int
    size: int
    tag: int


class TaggedHeap:
    """Bump allocator that tags every allocation.

    Args:
        base: untagged start address of the heap region.
        size: heap region size in bytes.
        config: MTE parameters (granule size, tag width, policy, RNG seed).
    """

    #: Tag reserved for freed memory under the deterministic policy; real
    #: deployments cycle tags on free, we always move to a different value.
    _FREE_ROTATE = 7

    def __init__(self, base: int, size: int, config: Optional[MTEConfig] = None):
        self.config = config or MTEConfig()
        self.base = base
        self.size = size
        self._cursor = base
        self._rng = random.Random(self.config.seed)
        self._next_tag = 1  # deterministic policy: skip 0, the "untagged" tag
        self.allocations: List[Allocation] = []
        self.assignments: List[TagAssignment] = []

    # -- tag selection ---------------------------------------------------------

    def _pick_tag(self, exclude: int = -1) -> int:
        num = self.config.num_tags
        if self.config.tag_policy is TagPolicy.RANDOM:
            tag = self._rng.randrange(num)
            # IRG excludes at most the previous tag of the same address.
            if tag == exclude:
                tag = (tag + 1) % num
            return tag
        tag = self._next_tag
        self._next_tag += 1
        if self._next_tag >= num:
            self._next_tag = 1
        if tag == exclude:
            return self._pick_tag(exclude)
        return tag

    # -- allocation ---------------------------------------------------------------

    def malloc(self, size: int, tag: Optional[int] = None) -> Allocation:
        """Allocate ``size`` bytes; returns the tagged :class:`Allocation`.

        A caller-specified ``tag`` overrides the policy (used by attack
        gadgets that need a *known* tag relationship between regions).
        """
        if size <= 0:
            raise SimulationError("malloc size must be positive")
        aligned = granule_align(size, self.config.granule_bytes)
        if self._cursor + aligned > self.base + self.size:
            raise SimulationError(
                f"heap exhausted: need {aligned} bytes at {self._cursor:#x}")
        address = self._cursor
        self._cursor += aligned
        chosen = self._pick_tag() if tag is None else tag & (self.config.num_tags - 1)
        allocation = Allocation(
            address=address, size=size, tag=chosen,
            pointer=with_key(address, chosen, self.config.tag_bits))
        self.allocations.append(allocation)
        self.assignments.append(TagAssignment(address, aligned, chosen))
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Free an allocation: its granules are *retagged* so stale pointers
        (use-after-free) mismatch."""
        index = next((i for i, a in enumerate(self.allocations)
                      if a.address == allocation.address), None)
        if index is None:
            raise SimulationError(f"free of unknown {allocation.address:#x}")
        if allocation.freed or self.allocations[index].freed:
            raise SimulationError(f"double free of {allocation.address:#x}")
        allocation = self.allocations[index]
        new_tag = self._pick_tag(exclude=allocation.tag)
        self.allocations[index] = Allocation(
            address=allocation.address, size=allocation.size,
            tag=new_tag, pointer=allocation.pointer, freed=True)
        self.assignments.append(TagAssignment(
            allocation.address, granule_align(allocation.size), new_tag))

    @property
    def bytes_used(self) -> int:
        """Granule-aligned bytes handed out so far."""
        return self._cursor - self.base
