"""The allocation-tag (lock) array kept in DRAM tag storage.

§3.3.4: "tags are stored in a separate address space called tag storage with
a specific base address."  We model that storage as a dense bytearray with
one entry per 16-byte granule, indexed by granule number.  The memory
controller reads it in parallel with data accesses; caches keep per-line
copies of the covered locks.
"""

from __future__ import annotations

from repro.errors import ConfigError, SimulationError
from repro.mte.tags import granule_index, strip_tag


class TagStorage:
    """Dense per-granule allocation-tag storage for a physical memory.

    Args:
        memory_bytes: size of the physical memory being covered.
        granule_bytes: MTE granule size (16 for ARM MTE).
        tag_bits: tag width; values are masked to this width on store.
    """

    def __init__(self, memory_bytes: int, granule_bytes: int = 16,
                 tag_bits: int = 4):
        if memory_bytes % granule_bytes:
            raise ConfigError("memory size must be a multiple of the granule")
        self.granule_bytes = granule_bytes
        self.tag_bits = tag_bits
        self._mask = (1 << tag_bits) - 1
        self._tags = bytearray(memory_bytes // granule_bytes)
        #: Number of injected bit flips (fault-injection diagnostics).
        self.corruptions = 0
        #: Granule indices whose stored tag was corrupted and not since
        #: rewritten — what an ECC/parity scrub of tag storage would flag.
        self.corrupted_granules: set = set()

    def __len__(self) -> int:
        return len(self._tags)

    def _index(self, address: int) -> int:
        index = granule_index(address, self.granule_bytes)
        if not 0 <= index < len(self._tags):
            raise SimulationError(
                f"tag storage access out of range: {strip_tag(address):#x}")
        return index

    def get(self, address: int) -> int:
        """The lock of the granule covering ``address`` (tagged or not)."""
        return self._tags[self._index(address)]

    def set(self, address: int, tag: int) -> None:
        """Set the lock of the granule covering ``address``."""
        index = self._index(address)
        self._tags[index] = tag & self._mask
        self.corrupted_granules.discard(index)  # a rewrite scrubs the error

    def set_range(self, address: int, size: int, tag: int) -> None:
        """Tag every granule of ``[address, address+size)`` with ``tag``."""
        if size <= 0:
            return
        start = self._index(address)
        end = self._index(strip_tag(address) + size - 1)
        value = tag & self._mask
        for index in range(start, end + 1):
            self._tags[index] = value
            self.corrupted_granules.discard(index)

    def flip_bit(self, address: int, bit: int) -> int:
        """Fault-injection hook: flip one bit of the lock covering ``address``.

        Models a soft error (or a TikTag-style perturbation) in DRAM tag
        storage.  Returns the new lock value; ``corruptions`` counts every
        flip so diagnostics can report how much of the store was perturbed.
        """
        if not 0 <= bit < self.tag_bits:
            raise ConfigError(f"bit {bit} outside the {self.tag_bits}-bit tag")
        index = self._index(address)
        self._tags[index] ^= (1 << bit)
        self.corruptions += 1
        self.corrupted_granules.add(index)
        return self._tags[index]

    def line_tags(self, line_address: int, line_bytes: int) -> tuple:
        """The locks covering one cache line (4 tags for a 64B line, Fig. 3)."""
        base = self._index(line_address)
        count = line_bytes // self.granule_bytes
        return tuple(self._tags[base:base + count])

    def check(self, pointer: int) -> bool:
        """True when ``pointer``'s key matches its granule's lock."""
        key = (pointer >> 56) & self._mask
        return key == self._tags[self._index(pointer)]

    def state_dict(self) -> dict:
        # The tag array is dense but overwhelmingly zero; compress it so
        # checkpoint sections stay kilobytes, not megabytes.
        import base64
        import zlib
        return {
            "size": len(self._tags),
            "tags": base64.b64encode(
                zlib.compress(bytes(self._tags), 6)).decode("ascii"),
            "corruptions": self.corruptions,
            "corrupted_granules": sorted(self.corrupted_granules),
        }

    def load_state_dict(self, state: dict) -> None:
        import base64
        import zlib
        tags = bytearray(zlib.decompress(base64.b64decode(state["tags"])))
        if len(tags) != int(state["size"]) or len(tags) != len(self._tags):
            from repro.errors import CheckpointError
            raise CheckpointError(
                f"tag storage size {len(tags)} != configured "
                f"{len(self._tags)}", kind="state-mismatch")
        self._tags = tags
        self.corruptions = int(state["corruptions"])
        self.corrupted_granules = set(state["corrupted_granules"])
