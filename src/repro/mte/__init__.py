"""A model of ARM's Memory Tagging Extension (MTE, §2.3).

MTE associates a 4-bit *allocation tag* (the "lock") with every 16-byte
granule of memory, and a 4-bit *address tag* (the "key") with every pointer,
carried in the otherwise-unused top byte (Top-Byte Ignore).  A memory access
is safe when key == lock.

This package provides:

- :mod:`repro.mte.tags` — pointer key arithmetic and granule geometry;
- :mod:`repro.mte.tagstore` — the dense allocation-tag array DRAM keeps in
  its dedicated tag storage (§3.3.4);
- :mod:`repro.mte.allocator` — a tagging heap allocator in the style of
  Scudo/glibc MTE support: allocations receive fresh tags, frees retag, so
  out-of-bounds and use-after-free accesses mismatch.
"""

from repro.mte.tags import (
    granule_count,
    granule_index,
    key_of,
    strip_tag,
    TAG_SHIFT,
    with_key,
)
from repro.mte.tagstore import TagStorage
from repro.mte.allocator import Allocation, TaggedHeap

__all__ = [
    "Allocation",
    "granule_count",
    "granule_index",
    "key_of",
    "strip_tag",
    "TAG_SHIFT",
    "TaggedHeap",
    "TagStorage",
    "with_key",
]
