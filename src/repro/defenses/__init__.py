"""The mitigation mechanisms the paper evaluates, as pluggable policies.

Use :func:`make_policy` to construct the policy for a
:class:`~repro.config.DefenseKind`::

    from repro.config import DefenseKind
    from repro.defenses import make_policy

    policy = make_policy(DefenseKind.SPECASAN_CFI)
"""

from __future__ import annotations

from repro.config import DefenseKind
from repro.core.policy import DefensePolicy, NoDefense
from repro.core.specasan import SpecASanPolicy
from repro.defenses.composite import CompositePolicy
from repro.defenses.fence import FencePolicy
from repro.defenses.ghostminion import GhostMinionPolicy
from repro.defenses.speccfi import SpecCFIPolicy
from repro.defenses.stt import STTPolicy

__all__ = [
    "CompositePolicy",
    "DefensePolicy",
    "FencePolicy",
    "GhostMinionPolicy",
    "make_policy",
    "NoDefense",
    "SpecASanPolicy",
    "SpecCFIPolicy",
    "STTPolicy",
]


def make_policy(kind: DefenseKind) -> DefensePolicy:
    """Instantiate the defense policy for ``kind`` (fresh state each call)."""
    if kind is DefenseKind.NONE:
        return NoDefense()
    if kind is DefenseKind.FENCE:
        return FencePolicy()
    if kind is DefenseKind.STT:
        return STTPolicy()
    if kind is DefenseKind.GHOSTMINION:
        return GhostMinionPolicy()
    if kind is DefenseKind.SPECCFI:
        return SpecCFIPolicy()
    if kind is DefenseKind.SPECASAN:
        return SpecASanPolicy()
    if kind is DefenseKind.SPECASAN_CFI:
        return CompositePolicy([SpecASanPolicy(), SpecCFIPolicy()],
                               name="specasan+cfi")
    raise ValueError(f"unknown defense kind: {kind!r}")
