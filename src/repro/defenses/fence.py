"""Speculative barriers: the delay-ACCESS baseline (Figure 1, row 2).

Models the fence/LFENCE-style mitigations (and hardware automatic fencing
[75]): **no load may access memory while any older branch is unresolved**.
This is the strongest and slowest class — Figure 6's "Speculative Barriers"
bars reach 2.4×–10× because essentially every load behind a branch stalls
for the branch-resolution latency.
"""

from __future__ import annotations

from repro.core.policy import DefensePolicy
from repro.pipeline.dyninstr import DynInstr


class FencePolicy(DefensePolicy):
    """No instruction issues while an older branch is unresolved.

    This is lfence-after-every-branch semantics: speculation is effectively
    disabled ("sometimes even translates to disabling the speculative
    execution entirely", §2.1) — branches resolve serially and everything
    behind them waits.
    """

    name = "fence"

    def may_issue(self, dyn: DynInstr) -> bool:
        return not self.core.is_speculative(dyn)

    def may_issue_load(self, dyn: DynInstr) -> bool:
        return not self.core.is_speculative(dyn)
